/root/repo/target/release/deps/ftpde_tpch-f59c631128a3bbd7.d: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

/root/repo/target/release/deps/libftpde_tpch-f59c631128a3bbd7.rlib: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

/root/repo/target/release/deps/libftpde_tpch-f59c631128a3bbd7.rmeta: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

crates/tpch/src/lib.rs:
crates/tpch/src/costing.rs:
crates/tpch/src/datagen.rs:
crates/tpch/src/partitioning.rs:
crates/tpch/src/queries.rs:
crates/tpch/src/rows.rs:
crates/tpch/src/schema.rs:
