/root/repo/target/release/deps/proptest-d24ea20711cdc4e4.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d24ea20711cdc4e4.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-d24ea20711cdc4e4.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
