/root/repo/target/release/deps/ftpde_sim-b1eb025562e28205.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

/root/repo/target/release/deps/libftpde_sim-b1eb025562e28205.rlib: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

/root/repo/target/release/deps/libftpde_sim-b1eb025562e28205.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/scheme.rs:
crates/sim/src/simulate.rs:
