/root/repo/target/release/deps/ftpde_engine-b0613e800bc79bc9.d: crates/engine/src/lib.rs crates/engine/src/coordinator.rs crates/engine/src/expr.rs crates/engine/src/failure.rs crates/engine/src/ops.rs crates/engine/src/plan.rs crates/engine/src/queries.rs crates/engine/src/store.rs crates/engine/src/table.rs crates/engine/src/value.rs

/root/repo/target/release/deps/libftpde_engine-b0613e800bc79bc9.rlib: crates/engine/src/lib.rs crates/engine/src/coordinator.rs crates/engine/src/expr.rs crates/engine/src/failure.rs crates/engine/src/ops.rs crates/engine/src/plan.rs crates/engine/src/queries.rs crates/engine/src/store.rs crates/engine/src/table.rs crates/engine/src/value.rs

/root/repo/target/release/deps/libftpde_engine-b0613e800bc79bc9.rmeta: crates/engine/src/lib.rs crates/engine/src/coordinator.rs crates/engine/src/expr.rs crates/engine/src/failure.rs crates/engine/src/ops.rs crates/engine/src/plan.rs crates/engine/src/queries.rs crates/engine/src/store.rs crates/engine/src/table.rs crates/engine/src/value.rs

crates/engine/src/lib.rs:
crates/engine/src/coordinator.rs:
crates/engine/src/expr.rs:
crates/engine/src/failure.rs:
crates/engine/src/ops.rs:
crates/engine/src/plan.rs:
crates/engine/src/queries.rs:
crates/engine/src/store.rs:
crates/engine/src/table.rs:
crates/engine/src/value.rs:
