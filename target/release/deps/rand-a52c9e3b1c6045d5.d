/root/repo/target/release/deps/rand-a52c9e3b1c6045d5.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-a52c9e3b1c6045d5.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-a52c9e3b1c6045d5.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
