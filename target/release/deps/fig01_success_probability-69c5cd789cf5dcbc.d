/root/repo/target/release/deps/fig01_success_probability-69c5cd789cf5dcbc.d: crates/bench/benches/fig01_success_probability.rs

/root/repo/target/release/deps/fig01_success_probability-69c5cd789cf5dcbc: crates/bench/benches/fig01_success_probability.rs

crates/bench/benches/fig01_success_probability.rs:
