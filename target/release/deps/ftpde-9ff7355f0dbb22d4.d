/root/repo/target/release/deps/ftpde-9ff7355f0dbb22d4.d: src/lib.rs

/root/repo/target/release/deps/libftpde-9ff7355f0dbb22d4.rlib: src/lib.rs

/root/repo/target/release/deps/libftpde-9ff7355f0dbb22d4.rmeta: src/lib.rs

src/lib.rs:
