/root/repo/target/release/deps/ftpde_cluster-34dee0edc479e1d1.d: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs

/root/repo/target/release/deps/libftpde_cluster-34dee0edc479e1d1.rlib: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs

/root/repo/target/release/deps/libftpde_cluster-34dee0edc479e1d1.rmeta: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/analytics.rs:
crates/cluster/src/config.rs:
crates/cluster/src/trace.rs:
