/root/repo/target/release/deps/rand-1295f7e0a1a5bbdf.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-1295f7e0a1a5bbdf.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-1295f7e0a1a5bbdf.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
