/root/repo/target/release/deps/ftpde_sim-679fd33983c305c2.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

/root/repo/target/release/deps/libftpde_sim-679fd33983c305c2.rlib: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

/root/repo/target/release/deps/libftpde_sim-679fd33983c305c2.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/scheme.rs:
crates/sim/src/simulate.rs:
