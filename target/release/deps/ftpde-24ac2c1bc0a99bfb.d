/root/repo/target/release/deps/ftpde-24ac2c1bc0a99bfb.d: src/bin/ftpde.rs

/root/repo/target/release/deps/ftpde-24ac2c1bc0a99bfb: src/bin/ftpde.rs

src/bin/ftpde.rs:
