/root/repo/target/release/deps/ftpde_tpch-f2fbccddb1e5c668.d: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

/root/repo/target/release/deps/libftpde_tpch-f2fbccddb1e5c668.rlib: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

/root/repo/target/release/deps/libftpde_tpch-f2fbccddb1e5c668.rmeta: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

crates/tpch/src/lib.rs:
crates/tpch/src/costing.rs:
crates/tpch/src/datagen.rs:
crates/tpch/src/partitioning.rs:
crates/tpch/src/queries.rs:
crates/tpch/src/rows.rs:
crates/tpch/src/schema.rs:
