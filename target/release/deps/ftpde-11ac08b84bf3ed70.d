/root/repo/target/release/deps/ftpde-11ac08b84bf3ed70.d: src/bin/ftpde.rs

/root/repo/target/release/deps/ftpde-11ac08b84bf3ed70: src/bin/ftpde.rs

src/bin/ftpde.rs:
