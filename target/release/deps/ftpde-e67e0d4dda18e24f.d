/root/repo/target/release/deps/ftpde-e67e0d4dda18e24f.d: src/lib.rs

/root/repo/target/release/deps/libftpde-e67e0d4dda18e24f.rlib: src/lib.rs

/root/repo/target/release/deps/libftpde-e67e0d4dda18e24f.rmeta: src/lib.rs

src/lib.rs:
