/root/repo/target/release/deps/ftpde-aa197a2fc6e14d8e.d: src/lib.rs

/root/repo/target/release/deps/libftpde-aa197a2fc6e14d8e.rlib: src/lib.rs

/root/repo/target/release/deps/libftpde-aa197a2fc6e14d8e.rmeta: src/lib.rs

src/lib.rs:
