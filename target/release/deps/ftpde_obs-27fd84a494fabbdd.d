/root/repo/target/release/deps/ftpde_obs-27fd84a494fabbdd.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs

/root/repo/target/release/deps/libftpde_obs-27fd84a494fabbdd.rlib: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs

/root/repo/target/release/deps/libftpde_obs-27fd84a494fabbdd.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/export.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/report.rs:
