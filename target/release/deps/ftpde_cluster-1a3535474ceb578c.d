/root/repo/target/release/deps/ftpde_cluster-1a3535474ceb578c.d: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs

/root/repo/target/release/deps/libftpde_cluster-1a3535474ceb578c.rlib: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs

/root/repo/target/release/deps/libftpde_cluster-1a3535474ceb578c.rmeta: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/analytics.rs:
crates/cluster/src/config.rs:
crates/cluster/src/trace.rs:
