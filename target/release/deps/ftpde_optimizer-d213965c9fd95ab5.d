/root/repo/target/release/deps/ftpde_optimizer-d213965c9fd95ab5.d: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

/root/repo/target/release/deps/libftpde_optimizer-d213965c9fd95ab5.rlib: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

/root/repo/target/release/deps/libftpde_optimizer-d213965c9fd95ab5.rmeta: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/enumerate.rs:
crates/optimizer/src/greedy.rs:
crates/optimizer/src/logical.rs:
crates/optimizer/src/physical.rs:
