/root/repo/target/release/deps/ftpde_optimizer-479e0148b6037d0b.d: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

/root/repo/target/release/deps/libftpde_optimizer-479e0148b6037d0b.rlib: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

/root/repo/target/release/deps/libftpde_optimizer-479e0148b6037d0b.rmeta: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/enumerate.rs:
crates/optimizer/src/greedy.rs:
crates/optimizer/src/logical.rs:
crates/optimizer/src/physical.rs:
