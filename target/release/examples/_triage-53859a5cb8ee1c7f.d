/root/repo/target/release/examples/_triage-53859a5cb8ee1c7f.d: examples/_triage.rs

/root/repo/target/release/examples/_triage-53859a5cb8ee1c7f: examples/_triage.rs

examples/_triage.rs:
