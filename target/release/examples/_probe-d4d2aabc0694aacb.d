/root/repo/target/release/examples/_probe-d4d2aabc0694aacb.d: examples/_probe.rs

/root/repo/target/release/examples/_probe-d4d2aabc0694aacb: examples/_probe.rs

examples/_probe.rs:
