/root/repo/target/debug/deps/renewal_validation-642a1a8c9da2412b.d: crates/sim/tests/renewal_validation.rs Cargo.toml

/root/repo/target/debug/deps/librenewal_validation-642a1a8c9da2412b.rmeta: crates/sim/tests/renewal_validation.rs Cargo.toml

crates/sim/tests/renewal_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
