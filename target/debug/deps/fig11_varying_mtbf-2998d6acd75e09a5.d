/root/repo/target/debug/deps/fig11_varying_mtbf-2998d6acd75e09a5.d: crates/bench/benches/fig11_varying_mtbf.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_varying_mtbf-2998d6acd75e09a5.rmeta: crates/bench/benches/fig11_varying_mtbf.rs Cargo.toml

crates/bench/benches/fig11_varying_mtbf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
