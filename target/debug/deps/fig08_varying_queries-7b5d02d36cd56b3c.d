/root/repo/target/debug/deps/fig08_varying_queries-7b5d02d36cd56b3c.d: crates/bench/benches/fig08_varying_queries.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_varying_queries-7b5d02d36cd56b3c.rmeta: crates/bench/benches/fig08_varying_queries.rs Cargo.toml

crates/bench/benches/fig08_varying_queries.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
