/root/repo/target/debug/deps/ftpde_obs-da18a82f1974b32c.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs

/root/repo/target/debug/deps/ftpde_obs-da18a82f1974b32c: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/export.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/report.rs:
