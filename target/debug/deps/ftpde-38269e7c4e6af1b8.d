/root/repo/target/debug/deps/ftpde-38269e7c4e6af1b8.d: src/bin/ftpde.rs Cargo.toml

/root/repo/target/debug/deps/libftpde-38269e7c4e6af1b8.rmeta: src/bin/ftpde.rs Cargo.toml

src/bin/ftpde.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
