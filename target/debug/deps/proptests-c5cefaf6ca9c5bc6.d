/root/repo/target/debug/deps/proptests-c5cefaf6ca9c5bc6.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-c5cefaf6ca9c5bc6: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
