/root/repo/target/debug/deps/ftpde-f29e289ea0195c49.d: src/lib.rs

/root/repo/target/debug/deps/libftpde-f29e289ea0195c49.rlib: src/lib.rs

/root/repo/target/debug/deps/libftpde-f29e289ea0195c49.rmeta: src/lib.rs

src/lib.rs:
