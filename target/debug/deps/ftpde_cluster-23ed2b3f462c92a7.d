/root/repo/target/debug/deps/ftpde_cluster-23ed2b3f462c92a7.d: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/libftpde_cluster-23ed2b3f462c92a7.rlib: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/libftpde_cluster-23ed2b3f462c92a7.rmeta: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/analytics.rs:
crates/cluster/src/config.rs:
crates/cluster/src/trace.rs:
