/root/repo/target/debug/deps/proptest-7c0fb6617b813d0e.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7c0fb6617b813d0e.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-7c0fb6617b813d0e.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
