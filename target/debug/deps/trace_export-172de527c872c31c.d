/root/repo/target/debug/deps/trace_export-172de527c872c31c.d: tests/trace_export.rs

/root/repo/target/debug/deps/trace_export-172de527c872c31c: tests/trace_export.rs

tests/trace_export.rs:
