/root/repo/target/debug/deps/ftpde_bench-38dd88547436ee22.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/common.rs crates/bench/src/diagrams.rs crates/bench/src/fig01.rs crates/bench/src/fig08.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/report.rs crates/bench/src/tab02.rs crates/bench/src/tab03.rs

/root/repo/target/debug/deps/libftpde_bench-38dd88547436ee22.rlib: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/common.rs crates/bench/src/diagrams.rs crates/bench/src/fig01.rs crates/bench/src/fig08.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/report.rs crates/bench/src/tab02.rs crates/bench/src/tab03.rs

/root/repo/target/debug/deps/libftpde_bench-38dd88547436ee22.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/common.rs crates/bench/src/diagrams.rs crates/bench/src/fig01.rs crates/bench/src/fig08.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/report.rs crates/bench/src/tab02.rs crates/bench/src/tab03.rs

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/common.rs:
crates/bench/src/diagrams.rs:
crates/bench/src/fig01.rs:
crates/bench/src/fig08.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig12.rs:
crates/bench/src/fig13.rs:
crates/bench/src/report.rs:
crates/bench/src/tab02.rs:
crates/bench/src/tab03.rs:
