/root/repo/target/debug/deps/proptests-a17d62e02c39bea0.d: crates/tpch/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a17d62e02c39bea0: crates/tpch/tests/proptests.rs

crates/tpch/tests/proptests.rs:
