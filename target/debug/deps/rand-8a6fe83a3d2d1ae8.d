/root/repo/target/debug/deps/rand-8a6fe83a3d2d1ae8.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8a6fe83a3d2d1ae8.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8a6fe83a3d2d1ae8.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
