/root/repo/target/debug/deps/ftpde_sim-a290e8ae69291c63.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs Cargo.toml

/root/repo/target/debug/deps/libftpde_sim-a290e8ae69291c63.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/scheme.rs:
crates/sim/src/simulate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
