/root/repo/target/debug/deps/proptests-db1df3de38b73b45.d: crates/tpch/tests/proptests.rs

/root/repo/target/debug/deps/proptests-db1df3de38b73b45: crates/tpch/tests/proptests.rs

crates/tpch/tests/proptests.rs:
