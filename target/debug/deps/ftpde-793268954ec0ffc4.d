/root/repo/target/debug/deps/ftpde-793268954ec0ffc4.d: src/lib.rs

/root/repo/target/debug/deps/libftpde-793268954ec0ffc4.rlib: src/lib.rs

/root/repo/target/debug/deps/libftpde-793268954ec0ffc4.rmeta: src/lib.rs

src/lib.rs:
