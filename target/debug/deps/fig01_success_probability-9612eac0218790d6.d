/root/repo/target/debug/deps/fig01_success_probability-9612eac0218790d6.d: crates/bench/benches/fig01_success_probability.rs Cargo.toml

/root/repo/target/debug/deps/libfig01_success_probability-9612eac0218790d6.rmeta: crates/bench/benches/fig01_success_probability.rs Cargo.toml

crates/bench/benches/fig01_success_probability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
