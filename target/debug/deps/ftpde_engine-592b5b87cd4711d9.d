/root/repo/target/debug/deps/ftpde_engine-592b5b87cd4711d9.d: crates/engine/src/lib.rs crates/engine/src/coordinator.rs crates/engine/src/expr.rs crates/engine/src/failure.rs crates/engine/src/ops.rs crates/engine/src/plan.rs crates/engine/src/queries.rs crates/engine/src/store.rs crates/engine/src/table.rs crates/engine/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libftpde_engine-592b5b87cd4711d9.rmeta: crates/engine/src/lib.rs crates/engine/src/coordinator.rs crates/engine/src/expr.rs crates/engine/src/failure.rs crates/engine/src/ops.rs crates/engine/src/plan.rs crates/engine/src/queries.rs crates/engine/src/store.rs crates/engine/src/table.rs crates/engine/src/value.rs Cargo.toml

crates/engine/src/lib.rs:
crates/engine/src/coordinator.rs:
crates/engine/src/expr.rs:
crates/engine/src/failure.rs:
crates/engine/src/ops.rs:
crates/engine/src/plan.rs:
crates/engine/src/queries.rs:
crates/engine/src/store.rs:
crates/engine/src/table.rs:
crates/engine/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
