/root/repo/target/debug/deps/serde_roundtrip-73bccf0117d81281.d: crates/obs/tests/serde_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libserde_roundtrip-73bccf0117d81281.rmeta: crates/obs/tests/serde_roundtrip.rs Cargo.toml

crates/obs/tests/serde_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
