/root/repo/target/debug/deps/ftpde_core-263fc94d61f49229.d: crates/core/src/lib.rs crates/core/src/collapse.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/dag.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/operator.rs crates/core/src/paths.rs crates/core/src/prune.rs crates/core/src/search.rs crates/core/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libftpde_core-263fc94d61f49229.rmeta: crates/core/src/lib.rs crates/core/src/collapse.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/dag.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/operator.rs crates/core/src/paths.rs crates/core/src/prune.rs crates/core/src/search.rs crates/core/src/stats.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/collapse.rs:
crates/core/src/config.rs:
crates/core/src/cost.rs:
crates/core/src/dag.rs:
crates/core/src/error.rs:
crates/core/src/explain.rs:
crates/core/src/operator.rs:
crates/core/src/paths.rs:
crates/core/src/prune.rs:
crates/core/src/search.rs:
crates/core/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
