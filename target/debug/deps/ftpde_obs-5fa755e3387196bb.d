/root/repo/target/debug/deps/ftpde_obs-5fa755e3387196bb.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs

/root/repo/target/debug/deps/libftpde_obs-5fa755e3387196bb.rlib: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs

/root/repo/target/debug/deps/libftpde_obs-5fa755e3387196bb.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/export.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/report.rs:
