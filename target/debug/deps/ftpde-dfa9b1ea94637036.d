/root/repo/target/debug/deps/ftpde-dfa9b1ea94637036.d: src/bin/ftpde.rs

/root/repo/target/debug/deps/ftpde-dfa9b1ea94637036: src/bin/ftpde.rs

src/bin/ftpde.rs:
