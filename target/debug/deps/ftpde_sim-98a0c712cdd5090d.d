/root/repo/target/debug/deps/ftpde_sim-98a0c712cdd5090d.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

/root/repo/target/debug/deps/libftpde_sim-98a0c712cdd5090d.rlib: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

/root/repo/target/debug/deps/libftpde_sim-98a0c712cdd5090d.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/scheme.rs:
crates/sim/src/simulate.rs:
