/root/repo/target/debug/deps/recovery_proptests-1f68f4c96e0bac30.d: crates/engine/tests/recovery_proptests.rs

/root/repo/target/debug/deps/recovery_proptests-1f68f4c96e0bac30: crates/engine/tests/recovery_proptests.rs

crates/engine/tests/recovery_proptests.rs:
