/root/repo/target/debug/deps/ftpde_sim-f7defd04d594d48e.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

/root/repo/target/debug/deps/libftpde_sim-f7defd04d594d48e.rlib: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

/root/repo/target/debug/deps/libftpde_sim-f7defd04d594d48e.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/scheme.rs:
crates/sim/src/simulate.rs:
