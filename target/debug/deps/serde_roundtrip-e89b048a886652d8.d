/root/repo/target/debug/deps/serde_roundtrip-e89b048a886652d8.d: crates/core/tests/serde_roundtrip.rs

/root/repo/target/debug/deps/serde_roundtrip-e89b048a886652d8: crates/core/tests/serde_roundtrip.rs

crates/core/tests/serde_roundtrip.rs:
