/root/repo/target/debug/deps/ftpde-875e2f5e8f891304.d: src/bin/ftpde.rs

/root/repo/target/debug/deps/ftpde-875e2f5e8f891304: src/bin/ftpde.rs

src/bin/ftpde.rs:
