/root/repo/target/debug/deps/proptests-ac735402a29339f8.d: crates/optimizer/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ac735402a29339f8: crates/optimizer/tests/proptests.rs

crates/optimizer/tests/proptests.rs:
