/root/repo/target/debug/deps/ftpde_tpch-2193e34af3e3d67f.d: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

/root/repo/target/debug/deps/libftpde_tpch-2193e34af3e3d67f.rlib: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

/root/repo/target/debug/deps/libftpde_tpch-2193e34af3e3d67f.rmeta: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

crates/tpch/src/lib.rs:
crates/tpch/src/costing.rs:
crates/tpch/src/datagen.rs:
crates/tpch/src/partitioning.rs:
crates/tpch/src/queries.rs:
crates/tpch/src/rows.rs:
crates/tpch/src/schema.rs:
