/root/repo/target/debug/deps/renewal_validation-202d49cfe749907f.d: crates/sim/tests/renewal_validation.rs

/root/repo/target/debug/deps/renewal_validation-202d49cfe749907f: crates/sim/tests/renewal_validation.rs

crates/sim/tests/renewal_validation.rs:
