/root/repo/target/debug/deps/ftpde_optimizer-ab90b8f104571c82.d: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

/root/repo/target/debug/deps/libftpde_optimizer-ab90b8f104571c82.rlib: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

/root/repo/target/debug/deps/libftpde_optimizer-ab90b8f104571c82.rmeta: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/enumerate.rs:
crates/optimizer/src/greedy.rs:
crates/optimizer/src/logical.rs:
crates/optimizer/src/physical.rs:
