/root/repo/target/debug/deps/ftpde-0363e23aa408c808.d: src/bin/ftpde.rs

/root/repo/target/debug/deps/ftpde-0363e23aa408c808: src/bin/ftpde.rs

src/bin/ftpde.rs:
