/root/repo/target/debug/deps/proptests-f01729c065ab3ee0.d: crates/optimizer/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f01729c065ab3ee0: crates/optimizer/tests/proptests.rs

crates/optimizer/tests/proptests.rs:
