/root/repo/target/debug/deps/ftpde-9e2393317a9fa1c7.d: src/lib.rs

/root/repo/target/debug/deps/ftpde-9e2393317a9fa1c7: src/lib.rs

src/lib.rs:
