/root/repo/target/debug/deps/ftpde_cluster-87c049902b25b3c3.d: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/libftpde_cluster-87c049902b25b3c3.rlib: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/libftpde_cluster-87c049902b25b3c3.rmeta: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/analytics.rs:
crates/cluster/src/config.rs:
crates/cluster/src/trace.rs:
