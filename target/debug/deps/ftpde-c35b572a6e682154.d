/root/repo/target/debug/deps/ftpde-c35b572a6e682154.d: src/bin/ftpde.rs

/root/repo/target/debug/deps/ftpde-c35b572a6e682154: src/bin/ftpde.rs

src/bin/ftpde.rs:
