/root/repo/target/debug/deps/rand-a38c0a5f9ca5c3b6.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-a38c0a5f9ca5c3b6: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
