/root/repo/target/debug/deps/ftpde-af932f2b13af4929.d: src/lib.rs

/root/repo/target/debug/deps/ftpde-af932f2b13af4929: src/lib.rs

src/lib.rs:
