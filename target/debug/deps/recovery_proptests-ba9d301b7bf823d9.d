/root/repo/target/debug/deps/recovery_proptests-ba9d301b7bf823d9.d: crates/engine/tests/recovery_proptests.rs Cargo.toml

/root/repo/target/debug/deps/librecovery_proptests-ba9d301b7bf823d9.rmeta: crates/engine/tests/recovery_proptests.rs Cargo.toml

crates/engine/tests/recovery_proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
