/root/repo/target/debug/deps/ftpde_engine-1dd133dcf6daccbb.d: crates/engine/src/lib.rs crates/engine/src/coordinator.rs crates/engine/src/expr.rs crates/engine/src/failure.rs crates/engine/src/ops.rs crates/engine/src/plan.rs crates/engine/src/queries.rs crates/engine/src/store.rs crates/engine/src/table.rs crates/engine/src/value.rs

/root/repo/target/debug/deps/libftpde_engine-1dd133dcf6daccbb.rlib: crates/engine/src/lib.rs crates/engine/src/coordinator.rs crates/engine/src/expr.rs crates/engine/src/failure.rs crates/engine/src/ops.rs crates/engine/src/plan.rs crates/engine/src/queries.rs crates/engine/src/store.rs crates/engine/src/table.rs crates/engine/src/value.rs

/root/repo/target/debug/deps/libftpde_engine-1dd133dcf6daccbb.rmeta: crates/engine/src/lib.rs crates/engine/src/coordinator.rs crates/engine/src/expr.rs crates/engine/src/failure.rs crates/engine/src/ops.rs crates/engine/src/plan.rs crates/engine/src/queries.rs crates/engine/src/store.rs crates/engine/src/table.rs crates/engine/src/value.rs

crates/engine/src/lib.rs:
crates/engine/src/coordinator.rs:
crates/engine/src/expr.rs:
crates/engine/src/failure.rs:
crates/engine/src/ops.rs:
crates/engine/src/plan.rs:
crates/engine/src/queries.rs:
crates/engine/src/store.rs:
crates/engine/src/table.rs:
crates/engine/src/value.rs:
