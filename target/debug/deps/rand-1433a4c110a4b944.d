/root/repo/target/debug/deps/rand-1433a4c110a4b944.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-1433a4c110a4b944.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-1433a4c110a4b944.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
