/root/repo/target/debug/deps/ftpde_tpch-c4e9091b9b8f4c69.d: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

/root/repo/target/debug/deps/ftpde_tpch-c4e9091b9b8f4c69: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

crates/tpch/src/lib.rs:
crates/tpch/src/costing.rs:
crates/tpch/src/datagen.rs:
crates/tpch/src/partitioning.rs:
crates/tpch/src/queries.rs:
crates/tpch/src/rows.rs:
crates/tpch/src/schema.rs:
