/root/repo/target/debug/deps/ftpde_cluster-165b8e2f67ebc2ad.d: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libftpde_cluster-165b8e2f67ebc2ad.rmeta: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/analytics.rs:
crates/cluster/src/config.rs:
crates/cluster/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
