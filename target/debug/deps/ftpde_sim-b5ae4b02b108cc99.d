/root/repo/target/debug/deps/ftpde_sim-b5ae4b02b108cc99.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

/root/repo/target/debug/deps/libftpde_sim-b5ae4b02b108cc99.rlib: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

/root/repo/target/debug/deps/libftpde_sim-b5ae4b02b108cc99.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/scheme.rs:
crates/sim/src/simulate.rs:
