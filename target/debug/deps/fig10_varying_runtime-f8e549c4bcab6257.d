/root/repo/target/debug/deps/fig10_varying_runtime-f8e549c4bcab6257.d: crates/bench/benches/fig10_varying_runtime.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_varying_runtime-f8e549c4bcab6257.rmeta: crates/bench/benches/fig10_varying_runtime.rs Cargo.toml

crates/bench/benches/fig10_varying_runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
