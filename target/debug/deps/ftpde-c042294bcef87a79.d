/root/repo/target/debug/deps/ftpde-c042294bcef87a79.d: src/bin/ftpde.rs

/root/repo/target/debug/deps/ftpde-c042294bcef87a79: src/bin/ftpde.rs

src/bin/ftpde.rs:
