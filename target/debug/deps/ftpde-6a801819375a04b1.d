/root/repo/target/debug/deps/ftpde-6a801819375a04b1.d: src/lib.rs

/root/repo/target/debug/deps/libftpde-6a801819375a04b1.rlib: src/lib.rs

/root/repo/target/debug/deps/libftpde-6a801819375a04b1.rmeta: src/lib.rs

src/lib.rs:
