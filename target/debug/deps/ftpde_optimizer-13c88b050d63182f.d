/root/repo/target/debug/deps/ftpde_optimizer-13c88b050d63182f.d: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

/root/repo/target/debug/deps/libftpde_optimizer-13c88b050d63182f.rlib: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

/root/repo/target/debug/deps/libftpde_optimizer-13c88b050d63182f.rmeta: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/enumerate.rs:
crates/optimizer/src/greedy.rs:
crates/optimizer/src/logical.rs:
crates/optimizer/src/physical.rs:
