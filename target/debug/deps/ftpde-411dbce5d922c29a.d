/root/repo/target/debug/deps/ftpde-411dbce5d922c29a.d: src/bin/ftpde.rs Cargo.toml

/root/repo/target/debug/deps/libftpde-411dbce5d922c29a.rmeta: src/bin/ftpde.rs Cargo.toml

src/bin/ftpde.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
