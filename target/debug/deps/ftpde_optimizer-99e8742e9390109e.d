/root/repo/target/debug/deps/ftpde_optimizer-99e8742e9390109e.d: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs Cargo.toml

/root/repo/target/debug/deps/libftpde_optimizer-99e8742e9390109e.rmeta: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs Cargo.toml

crates/optimizer/src/lib.rs:
crates/optimizer/src/enumerate.rs:
crates/optimizer/src/greedy.rs:
crates/optimizer/src/logical.rs:
crates/optimizer/src/physical.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
