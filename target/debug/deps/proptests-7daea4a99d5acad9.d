/root/repo/target/debug/deps/proptests-7daea4a99d5acad9.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-7daea4a99d5acad9: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
