/root/repo/target/debug/deps/ftpde_optimizer-067285bd4e891819.d: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

/root/repo/target/debug/deps/ftpde_optimizer-067285bd4e891819: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/enumerate.rs:
crates/optimizer/src/greedy.rs:
crates/optimizer/src/logical.rs:
crates/optimizer/src/physical.rs:
