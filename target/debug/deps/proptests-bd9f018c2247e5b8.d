/root/repo/target/debug/deps/proptests-bd9f018c2247e5b8.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-bd9f018c2247e5b8: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
