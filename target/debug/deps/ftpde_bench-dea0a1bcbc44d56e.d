/root/repo/target/debug/deps/ftpde_bench-dea0a1bcbc44d56e.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/common.rs crates/bench/src/diagrams.rs crates/bench/src/fig01.rs crates/bench/src/fig08.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/report.rs crates/bench/src/tab02.rs crates/bench/src/tab03.rs Cargo.toml

/root/repo/target/debug/deps/libftpde_bench-dea0a1bcbc44d56e.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/common.rs crates/bench/src/diagrams.rs crates/bench/src/fig01.rs crates/bench/src/fig08.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/report.rs crates/bench/src/tab02.rs crates/bench/src/tab03.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/common.rs:
crates/bench/src/diagrams.rs:
crates/bench/src/fig01.rs:
crates/bench/src/fig08.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig12.rs:
crates/bench/src/fig13.rs:
crates/bench/src/report.rs:
crates/bench/src/tab02.rs:
crates/bench/src/tab03.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
