/root/repo/target/debug/deps/ftpde_cluster-b00f590f88b38996.d: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libftpde_cluster-b00f590f88b38996.rmeta: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/analytics.rs:
crates/cluster/src/config.rs:
crates/cluster/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
