/root/repo/target/debug/deps/ftpde_core-05cdacb2711f0018.d: crates/core/src/lib.rs crates/core/src/collapse.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/dag.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/operator.rs crates/core/src/paths.rs crates/core/src/prune.rs crates/core/src/search.rs crates/core/src/stats.rs

/root/repo/target/debug/deps/ftpde_core-05cdacb2711f0018: crates/core/src/lib.rs crates/core/src/collapse.rs crates/core/src/config.rs crates/core/src/cost.rs crates/core/src/dag.rs crates/core/src/error.rs crates/core/src/explain.rs crates/core/src/operator.rs crates/core/src/paths.rs crates/core/src/prune.rs crates/core/src/search.rs crates/core/src/stats.rs

crates/core/src/lib.rs:
crates/core/src/collapse.rs:
crates/core/src/config.rs:
crates/core/src/cost.rs:
crates/core/src/dag.rs:
crates/core/src/error.rs:
crates/core/src/explain.rs:
crates/core/src/operator.rs:
crates/core/src/paths.rs:
crates/core/src/prune.rs:
crates/core/src/search.rs:
crates/core/src/stats.rs:
