/root/repo/target/debug/deps/diagrams-e0d3acadd362fe15.d: crates/bench/benches/diagrams.rs Cargo.toml

/root/repo/target/debug/deps/libdiagrams-e0d3acadd362fe15.rmeta: crates/bench/benches/diagrams.rs Cargo.toml

crates/bench/benches/diagrams.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
