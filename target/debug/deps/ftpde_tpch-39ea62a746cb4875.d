/root/repo/target/debug/deps/ftpde_tpch-39ea62a746cb4875.d: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

/root/repo/target/debug/deps/libftpde_tpch-39ea62a746cb4875.rlib: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

/root/repo/target/debug/deps/libftpde_tpch-39ea62a746cb4875.rmeta: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

crates/tpch/src/lib.rs:
crates/tpch/src/costing.rs:
crates/tpch/src/datagen.rs:
crates/tpch/src/partitioning.rs:
crates/tpch/src/queries.rs:
crates/tpch/src/rows.rs:
crates/tpch/src/schema.rs:
