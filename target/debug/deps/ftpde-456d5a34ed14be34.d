/root/repo/target/debug/deps/ftpde-456d5a34ed14be34.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libftpde-456d5a34ed14be34.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
