/root/repo/target/debug/deps/ftpde-324675805d1c83cf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libftpde-324675805d1c83cf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
