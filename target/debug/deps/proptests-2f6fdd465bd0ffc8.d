/root/repo/target/debug/deps/proptests-2f6fdd465bd0ffc8.d: crates/tpch/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-2f6fdd465bd0ffc8.rmeta: crates/tpch/tests/proptests.rs Cargo.toml

crates/tpch/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
