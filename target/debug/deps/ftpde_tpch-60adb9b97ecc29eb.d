/root/repo/target/debug/deps/ftpde_tpch-60adb9b97ecc29eb.d: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs Cargo.toml

/root/repo/target/debug/deps/libftpde_tpch-60adb9b97ecc29eb.rmeta: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs Cargo.toml

crates/tpch/src/lib.rs:
crates/tpch/src/costing.rs:
crates/tpch/src/datagen.rs:
crates/tpch/src/partitioning.rs:
crates/tpch/src/queries.rs:
crates/tpch/src/rows.rs:
crates/tpch/src/schema.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
