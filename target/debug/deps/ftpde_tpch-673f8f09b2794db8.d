/root/repo/target/debug/deps/ftpde_tpch-673f8f09b2794db8.d: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

/root/repo/target/debug/deps/libftpde_tpch-673f8f09b2794db8.rlib: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

/root/repo/target/debug/deps/libftpde_tpch-673f8f09b2794db8.rmeta: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

crates/tpch/src/lib.rs:
crates/tpch/src/costing.rs:
crates/tpch/src/datagen.rs:
crates/tpch/src/partitioning.rs:
crates/tpch/src/queries.rs:
crates/tpch/src/rows.rs:
crates/tpch/src/schema.rs:
