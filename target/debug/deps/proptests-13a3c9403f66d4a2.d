/root/repo/target/debug/deps/proptests-13a3c9403f66d4a2.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-13a3c9403f66d4a2: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
