/root/repo/target/debug/deps/micro_criterion-40fa5844e20bf8e5.d: crates/bench/benches/micro_criterion.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_criterion-40fa5844e20bf8e5.rmeta: crates/bench/benches/micro_criterion.rs Cargo.toml

crates/bench/benches/micro_criterion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
