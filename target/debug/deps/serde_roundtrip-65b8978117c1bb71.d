/root/repo/target/debug/deps/serde_roundtrip-65b8978117c1bb71.d: crates/core/tests/serde_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libserde_roundtrip-65b8978117c1bb71.rmeta: crates/core/tests/serde_roundtrip.rs Cargo.toml

crates/core/tests/serde_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
