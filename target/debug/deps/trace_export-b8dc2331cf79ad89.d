/root/repo/target/debug/deps/trace_export-b8dc2331cf79ad89.d: tests/trace_export.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_export-b8dc2331cf79ad89.rmeta: tests/trace_export.rs Cargo.toml

tests/trace_export.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
