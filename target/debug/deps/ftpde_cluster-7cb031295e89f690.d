/root/repo/target/debug/deps/ftpde_cluster-7cb031295e89f690.d: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/libftpde_cluster-7cb031295e89f690.rlib: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/libftpde_cluster-7cb031295e89f690.rmeta: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/analytics.rs:
crates/cluster/src/config.rs:
crates/cluster/src/trace.rs:
