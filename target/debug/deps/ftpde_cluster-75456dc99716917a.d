/root/repo/target/debug/deps/ftpde_cluster-75456dc99716917a.d: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs

/root/repo/target/debug/deps/ftpde_cluster-75456dc99716917a: crates/cluster/src/lib.rs crates/cluster/src/analytics.rs crates/cluster/src/config.rs crates/cluster/src/trace.rs

crates/cluster/src/lib.rs:
crates/cluster/src/analytics.rs:
crates/cluster/src/config.rs:
crates/cluster/src/trace.rs:
