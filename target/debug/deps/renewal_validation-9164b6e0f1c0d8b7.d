/root/repo/target/debug/deps/renewal_validation-9164b6e0f1c0d8b7.d: crates/sim/tests/renewal_validation.rs

/root/repo/target/debug/deps/renewal_validation-9164b6e0f1c0d8b7: crates/sim/tests/renewal_validation.rs

crates/sim/tests/renewal_validation.rs:
