/root/repo/target/debug/deps/ftpde_tpch-bcbc00c497fbfdb4.d: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

/root/repo/target/debug/deps/libftpde_tpch-bcbc00c497fbfdb4.rlib: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

/root/repo/target/debug/deps/libftpde_tpch-bcbc00c497fbfdb4.rmeta: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

crates/tpch/src/lib.rs:
crates/tpch/src/costing.rs:
crates/tpch/src/datagen.rs:
crates/tpch/src/partitioning.rs:
crates/tpch/src/queries.rs:
crates/tpch/src/rows.rs:
crates/tpch/src/schema.rs:
