/root/repo/target/debug/deps/fig12_accuracy-07ca660dcfddbcaf.d: crates/bench/benches/fig12_accuracy.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_accuracy-07ca660dcfddbcaf.rmeta: crates/bench/benches/fig12_accuracy.rs Cargo.toml

crates/bench/benches/fig12_accuracy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
