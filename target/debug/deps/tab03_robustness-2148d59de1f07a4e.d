/root/repo/target/debug/deps/tab03_robustness-2148d59de1f07a4e.d: crates/bench/benches/tab03_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libtab03_robustness-2148d59de1f07a4e.rmeta: crates/bench/benches/tab03_robustness.rs Cargo.toml

crates/bench/benches/tab03_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
