/root/repo/target/debug/deps/serde_roundtrip-2c8d6b2e05c08228.d: crates/obs/tests/serde_roundtrip.rs

/root/repo/target/debug/deps/serde_roundtrip-2c8d6b2e05c08228: crates/obs/tests/serde_roundtrip.rs

crates/obs/tests/serde_roundtrip.rs:
