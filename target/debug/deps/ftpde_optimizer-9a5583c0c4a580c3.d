/root/repo/target/debug/deps/ftpde_optimizer-9a5583c0c4a580c3.d: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

/root/repo/target/debug/deps/libftpde_optimizer-9a5583c0c4a580c3.rlib: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

/root/repo/target/debug/deps/libftpde_optimizer-9a5583c0c4a580c3.rmeta: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/enumerate.rs:
crates/optimizer/src/greedy.rs:
crates/optimizer/src/logical.rs:
crates/optimizer/src/physical.rs:
