/root/repo/target/debug/deps/fig13_pruning-039b180786aa0a83.d: crates/bench/benches/fig13_pruning.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_pruning-039b180786aa0a83.rmeta: crates/bench/benches/fig13_pruning.rs Cargo.toml

crates/bench/benches/fig13_pruning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
