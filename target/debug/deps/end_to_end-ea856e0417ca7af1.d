/root/repo/target/debug/deps/end_to_end-ea856e0417ca7af1.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ea856e0417ca7af1: tests/end_to_end.rs

tests/end_to_end.rs:
