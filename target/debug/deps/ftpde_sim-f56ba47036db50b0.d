/root/repo/target/debug/deps/ftpde_sim-f56ba47036db50b0.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

/root/repo/target/debug/deps/libftpde_sim-f56ba47036db50b0.rlib: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

/root/repo/target/debug/deps/libftpde_sim-f56ba47036db50b0.rmeta: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/scheme.rs:
crates/sim/src/simulate.rs:
