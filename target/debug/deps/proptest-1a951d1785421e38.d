/root/repo/target/debug/deps/proptest-1a951d1785421e38.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-1a951d1785421e38: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
