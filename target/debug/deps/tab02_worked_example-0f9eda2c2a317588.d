/root/repo/target/debug/deps/tab02_worked_example-0f9eda2c2a317588.d: crates/bench/benches/tab02_worked_example.rs Cargo.toml

/root/repo/target/debug/deps/libtab02_worked_example-0f9eda2c2a317588.rmeta: crates/bench/benches/tab02_worked_example.rs Cargo.toml

crates/bench/benches/tab02_worked_example.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
