/root/repo/target/debug/deps/serde_roundtrip-10e80ef424349bd6.d: crates/core/tests/serde_roundtrip.rs

/root/repo/target/debug/deps/serde_roundtrip-10e80ef424349bd6: crates/core/tests/serde_roundtrip.rs

crates/core/tests/serde_roundtrip.rs:
