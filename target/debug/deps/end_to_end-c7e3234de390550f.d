/root/repo/target/debug/deps/end_to_end-c7e3234de390550f.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-c7e3234de390550f: tests/end_to_end.rs

tests/end_to_end.rs:
