/root/repo/target/debug/deps/ftpde_optimizer-3a63927d1b90968f.d: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

/root/repo/target/debug/deps/ftpde_optimizer-3a63927d1b90968f: crates/optimizer/src/lib.rs crates/optimizer/src/enumerate.rs crates/optimizer/src/greedy.rs crates/optimizer/src/logical.rs crates/optimizer/src/physical.rs

crates/optimizer/src/lib.rs:
crates/optimizer/src/enumerate.rs:
crates/optimizer/src/greedy.rs:
crates/optimizer/src/logical.rs:
crates/optimizer/src/physical.rs:
