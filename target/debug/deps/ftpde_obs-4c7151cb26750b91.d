/root/repo/target/debug/deps/ftpde_obs-4c7151cb26750b91.d: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs Cargo.toml

/root/repo/target/debug/deps/libftpde_obs-4c7151cb26750b91.rmeta: crates/obs/src/lib.rs crates/obs/src/event.rs crates/obs/src/export.rs crates/obs/src/metrics.rs crates/obs/src/recorder.rs crates/obs/src/report.rs Cargo.toml

crates/obs/src/lib.rs:
crates/obs/src/event.rs:
crates/obs/src/export.rs:
crates/obs/src/metrics.rs:
crates/obs/src/recorder.rs:
crates/obs/src/report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
