/root/repo/target/debug/deps/ftpde_tpch-7cb4fef249313ff1.d: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

/root/repo/target/debug/deps/ftpde_tpch-7cb4fef249313ff1: crates/tpch/src/lib.rs crates/tpch/src/costing.rs crates/tpch/src/datagen.rs crates/tpch/src/partitioning.rs crates/tpch/src/queries.rs crates/tpch/src/rows.rs crates/tpch/src/schema.rs

crates/tpch/src/lib.rs:
crates/tpch/src/costing.rs:
crates/tpch/src/datagen.rs:
crates/tpch/src/partitioning.rs:
crates/tpch/src/queries.rs:
crates/tpch/src/rows.rs:
crates/tpch/src/schema.rs:
