/root/repo/target/debug/deps/recovery_proptests-b56a1f7ae0f23e44.d: crates/engine/tests/recovery_proptests.rs

/root/repo/target/debug/deps/recovery_proptests-b56a1f7ae0f23e44: crates/engine/tests/recovery_proptests.rs

crates/engine/tests/recovery_proptests.rs:
