/root/repo/target/debug/deps/proptests-e1d9fe2634f6ea26.d: crates/optimizer/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-e1d9fe2634f6ea26.rmeta: crates/optimizer/tests/proptests.rs Cargo.toml

crates/optimizer/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
