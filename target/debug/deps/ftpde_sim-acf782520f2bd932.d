/root/repo/target/debug/deps/ftpde_sim-acf782520f2bd932.d: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

/root/repo/target/debug/deps/ftpde_sim-acf782520f2bd932: crates/sim/src/lib.rs crates/sim/src/event.rs crates/sim/src/metrics.rs crates/sim/src/scheme.rs crates/sim/src/simulate.rs

crates/sim/src/lib.rs:
crates/sim/src/event.rs:
crates/sim/src/metrics.rs:
crates/sim/src/scheme.rs:
crates/sim/src/simulate.rs:
