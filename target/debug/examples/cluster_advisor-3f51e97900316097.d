/root/repo/target/debug/examples/cluster_advisor-3f51e97900316097.d: examples/cluster_advisor.rs Cargo.toml

/root/repo/target/debug/examples/libcluster_advisor-3f51e97900316097.rmeta: examples/cluster_advisor.rs Cargo.toml

examples/cluster_advisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
