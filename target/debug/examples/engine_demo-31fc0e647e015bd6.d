/root/repo/target/debug/examples/engine_demo-31fc0e647e015bd6.d: examples/engine_demo.rs

/root/repo/target/debug/examples/engine_demo-31fc0e647e015bd6: examples/engine_demo.rs

examples/engine_demo.rs:
