/root/repo/target/debug/examples/failure_timeline-3704628400a0d4d3.d: examples/failure_timeline.rs

/root/repo/target/debug/examples/failure_timeline-3704628400a0d4d3: examples/failure_timeline.rs

examples/failure_timeline.rs:
