/root/repo/target/debug/examples/quickstart-3ef4a8ba6f82c2f4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3ef4a8ba6f82c2f4: examples/quickstart.rs

examples/quickstart.rs:
