/root/repo/target/debug/examples/observability-398c04968a81edee.d: examples/observability.rs

/root/repo/target/debug/examples/observability-398c04968a81edee: examples/observability.rs

examples/observability.rs:
