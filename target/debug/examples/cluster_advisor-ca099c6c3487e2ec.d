/root/repo/target/debug/examples/cluster_advisor-ca099c6c3487e2ec.d: examples/cluster_advisor.rs

/root/repo/target/debug/examples/cluster_advisor-ca099c6c3487e2ec: examples/cluster_advisor.rs

examples/cluster_advisor.rs:
