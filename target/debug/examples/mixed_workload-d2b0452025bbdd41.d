/root/repo/target/debug/examples/mixed_workload-d2b0452025bbdd41.d: examples/mixed_workload.rs Cargo.toml

/root/repo/target/debug/examples/libmixed_workload-d2b0452025bbdd41.rmeta: examples/mixed_workload.rs Cargo.toml

examples/mixed_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
