/root/repo/target/debug/examples/engine_demo-18c6ae8325d4f44d.d: examples/engine_demo.rs Cargo.toml

/root/repo/target/debug/examples/libengine_demo-18c6ae8325d4f44d.rmeta: examples/engine_demo.rs Cargo.toml

examples/engine_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
