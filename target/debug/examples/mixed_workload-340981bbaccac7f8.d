/root/repo/target/debug/examples/mixed_workload-340981bbaccac7f8.d: examples/mixed_workload.rs

/root/repo/target/debug/examples/mixed_workload-340981bbaccac7f8: examples/mixed_workload.rs

examples/mixed_workload.rs:
