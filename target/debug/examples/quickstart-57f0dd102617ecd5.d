/root/repo/target/debug/examples/quickstart-57f0dd102617ecd5.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-57f0dd102617ecd5: examples/quickstart.rs

examples/quickstart.rs:
