/root/repo/target/debug/examples/mixed_workload-3e538c8a6fdd8818.d: examples/mixed_workload.rs

/root/repo/target/debug/examples/mixed_workload-3e538c8a6fdd8818: examples/mixed_workload.rs

examples/mixed_workload.rs:
