/root/repo/target/debug/examples/engine_demo-359c2057981da7a6.d: examples/engine_demo.rs

/root/repo/target/debug/examples/engine_demo-359c2057981da7a6: examples/engine_demo.rs

examples/engine_demo.rs:
