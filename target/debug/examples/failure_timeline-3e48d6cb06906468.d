/root/repo/target/debug/examples/failure_timeline-3e48d6cb06906468.d: examples/failure_timeline.rs

/root/repo/target/debug/examples/failure_timeline-3e48d6cb06906468: examples/failure_timeline.rs

examples/failure_timeline.rs:
