/root/repo/target/debug/examples/cluster_advisor-ab5f57bf13149ef2.d: examples/cluster_advisor.rs

/root/repo/target/debug/examples/cluster_advisor-ab5f57bf13149ef2: examples/cluster_advisor.rs

examples/cluster_advisor.rs:
