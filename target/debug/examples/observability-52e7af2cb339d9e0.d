/root/repo/target/debug/examples/observability-52e7af2cb339d9e0.d: examples/observability.rs Cargo.toml

/root/repo/target/debug/examples/libobservability-52e7af2cb339d9e0.rmeta: examples/observability.rs Cargo.toml

examples/observability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
