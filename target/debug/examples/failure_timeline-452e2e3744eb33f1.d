/root/repo/target/debug/examples/failure_timeline-452e2e3744eb33f1.d: examples/failure_timeline.rs Cargo.toml

/root/repo/target/debug/examples/libfailure_timeline-452e2e3744eb33f1.rmeta: examples/failure_timeline.rs Cargo.toml

examples/failure_timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
