//! Property-based tests of the TPC-H substrate: generator integrity and
//! cost-model scaling laws.

use proptest::prelude::*;

use ftpde_optimizer::physical::CostModel;
use ftpde_tpch::costing::baseline_runtime;
use ftpde_tpch::datagen::Database;
use ftpde_tpch::queries::{q5_join_graph, Query};
use ftpde_tpch::schema::Table;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated databases respect all FK constraints and cardinality
    /// ratios at any micro scale factor and seed.
    #[test]
    fn datagen_integrity(sf in 1e-4f64..5e-3, seed in any::<u64>()) {
        let db = Database::generate(sf, seed);
        prop_assert_eq!(db.nation.len(), 25);
        prop_assert_eq!(db.region.len(), 5);
        for o in &db.orders {
            prop_assert!((o.custkey as usize) < db.customer.len());
        }
        for l in &db.lineitem {
            prop_assert!((l.orderkey as usize) < db.orders.len());
            prop_assert!((l.suppkey as usize) < db.supplier.len());
            prop_assert!(l.discount <= 1000 && l.quantity >= 1);
        }
        // 1..=7 lineitems per order, ~4 on average.
        let ratio = db.lineitem.len() as f64 / db.orders.len() as f64;
        prop_assert!((1.0..=7.0).contains(&ratio));
    }

    /// Same seed, same database; different seed, different database.
    #[test]
    fn datagen_determinism(sf in 1e-4f64..2e-3, seed in any::<u64>()) {
        let a = Database::generate(sf, seed);
        let b = Database::generate(sf, seed);
        prop_assert_eq!(&a, &b);
        let c = Database::generate(sf, seed.wrapping_add(1));
        prop_assert!(a != c);
    }

    /// Baseline runtimes scale linearly in the scale factor for every
    /// evaluation query (costs are cardinality-linear).
    #[test]
    fn baselines_scale_linearly(sf in 1.0f64..200.0) {
        let cm = CostModel::xdb_calibrated();
        for q in Query::ALL {
            let b1 = baseline_runtime(&q.plan(sf, &cm));
            let b2 = baseline_runtime(&q.plan(2.0 * sf, &cm));
            let ratio = b2 / b1;
            prop_assert!((1.8..2.2).contains(&ratio), "{q}: ratio {ratio}");
        }
    }

    /// Q5 cardinality chain follows FK semantics at every scale factor:
    /// each added relation multiplies by the expected factor.
    #[test]
    fn q5_cardinality_chain(sf in 0.1f64..1000.0) {
        let g = q5_join_graph(sf);
        // {R,N} = 5; {R,N,C} = customers/5; {R,N,C,O} = orders/7/5;
        // full = lineitem/7/5/25.
        prop_assert!((g.subset_rows(0b000011) - 5.0).abs() < 1e-6);
        let c = Table::Customer.rows(sf) / 5.0;
        prop_assert!((g.subset_rows(0b000111) - c).abs() < c * 1e-9 + 1e-6);
        let o = Table::Orders.rows(sf) / 7.0 / 5.0;
        prop_assert!((g.subset_rows(0b001111) - o).abs() < o * 1e-9 + 1e-6);
        let full = Table::Lineitem.rows(sf) / 7.0 / 5.0 / 25.0;
        prop_assert!((g.subset_rows(0b111111) - full).abs() < full * 1e-6 + 1e-6);
    }

    /// Every query plan is structurally sound at any SF: valid costs, at
    /// least one sink, free operators only where the paper allows them.
    #[test]
    fn plans_are_well_formed(sf in 0.5f64..500.0) {
        let cm = CostModel::xdb_calibrated();
        for q in Query::ALL {
            let p = q.plan(sf, &cm);
            prop_assert!(!p.sinks().is_empty());
            for (id, op) in p.iter() {
                prop_assert!(op.run_cost.is_finite() && op.run_cost >= 0.0, "{q}/{}", op.name);
                prop_assert!(op.mat_cost.is_finite() && op.mat_cost >= 0.0, "{q}/{}", op.name);
                // Scans never materialize.
                if op.name.starts_with("scan") {
                    prop_assert!(!op.is_free());
                }
                // Sinks are bound (results are delivered, not checkpointed).
                if p.consumers(id).is_empty() {
                    prop_assert!(!op.is_free(), "{q}: sink {} must be bound", op.name);
                }
            }
        }
    }
}
