//! Cost-model calibration against the paper's reported anchors.
//!
//! The paper measures `tr(o)`/`tm(o)` on a 10-node XDB/MySQL cluster with
//! an external iSCSI target as fault-tolerant storage. We cannot reproduce
//! the hardware, so the [`CostModel`] throughput constants are calibrated
//! against two quantitative anchors the paper reports:
//!
//! 1. TPC-H **Q5 at SF = 100 runs ≈ 905 s** failure-free with no extra
//!    materializations (§5.3, "a query execution time of 905.33s").
//! 2. The **total materialization cost of Q5's five join operators is
//!    ≈ 34 % of the runtime** (§5.3: "the total materialization costs of
//!    all operators (1–5 in Figure 9) represent only 34.13 % of the total
//!    runtime costs").
//!
//! The calibration tests in this module pin both anchors; if the query
//! cardinality model changes, they fail and the constants in
//! [`CostModel::xdb_calibrated`] must be re-derived.

use ftpde_core::config::MatConfig;
use ftpde_core::dag::PlanDag;

pub use ftpde_optimizer::physical::CostModel;

/// Failure-free runtime of `plan` with no extra materializations: the
/// critical path over `tr(o)` (collapsed with `CONST_pipe = 1`). This is
/// the baseline of every overhead the paper reports.
pub fn baseline_runtime(plan: &PlanDag) -> f64 {
    use ftpde_core::collapse::CollapsedPlan;
    let pc = CollapsedPlan::collapse(plan, &MatConfig::none(plan), 1.0);
    let mut completion = vec![0.0f64; pc.len()];
    let mut makespan = 0.0f64;
    for id in pc.op_ids() {
        let start = pc.inputs(id).iter().map(|i| completion[i.index()]).fold(0.0f64, f64::max);
        completion[id.index()] = start + pc.op(id).total_cost();
        makespan = makespan.max(completion[id.index()]);
    }
    makespan
}

/// Total materialization cost of all *free* operators of `plan` — the
/// extra time the all-mat scheme pays on top of the baseline when all
/// free operators lie on the critical path (true for the left-deep
/// evaluation queries).
pub fn free_materialization_cost(plan: &PlanDag) -> f64 {
    plan.iter().filter(|(_, op)| op.is_free()).map(|(_, op)| op.mat_cost).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::{q5_plan, Query};

    #[test]
    fn anchor1_q5_sf100_baseline_is_about_905s() {
        let plan = q5_plan(100.0, &CostModel::xdb_calibrated());
        let baseline = baseline_runtime(&plan);
        assert!(
            (baseline - 905.33).abs() < 905.33 * 0.1,
            "Q5@SF100 baseline = {baseline:.1}s, paper reports 905.33s"
        );
    }

    #[test]
    fn anchor2_q5_materialization_share_is_about_34pct() {
        let plan = q5_plan(100.0, &CostModel::xdb_calibrated());
        let share = free_materialization_cost(&plan) / baseline_runtime(&plan);
        assert!(
            (share - 0.3413).abs() < 0.08,
            "Q5 all-mat materialization share = {:.1}%, paper reports 34.13%",
            share * 100.0
        );
    }

    #[test]
    fn q1c_materialization_share_is_high() {
        // §5.2: Q1C/Q2C have much higher materialization costs under
        // all-mat — "approx. 60 − 100% of the runtime costs".
        let plan = Query::Q1C.plan(100.0, &CostModel::xdb_calibrated());
        let share = free_materialization_cost(&plan) / baseline_runtime(&plan);
        assert!((0.5..=1.3).contains(&share), "Q1C materialization share = {:.1}%", share * 100.0);
    }

    #[test]
    fn baseline_runtimes_are_ordered_sensibly() {
        let cm = CostModel::xdb_calibrated();
        let sf = 100.0;
        let q1 = baseline_runtime(&Query::Q1.plan(sf, &cm));
        let q3 = baseline_runtime(&Query::Q3.plan(sf, &cm));
        let q5 = baseline_runtime(&Query::Q5.plan(sf, &cm));
        // All in the minutes range on 10 nodes at SF 100.
        for (name, t) in [("Q1", q1), ("Q3", q3), ("Q5", q5)] {
            assert!((60.0..7200.0).contains(&t), "{name} baseline = {t:.0}s");
        }
        // Q5 (6-way join) costs more than Q1 (scan + agg).
        assert!(q5 > q1);
    }

    #[test]
    fn baseline_scales_linearly_in_sf() {
        let cm = CostModel::xdb_calibrated();
        let b1 = baseline_runtime(&q5_plan(1.0, &cm));
        let b100 = baseline_runtime(&q5_plan(100.0, &cm));
        let ratio = b100 / b1;
        assert!((90.0..110.0).contains(&ratio), "ratio = {ratio}");
    }
}
