//! The paper's physical database layout (§5.1): NATION and REGION are
//! replicated to every node; LINEITEM and ORDERS are hash-co-partitioned
//! on `orderkey`; the remaining tables use RREF partitioning [XDB, IEEE
//! Big Data 2014], which partially replicates tuples so that joins along
//! the declared reference become node-local.
//!
//! The layout matters to the reproduction because it determines which
//! joins need repartitioning operators: with this layout **all** joins of
//! the evaluated queries are local, matching the plan shapes of Figure 9
//! (no exchange operators between the joins).

use serde::{Deserialize, Serialize};

use crate::schema::Table;

/// How a table is distributed across the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Partitioning {
    /// Hash-partitioned on a key column.
    Hash {
        /// The partitioning column.
        column: &'static str,
    },
    /// RREF-partitioned: co-located with (and partially replicated
    /// against) the referenced table on the given join column.
    RRef {
        /// The table whose partitioning this table follows.
        by: Table,
        /// The join column the reference follows.
        column: &'static str,
    },
    /// Fully replicated to every node.
    Replicated,
}

/// The layout used in the paper's evaluation.
pub fn paper_layout(table: Table) -> Partitioning {
    match table {
        Table::Lineitem => Partitioning::Hash { column: "l_orderkey" },
        Table::Orders => Partitioning::Hash { column: "o_orderkey" },
        Table::Customer => Partitioning::RRef { by: Table::Orders, column: "c_custkey" },
        Table::Partsupp => Partitioning::RRef { by: Table::Lineitem, column: "ps_suppkey_partkey" },
        Table::Supplier => Partitioning::RRef { by: Table::Partsupp, column: "s_suppkey" },
        Table::Part => Partitioning::RRef { by: Table::Partsupp, column: "p_partkey" },
        Table::Nation | Table::Region => Partitioning::Replicated,
    }
}

/// `true` iff a join between `left` and `right` is node-local under the
/// paper's layout (directly co-partitioned, reachable through a chain of
/// RREF references, or one side replicated).
pub fn join_is_local(left: Table, right: Table) -> bool {
    fn anchored(t: Table) -> bool {
        // Every non-replicated table's RREF chain ends at the
        // LINEITEM/ORDERS co-partitioning in the paper layout.
        !matches!(paper_layout(t), Partitioning::Replicated)
    }
    match (paper_layout(left), paper_layout(right)) {
        (Partitioning::Replicated, _) | (_, Partitioning::Replicated) => true,
        _ => anchored(left) && anchored(right),
    }
}

/// Replication factor a table pays for its layout: replicated tables are
/// stored once per node; RREF tables pay a partial-replication overhead
/// (tuples referenced from several partitions are duplicated); hash tables
/// are stored exactly once.
pub fn storage_factor(table: Table, nodes: usize) -> f64 {
    match paper_layout(table) {
        Partitioning::Replicated => nodes as f64,
        // Partial replication overhead; a calibration constant consistent
        // with the RREF paper's reported low redundancy.
        Partitioning::RRef { .. } => 1.3,
        Partitioning::Hash { .. } => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_matches_section_5_1() {
        assert_eq!(paper_layout(Table::Lineitem), Partitioning::Hash { column: "l_orderkey" });
        assert_eq!(paper_layout(Table::Orders), Partitioning::Hash { column: "o_orderkey" });
        assert!(matches!(
            paper_layout(Table::Customer),
            Partitioning::RRef { by: Table::Orders, .. }
        ));
        assert!(matches!(
            paper_layout(Table::Supplier),
            Partitioning::RRef { by: Table::Partsupp, .. }
        ));
        assert_eq!(paper_layout(Table::Nation), Partitioning::Replicated);
        assert_eq!(paper_layout(Table::Region), Partitioning::Replicated);
    }

    #[test]
    fn all_q5_joins_are_local() {
        // Figure 9's join chain: R-N, N-C, C-O, O-L, L-S.
        for (l, r) in [
            (Table::Region, Table::Nation),
            (Table::Nation, Table::Customer),
            (Table::Customer, Table::Orders),
            (Table::Orders, Table::Lineitem),
            (Table::Lineitem, Table::Supplier),
        ] {
            assert!(join_is_local(l, r), "{l} ⋈ {r} must be local");
        }
    }

    #[test]
    fn storage_factors() {
        assert_eq!(storage_factor(Table::Nation, 10), 10.0);
        assert_eq!(storage_factor(Table::Lineitem, 10), 1.0);
        assert!(storage_factor(Table::Customer, 10) > 1.0);
        assert!(storage_factor(Table::Customer, 10) < 2.0);
    }
}
