//! # ftpde-tpch — the TPC-H workload substrate
//!
//! Everything the reproduction needs from the paper's workload (§5.1–5.2):
//! the TPC-H schema with per-scale-factor cardinalities, the paper's
//! partitioning layout (hash co-partitioning + RREF + replication), the
//! five evaluation queries (Q1, Q3, Q5, Q1C, Q2C) as cost-annotated plan
//! builders, a calibrated cost model, and a deterministic row generator
//! for the in-process execution engine.
//!
//! ```
//! use ftpde_tpch::prelude::*;
//!
//! let cm = CostModel::xdb_calibrated();
//! let plan = Query::Q5.plan(100.0, &cm);
//! assert_eq!(plan.free_count(), 5); // Figure 9's free operators 1–5
//! let secs = baseline_runtime(&plan);
//! assert!((800.0..1000.0).contains(&secs)); // the paper's ≈ 905 s anchor
//! ```

pub mod costing;
pub mod datagen;
pub mod partitioning;
pub mod queries;
pub mod rows;
pub mod schema;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::costing::{baseline_runtime, free_materialization_cost, CostModel};
    pub use crate::datagen::Database;
    pub use crate::partitioning::{join_is_local, paper_layout, storage_factor, Partitioning};
    pub use crate::queries::{
        left_deep_chain, q1_plan, q1c_plan, q2c_plan, q3_join_graph, q3_plan, q5_agg_spec,
        q5_join_graph, q5_join_graph_with, q5_plan, q5_plan_low_selectivity, Query,
    };
    pub use crate::rows::{
        Customer, Lineitem, Nation, Order, Part, Partsupp, Region, Supplier, DATE_RANGE_DAYS,
    };
    pub use crate::schema::{ratios, Table};
}
