//! Deterministic TPC-H-like data generation for the execution engine.
//!
//! Generates the simplified rows of [`crate::rows`] at (fractional) scale
//! factors, preserving the schema's FK structure: every order references
//! an existing customer, every lineitem an existing order/supplier/part,
//! every customer/supplier a nation, every nation a region. Given the same
//! seed and scale factor the output is bit-identical, so engine
//! experiments are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rows::{
    Customer, Lineitem, Nation, Order, Part, Partsupp, Region, Supplier, DATE_RANGE_DAYS,
};

/// A fully generated database at some scale factor.
#[derive(Debug, Clone, PartialEq)]
pub struct Database {
    /// LINEITEM rows.
    pub lineitem: Vec<Lineitem>,
    /// ORDERS rows.
    pub orders: Vec<Order>,
    /// CUSTOMER rows.
    pub customer: Vec<Customer>,
    /// PART rows.
    pub part: Vec<Part>,
    /// PARTSUPP rows (4 suppliers per part).
    pub partsupp: Vec<Partsupp>,
    /// SUPPLIER rows.
    pub supplier: Vec<Supplier>,
    /// NATION rows (always 25).
    pub nation: Vec<Nation>,
    /// REGION rows (always 5).
    pub region: Vec<Region>,
}

impl Database {
    /// Generates a database at scale factor `sf` (fractions allowed — the
    /// engine runs at micro scales like 0.001) from `seed`.
    ///
    /// # Panics
    /// Panics if `sf` would produce zero customers or suppliers.
    pub fn generate(sf: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);

        let n_customer = ((150_000.0 * sf).round() as usize).max(1);
        let n_orders = ((1_500_000.0 * sf).round() as usize).max(1);
        let n_supplier = ((10_000.0 * sf).round() as usize).max(1);
        let n_part = ((200_000.0 * sf).round() as usize).max(1);

        let region = (0..5).map(|k| Region { regionkey: k }).collect();
        let nation = (0..25).map(|k| Nation { nationkey: k, regionkey: k % 5 }).collect::<Vec<_>>();

        let customer = (0..n_customer)
            .map(|k| Customer {
                custkey: k as i64,
                nationkey: rng.gen_range(0..25),
                mktsegment: rng.gen_range(0..5),
            })
            .collect::<Vec<_>>();

        let supplier = (0..n_supplier)
            .map(|k| Supplier { suppkey: k as i64, nationkey: rng.gen_range(0..25) })
            .collect::<Vec<_>>();

        let part = (0..n_part)
            .map(|k| Part {
                partkey: k as i64,
                size: rng.gen_range(1..=50),
                typ: rng.gen_range(0..25),
            })
            .collect::<Vec<_>>();

        // 4 distinct-ish suppliers per part, as in TPC-H.
        let mut partsupp = Vec::with_capacity(n_part * 4);
        for p in &part {
            for _ in 0..4 {
                partsupp.push(Partsupp {
                    partkey: p.partkey,
                    suppkey: rng.gen_range(0..n_supplier as i64),
                    supplycost: rng.gen_range(100..100_000),
                });
            }
        }

        let orders = (0..n_orders)
            .map(|k| Order {
                orderkey: k as i64,
                custkey: rng.gen_range(0..n_customer as i64),
                orderdate: rng.gen_range(0..DATE_RANGE_DAYS),
            })
            .collect::<Vec<_>>();

        // ~4 lineitems per order, 1..=7 as in TPC-H.
        let mut lineitem = Vec::with_capacity(n_orders * 4);
        for o in &orders {
            let lines = rng.gen_range(1..=7);
            for _ in 0..lines {
                lineitem.push(Lineitem {
                    orderkey: o.orderkey,
                    suppkey: rng.gen_range(0..n_supplier as i64),
                    partkey: rng.gen_range(0..n_part as i64),
                    extendedprice: rng.gen_range(100..10_000_000),
                    discount: rng.gen_range(0..=1000),
                    quantity: rng.gen_range(1..=50),
                    returnflag: rng.gen_range(0..3),
                    // Shipping happens 1–120 days after ordering.
                    shipdate: (o.orderdate + rng.gen_range(1..=120)).min(DATE_RANGE_DAYS - 1),
                });
            }
        }

        Database { lineitem, orders, customer, part, partsupp, supplier, nation, region }
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.lineitem.len()
            + self.orders.len()
            + self.customer.len()
            + self.part.len()
            + self.partsupp.len()
            + self.supplier.len()
            + self.nation.len()
            + self.region.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Database::generate(0.001, 7);
        let b = Database::generate(0.001, 7);
        assert_eq!(a, b);
        let c = Database::generate(0.001, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn cardinalities_scale() {
        let db = Database::generate(0.01, 1);
        assert_eq!(db.customer.len(), 1500);
        assert_eq!(db.orders.len(), 15_000);
        assert_eq!(db.supplier.len(), 100);
        assert_eq!(db.part.len(), 2000);
        assert_eq!(db.partsupp.len(), 8000);
        assert_eq!(db.nation.len(), 25);
        assert_eq!(db.region.len(), 5);
        // ~4 lineitems per order.
        let ratio = db.lineitem.len() as f64 / db.orders.len() as f64;
        assert!((3.5..4.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn foreign_keys_are_valid() {
        let db = Database::generate(0.002, 3);
        for o in &db.orders {
            assert!((o.custkey as usize) < db.customer.len());
        }
        for l in &db.lineitem {
            assert!((l.orderkey as usize) < db.orders.len());
            assert!((l.suppkey as usize) < db.supplier.len());
            assert!((0..DATE_RANGE_DAYS).contains(&l.shipdate));
        }
        for c in &db.customer {
            assert!((0..25).contains(&c.nationkey));
        }
        for ps in &db.partsupp {
            assert!((ps.partkey as usize) < db.part.len());
            assert!((ps.suppkey as usize) < db.supplier.len());
        }
        for n in &db.nation {
            assert!((0..5).contains(&n.regionkey));
        }
    }

    #[test]
    fn shipdate_follows_orderdate() {
        let db = Database::generate(0.001, 5);
        for l in &db.lineitem {
            let o = &db.orders[l.orderkey as usize];
            assert!(l.shipdate > o.orderdate || l.shipdate == DATE_RANGE_DAYS - 1);
        }
    }

    #[test]
    fn tiny_sf_still_generates_something() {
        let db = Database::generate(1e-6, 1);
        assert!(!db.customer.is_empty());
        assert!(!db.orders.is_empty());
        assert!(!db.lineitem.is_empty());
        assert!(db.total_rows() >= 32);
    }
}
