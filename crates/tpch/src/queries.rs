//! The paper's evaluation queries (§5.2): TPC-H Q1, Q3 and Q5 plus the two
//! complex variants Q1C and Q2C, as cost-annotated execution plans.
//!
//! * **Q1** — scan + aggregation, no join; it has *no free operator*
//!   (scans and the sink aggregation are bound), so every fine-grained
//!   scheme behaves identically on it.
//! * **Q3** — 3-way join `C ⋈ O ⋈ L` with an aggregation sink; the two
//!   joins are free.
//! * **Q5** — the 6-way join of Figure 9: the left-deep chain
//!   `σ(R) ⋈ N ⋈ C ⋈ σ(O) ⋈ L ⋈ S` with Γ on top; the five joins
//!   (operators 1–5 in the figure) are free.
//! * **Q1C** — a nested variant of Q1: the inner aggregate (tiny output,
//!   cheap to materialize) sits *in the middle of the plan* and joins back
//!   against LINEITEM. The middle aggregation is exactly the checkpoint
//!   the cost-based scheme exploits.
//! * **Q2C** — a DAG-structured plan: Q2's inner aggregation query (4-way
//!   join) is a common table expression consumed by two outer 5-way join
//!   queries with different PART predicates.
//!
//! Cardinalities come from the TPC-H schema and the usual independence /
//! FK-uniformity assumptions; `tr`/`tm` are derived through
//! [`CostModel`], as in the paper (§2.1).

use serde::{Deserialize, Serialize};

use ftpde_core::dag::PlanDag;
use ftpde_optimizer::enumerate::JoinTree;
use ftpde_optimizer::logical::JoinGraph;
use ftpde_optimizer::physical::{tree_to_plan, AggSpec, CostModel};

use crate::schema::{ratios, Table};

/// The five evaluation queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Query {
    /// TPC-H Q1 (no join).
    Q1,
    /// TPC-H Q3 (3-way join).
    Q3,
    /// TPC-H Q5 (6-way join, Figure 9).
    Q5,
    /// Nested Q1 variant with a mid-plan aggregation.
    Q1C,
    /// DAG-structured Q2 variant with a shared CTE.
    Q2C,
}

impl Query {
    /// All five queries in the order of the paper's Figure 8.
    pub const ALL: [Query; 5] = [Query::Q1, Query::Q3, Query::Q5, Query::Q1C, Query::Q2C];

    /// The query's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Query::Q1 => "Q1",
            Query::Q3 => "Q3",
            Query::Q5 => "Q5",
            Query::Q1C => "Q1C",
            Query::Q2C => "Q2C",
        }
    }

    /// Builds the query's execution plan at scale factor `sf` costed for
    /// `cm`'s cluster.
    pub fn plan(&self, sf: f64, cm: &CostModel) -> PlanDag {
        match self {
            Query::Q1 => q1_plan(sf, cm),
            Query::Q3 => q3_plan(sf, cm),
            Query::Q5 => q5_plan(sf, cm),
            Query::Q1C => q1c_plan(sf, cm),
            Query::Q2C => q2c_plan(sf, cm),
        }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// --- Q1 -------------------------------------------------------------------

/// Q1: `σ(L)` → `Γ`. Both operators are bound, so the plan has no free
/// operator (paper §5.2: "Q1 ... has no free operator that can be selected
/// for materialization").
pub fn q1_plan(sf: f64, cm: &CostModel) -> PlanDag {
    let l_rows = Table::Lineitem.rows(sf);
    let filtered = l_rows * 0.98; // l_shipdate <= '1998-09-02'
    let mut b = PlanDag::builder();
    let scan = b
        .bound_pipelined("scan σ(LINEITEM)", cm.scan_cost(l_rows), cm.mat_cost(filtered, 48.0), &[])
        .expect("valid scan");
    b.bound_pipelined("Γ", cm.agg_cost(filtered), cm.mat_cost(4.0, 80.0), &[scan])
        .expect("valid agg");
    b.build().expect("non-empty plan")
}

// --- Q3 -------------------------------------------------------------------

/// The join graph of Q3: the chain `σ(C) — σ(O) — σ(L)`.
pub fn q3_join_graph(sf: f64) -> JoinGraph {
    let mut g = JoinGraph::new();
    let c = g.add_relation("σ(C)", Table::Customer.rows(sf), 0.2, 30.0);
    let o = g.add_relation("σ(O)", Table::Orders.rows(sf), 0.49, 24.0);
    let l = g.add_relation("σ(L)", Table::Lineitem.rows(sf), 0.54, 32.0);
    // FK selectivities: 1 / (PK-side base cardinality).
    g.add_edge(c, o, 1.0 / Table::Customer.rows(sf));
    g.add_edge(o, l, 1.0 / Table::Orders.rows(sf));
    g
}

/// Q3: `(σ(C) ⋈ σ(O)) ⋈ σ(L)` → `Γ` (group by order). The two joins are
/// free.
pub fn q3_plan(sf: f64, cm: &CostModel) -> PlanDag {
    let g = q3_join_graph(sf);
    let tree = left_deep_chain(3);
    let out_orders = g.subset_rows(0b011); // qualifying (customer, order) pairs
    tree_to_plan(
        &g,
        &tree,
        cm,
        Some(AggSpec { out_rows: out_orders, row_bytes: 44.0, free: false }),
    )
}

// --- Q5 -------------------------------------------------------------------

/// The join graph of Q5 as the paper enumerates it: the 6-relation chain
/// `σ(R) — N — C — σ(O) — L — S` (its 1344 connected bushy orders match
/// the paper's §5.5 count exactly).
///
/// The `c_nationkey = s_nationkey` predicate is folded into the `L — S`
/// edge selectivity (`1/|S| · 1/25`), the standard transitive-predicate
/// approximation.
pub fn q5_join_graph(sf: f64) -> JoinGraph {
    q5_join_graph_with(sf, ratios::ONE_YEAR_ORDERS)
}

/// [`q5_join_graph`] with an explicit `o_orderdate` selectivity. The
/// paper's §5.3/§5.4 experiments run Q5 "using a low selectivity" (most
/// orders qualify) to stretch the runtime; pass a larger fraction for
/// that variant.
///
/// # Panics
/// Panics unless `order_selectivity ∈ (0, 1]`.
pub fn q5_join_graph_with(sf: f64, order_selectivity: f64) -> JoinGraph {
    assert!(order_selectivity > 0.0 && order_selectivity <= 1.0);
    let mut g = JoinGraph::new();
    let r = g.add_relation("σ(R)", Table::Region.rows(sf), ratios::ONE_REGION, 24.0);
    let n = g.add_relation("N", Table::Nation.rows(sf), 1.0, 30.0);
    let c = g.add_relation("C", Table::Customer.rows(sf), 1.0, 24.0);
    let o = g.add_relation("σ(O)", Table::Orders.rows(sf), order_selectivity, 24.0);
    let l = g.add_relation("L", Table::Lineitem.rows(sf), 1.0, 40.0);
    let s = g.add_relation("S", Table::Supplier.rows(sf), 1.0, 24.0);
    g.add_edge(r, n, 1.0 / Table::Region.rows(sf)); // 5 nations per region
    g.add_edge(n, c, 1.0 / Table::Nation.rows(sf));
    g.add_edge(c, o, 1.0 / Table::Customer.rows(sf));
    g.add_edge(o, l, 1.0 / Table::Orders.rows(sf));
    g.add_edge(l, s, 1.0 / (Table::Supplier.rows(sf) * ratios::NATIONS));
    g
}

/// The aggregation on top of Q5 (`group by n_name` — 5 regions' nations).
pub fn q5_agg_spec() -> AggSpec {
    AggSpec { out_rows: 5.0, row_bytes: 40.0, free: false }
}

/// Q5 exactly as in Figure 9: the left-deep chain with Γ on top; free
/// operators are the five joins.
pub fn q5_plan(sf: f64, cm: &CostModel) -> PlanDag {
    let g = q5_join_graph(sf);
    let tree = left_deep_chain(6);
    tree_to_plan(&g, &tree, cm, Some(q5_agg_spec()))
}

/// The "low selectivity" Q5 variant of the paper's §5.3/§5.4: every
/// order's year qualifies, roughly 7× more data flows through the join
/// chain than in [`q5_plan`].
pub fn q5_plan_low_selectivity(sf: f64, cm: &CostModel) -> PlanDag {
    let g = q5_join_graph_with(sf, 1.0);
    let tree = left_deep_chain(6);
    tree_to_plan(&g, &tree, cm, Some(q5_agg_spec()))
}

// --- Q1C ------------------------------------------------------------------

/// Q1C: `σ(L) → Γ_avg → ⋈ (probe: scan L) → Γ_count`. The mid-plan
/// aggregation and the join are free; scans and the sink are bound.
pub fn q1c_plan(sf: f64, cm: &CostModel) -> PlanDag {
    let l_rows = Table::Lineitem.rows(sf);
    let mut b = PlanDag::builder();
    let scan1 = b
        .bound_pipelined(
            "scan σ(LINEITEM)",
            cm.scan_cost(l_rows),
            cm.mat_cost(l_rows * 0.98, 48.0),
            &[],
        )
        .expect("valid scan");
    // Inner Q1: average price per (returnflag, linestatus) — 4 groups
    // (materializing it costs next to nothing — the checkpoint the
    // cost-based scheme exploits).
    let avg = b
        .free("Γ avg", cm.agg_cost(l_rows * 0.98), cm.mat_cost(4.0, 32.0), &[scan1])
        .expect("valid agg");
    let scan2 = b
        .bound_pipelined("scan LINEITEM", cm.scan_cost(l_rows), cm.mat_cost(l_rows, 48.0), &[])
        .expect("valid scan");
    // Items of the given status priced above their flag's average: the
    // comparison streams all of LINEITEM against the 4-row build side;
    // ~3 % qualify.
    let join_out = l_rows * 0.03;
    let join = b
        .free("⋈ price > avg", cm.agg_cost(l_rows), cm.mat_cost(join_out, 48.0), &[avg, scan2])
        .expect("valid join");
    b.bound_pipelined("Γ count", cm.agg_cost(join_out), cm.mat_cost(1.0, 16.0), &[join])
        .expect("valid agg");
    b.build().expect("non-empty plan")
}

// --- Q2C ------------------------------------------------------------------

/// Q2C: Q2's inner aggregation query as a CTE consumed by two outer 5-way
/// join queries with different PART predicates — a genuinely DAG-structured
/// plan (two sinks, shared scans, shared CTE).
pub fn q2c_plan(sf: f64, cm: &CostModel) -> PlanDag {
    let ps_rows = Table::Partsupp.rows(sf);
    let s_rows = Table::Supplier.rows(sf);
    let p_rows = Table::Part.rows(sf);
    let mut b = PlanDag::builder();

    // Shared scans (all consumed by both the CTE and the outer queries).
    let scan_r = b
        .bound_pipelined("scan σ(REGION)", cm.scan_cost(5.0), cm.mat_cost(1.0, 24.0), &[])
        .expect("valid scan");
    let scan_n = b
        .bound_pipelined("scan NATION", cm.scan_cost(25.0), cm.mat_cost(25.0, 30.0), &[])
        .expect("valid scan");
    let scan_s = b
        .bound_pipelined("scan SUPPLIER", cm.scan_cost(s_rows), cm.mat_cost(s_rows, 30.0), &[])
        .expect("valid scan");
    let scan_ps = b
        .bound_pipelined("scan PARTSUPP", cm.scan_cost(ps_rows), cm.mat_cost(ps_rows, 36.0), &[])
        .expect("valid scan");

    // Inner query: σ(R) ⋈ N ⋈ S ⋈ PS → Γ min(ps_supplycost) per part.
    let i1 = b
        .free("⋈ R,N", cm.join_cost(1.0, 5.0), cm.mat_cost(5.0, 30.0), &[scan_r, scan_n])
        .expect("valid join");
    let i2_out = s_rows / ratios::REGIONS; // suppliers in the region
    let i2 = b
        .free("⋈ R,N,S", cm.join_cost(5.0, i2_out), cm.mat_cost(i2_out, 36.0), &[i1, scan_s])
        .expect("valid join");
    let i3_out = ps_rows / ratios::REGIONS; // their partsupp entries
    let i3 = b
        .free("⋈ R,N,S,PS", cm.join_cost(i2_out, i3_out), cm.mat_cost(i3_out, 44.0), &[i2, scan_ps])
        .expect("valid join");
    // Parts with at least one supplier in the region: 1 − (4/5)^4 ≈ 0.59.
    let cte_out = p_rows * 0.59;
    let cte = b
        .free("Γ min cost (CTE)", cm.agg_cost(i3_out), cm.mat_cost(cte_out, 16.0), &[i3])
        .expect("valid agg");

    // Two outer queries with different PART filters.
    for (k, p_sel) in [(1u8, 0.02), (2u8, 0.01)] {
        let pk_out = p_rows * p_sel;
        let scan_p = b
            .bound_pipelined(
                format!("scan σ{k}(PART)"),
                cm.scan_cost(p_rows),
                cm.mat_cost(pk_out, 40.0),
                &[],
            )
            .expect("valid scan");
        let o1_out = pk_out * 4.0; // 4 partsupp entries per part
        let o1 = b
            .free(
                format!("⋈{k} P,PS"),
                cm.join_cost(pk_out, o1_out),
                cm.mat_cost(o1_out, 56.0),
                &[scan_p, scan_ps],
            )
            .expect("valid join");
        let o2 = b
            .free(
                format!("⋈{k} P,PS,S"),
                cm.join_cost(o1_out, o1_out),
                cm.mat_cost(o1_out, 64.0),
                &[o1, scan_s],
            )
            .expect("valid join");
        let o3 = b
            .free(
                format!("⋈{k} P,PS,S,N"),
                cm.join_cost(o1_out, o1_out),
                cm.mat_cost(o1_out, 70.0),
                &[o2, scan_n],
            )
            .expect("valid join");
        let o4_out = o1_out / ratios::REGIONS;
        let o4 = b
            .free(
                format!("⋈{k} P,PS,S,N,R"),
                cm.join_cost(o1_out, o4_out),
                cm.mat_cost(o4_out, 70.0),
                &[o3, scan_r],
            )
            .expect("valid join");
        // Keep only the minimum-cost supplier per part: one in ~4 entries.
        let o5_out = o4_out * 0.25;
        let o5 = b
            .free(
                format!("⋈{k} min-cost"),
                cm.join_cost(o4_out, o5_out),
                cm.mat_cost(o5_out, 80.0),
                &[o4, cte],
            )
            .expect("valid join");
        b.bound_pipelined(
            format!("sort/top{k}"),
            cm.agg_cost(o5_out),
            cm.mat_cost(100.0, 80.0),
            &[o5],
        )
        .expect("valid sink");
    }
    b.build().expect("non-empty plan")
}

// --- helpers ----------------------------------------------------------------

/// The left-deep chain tree `((((r0 ⋈ r1) ⋈ r2) … ) ⋈ r(n−1))` — the plan
/// shape of Figure 9 when applied to [`q5_join_graph`].
pub fn left_deep_chain(n: usize) -> JoinTree {
    use ftpde_optimizer::logical::RelId;
    use std::rc::Rc;
    assert!(n >= 1);
    let mut tree = JoinTree::Leaf { rel: RelId(0) };
    for i in 1..n {
        tree = JoinTree::Join {
            left: Rc::new(tree),
            right: Rc::new(JoinTree::Leaf { rel: RelId(i as u8) }),
        };
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpde_optimizer::enumerate::count_join_orders;

    fn cm() -> CostModel {
        CostModel::xdb_calibrated()
    }

    #[test]
    fn q1_has_no_free_operator() {
        let p = q1_plan(100.0, &cm());
        assert_eq!(p.free_count(), 0);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn q3_has_two_free_joins() {
        let p = q3_plan(100.0, &cm());
        assert_eq!(p.free_count(), 2);
        assert_eq!(p.sinks().len(), 1);
    }

    #[test]
    fn q5_matches_figure9_shape() {
        let p = q5_plan(100.0, &cm());
        // 6 scans + 5 joins + Γ.
        assert_eq!(p.len(), 12);
        assert_eq!(p.free_count(), 5, "free operators 1–5 of Figure 9");
        assert_eq!(p.sources().len(), 6);
        assert_eq!(p.sinks().len(), 1);
    }

    #[test]
    fn q5_join_graph_has_1344_orders() {
        // Paper §5.5: "we enumerate all 1344 equivalent join orders of
        // TPC-H query 5".
        assert_eq!(count_join_orders(&q5_join_graph(10.0)), 1344);
    }

    #[test]
    fn q5_cardinalities_follow_fk_semantics() {
        let sf = 100.0;
        let g = q5_join_graph(sf);
        // {R,N} = 5 nations in the region.
        assert!((g.subset_rows(0b000011) - 5.0).abs() < 1e-6);
        // {R,N,C} = customers in the region = 150k·sf / 5.
        assert!((g.subset_rows(0b000111) - 30_000.0 * sf).abs() < 1.0);
        // Full join ≈ 6857·sf.
        let full = g.subset_rows(0b111111);
        assert!((full / sf - 6857.0).abs() < 20.0, "full Q5 join: {}", full / sf);
    }

    #[test]
    fn q1c_has_mid_plan_aggregation() {
        let p = q1c_plan(100.0, &cm());
        assert_eq!(p.free_count(), 2); // Γ avg + join
        let avg = p.find_by_name("Γ avg").unwrap();
        assert!(!p.consumers(avg).is_empty(), "the aggregation is mid-plan, not a sink");
        // Its materialization is orders of magnitude cheaper than the
        // join's — the checkpoint the cost-based scheme exploits.
        let join = p.find_by_name("⋈ price > avg").unwrap();
        assert!(p.op(avg).mat_cost * 1000.0 < p.op(join).mat_cost);
    }

    #[test]
    fn q2c_is_a_dag_with_two_sinks_and_shared_cte() {
        let p = q2c_plan(100.0, &cm());
        assert_eq!(p.sinks().len(), 2);
        let cte = p.find_by_name("Γ min cost (CTE)").unwrap();
        assert_eq!(p.consumers(cte).len(), 2, "CTE feeds both outer queries");
        let ps = p.find_by_name("scan PARTSUPP").unwrap();
        assert_eq!(p.consumers(ps).len(), 3, "PARTSUPP scan is shared");
        assert_eq!(p.free_count(), 14);
    }

    #[test]
    fn plans_scale_linearly_with_sf() {
        for q in Query::ALL {
            let p1 = q.plan(1.0, &cm());
            let p10 = q.plan(10.0, &cm());
            let (r1, r10) = (p1.total_run_cost(), p10.total_run_cost());
            assert!(r10 > 5.0 * r1 && r10 < 11.0 * r1, "{q}: {r1} → {r10} not ≈ linear");
        }
    }

    #[test]
    fn low_selectivity_variant_is_slower_with_same_shape() {
        use ftpde_optimizer::enumerate::count_join_orders;
        let sf = 100.0;
        let default = q5_plan(sf, &cm());
        let low_sel = q5_plan_low_selectivity(sf, &cm());
        assert_eq!(low_sel.len(), default.len());
        assert_eq!(low_sel.free_count(), default.free_count());
        assert!(
            low_sel.total_run_cost() > 3.0 * default.total_run_cost(),
            "all orders qualify → much more join work"
        );
        // Order count is unchanged: both graphs are the same 6-chain.
        assert_eq!(count_join_orders(&q5_join_graph_with(sf, 1.0)), 1344);
    }

    #[test]
    fn query_names_and_display() {
        assert_eq!(Query::Q1C.name(), "Q1C");
        assert_eq!(Query::Q5.to_string(), "Q5");
        assert_eq!(Query::ALL.len(), 5);
    }

    #[test]
    fn left_deep_chain_shape() {
        let t = left_deep_chain(6);
        assert_eq!(t.join_count(), 5);
        let g = q5_join_graph(1.0);
        assert_eq!(t.render(&g), "(((((σ(R) ⋈ N) ⋈ C) ⋈ σ(O)) ⋈ L) ⋈ S)");
    }
}
