//! The TPC-H benchmark schema: tables, base cardinalities per scale
//! factor, and approximate row widths (paper §5.1 runs all experiments on
//! TPC-H data).

use serde::{Deserialize, Serialize};

/// The eight TPC-H tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Table {
    /// LINEITEM — the fact table, ~6 M rows per scale factor.
    Lineitem,
    /// ORDERS — ~1.5 M rows per scale factor.
    Orders,
    /// CUSTOMER — ~150 k rows per scale factor.
    Customer,
    /// PART — ~200 k rows per scale factor.
    Part,
    /// PARTSUPP — ~800 k rows per scale factor.
    Partsupp,
    /// SUPPLIER — ~10 k rows per scale factor.
    Supplier,
    /// NATION — fixed 25 rows.
    Nation,
    /// REGION — fixed 5 rows.
    Region,
}

impl Table {
    /// All tables.
    pub const ALL: [Table; 8] = [
        Table::Lineitem,
        Table::Orders,
        Table::Customer,
        Table::Part,
        Table::Partsupp,
        Table::Supplier,
        Table::Nation,
        Table::Region,
    ];

    /// The table's name as used in the TPC-H specification.
    pub fn name(&self) -> &'static str {
        match self {
            Table::Lineitem => "LINEITEM",
            Table::Orders => "ORDERS",
            Table::Customer => "CUSTOMER",
            Table::Part => "PART",
            Table::Partsupp => "PARTSUPP",
            Table::Supplier => "SUPPLIER",
            Table::Nation => "NATION",
            Table::Region => "REGION",
        }
    }

    /// Number of rows at the given scale factor. NATION and REGION are
    /// fixed-size; all other tables scale linearly (TPC-H §4.2.5; the
    /// nominal 6,001,215 LINEITEM rows at SF = 1 are approximated by the
    /// 6 M used for cardinality estimation).
    pub fn rows(&self, sf: f64) -> f64 {
        match self {
            Table::Lineitem => 6_000_000.0 * sf,
            Table::Orders => 1_500_000.0 * sf,
            Table::Customer => 150_000.0 * sf,
            Table::Part => 200_000.0 * sf,
            Table::Partsupp => 800_000.0 * sf,
            Table::Supplier => 10_000.0 * sf,
            Table::Nation => 25.0,
            Table::Region => 5.0,
        }
    }

    /// Approximate average row width in bytes (from the TPC-H table
    /// layouts; used to convert cardinalities into I/O volumes).
    pub fn row_bytes(&self) -> f64 {
        match self {
            Table::Lineitem => 112.0,
            Table::Orders => 104.0,
            Table::Customer => 160.0,
            Table::Part => 128.0,
            Table::Partsupp => 136.0,
            Table::Supplier => 144.0,
            Table::Nation | Table::Region => 80.0,
        }
    }

    /// Table volume in bytes at the given scale factor.
    pub fn bytes(&self, sf: f64) -> f64 {
        self.rows(sf) * self.row_bytes()
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Frequently used TPC-H ratios.
pub mod ratios {
    /// Average LINEITEM rows per ORDERS row.
    pub const LINEITEMS_PER_ORDER: f64 = 4.0;
    /// Number of distinct nations.
    pub const NATIONS: f64 = 25.0;
    /// Number of distinct regions.
    pub const REGIONS: f64 = 5.0;
    /// Nations per region.
    pub const NATIONS_PER_REGION: f64 = 5.0;
    /// Selectivity of a one-region predicate (`r_name = '...'`).
    pub const ONE_REGION: f64 = 1.0 / REGIONS;
    /// Selectivity of a one-year `o_orderdate` range (7 years of orders).
    pub const ONE_YEAR_ORDERS: f64 = 1.0 / 7.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinalities_scale_linearly_except_fixed_tables() {
        assert_eq!(Table::Lineitem.rows(1.0), 6e6);
        assert_eq!(Table::Lineitem.rows(100.0), 6e8);
        assert_eq!(Table::Orders.rows(10.0), 1.5e7);
        assert_eq!(Table::Nation.rows(1000.0), 25.0);
        assert_eq!(Table::Region.rows(1000.0), 5.0);
    }

    #[test]
    fn lineitem_to_orders_ratio() {
        let sf = 37.0;
        assert_eq!(Table::Lineitem.rows(sf) / Table::Orders.rows(sf), ratios::LINEITEMS_PER_ORDER);
    }

    #[test]
    fn bytes_combine_rows_and_width() {
        assert_eq!(Table::Region.bytes(1.0), 5.0 * 80.0);
        assert_eq!(Table::Lineitem.bytes(1.0), 6e6 * 112.0);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Table::Lineitem.name(), "LINEITEM");
        assert_eq!(Table::Partsupp.to_string(), "PARTSUPP");
        let names: std::collections::HashSet<_> = Table::ALL.iter().map(Table::name).collect();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn ratios_are_consistent() {
        assert_eq!(ratios::NATIONS, ratios::REGIONS * ratios::NATIONS_PER_REGION);
    }
}
