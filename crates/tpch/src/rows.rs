//! Simplified TPC-H row types for the execution engine.
//!
//! Only the columns the evaluation queries touch are generated; dates are
//! day numbers, string enumerations are small integers. This keeps the
//! generator deterministic and the engine value model simple while
//! preserving every join/filter relationship the queries exercise.

use serde::{Deserialize, Serialize};

/// A LINEITEM row (fact table).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lineitem {
    /// FK to [`Order::orderkey`].
    pub orderkey: i64,
    /// FK to [`Supplier::suppkey`].
    pub suppkey: i64,
    /// FK to PART (`p_partkey`).
    pub partkey: i64,
    /// Extended price in cents.
    pub extendedprice: i64,
    /// Discount in basis points (0–1000).
    pub discount: i64,
    /// Quantity (1–50).
    pub quantity: i64,
    /// Return flag as a small enum (0 = 'A', 1 = 'N', 2 = 'R').
    pub returnflag: i64,
    /// Ship date as a day number in `[0, 2557)` (7 years).
    pub shipdate: i64,
}

/// An ORDERS row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Order {
    /// Primary key.
    pub orderkey: i64,
    /// FK to [`Customer::custkey`].
    pub custkey: i64,
    /// Order date as a day number in `[0, 2557)`.
    pub orderdate: i64,
}

/// A CUSTOMER row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Customer {
    /// Primary key.
    pub custkey: i64,
    /// FK to [`Nation::nationkey`].
    pub nationkey: i64,
    /// Market segment as a small enum (0–4).
    pub mktsegment: i64,
}

/// A SUPPLIER row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Supplier {
    /// Primary key.
    pub suppkey: i64,
    /// FK to [`Nation::nationkey`].
    pub nationkey: i64,
}

/// A PART row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Part {
    /// Primary key.
    pub partkey: i64,
    /// Size (1–50), used by Q2's filters.
    pub size: i64,
    /// Type as a small enum (0–24).
    pub typ: i64,
}

/// A PARTSUPP row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Partsupp {
    /// FK to [`Part::partkey`].
    pub partkey: i64,
    /// FK to [`Supplier::suppkey`].
    pub suppkey: i64,
    /// Supply cost in cents.
    pub supplycost: i64,
}

/// A NATION row (25 fixed rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Nation {
    /// Primary key, 0–24.
    pub nationkey: i64,
    /// FK to [`Region::regionkey`].
    pub regionkey: i64,
}

/// A REGION row (5 fixed rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Primary key, 0–4.
    pub regionkey: i64,
}

/// The number of days covered by order/ship dates (7 years).
pub const DATE_RANGE_DAYS: i64 = 7 * 365 + 2;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_range_is_seven_years() {
        assert_eq!(DATE_RANGE_DAYS, 2557);
    }

    #[test]
    fn rows_are_copy_and_comparable() {
        let a = Region { regionkey: 1 };
        let b = a;
        assert_eq!(a, b);
    }
}
