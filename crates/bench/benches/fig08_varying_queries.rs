//! Regenerates Figure 8 (both panels). Run with `cargo bench --bench fig08_varying_queries`.
fn main() {
    let data = ftpde_bench::fig08::run();
    ftpde_bench::fig08::print(&data);
}
