//! Regenerates the paper's fig10 data. Run with `cargo bench --bench fig10_varying_runtime`.
fn main() {
    let data = ftpde_bench::fig10::run();
    ftpde_bench::fig10::print(&data);
}
