//! Regenerates the paper's tab03 data. Run with `cargo bench --bench tab03_robustness`.
fn main() {
    let data = ftpde_bench::tab03::run();
    ftpde_bench::tab03::print(&data);
}
