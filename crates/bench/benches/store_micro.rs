//! Checkpoint-store put/get throughput, Mem vs Disk, across row widths.
//! Run with `cargo bench --bench store_micro`.
fn main() {
    ftpde_bench::store_micro::print();
}
