//! Regenerates the paper's tab02 data. Run with `cargo bench --bench tab02_worked_example`.
fn main() {
    let data = ftpde_bench::tab02::run();
    ftpde_bench::tab02::print(&data);
}
