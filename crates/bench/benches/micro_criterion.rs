//! Criterion micro-benchmarks of the optimizer-facing hot paths: join
//! enumeration, plan collapsing + cost estimation, and the full
//! `findBestFTPlan` search with and without pruning — quantifying the
//! planning-time payoff of the paper's §4 rules.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use ftpde_cluster::config::{mtbf, ClusterConfig};
use ftpde_core::config::MatConfig;
use ftpde_core::cost::estimate_ft_plan;
use ftpde_core::prune::PruneOptions;
use ftpde_core::search::find_best_ft_plan;
use ftpde_optimizer::enumerate::{all_plans, count_join_orders, k_best_plans};
use ftpde_sim::scheme::Scheme;
use ftpde_tpch::costing::CostModel;
use ftpde_tpch::queries::{q5_join_graph, q5_plan};

fn bench_join_enumeration(c: &mut Criterion) {
    let graph = q5_join_graph(10.0);
    c.bench_function("optimizer/count_join_orders_q5", |b| b.iter(|| count_join_orders(&graph)));
    c.bench_function("optimizer/k_best_plans_q5_k10", |b| b.iter(|| k_best_plans(&graph, 10)));
    c.bench_function("optimizer/all_plans_q5_1344", |b| b.iter(|| all_plans(&graph)));
}

fn bench_cost_model(c: &mut Criterion) {
    let plan = q5_plan(100.0, &CostModel::xdb_calibrated());
    let cluster = ClusterConfig::paper_cluster(mtbf::HOUR);
    let params = Scheme::cost_params(&cluster);
    let config = MatConfig::from_free_bits(&plan, 0b01010);
    c.bench_function("core/estimate_ft_plan_q5", |b| {
        b.iter(|| estimate_ft_plan(&plan, &config, &params));
    });
    c.bench_function("core/enumerate_32_configs_q5", |b| {
        b.iter(|| {
            MatConfig::enumerate(&plan)
                .map(|cfg| estimate_ft_plan(&plan, &cfg, &params).dominant_cost)
                .fold(f64::INFINITY, f64::min)
        });
    });
}

fn bench_search_pruning(c: &mut Criterion) {
    let graph = q5_join_graph(10.0);
    let cm = CostModel::xdb_calibrated();
    let trees = k_best_plans(&graph, 50);
    let plans: Vec<_> = trees
        .iter()
        .map(|t| {
            ftpde_optimizer::physical::tree_to_plan(
                &graph,
                t,
                &cm,
                Some(ftpde_tpch::queries::q5_agg_spec()),
            )
        })
        .collect();
    let cluster = ClusterConfig::paper_cluster(mtbf::HOUR);
    let params = Scheme::cost_params(&cluster);
    let mut g = c.benchmark_group("search/top50_q5_plans");
    g.bench_function("no_pruning", |b| {
        b.iter_batched(
            || plans.clone(),
            |p| find_best_ft_plan(&p, &params, &PruneOptions::none()).unwrap().1,
            BatchSize::SmallInput,
        );
    });
    g.bench_function("all_rules", |b| {
        b.iter_batched(
            || plans.clone(),
            |p| find_best_ft_plan(&p, &params, &PruneOptions::default()).unwrap().1,
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_join_enumeration, bench_cost_model, bench_search_pruning);
criterion_main!(benches);
