//! Regenerates Figure 11. Run with `cargo bench --bench fig11_varying_mtbf`.
fn main() {
    let (baseline, rows) = ftpde_bench::fig11::run();
    ftpde_bench::fig11::print(baseline, &rows);
}
