//! Regenerates Figure 12 (panels a and b). Run with `cargo bench --bench fig12_accuracy`.
fn main() {
    let a = ftpde_bench::fig12::run_panel_a();
    let b = ftpde_bench::fig12::run_panel_b();
    ftpde_bench::fig12::print(&a, &b);
}
