//! Regenerates the paper's fig13 data. Run with `cargo bench --bench fig13_pruning`.
fn main() {
    let data = ftpde_bench::fig13::run();
    ftpde_bench::fig13::print(&data);
}
