//! Regenerates the paper's fig01 data. Run with `cargo bench --bench fig01_success_probability`.
fn main() {
    let data = ftpde_bench::fig01::run();
    ftpde_bench::fig01::print(&data);
}
