//! Regenerates the paper's illustrative figures (2, 3, 4, 9) from the
//! implementation. Run with `cargo bench --bench diagrams`.
fn main() {
    ftpde_bench::diagrams::print_all();
}
