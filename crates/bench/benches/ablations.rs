//! Ablations of design choices (wasted-time model, Eq. 9 memo, top-k,
//! mid-operator checkpointing, skew). Run with `cargo bench --bench ablations`.
fn main() {
    ftpde_bench::ablation::print_all();
}
