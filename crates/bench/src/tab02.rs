//! **Table 2 / Figure 3** — the paper's worked cost-estimation example:
//! the Figure 2 plan under the materialization configuration of Figure 3
//! (operators 3, 5, 6, 7 materialize), costed with `MTBF_cost = 60`,
//! `MTTR_cost = 0`, `S = 0.95`.
//!
//! The paper computes `a({1,2,3}) = 0.0648` from the *rounded* `η = 0.06`
//! and reports `TPt1 = 8.13`, `TPt2 = 9.13`; exact arithmetic yields
//! 8.19 / 9.19. Both are printed.

use ftpde_core::collapse::CId;
use ftpde_core::config::MatConfig;
use ftpde_core::cost::{estimate_ft_plan, path_cost, CostParams, FtEstimate};
use ftpde_core::dag::figure2_plan;
use ftpde_core::operator::OpId;

use crate::report;

/// The worked example's data.
#[derive(Debug, Clone)]
pub struct WorkedExample {
    /// Per collapsed operator: (label, t, w, γ, a, T).
    pub rows: Vec<(String, f64, f64, f64, f64, f64)>,
    /// `T_Pt1` (path through {6}).
    pub tpt1: f64,
    /// `T_Pt2` (path through {7} — the dominant path).
    pub tpt2: f64,
    /// The full estimate.
    pub estimate: FtEstimate,
}

/// Reproduces Table 2.
pub fn run() -> WorkedExample {
    let plan = figure2_plan();
    let config =
        MatConfig::from_materialized_free_ops(&plan, &[OpId(2), OpId(4), OpId(5), OpId(6)])
            .expect("figure 3 config is valid");
    let params = CostParams::new(60.0, 0.0);
    let estimate = estimate_ft_plan(&plan, &config, &params);
    let rows = estimate
        .collapsed
        .iter()
        .map(|(_, c)| {
            let t = c.total_cost();
            let label = format!(
                "{{{}}}",
                c.members.iter().map(|o| (o.0 + 1).to_string()).collect::<Vec<_>>().join(",")
            );
            (
                label,
                t,
                params.wasted_runtime(t),
                params.success_probability(t),
                params.attempts(t),
                params.op_cost(t),
            )
        })
        .collect();
    let tpt1 = path_cost(&estimate.collapsed, &[CId(0), CId(1), CId(2)], &params);
    let tpt2 = path_cost(&estimate.collapsed, &[CId(0), CId(1), CId(3)], &params);
    WorkedExample { rows, tpt1, tpt2, estimate }
}

/// Prints the table in the paper's layout.
pub fn print(ex: &WorkedExample) {
    report::banner("Table 2: Example - Cost Estimation (MTBF_cost=60, MTTR=0, S=0.95)");
    let rows: Vec<Vec<String>> = ex
        .rows
        .iter()
        .map(|(label, t, w, g, a, tc)| {
            vec![
                label.clone(),
                format!("{t:.2}"),
                format!("{w:.2}"),
                format!("{g:.2}"),
                format!("{a:.4}"),
                format!("{tc:.2}"),
            ]
        })
        .collect();
    report::table(&["c", "t(c)", "w(c)", "γ(c)", "a(c)", "T(c)"], &rows);
    println!("TPt1 = {:.2} (paper, with rounded η: 8.13)", ex.tpt1);
    println!("TPt2 = {:.2} (paper, with rounded η: 9.13) <- dominant path", ex.tpt2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table2_within_rounding() {
        let ex = run();
        let t: Vec<f64> = ex.rows.iter().map(|r| r.1).collect();
        assert_eq!(t, vec![4.0, 3.0, 1.0, 2.0]);
        let w: Vec<f64> = ex.rows.iter().map(|r| r.2).collect();
        assert_eq!(w, vec![2.0, 1.5, 0.5, 1.0]);
        // γ row: 0.94, 0.95, 0.98, 0.96 (paper's rounding).
        let g: Vec<f64> = ex.rows.iter().map(|r| r.3).collect();
        for (got, want) in g.iter().zip([0.94, 0.95, 0.98, 0.96]) {
            assert!((got - want).abs() < 0.01, "γ {got} vs {want}");
        }
        // Only the first collapsed operator needs extra attempts.
        let a: Vec<f64> = ex.rows.iter().map(|r| r.4).collect();
        assert!(a[0] > 0.0 && a[1] == 0.0 && a[2] == 0.0 && a[3] == 0.0);
        assert!((ex.tpt1 - 8.13).abs() < 0.06);
        assert!((ex.tpt2 - 9.13).abs() < 0.06);
    }

    #[test]
    fn dominant_path_is_pt2() {
        let ex = run();
        assert!(ex.tpt2 > ex.tpt1);
        assert_eq!(ex.estimate.dominant_path, vec![CId(0), CId(1), CId(3)]);
        assert!((ex.estimate.dominant_cost - ex.tpt2).abs() < 1e-12);
    }
}
