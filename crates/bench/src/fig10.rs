//! **Figure 10** — overhead of the four schemes when the *same* query
//! (TPC-H Q5) runs at scale factors 1…1000, i.e. with baseline runtimes
//! from seconds to hours, under a fixed per-node MTBF of 1 day.

use ftpde_cluster::config::{mtbf, ClusterConfig};
use ftpde_sim::scheme::Scheme;
use ftpde_tpch::costing::{baseline_runtime, CostModel};
use ftpde_tpch::queries::q5_plan;

use crate::common::{scheme_overheads, TRACES};
use crate::report;

/// The scale factors swept. The paper sweeps runtimes of ~10…1000 minutes;
/// our calibrated Q5 needs larger scale factors to reach the same runtimes
/// (the two top entries push the restart scheme past its abort limit, the
/// cliff the paper describes).
pub const SCALE_FACTORS: [f64; 9] = [1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0, 10_000.0];

/// One point of the sweep.
#[derive(Debug, Clone)]
pub struct Point {
    /// Scale factor.
    pub sf: f64,
    /// Baseline runtime in minutes (the figure's x axis).
    pub runtime_min: f64,
    /// Overheads per scheme in [`Scheme::ALL`] order.
    pub overheads: Vec<Option<f64>>,
}

/// Runs the sweep.
pub fn run() -> Vec<Point> {
    let cm = CostModel::xdb_calibrated();
    let cluster = ClusterConfig::paper_cluster(mtbf::DAY);
    SCALE_FACTORS
        .iter()
        .enumerate()
        .map(|(i, &sf)| {
            let plan = q5_plan(sf, &cm);
            let runtime_min = baseline_runtime(&plan) / 60.0;
            let overheads = scheme_overheads(&plan, &cluster, TRACES, 1000 + i as u64)
                .into_iter()
                .map(|(_, oh)| oh)
                .collect();
            Point { sf, runtime_min, overheads }
        })
        .collect()
}

/// Prints the sweep.
pub fn print(points: &[Point]) {
    report::banner("Figure 10: Varying Runtime (Q5, MTBF=1 day/node, overhead in %)");
    let mut headers = vec!["SF", "runtime (min)"];
    headers.extend(Scheme::ALL.iter().map(Scheme::name));
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let mut row = vec![format!("{:.0}", p.sf), format!("{:.1}", p.runtime_min)];
            row.extend(p.overheads.iter().map(|o| report::overhead_cell(*o)));
            row
        })
        .collect();
    report::table(&headers, &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(sf: f64, seed: u64) -> Point {
        let cm = CostModel::xdb_calibrated();
        let cluster = ClusterConfig::paper_cluster(mtbf::DAY);
        let plan = q5_plan(sf, &cm);
        let runtime_min = baseline_runtime(&plan) / 60.0;
        let overheads =
            scheme_overheads(&plan, &cluster, 5, seed).into_iter().map(|(_, o)| o).collect();
        Point { sf, runtime_min, overheads }
    }

    #[test]
    fn short_queries_have_near_zero_no_mat_overhead() {
        let p = point(1.0, 5);
        let [all_mat, lineage, restart, cost_based] = p.overheads[..] else { panic!() };
        // A ~10 s query at MTBF = 1 day/node rarely sees a failure.
        assert!(lineage.unwrap() < 10.0);
        assert!(restart.unwrap() < 10.0);
        assert!(cost_based.unwrap() < 10.0);
        // all-mat pays its fixed materialization tax even here (~34%).
        assert!(all_mat.unwrap() > 15.0);
    }

    #[test]
    fn long_queries_punish_no_mat_schemes() {
        let p = point(1000.0, 6);
        let [all_mat, lineage, _restart, cost_based] = p.overheads[..] else { panic!() };
        let cb = cost_based.unwrap();
        // Lineage must recompute whole sub-plans; cost-based checkpoints
        // (or matches lineage when checkpoints cannot pay off). The paper's
        // claim is "least or comparable overhead" — allow sim noise on
        // marginal checkpoint decisions.
        let lin = lineage.unwrap();
        assert!(cb <= lin * 1.05 + 2.0, "lineage {lin:.1}% vs cost-based {cb:.1}%");
        // Cost-based stays at or below all-mat.
        assert!(cb <= all_mat.unwrap() + 5.0);
    }

    #[test]
    fn restart_scheme_degrades_with_runtime() {
        let short = point(1.0, 7).overheads[2];
        let long = point(300.0, 7).overheads[2];
        match (short, long) {
            (Some(s), Some(l)) => assert!(l > s, "restart overhead grows: {s} -> {l}"),
            (Some(_), None) => {} // aborted at the long end — also correct
            other => panic!("unexpected: {other:?}"),
        }
    }
}
