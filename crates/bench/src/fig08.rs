//! **Figure 8** — overhead of the four fault-tolerance schemes for the
//! five evaluation queries (Q1, Q3, Q5, Q1C, Q2C) at SF = 100 under
//! (a) a low per-node MTBF (1.1× the query's baseline runtime) and
//! (b) a high per-node MTBF (10× the baseline runtime).

use ftpde_cluster::config::ClusterConfig;
use ftpde_sim::scheme::Scheme;
use ftpde_tpch::costing::{baseline_runtime, CostModel};
use ftpde_tpch::queries::Query;

use crate::common::{scheme_overheads, TRACES};
use crate::report;

/// Scale factor of the experiment (paper: SF = 100).
pub const SF: f64 = 100.0;

/// One query's measurements under one MTBF setting.
#[derive(Debug, Clone)]
pub struct QueryRow {
    /// The query.
    pub query: Query,
    /// Its failure-free baseline runtime, seconds.
    pub baseline: f64,
    /// Overhead per scheme in [`Scheme::ALL`] order (`None` = aborted).
    pub overheads: Vec<Option<f64>>,
}

/// The figure's two panels.
#[derive(Debug, Clone)]
pub struct Figure8 {
    /// Panel (a): MTBF per node = 1.1 × baseline.
    pub low_mtbf: Vec<QueryRow>,
    /// Panel (b): MTBF per node = 10 × baseline.
    pub high_mtbf: Vec<QueryRow>,
}

fn panel(mtbf_factor: f64, seed: u64) -> Vec<QueryRow> {
    let cm = CostModel::xdb_calibrated();
    Query::ALL
        .iter()
        .map(|&query| {
            let plan = query.plan(SF, &cm);
            let baseline = baseline_runtime(&plan);
            let cluster = ClusterConfig::paper_cluster(mtbf_factor * baseline);
            let overheads = scheme_overheads(&plan, &cluster, TRACES, seed)
                .into_iter()
                .map(|(_, oh)| oh)
                .collect();
            QueryRow { query, baseline, overheads }
        })
        .collect()
}

/// Runs both panels.
pub fn run() -> Figure8 {
    Figure8 { low_mtbf: panel(1.1, 801), high_mtbf: panel(10.0, 802) }
}

/// Prints the figure as two tables.
pub fn print(fig: &Figure8) {
    for (label, rows) in [
        ("(a) Low MTBF (1.1x runtime)", &fig.low_mtbf),
        ("(b) High MTBF (10x runtime)", &fig.high_mtbf),
    ] {
        report::banner(&format!("Figure 8{label}: Varying Queries, SF=100, overhead in %"));
        let mut headers = vec!["query", "baseline"];
        headers.extend(Scheme::ALL.iter().map(Scheme::name));
        let table_rows: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let mut row = vec![r.query.name().to_string(), report::secs(r.baseline)];
                row.extend(r.overheads.iter().map(|o| report::overhead_cell(*o)));
                row
            })
            .collect();
        report::table(&headers, &table_rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheaper single-query version of the shape checks (the full
    /// five-query figure runs in the bench harness).
    fn mini_panel(query: Query, mtbf_factor: f64) -> QueryRow {
        let cm = CostModel::xdb_calibrated();
        let plan = query.plan(SF, &cm);
        let baseline = baseline_runtime(&plan);
        let cluster = ClusterConfig::paper_cluster(mtbf_factor * baseline);
        let overheads =
            scheme_overheads(&plan, &cluster, 5, 99).into_iter().map(|(_, oh)| oh).collect();
        QueryRow { query, baseline, overheads }
    }

    #[test]
    fn low_mtbf_restart_aborts_and_cost_based_wins() {
        let row = mini_panel(Query::Q5, 1.1);
        let [all_mat, lineage, restart, cost_based] = row.overheads[..] else { panic!() };
        assert_eq!(restart, None, "no-mat (restart) aborts at low MTBF (paper: Aborted)");
        let cb = cost_based.expect("cost-based always finishes");
        // Cost-based is at least as good (within noise) as the best other
        // finishing scheme.
        for other in [all_mat, lineage].into_iter().flatten() {
            assert!(cb <= other * 1.25 + 10.0, "cost-based {cb:.0}% vs other {other:.0}%");
        }
    }

    #[test]
    fn high_mtbf_all_mat_pays_materialization_tax_on_q1c() {
        let row = mini_panel(Query::Q1C, 10.0);
        let [all_mat, lineage, _restart, cost_based] = row.overheads[..] else { panic!() };
        let (am, cb) = (all_mat.unwrap(), cost_based.unwrap());
        // Paper Figure 8b: Q1C all-mat 85% vs cost-based 23% — the
        // mid-plan aggregation checkpoint avoids the big materializations.
        assert!(am > cb + 10.0, "all-mat {am:.0}% must exceed cost-based {cb:.0}%");
        let lin = lineage.unwrap();
        assert!(cb <= lin + 5.0, "cost-based {cb:.0}% beats/matches lineage {lin:.0}%");
    }

    #[test]
    fn q1_schemes_are_indistinguishable_except_restart() {
        // Q1 has no free operator: all-mat == lineage == cost-based.
        let row = mini_panel(Query::Q1, 1.1);
        let [all_mat, lineage, _restart, cost_based] = row.overheads[..] else { panic!() };
        let (a, l, c) = (all_mat.unwrap(), lineage.unwrap(), cost_based.unwrap());
        assert!((a - l).abs() < 1e-9 && (l - c).abs() < 1e-9, "{a} {l} {c}");
    }
}
