//! **Figure 13** — effectiveness of the pruning rules: all 1344 join
//! orders of TPC-H Q5 × 32 materialization configurations = 43 008
//! fault-tolerant plans are searched with each pruning rule enabled in
//! isolation and all together, for cluster MTBFs of one week, one day and
//! one hour (see [`SF`] for why this harness runs at SF = 100 rather than
//! the paper's SF = 10).
//!
//! Counting follows the paper's convention: rules 1/2 prune the
//! configurations they eliminate outright; rule 3 stops path enumeration
//! mid-way, so each early-stopped fault-tolerant plan counts as **half**
//! pruned (§5.5).

use ftpde_cluster::config::{mtbf, ClusterConfig};
use ftpde_core::dag::PlanDag;
use ftpde_core::prune::PruneOptions;
use ftpde_core::search::find_best_ft_plan;
use ftpde_optimizer::enumerate::all_plans;
use ftpde_optimizer::physical::tree_to_plan;
use ftpde_sim::scheme::Scheme;
use ftpde_tpch::costing::CostModel;
use ftpde_tpch::queries::{q5_agg_spec, q5_join_graph};

use crate::report;

/// The cluster MTBFs of the figure.
pub const MTBFS: [(&str, f64); 3] = [
    ("Cluster A (10 nodes, MTBF=1 week)", mtbf::WEEK),
    ("Cluster B (10 nodes, MTBF=1 day)", mtbf::DAY),
    ("Cluster C (10 nodes, MTBF=1 hour)", mtbf::HOUR),
];

/// Scale factor of the experiment. The paper uses SF = 10; with our
/// calibrated cost profile the SF-10 operators are so short that rules 2
/// and 3 saturate identically on every cluster, so the harness runs at
/// SF = 100 where the MTBF-dependence the paper reports is visible (see
/// EXPERIMENTS.md).
pub const SF: f64 = 100.0;

/// Pruning percentages for one cluster setup.
#[derive(Debug, Clone)]
pub struct PruningRow {
    /// Cluster label.
    pub label: &'static str,
    /// % pruned with only rule 1, 2, 3 and with all rules.
    pub rule1: f64,
    /// See `rule1`.
    pub rule2: f64,
    /// See `rule1`.
    pub rule3: f64,
    /// See `rule1`.
    pub all: f64,
    /// Total fault-tolerant plans without pruning (paper: 43 008).
    pub total: u64,
}

/// Builds every join order of Q5 as a costed plan.
pub fn all_q5_plans(sf: f64) -> Vec<PlanDag> {
    let graph = q5_join_graph(sf);
    let cm = CostModel::xdb_calibrated();
    all_plans(&graph)
        .iter()
        .map(|tree| tree_to_plan(&graph, tree, &cm, Some(q5_agg_spec())))
        .collect()
}

/// Pruned percentage for one option set over `plans`.
fn pruned_pct(plans: &[PlanDag], cluster: &ClusterConfig, opts: &PruneOptions) -> (f64, u64) {
    let params = Scheme::cost_params(cluster);
    let (_, stats) = find_best_ft_plan(plans, &params, opts).expect("valid search");
    let pruned = stats.configs_skipped() as f64 + 0.5 * stats.rule3_stops() as f64;
    (pruned / stats.configs_unpruned as f64 * 100.0, stats.configs_unpruned)
}

/// Runs the experiment over the given plans (pass [`all_q5_plans`] for the
/// full figure; tests use a subset).
pub fn run_over(plans: &[PlanDag]) -> Vec<PruningRow> {
    MTBFS
        .iter()
        .map(|&(label, m)| {
            let cluster = ClusterConfig::paper_cluster(m);
            let (rule1, total) = pruned_pct(plans, &cluster, &PruneOptions::only(1));
            let (rule2, _) = pruned_pct(plans, &cluster, &PruneOptions::only(2));
            let (rule3, _) = pruned_pct(plans, &cluster, &PruneOptions::only(3));
            let (all, _) = pruned_pct(plans, &cluster, &PruneOptions::default());
            PruningRow { label, rule1, rule2, rule3, all, total }
        })
        .collect()
}

/// Runs the full experiment (all 1344 join orders).
pub fn run() -> Vec<PruningRow> {
    run_over(&all_q5_plans(SF))
}

/// Prints the figure.
pub fn print(rows: &[PruningRow]) {
    report::banner(&format!(
        "Figure 13: Effectiveness of Pruning ({} fault-tolerant plans)",
        rows.first().map_or(0, |r| r.total)
    ));
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                format!("{:.1}%", r.rule1),
                format!("{:.1}%", r.rule2),
                format!("{:.1}%", r.rule3),
                format!("{:.1}%", r.all),
            ]
        })
        .collect();
    report::table(&["cluster", "Rule 1", "Rule 2", "Rule 3", "All Rules"], &table_rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_space_is_43008_plans() {
        let plans = all_q5_plans(SF);
        assert_eq!(plans.len(), 1344);
        for p in &plans {
            assert_eq!(p.free_count(), 5, "every join order has 5 free joins");
        }
        // 1344 × 2^5 = 43 008 (paper §5.5).
        assert_eq!(plans.len() * 32, 43_008);
    }

    #[test]
    fn pruning_shape_on_a_subsample() {
        // 96 join orders keep the test fast; percentages are stable
        // because rule 1/2 effectiveness is per-plan.
        let plans = &all_q5_plans(SF)[..96];
        let rows = run_over(plans);
        for r in &rows {
            // Rule 1 prunes a substantial, MTBF-independent share
            // (paper: constant ≈ 25%).
            assert!(r.rule1 > 10.0, "{}: rule1 {:.1}%", r.label, r.rule1);
            // All rules together prune at least as much as any single rule.
            for single in [r.rule1, r.rule2, r.rule3] {
                assert!(r.all >= single - 1e-9, "{}: all {:.1} vs {:.1}", r.label, r.all, single);
            }
            assert!(r.all < 100.0);
        }
        // Rule 1 is MTBF-independent (same marking in every cluster).
        assert!((rows[0].rule1 - rows[2].rule1).abs() < 1e-9);
        // Rules 2 and 3 prune more for higher MTBFs (paper §5.5).
        assert!(rows[0].rule2 >= rows[2].rule2 - 1e-9, "rule2: {rows:?}");
        assert!(rows[0].rule3 >= rows[2].rule3 - 1e-9, "rule3: {rows:?}");
    }
}
