//! Ablations of the design choices the paper discusses but does not
//! evaluate in a dedicated figure:
//!
//! 1. **Wasted-time model** — the exact Eq. 3 expectation vs the paper's
//!    `t/2` approximation (Eq. 4): how much do estimates and the chosen
//!    configuration differ?
//! 2. **Rule-3 memoization (Eq. 9)** — how much search work does the
//!    aggressive dominant-path memo save on top of plain rule 3?
//! 3. **Top-k join orders** — the paper's §3.2 argues the fault-tolerance
//!    search should look at the top-k plans of phase 1, not only the
//!    cheapest: how often does a k > 1 plan win, and by how much?
//! 4. **Mid-operator checkpointing** (§7 future work) — simulated benefit
//!    of intra-operator checkpoints for long-running operators.
//! 5. **Skew** (§7 future work) — accuracy degradation of the cost model
//!    when per-node durations are skewed.

use ftpde_cluster::config::{mtbf, ClusterConfig};
use ftpde_cluster::trace::TraceSet;
use ftpde_core::cost::{estimate_ft_plan, WastedTimeModel};
use ftpde_core::prune::PruneOptions;
use ftpde_core::search::find_best_ft_plan;
use ftpde_optimizer::enumerate::k_best_plans;
use ftpde_optimizer::physical::tree_to_plan;
use ftpde_sim::metrics::suggested_horizon;
use ftpde_sim::scheme::{Recovery, Scheme};
use ftpde_sim::simulate::{simulate, SimOptions};
use ftpde_tpch::costing::CostModel;
use ftpde_tpch::queries::{q5_agg_spec, q5_join_graph, q5_plan};

use crate::report;

/// Ablation 1: exact vs approximate wasted-time model.
pub struct WastedRow {
    /// MTBF label.
    pub label: &'static str,
    /// Estimated runtime with `w(c) = t/2`.
    pub approx_estimate: f64,
    /// Estimated runtime with the exact Eq. 3.
    pub exact_estimate: f64,
    /// Whether both models choose the same materialization configuration.
    pub same_config: bool,
}

/// Runs ablation 1 on Q5 @ SF = 100.
pub fn wasted_time_model() -> Vec<WastedRow> {
    let plan = q5_plan(100.0, &CostModel::xdb_calibrated());
    [
        ("1 week", mtbf::WEEK),
        ("1 day", mtbf::DAY),
        ("1 hour", mtbf::HOUR),
        ("30 min", mtbf::HALF_HOUR),
    ]
    .into_iter()
    .map(|(label, m)| {
        let cluster = ClusterConfig::paper_cluster(m);
        let base = Scheme::cost_params(&cluster);
        let exact = base.with_wasted_model(WastedTimeModel::Exact);
        let (best_a, _) =
            find_best_ft_plan(std::slice::from_ref(&plan), &base, &PruneOptions::none())
                .expect("valid");
        let (best_e, _) =
            find_best_ft_plan(std::slice::from_ref(&plan), &exact, &PruneOptions::none())
                .expect("valid");
        WastedRow {
            label,
            approx_estimate: best_a.estimate.dominant_cost,
            exact_estimate: best_e.estimate.dominant_cost,
            same_config: best_a.config == best_e.config,
        }
    })
    .collect()
}

/// Ablation 2: search work with rule 3 alone vs rule 3 + Eq. 9 memo.
pub struct MemoRow {
    /// MTBF label.
    pub label: &'static str,
    /// Paths whose cost function was evaluated without the memo.
    pub costed_plain: u64,
    /// Paths whose cost function was evaluated with the memo.
    pub costed_memo: u64,
}

/// Runs ablation 2 over the top-200 Q5 join orders.
pub fn rule3_memo() -> Vec<MemoRow> {
    let graph = q5_join_graph(100.0);
    let cm = CostModel::xdb_calibrated();
    let plans: Vec<_> = k_best_plans(&graph, 200)
        .iter()
        .map(|t| tree_to_plan(&graph, t, &cm, Some(q5_agg_spec())))
        .collect();
    [("1 week", mtbf::WEEK), ("1 hour", mtbf::HOUR)]
        .into_iter()
        .map(|(label, m)| {
            let params = Scheme::cost_params(&ClusterConfig::paper_cluster(m));
            let plain = PruneOptions { rule1: false, rule2: false, rule3: true, rule3_memo: false };
            let memo = PruneOptions { rule3_memo: true, ..plain };
            let (_, s1) = find_best_ft_plan(&plans, &params, &plain).expect("valid");
            let (_, s2) = find_best_ft_plan(&plans, &params, &memo).expect("valid");
            MemoRow { label, costed_plain: s1.paths_costed, costed_memo: s2.paths_costed }
        })
        .collect()
}

/// Ablation 3: does searching the top-k join orders (k > 1) ever beat the
/// single cheapest failure-free order once failures are priced in?
pub struct TopKRow {
    /// k.
    pub k: usize,
    /// Best dominant-path estimate over the top-k orders.
    pub best_estimate: f64,
    /// Index (0-based) of the winning join order within the top-k list.
    pub winner_index: usize,
}

/// Runs ablation 3 on Q5 @ SF = 100, MTBF = 1 hour.
pub fn top_k_sensitivity() -> Vec<TopKRow> {
    let graph = q5_join_graph(100.0);
    let cm = CostModel::xdb_calibrated();
    let params = Scheme::cost_params(&ClusterConfig::paper_cluster(mtbf::HOUR));
    [1usize, 5, 10, 50]
        .into_iter()
        .map(|k| {
            let plans: Vec<_> = k_best_plans(&graph, k)
                .iter()
                .map(|t| tree_to_plan(&graph, t, &cm, Some(q5_agg_spec())))
                .collect();
            let (best, _) =
                find_best_ft_plan(&plans, &params, &PruneOptions::default()).expect("valid");
            TopKRow { k, best_estimate: best.estimate.dominant_cost, winner_index: best.plan_index }
        })
        .collect()
}

/// Ablation 4: mid-operator checkpointing (§7) for a long-running query.
pub struct MidOpRow {
    /// Checkpoint interval label.
    pub label: String,
    /// Mean simulated completion, seconds.
    pub completion: f64,
}

/// Simulates Q5 @ SF = 1000 (≈ 2.5 h) on a 1-hour-MTBF cluster with the
/// lineage configuration (nothing materialized — where intra-operator
/// checkpoints matter most), at various checkpoint intervals.
pub fn mid_operator_checkpointing() -> Vec<MidOpRow> {
    let plan = q5_plan(1000.0, &CostModel::xdb_calibrated());
    let cluster = ClusterConfig::paper_cluster(mtbf::HOUR);
    let config = ftpde_core::config::MatConfig::none(&plan);
    let mut out = Vec::new();
    for (label, opts) in [
        ("no mid-op checkpoints".to_string(), SimOptions::default()),
        // 60 s of work per checkpoint, 3 s to write one.
        (
            "every 60 s (3 s each)".to_string(),
            SimOptions::default().with_mid_op_checkpoints(60.0, 3.0),
        ),
        (
            "every 300 s (3 s each)".to_string(),
            SimOptions::default().with_mid_op_checkpoints(300.0, 3.0),
        ),
        (
            "every 900 s (3 s each)".to_string(),
            SimOptions::default().with_mid_op_checkpoints(900.0, 3.0),
        ),
    ] {
        let horizon = suggested_horizon(&plan, &cluster, &opts);
        let traces = TraceSet::generate(&cluster, horizon, 10, 31);
        let mean = traces
            .iter()
            .map(|t| simulate(&plan, &config, Recovery::FineGrained, &cluster, t, &opts).completion)
            .sum::<f64>()
            / traces.len() as f64;
        out.push(MidOpRow { label, completion: mean });
    }
    out
}

/// Ablation 5: cost-model accuracy under per-node skew.
pub struct SkewRow {
    /// Skew label.
    pub label: String,
    /// Mean simulated completion.
    pub actual: f64,
    /// The (skew-oblivious) cost-model estimate.
    pub estimated: f64,
}

/// Simulates the cost-based Q5 plan @ SF = 100, MTBF = 1 hour, with
/// increasingly skewed per-node durations. The estimate never changes —
/// exposing exactly the inaccuracy the paper's §7 calls future work.
pub fn skew_accuracy() -> Vec<SkewRow> {
    let plan = q5_plan(100.0, &CostModel::xdb_calibrated());
    let cluster = ClusterConfig::paper_cluster(mtbf::HOUR);
    let params = Scheme::cost_params(&cluster);
    let config = Scheme::CostBased.select_config(&plan, &cluster).expect("valid");
    let estimated = estimate_ft_plan(&plan, &config, &params).dominant_cost;
    [0.0f64, 0.2, 0.5, 1.0]
        .into_iter()
        .map(|s| {
            // Node i runs at factor 1 + s·i/(n−1): node 0 nominal, the
            // last node (1+s)× slower.
            let n = cluster.nodes;
            let factors: Vec<f64> = (0..n).map(|i| 1.0 + s * i as f64 / (n - 1) as f64).collect();
            let opts = SimOptions::default().with_skew(factors);
            let horizon = suggested_horizon(&plan, &cluster, &opts) * (1.0 + s);
            let traces = TraceSet::generate(&cluster, horizon, 10, 57);
            let actual = traces
                .iter()
                .map(|t| {
                    simulate(&plan, &config, Recovery::FineGrained, &cluster, t, &opts).completion
                })
                .sum::<f64>()
                / traces.len() as f64;
            SkewRow { label: format!("max skew +{:.0}%", s * 100.0), actual, estimated }
        })
        .collect()
}

/// Prints all ablations.
pub fn print_all() {
    report::banner("Ablation 1: wasted-time model — exact Eq. 3 vs t/2 approximation (Q5, SF=100)");
    let rows: Vec<Vec<String>> = wasted_time_model()
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                report::secs(r.approx_estimate),
                report::secs(r.exact_estimate),
                if r.same_config { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    report::table(&["MTBF", "estimate (t/2)", "estimate (exact)", "same config?"], &rows);

    report::banner("Ablation 2: rule-3 dominant-path memo (Eq. 9), top-200 Q5 orders");
    let rows: Vec<Vec<String>> = rule3_memo()
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                r.costed_plain.to_string(),
                r.costed_memo.to_string(),
                format!("{:.1}%", (1.0 - r.costed_memo as f64 / r.costed_plain as f64) * 100.0),
            ]
        })
        .collect();
    report::table(&["MTBF", "paths costed (rule 3)", "paths costed (+memo)", "saved"], &rows);

    report::banner("Ablation 3: top-k join orders (Q5, SF=100, MTBF=1 hour)");
    let rows: Vec<Vec<String>> = top_k_sensitivity()
        .iter()
        .map(|r| {
            vec![r.k.to_string(), report::secs(r.best_estimate), format!("#{}", r.winner_index + 1)]
        })
        .collect();
    report::table(&["k", "best estimate", "winning order"], &rows);

    report::banner(
        "Ablation 4: mid-operator checkpointing (§7) — Q5 @ SF=1000, lineage config, MTBF=1 hour",
    );
    let rows: Vec<Vec<String>> = mid_operator_checkpointing()
        .iter()
        .map(|r| vec![r.label.clone(), report::secs(r.completion)])
        .collect();
    report::table(&["checkpoint interval", "mean completion"], &rows);

    report::banner("Ablation 5: per-node skew (§7) — skew-oblivious estimates degrade");
    let rows: Vec<Vec<String>> = skew_accuracy()
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                report::secs(r.actual),
                report::secs(r.estimated),
                format!("{:.1}%", (r.actual - r.estimated) / r.actual * 100.0),
            ]
        })
        .collect();
    report::table(&["setting", "actual", "estimated", "error"], &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_model_estimates_no_higher_than_approx() {
        // w_exact(t) <= t/2, so exact estimates are never larger.
        for r in wasted_time_model() {
            assert!(
                r.exact_estimate <= r.approx_estimate + 1e-9,
                "{}: {} vs {}",
                r.label,
                r.exact_estimate,
                r.approx_estimate
            );
        }
    }

    #[test]
    fn memo_never_costs_more_paths() {
        for r in rule3_memo() {
            assert!(r.costed_memo <= r.costed_plain, "{}: memo must only save work", r.label);
        }
    }

    #[test]
    fn top_k_estimates_improve_monotonically() {
        let rows = top_k_sensitivity();
        for w in rows.windows(2) {
            assert!(
                w[1].best_estimate <= w[0].best_estimate + 1e-9,
                "larger k cannot be worse: {} -> {}",
                w[0].best_estimate,
                w[1].best_estimate
            );
        }
    }

    #[test]
    fn mid_op_checkpoints_help_long_queries() {
        let rows = mid_operator_checkpointing();
        let plain = rows[0].completion;
        let every_300 = rows[2].completion;
        assert!(
            every_300 < plain,
            "checkpoints every 300 s must beat none: {every_300:.0} vs {plain:.0}"
        );
    }

    #[test]
    fn skew_error_grows() {
        let rows = skew_accuracy();
        let err = |r: &SkewRow| (r.actual - r.estimated) / r.actual;
        assert!(
            err(&rows[3]) > err(&rows[0]),
            "skew must hurt accuracy: {:?} vs {:?}",
            (rows[3].actual, rows[3].estimated),
            (rows[0].actual, rows[0].estimated)
        );
        // The skew-oblivious estimate itself is constant.
        assert!(rows.iter().all(|r| (r.estimated - rows[0].estimated).abs() < 1e-9));
    }
}
