//! Micro-benchmark of the checkpoint-store backends: put/get throughput
//! of [`MemBackend`] vs [`DiskBackend`] across several row widths.
//!
//! The disk numbers are the measured `tm(o)` of §5.1's fault-tolerant
//! storage — the write throughput the calibration report
//! (`obs::calibrate`) compares against the cost model's assumed
//! materialization rate. Reads are measured against a *reopened* backend
//! so they hit the medium (and re-verify checksums) instead of the warm
//! segment cache.

use ftpde_obs::Summary;
use ftpde_store::{DiskBackend, MemBackend, Row, StoreBackend, Value};

/// One backend × row-width measurement.
#[derive(Debug, Clone)]
pub struct StorePoint {
    /// `"mem"` or `"disk"`.
    pub backend: &'static str,
    /// Values per row.
    pub width: usize,
    /// Rows written (all partitions together).
    pub rows: u64,
    /// Logical volume written, bytes.
    pub bytes: u64,
    /// Write throughput, bytes/s (`None` if the clock was too coarse).
    pub write_bytes_per_s: Option<f64>,
    /// Read throughput, bytes/s.
    pub read_bytes_per_s: Option<f64>,
}

/// Partitions per workload.
pub const PARTITIONS: usize = 16;
/// Rows per partition.
pub const ROWS_PER_PARTITION: usize = 2_000;
/// Row widths measured.
pub const WIDTHS: [usize; 3] = [2, 8, 32];

/// A deterministic partition of `n` rows of `width` mixed Int/Float
/// values.
fn partition_rows(width: usize, part: usize, n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            (0..width)
                .map(|c| {
                    let x = (part * n + i) as i64 * 31 + c as i64;
                    if c % 2 == 0 {
                        Value::Int(x)
                    } else {
                        Value::Float(x as f64 * 0.125)
                    }
                })
                .collect()
        })
        .collect()
}

fn write_workload(store: &dyn StoreBackend, width: usize) {
    for part in 0..PARTITIONS {
        store.put(0, part, partition_rows(width, part, ROWS_PER_PARTITION));
    }
}

fn read_workload(store: &dyn StoreBackend, width: usize) {
    for part in 0..PARTITIONS {
        let rows = store.get(0, part).expect("benchmark segment present");
        assert_eq!(rows.len(), ROWS_PER_PARTITION, "width {width} part {part}");
    }
}

/// Measures both backends at every width in [`WIDTHS`].
///
/// # Panics
/// Panics if the scratch directory for the disk backend cannot be
/// created, or a written segment cannot be read back.
pub fn run() -> Vec<StorePoint> {
    let mut points = Vec::new();
    for width in WIDTHS {
        // In-memory: reads always come from the live map.
        let mem = MemBackend::new();
        write_workload(&mem, width);
        read_workload(&mem, width);
        let s = mem.stats();
        points.push(StorePoint {
            backend: "mem",
            width,
            rows: s.logical_rows_written,
            bytes: s.logical_bytes_written,
            write_bytes_per_s: s.write_bytes_per_s(),
            read_bytes_per_s: s.read_bytes_per_s(),
        });

        // On disk: drop the writer and reopen so reads hit the files, not
        // the warm cache. Lifetime stats persist in the manifest, so the
        // reopened instance reports the full write+read history.
        let dir =
            std::env::temp_dir().join(format!("ftpde-bench-store-{}-w{width}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = DiskBackend::open(&dir).expect("scratch dir");
        write_workload(&disk, width);
        drop(disk);
        let disk = DiskBackend::open(&dir).expect("reopen scratch dir");
        read_workload(&disk, width);
        let s = disk.stats();
        points.push(StorePoint {
            backend: "disk",
            width,
            rows: s.logical_rows_written,
            bytes: s.logical_bytes_written,
            write_bytes_per_s: s.write_bytes_per_s(),
            read_bytes_per_s: s.read_bytes_per_s(),
        });
        drop(disk);
        let _ = std::fs::remove_dir_all(&dir);
    }
    points
}

/// Renders the measurements as a summary table.
pub fn summarize(points: &[StorePoint]) -> Summary {
    let mb = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |b| format!("{:.1}", b / 1e6));
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.backend.to_string(),
                p.width.to_string(),
                p.rows.to_string(),
                format!("{:.2}", p.bytes as f64 / 1e6),
                mb(p.write_bytes_per_s),
                mb(p.read_bytes_per_s),
            ]
        })
        .collect();
    let mut s = Summary::new();
    s.banner("Checkpoint store micro-benchmark: Mem vs Disk");
    s.line(format!(
        "{PARTITIONS} partitions x {ROWS_PER_PARTITION} rows, widths {WIDTHS:?}; disk reads on a reopened backend"
    ));
    s.table(&["backend", "width", "rows", "MB", "write MB/s", "read MB/s"], &rows);
    s
}

/// Runs and prints the benchmark.
pub fn print() {
    print!("{}", summarize(&run()).render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(miri, ignore = "touches the real filesystem")]
    fn measures_both_backends_at_every_width() {
        let points = run();
        assert_eq!(points.len(), 2 * WIDTHS.len());
        for p in &points {
            assert_eq!(p.rows as usize, PARTITIONS * ROWS_PER_PARTITION);
            assert!(p.bytes > 0);
        }
        // Same logical volume on both backends at equal width — the
        // stats make the backends directly comparable.
        for pair in points.chunks(2) {
            assert_eq!(pair[0].bytes, pair[1].bytes);
        }
        let rendered = summarize(&points).render();
        assert!(rendered.contains("disk"), "{rendered}");
        assert!(rendered.contains("write MB/s"), "{rendered}");
    }
}
