//! **Figure 1** — probability that a query finishes without a mid-query
//! failure, as a function of its runtime, for the paper's four cluster
//! setups.

use ftpde_cluster::analytics::{success_curve, SuccessPoint};
use ftpde_cluster::config::figure1_clusters;

use crate::report;

/// One cluster's curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// The cluster's label as printed in the paper's legend.
    pub label: &'static str,
    /// Sampled points (runtime minutes → success %).
    pub points: Vec<SuccessPoint>,
}

/// Computes all four curves of Figure 1 (0–160 minutes).
pub fn run() -> Vec<Curve> {
    figure1_clusters()
        .into_iter()
        .map(|(label, cluster)| Curve { label, points: success_curve(&cluster, 160.0, 20.0) })
        .collect()
}

/// Prints the curves as one table (x = runtime in minutes).
pub fn print(curves: &[Curve]) {
    report::banner("Figure 1: Probability of Success of a Query");
    let mut headers = vec!["runtime (min)"];
    headers.extend(curves.iter().map(|c| c.label));
    let n = curves[0].points.len();
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            let mut row = vec![format!("{:.0}", curves[0].points[i].runtime_min)];
            row.extend(curves.iter().map(|c| format!("{:.1}%", c.points[i].success_pct)));
            row
        })
        .collect();
    report::table(&headers, &rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_curves_with_shared_x_axis() {
        let curves = run();
        assert_eq!(curves.len(), 4);
        for c in &curves {
            assert_eq!(c.points.len(), 9); // 0..=160 step 20
            assert_eq!(c.points[0].success_pct, 100.0);
        }
    }

    #[test]
    fn figure1_qualitative_shape() {
        let curves = run();
        let at_160: Vec<f64> = curves.iter().map(|c| c.points[8].success_pct).collect();
        // Cluster 1 (1h, 100 nodes) dies instantly; cluster 4 (1wk, 10
        // nodes) stays high; clusters 2 and 3 are runtime-dependent.
        assert!(at_160[0] < 0.001, "cluster 1: {}", at_160[0]);
        assert!(at_160[3] > 80.0, "cluster 4: {}", at_160[3]);
        assert!(at_160[1] > 1.0 && at_160[1] < 50.0, "cluster 2: {}", at_160[1]);
        assert!(at_160[2] < 2.0, "cluster 3: {}", at_160[2]);
    }
}
