//! **Figure 11** — overhead of the four schemes for TPC-H Q5 at SF = 100
//! (≈ 15-minute baseline) on three cluster setups: MTBF per node of one
//! week (cluster A), one day (cluster B) and one hour (cluster C).

use ftpde_cluster::config::{mtbf, ClusterConfig};
use ftpde_sim::scheme::Scheme;
use ftpde_tpch::costing::{baseline_runtime, CostModel};
use ftpde_tpch::queries::q5_plan;

use crate::common::{scheme_overheads, TRACES};
use crate::report;

/// The clusters of the figure.
pub const CLUSTERS: [(&str, f64); 3] = [
    ("Cluster A (10 nodes, MTBF=1 week)", mtbf::WEEK),
    ("Cluster B (10 nodes, MTBF=1 day)", mtbf::DAY),
    ("Cluster C (10 nodes, MTBF=1 hour)", mtbf::HOUR),
];

/// One cluster's overheads.
#[derive(Debug, Clone)]
pub struct ClusterRow {
    /// The cluster label.
    pub label: &'static str,
    /// Overheads per scheme in [`Scheme::ALL`] order.
    pub overheads: Vec<Option<f64>>,
}

/// Runs the experiment; also returns the baseline runtime.
pub fn run() -> (f64, Vec<ClusterRow>) {
    let cm = CostModel::xdb_calibrated();
    let plan = q5_plan(100.0, &cm);
    let baseline = baseline_runtime(&plan);
    let rows = CLUSTERS
        .iter()
        .enumerate()
        .map(|(i, &(label, m))| {
            let cluster = ClusterConfig::paper_cluster(m);
            let overheads = scheme_overheads(&plan, &cluster, TRACES, 1100 + i as u64)
                .into_iter()
                .map(|(_, oh)| oh)
                .collect();
            ClusterRow { label, overheads }
        })
        .collect();
    (baseline, rows)
}

/// Prints the figure.
pub fn print(baseline: f64, rows: &[ClusterRow]) {
    report::banner(&format!(
        "Figure 11: Varying MTBF (Q5, SF=100, baseline = {} — paper: 905.33s)",
        report::secs(baseline)
    ));
    let mut headers = vec!["cluster"];
    headers.extend(Scheme::ALL.iter().map(Scheme::name));
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![r.label.to_string()];
            row.extend(r.overheads.iter().map(|o| report::overhead_cell(*o)));
            row
        })
        .collect();
    report::table(&headers, &table_rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_shape_claims() {
        let (baseline, rows) = run();
        assert!((baseline - 905.33).abs() < 100.0, "baseline = {baseline}");

        // Cluster A (1 week): failures are rare — both no-mat schemes and
        // cost-based near 0, all-mat pays ~34% (paper: 34.13/0/0/0).
        let a = &rows[0].overheads;
        assert!(a[0].unwrap() > 20.0, "all-mat: {:?}", a[0]);
        assert!(a[1].unwrap() < 10.0, "lineage: {:?}", a[1]);
        assert!(a[2].unwrap() < 10.0, "restart: {:?}", a[2]);
        assert!(a[3].unwrap() < 10.0, "cost-based: {:?}", a[3]);

        // Cluster C (1 hour): restart is by far the worst (paper: 231.8%),
        // and cost-based has the lowest overhead of all schemes.
        let c = &rows[2].overheads;
        let cb = c[3].unwrap();
        if let Some(restart) = c[2] {
            assert!(restart > 2.0 * cb, "restart {restart} vs cb {cb}");
        } // None = aborted: even stronger
        for other in [c[0], c[1]].into_iter().flatten() {
            assert!(cb <= other * 1.2 + 8.0, "cost-based {cb} vs {other}");
        }

        // Monotonicity: every scheme's overhead grows as MTBF shrinks.
        for s in 0..4 {
            let vals: Vec<f64> =
                rows.iter().map(|r| r.overheads[s].unwrap_or(f64::INFINITY)).collect();
            assert!(
                vals[0] <= vals[1] * 1.2 + 6.0 && vals[1] <= vals[2] * 1.2 + 6.0,
                "scheme {s}: {vals:?}"
            );
        }
    }
}
