//! **Table 3** — robustness of the cost model to inaccurate statistics:
//! the MTBF, the I/O (materialization) costs, or all operator costs are
//! perturbed by factors 0.1×…10×, and the table reports where each
//! perturbed top-5 configuration sat in the exact-statistics ranking.

use ftpde_cluster::config::{mtbf, ClusterConfig};
use ftpde_core::stats::{baseline_positions, rank_configs, Perturbation};
use ftpde_sim::scheme::Scheme;
use ftpde_tpch::costing::CostModel;
use ftpde_tpch::queries::q5_plan;

use crate::report;

/// The perturbation grid of the paper's Table 3.
pub fn perturbations() -> Vec<(String, Perturbation)> {
    let mut out = Vec::new();
    for f in [0.1, 0.5, 2.0, 10.0] {
        out.push((format!("MTBF ×{f}"), Perturbation::Mtbf(f)));
    }
    for f in [0.1, 0.5, 2.0, 10.0] {
        out.push((format!("I/O costs ×{f}"), Perturbation::IoCost(f)));
    }
    for f in [0.1, 0.5, 2.0, 10.0] {
        out.push((format!("Compute & I/O costs ×{f}"), Perturbation::AllCosts(f)));
    }
    out
}

/// One perturbation's outcome: the baseline positions of the perturbed
/// top-5 (row of Table 3), plus the runtime regret of the new top-1.
#[derive(Debug, Clone)]
pub struct RobustnessRow {
    /// Perturbation label.
    pub label: String,
    /// Baseline-ranking positions (1-based) of the perturbed top-5.
    pub top5_positions: Vec<usize>,
    /// Estimated runtime of the perturbed winner divided by the true
    /// optimum (1.0 = perturbation did not change the chosen plan's cost).
    pub regret: f64,
}

/// Runs the robustness experiment (Q5 @ SF = 100, MTBF = 1 hour, as in
/// the paper's §5.4 which reuses the Figure 12b setting).
pub fn run() -> Vec<RobustnessRow> {
    let plan = q5_plan(100.0, &CostModel::xdb_calibrated());
    let cluster = ClusterConfig::paper_cluster(mtbf::HOUR);
    let params = Scheme::cost_params(&cluster);
    let baseline = rank_configs(&plan, &params);

    perturbations()
        .into_iter()
        .map(|(label, p)| {
            let (p_plan, p_params) = p.apply(&plan, &params);
            // Rank with the *perturbed* inputs, then evaluate the chosen
            // configs under the *true* statistics.
            let perturbed = rank_configs(&p_plan, &p_params);
            let top5_positions = baseline_positions(&baseline, &perturbed, 5);
            let winner_true_cost = baseline[top5_positions[0] - 1].estimated_cost;
            let regret = winner_true_cost / baseline[0].estimated_cost;
            RobustnessRow { label, top5_positions, regret }
        })
        .collect()
}

/// Prints the table.
pub fn print(rows: &[RobustnessRow]) {
    report::banner("Table 3: Robustness of Cost Model (Q5, SF=100, MTBF=1 hour)");
    let mut table_rows = vec![vec![
        "Ranking w exact statistics".to_string(),
        "1 2 3 4 5".to_string(),
        "1.00x".to_string(),
    ]];
    table_rows.extend(rows.iter().map(|r| {
        vec![
            r.label.clone(),
            r.top5_positions.iter().map(ToString::to_string).collect::<Vec<_>>().join(" "),
            format!("{:.2}x", r.regret),
        ]
    }));
    report::table(&["perturbation", "top-5 baseline positions", "winner regret"], &table_rows);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_perturbations_stay_near_the_top() {
        let rows = run();
        for r in rows.iter().filter(|r| r.label.ends_with("×0.5") || r.label.ends_with("×2")) {
            // Paper: factors 0.5×/2× "often change the order within the
            // top-5 only slightly" — the chosen winner stays cheap.
            assert!(
                r.regret < 1.25,
                "{}: regret {:.2} too large (positions {:?})",
                r.label,
                r.regret,
                r.top5_positions
            );
        }
    }

    #[test]
    fn uniform_cost_scaling_is_harmless_when_mtbf_scales_too() {
        // Scaling all costs by 2 is equivalent to halving the MTBF in cost
        // units — the *relative* ranking barely moves for mild factors.
        let rows = run();
        let all2 = rows.iter().find(|r| r.label == "Compute & I/O costs ×2").unwrap();
        assert!(all2.regret < 1.3, "{all2:?}");
    }

    #[test]
    fn extreme_io_perturbations_can_mislead_the_model() {
        let rows = run();
        let io10 = rows.iter().find(|r| r.label == "I/O costs ×10").unwrap();
        // Paper: extreme perturbations push far-down configs into the
        // top-5 (a rank-28 config reached position 1, with 1.7× runtime).
        let worst_pos = *io10.top5_positions.iter().max().unwrap();
        assert!(
            worst_pos > 5 || io10.regret > 1.05,
            "10x I/O error should visibly disturb the ranking: {io10:?}"
        );
    }

    #[test]
    fn grid_matches_table3() {
        assert_eq!(perturbations().len(), 12);
        assert_eq!(run().len(), 12);
    }
}
