//! The paper's *illustrative* figures, regenerated from the actual
//! implementation rather than hand-drawn:
//!
//! * **Figure 2** — the example DAG-structured execution plan;
//! * **Figure 3** — the four steps of the procedure on that plan
//!   (fault-tolerant plan → collapsed plan → paths → costs);
//! * **Figure 4** — the wasted-runtime saw-tooth along an execution path;
//! * **Figure 9** — the TPC-H Q5 plan with its five free operators.
//!
//! (Figures 5, 6 and 7 — the pruning-rule worked examples — are asserted
//! numerically in `ftpde-core`'s `prune` tests.)

use ftpde_core::collapse::CollapsedPlan;
use ftpde_core::config::MatConfig;
use ftpde_core::cost::{estimate_ft_plan, CostParams};
use ftpde_core::dag::figure2_plan;
use ftpde_core::explain::{explain_collapsed, explain_estimate, explain_plan, to_dot};
use ftpde_core::operator::OpId;
use ftpde_core::paths::all_paths;
use ftpde_tpch::costing::CostModel;
use ftpde_tpch::queries::q5_plan;

use crate::report;

/// Prints all diagram reproductions.
pub fn print_all() {
    let plan = figure2_plan();
    let config =
        MatConfig::from_materialized_free_ops(&plan, &[OpId(2), OpId(4), OpId(5), OpId(6)])
            .expect("figure 3 config");
    let params = CostParams::new(60.0, 0.0);

    report::banner("Figure 2: Parallel Execution Model (example plan)");
    print!("{}", explain_plan(&plan, &config));

    report::banner("Figure 3 step 2: collapsed plan");
    let collapsed = CollapsedPlan::collapse(&plan, &config, params.pipe_const);
    print!("{}", explain_collapsed(&plan, &collapsed));

    report::banner("Figure 3 step 3: enumerated execution paths");
    for (i, path) in all_paths(&collapsed).iter().enumerate() {
        let names: Vec<String> = path
            .iter()
            .map(|&c| {
                format!(
                    "{{{}}}",
                    collapsed
                        .op(c)
                        .members
                        .iter()
                        .map(|o| (o.0 + 1).to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                )
            })
            .collect();
        println!("Pt{}: {}", i + 1, names.join(" → "));
    }

    report::banner("Figure 3 step 4: cost estimates and dominant path");
    let est = estimate_ft_plan(&plan, &config, &params);
    print!("{}", explain_estimate(&plan, &est, &params));

    report::banner("Figure 4: wasted runtime along the dominant path (saw-tooth)");
    print!("{}", wasted_runtime_sawtooth(&collapsed, &est.dominant_path));

    report::banner("Figure 9: TPC-H Query 5 (free operators 1-5), DOT export");
    let q5 = q5_plan(100.0, &CostModel::xdb_calibrated());
    let q5_cfg = MatConfig::none(&q5);
    let q5_collapsed = CollapsedPlan::collapse(&q5, &q5_cfg, 1.0);
    print!("{}", to_dot(&q5, &q5_cfg, &q5_collapsed));
}

/// Renders Figure 4's saw-tooth: the potentially wasted runtime grows
/// linearly within each collapsed operator and resets at every
/// materialization point.
pub fn wasted_runtime_sawtooth(
    collapsed: &CollapsedPlan,
    path: &[ftpde_core::collapse::CId],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let mut t = 0.0f64;
    for &c in path {
        let dur = collapsed.op(c).total_cost();
        let steps = 8usize;
        for s in 1..=steps {
            let frac = s as f64 / steps as f64;
            let wasted = dur * frac;
            let bar = "█".repeat((wasted * 4.0).round() as usize);
            let _ = writeln!(out, "t={:6.2}  wasted {:5.2} {}", t + dur * frac, wasted, bar);
        }
        let _ = writeln!(out, "t={:6.2}  -- materialized: wasted runtime resets --", t + dur);
        t += dur;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sawtooth_resets_at_every_stage() {
        let plan = figure2_plan();
        let config =
            MatConfig::from_materialized_free_ops(&plan, &[OpId(2), OpId(4), OpId(5), OpId(6)])
                .unwrap();
        let collapsed = CollapsedPlan::collapse(&plan, &config, 1.0);
        let est = estimate_ft_plan(&plan, &config, &CostParams::new(60.0, 0.0));
        let s = wasted_runtimes_ok(&collapsed, &est.dominant_path);
        assert!(s);
    }

    fn wasted_runtimes_ok(collapsed: &CollapsedPlan, path: &[ftpde_core::collapse::CId]) -> bool {
        let s = wasted_runtime_sawtooth(collapsed, path);
        // One reset marker per collapsed operator on the path.
        s.matches("resets").count() == path.len()
    }
}
