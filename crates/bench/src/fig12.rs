//! **Figure 12** — accuracy of the cost model for TPC-H Q5 at SF = 100:
//!
//! * **(a)** actual (simulated) vs estimated runtime of the cost-based
//!   scheme's chosen plan across MTBFs from one month down to 30 minutes;
//! * **(b)** actual vs estimated runtime of **all 32** materialization
//!   configurations at a fixed MTBF of one hour, sorted by estimate.

use ftpde_cluster::config::{mtbf, ClusterConfig};
use ftpde_cluster::trace::TraceSet;
use ftpde_core::config::MatConfig;
use ftpde_core::cost::estimate_ft_plan;
use ftpde_sim::metrics::suggested_horizon;
use ftpde_sim::scheme::{Recovery, Scheme};
use ftpde_sim::simulate::{simulate, SimOptions};
use ftpde_tpch::costing::CostModel;
use ftpde_tpch::queries::q5_plan;

use crate::report;

/// The MTBFs of panel (a), one month down to 30 minutes.
pub const MTBFS: [(&str, f64); 5] = [
    ("1 month", mtbf::MONTH),
    ("1 week", mtbf::WEEK),
    ("1 day", mtbf::DAY),
    ("1 hour", mtbf::HOUR),
    ("30 min", mtbf::HALF_HOUR),
];

/// One (actual, estimated) pair.
#[derive(Debug, Clone)]
pub struct Pair {
    /// Row label (MTBF name for panel a, config index for panel b).
    pub label: String,
    /// Mean simulated completion time, seconds.
    pub actual: f64,
    /// Cost-model estimate (dominant path under failures), seconds.
    pub estimated: f64,
}

impl Pair {
    /// Relative estimation error, percent (positive = underestimate).
    pub fn error_pct(&self) -> f64 {
        (self.actual - self.estimated) / self.actual * 100.0
    }
}

fn mean_actual(
    plan: &ftpde_core::dag::PlanDag,
    config: &MatConfig,
    cluster: &ClusterConfig,
    traces: &TraceSet,
) -> f64 {
    let opts = SimOptions::default();
    let runs: Vec<f64> = traces
        .iter()
        .map(|t| simulate(plan, config, Recovery::FineGrained, cluster, t, &opts).completion)
        .collect();
    runs.iter().sum::<f64>() / runs.len() as f64
}

/// Panel (a): the cost-based plan's accuracy across MTBFs.
pub fn run_panel_a() -> Vec<Pair> {
    let plan = q5_plan(100.0, &CostModel::xdb_calibrated());
    MTBFS
        .iter()
        .enumerate()
        .map(|(i, &(label, m))| {
            let cluster = ClusterConfig::paper_cluster(m);
            let params = Scheme::cost_params(&cluster);
            let config = Scheme::CostBased.select_config(&plan, &cluster).expect("valid plan");
            let estimated = estimate_ft_plan(&plan, &config, &params).dominant_cost;
            let horizon = suggested_horizon(&plan, &cluster, &SimOptions::default());
            let traces = TraceSet::generate(&cluster, horizon, 10, 1200 + i as u64);
            let actual = mean_actual(&plan, &config, &cluster, &traces);
            Pair { label: label.to_string(), actual, estimated }
        })
        .collect()
}

/// Panel (b): all 32 configurations at MTBF = 1 hour, sorted ascending by
/// estimate.
pub fn run_panel_b() -> Vec<Pair> {
    let plan = q5_plan(100.0, &CostModel::xdb_calibrated());
    let cluster = ClusterConfig::paper_cluster(mtbf::HOUR);
    let params = Scheme::cost_params(&cluster);
    let horizon = suggested_horizon(&plan, &cluster, &SimOptions::default());
    let traces = TraceSet::generate(&cluster, horizon, 10, 1250);
    let mut pairs: Vec<Pair> = MatConfig::enumerate(&plan)
        .enumerate()
        .map(|(i, config)| {
            let estimated = estimate_ft_plan(&plan, &config, &params).dominant_cost;
            let actual = mean_actual(&plan, &config, &cluster, &traces);
            Pair { label: format!("cfg{i:02}"), actual, estimated }
        })
        .collect();
    pairs.sort_by(|a, b| a.estimated.partial_cmp(&b.estimated).expect("finite estimates"));
    pairs
}

/// Builds the full two-panel report as an [`ftpde_obs::Summary`], so it
/// can be printed, rendered to a string, or mirrored into a recorder.
pub fn summary(panel_a: &[Pair], panel_b: &[Pair]) -> ftpde_obs::Summary {
    let mut s = ftpde_obs::Summary::new();
    s.banner("Figure 12a: Accuracy of Cost Model — Varying MTBF (Q5, SF=100)");
    let rows: Vec<Vec<String>> = panel_a
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                report::secs(p.actual),
                report::secs(p.estimated),
                format!("{:.1}%", p.error_pct()),
            ]
        })
        .collect();
    s.table(&["MTBF", "actual", "estimated", "error"], &rows);

    s.banner("Figure 12b: Accuracy over all 32 Mat. Configurations (MTBF=1 hour)");
    let rows: Vec<Vec<String>> = panel_b
        .iter()
        .enumerate()
        .map(|(rank, p)| {
            vec![
                format!("{}", rank + 1),
                p.label.clone(),
                report::secs(p.actual),
                report::secs(p.estimated),
            ]
        })
        .collect();
    s.table(&["rank", "config", "actual", "estimated"], &rows);
    let actual: Vec<f64> = panel_b.iter().map(|p| p.actual).collect();
    let estimated: Vec<f64> = panel_b.iter().map(|p| p.estimated).collect();
    s.line(format!(
        "Pearson correlation (actual vs estimated): {:.3}",
        report::pearson(&actual, &estimated)
    ));
    s
}

/// Prints both panels.
pub fn print(panel_a: &[Pair], panel_b: &[Pair]) {
    summary(panel_a, panel_b).print();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_renders_both_panels_and_pearson() {
        let a = vec![Pair { label: "1 month".into(), actual: 100.0, estimated: 100.0 }];
        let b = vec![
            Pair { label: "cfg00".into(), actual: 100.0, estimated: 90.0 },
            Pair { label: "cfg01".into(), actual: 120.0, estimated: 110.0 },
        ];
        let text = summary(&a, &b).render();
        assert!(text.contains("==== Figure 12a: Accuracy of Cost Model"), "{text}");
        assert!(text.contains("==== Figure 12b: Accuracy over all 32"), "{text}");
        assert!(text.contains("rank  config  actual  estimated"), "{text}");
        assert!(text.ends_with("Pearson correlation (actual vs estimated): 1.000\n"), "{text}");
    }

    #[test]
    fn panel_a_errors_grow_with_failure_rate_and_underestimate() {
        let pairs = run_panel_a();
        assert_eq!(pairs.len(), 5);
        // High MTBF: near-exact (paper: 0% error at 1 month).
        assert!(pairs[0].error_pct().abs() < 10.0, "1 month: {:?}", pairs[0]);
        // Low MTBF: the model is optimistic but within ~40% (paper: ≈30%).
        let worst = pairs.last().unwrap();
        assert!(worst.error_pct() > -5.0, "model should not overestimate: {worst:?}");
        assert!(worst.error_pct() < 45.0, "30 min error too large: {worst:?}");
        // Actual runtimes increase as MTBF decreases.
        for w in pairs.windows(2) {
            assert!(w[1].actual >= w[0].actual * 0.95, "{w:?}");
        }
    }

    #[test]
    fn panel_b_estimates_correlate_with_actuals() {
        let pairs = run_panel_b();
        assert_eq!(pairs.len(), 32);
        let actual: Vec<f64> = pairs.iter().map(|p| p.actual).collect();
        let estimated: Vec<f64> = pairs.iter().map(|p| p.estimated).collect();
        let r = report::pearson(&actual, &estimated);
        assert!(r > 0.75, "paper claims high correlation; got r = {r:.3}");
        // The runtimes span a real range (paper: 1358s to 2517s, a 1.85x
        // spread; our simulated spread is somewhat narrower).
        let min = actual.iter().copied().fold(f64::INFINITY, f64::min);
        let max = actual.iter().copied().fold(0.0, f64::max);
        assert!(max > min * 1.1, "configs must differ: {min:.0}..{max:.0}");
    }
}
