//! Small plain-text table/series printers shared by the experiment
//! harnesses. Rendering is delegated to [`ftpde_obs::Summary`], whose
//! plain-text output is byte-identical to the original `println!` rows so
//! `cargo bench` transcripts keep diffing cleanly against EXPERIMENTS.md.

use ftpde_obs::{CalibrationReport, Summary};

/// Prints a title banner.
pub fn banner(title: &str) {
    let mut s = Summary::new();
    s.banner(title);
    print!("{}", s.render());
}

/// Prints a table: a header row and rows of equal arity, space-aligned.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut s = Summary::new();
    s.table(headers, rows);
    print!("{}", s.render());
}

/// Formats an optional overhead percentage; `None` prints as the paper's
/// "Aborted".
pub fn overhead_cell(pct: Option<f64>) -> String {
    match pct {
        Some(v) => format!("{v:.1}%"),
        None => "Aborted".to_string(),
    }
}

/// Formats seconds with one decimal.
pub fn secs(v: f64) -> String {
    format!("{v:.1}s")
}

/// Builds the harness-style calibration table for a
/// [`CalibrationReport`]: one row per prediction-tagged stage (predicted
/// vs observed seconds, signed relative error, failures) and a footer
/// row per query, ready for [`table`] / [`Summary::table`].
pub fn calibration_table(report: &CalibrationReport) -> (Vec<&'static str>, Vec<Vec<String>>) {
    let headers = vec!["scope", "stage", "predicted", "observed", "rel err", "failures"];
    let pct = |v: Option<f64>| match v {
        Some(v) => format!("{:+.1}%", v * 100.0),
        None => "-".to_string(),
    };
    let mut rows: Vec<Vec<String>> = report
        .stages
        .iter()
        .map(|s| {
            vec![
                s.cat.clone(),
                s.stage.to_string(),
                secs(s.predicted_s),
                secs(s.observed_s),
                pct(s.rel_error),
                s.failures.to_string(),
            ]
        })
        .collect();
    for q in &report.queries {
        rows.push(vec![
            q.cat.clone(),
            "query".to_string(),
            secs(q.predicted_s),
            secs(q.observed_s),
            pct(q.rel_error),
            if q.aborted { "Aborted".to_string() } else { "-".to_string() },
        ]);
    }
    (headers, rows)
}

/// Pearson correlation coefficient of two equal-length series.
///
/// # Panics
/// Panics if the series lengths differ or are shorter than 2.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    assert!(a.len() >= 2);
    let n = a.len() as f64;
    let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_cells() {
        assert_eq!(overhead_cell(Some(34.13)), "34.1%");
        assert_eq!(overhead_cell(None), "Aborted");
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_no_correlation_is_small() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let b = [5.0, 1.0, 4.0, 2.0, 8.0, 3.0, 7.0, 6.0];
        assert!(pearson(&a, &b).abs() < 0.9);
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(905.329), "905.3s");
    }

    #[test]
    fn calibration_table_has_stage_and_query_rows() {
        use ftpde_obs::Event;

        let events = vec![
            Event::span("stage 0", "sim", 0, 2_200_000)
                .arg("stage", 0u64)
                .arg("pred_run_s", 1.5)
                .arg("pred_mat_s", 0.5)
                .arg("pred_rec_s", 0.0),
            Event::instant("plan_estimate", "sim", 0).arg("pred_cost_s", 2.0),
            Event::instant("query_completed", "sim", 2_200_000),
        ];
        let report = CalibrationReport::from_events(&events);
        let (headers, rows) = calibration_table(&report);
        assert_eq!(headers.len(), 6);
        assert_eq!(rows.len(), 2, "one stage row + one query row");
        assert_eq!(rows[0][1], "0");
        assert_eq!(rows[0][4], "+10.0%");
        assert_eq!(rows[1][1], "query");
        assert_eq!(rows[1][5], "-");
        // Renders through the shared Summary path without panicking.
        let mut s = Summary::new();
        s.table(&headers, &rows);
        assert!(s.render().contains("+10.0%"));
    }
}
