//! Small plain-text table/series printers shared by the experiment
//! harnesses. Rendering is delegated to [`ftpde_obs::Summary`], whose
//! plain-text output is byte-identical to the original `println!` rows so
//! `cargo bench` transcripts keep diffing cleanly against EXPERIMENTS.md.

use ftpde_obs::Summary;

/// Prints a title banner.
pub fn banner(title: &str) {
    let mut s = Summary::new();
    s.banner(title);
    print!("{}", s.render());
}

/// Prints a table: a header row and rows of equal arity, space-aligned.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut s = Summary::new();
    s.table(headers, rows);
    print!("{}", s.render());
}

/// Formats an optional overhead percentage; `None` prints as the paper's
/// "Aborted".
pub fn overhead_cell(pct: Option<f64>) -> String {
    match pct {
        Some(v) => format!("{v:.1}%"),
        None => "Aborted".to_string(),
    }
}

/// Formats seconds with one decimal.
pub fn secs(v: f64) -> String {
    format!("{v:.1}s")
}

/// Pearson correlation coefficient of two equal-length series.
///
/// # Panics
/// Panics if the series lengths differ or are shorter than 2.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    assert!(a.len() >= 2);
    let n = a.len() as f64;
    let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma).powi(2);
        vb += (y - mb).powi(2);
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_cells() {
        assert_eq!(overhead_cell(Some(34.13)), "34.1%");
        assert_eq!(overhead_cell(None), "Aborted");
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_no_correlation_is_small() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let b = [5.0, 1.0, 4.0, 2.0, 8.0, 3.0, 7.0, 6.0];
        assert!(pearson(&a, &b).abs() < 0.9);
    }

    #[test]
    fn secs_formatting() {
        assert_eq!(secs(905.329), "905.3s");
    }
}
