//! The canonical `ftpde bench` suite: versioned, repeatable performance
//! measurements with a regression comparator.
//!
//! Two documents, written as `BENCH_engine.json` and `BENCH_search.json`
//! at the repo root and committed as the baseline every subsequent perf
//! PR is judged against:
//!
//! - **Engine** ([`run_engine_suite`]): Q1/Q3/Q5 × {none, best, all}
//!   materialization × {mem, disk} store backends × {clean,
//!   failure-injected} runs — warmup plus N timed repeats each, exact
//!   sample quantiles (p50/p90/p99) of whole-query wall time and of
//!   per-stage wall time, store micro-benchmark throughput (MB/s, the
//!   measured `tm(o)` of the paper's Eq. 5), and the instrumentation
//!   `overhead_pct` measured by interleaved traced-vs-untraced pairs.
//! - **Search** ([`run_search_suite`]): the cost-based optimizer on
//!   Q1/Q3/Q5 with pruning on and off — wall-time quantiles plus the
//!   deterministic [`SearchStats`](ftpde_core::search::SearchStats)
//!   counters and the §5.5 pruning rate.
//!
//! Everything is seeded ([`SuiteOptions::seed`] drives the vendored
//! RNG, the TPC-H generator and the failure injector), so counter-like
//! results are bit-reproducible and timing results are statistically
//! comparable across runs. Documents carry `schema_version`, suite
//! name and host info, and deliberately no timestamp — committed
//! baselines should not churn when regenerated unchanged.
//!
//! [`compare`] diffs two parsed documents under a tolerance and returns
//! the regressions; the `ftpde bench --compare` CLI exits nonzero when
//! any are found, which is the CI perf gate.

use std::time::Instant;

use ftpde_cluster::config::{mtbf, ClusterConfig};
use ftpde_core::collapse::CollapsedPlan;
use ftpde_core::config::MatConfig;
use ftpde_core::dag::PlanDag;
use ftpde_core::prune::PruneOptions;
use ftpde_core::search::find_best_ft_plan;
use ftpde_engine::prelude::{
    load_catalog, q1_engine_plan, q3_engine_plan, q5_engine_plan, run_query_resumable_traced,
    Catalog, DiskBackend, EnginePlan, FailureInjector, MemBackend, RunOptions, RunReport,
    StoreBackend,
};
use ftpde_obs::{MemoryRecorder, NoopRecorder, Recorder};
use ftpde_sim::scheme::Scheme;
use ftpde_tpch::costing::CostModel;
use ftpde_tpch::datagen::Database;
use ftpde_tpch::queries::Query;
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::store_micro;

/// Version of the BENCH document schema this build writes. Bump on any
/// incompatible change; the comparator refuses to diff across versions.
pub const SCHEMA_VERSION: u32 = 1;
/// `suite` field of the engine document.
pub const ENGINE_SUITE: &str = "ftpde-engine";
/// `suite` field of the search document.
pub const SEARCH_SUITE: &str = "ftpde-search";

/// Knobs of one suite execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteOptions {
    /// Timed repeats per case.
    pub repeats: usize,
    /// Untimed warmup runs per case.
    pub warmup: usize,
    /// Master seed: drives data generation, per-case injector seeds and
    /// every other random choice.
    pub seed: u64,
    /// Engine cluster width (worker threads per stage).
    pub nodes: usize,
    /// TPC-H scale factor of the generated engine database.
    pub sf: f64,
    /// Per-(stage, node) first-attempt failure probability of the
    /// failure-injected cases.
    pub failure_p: f64,
    /// Scale factor of the search suite's costed plans (cost-model
    /// units, not generated data).
    pub search_sf: f64,
    /// Traced-vs-untraced sample pairs for the overhead measurement.
    pub overhead_pairs: usize,
    /// Back-to-back runs folded into one overhead timing sample
    /// (amortizes thread-spawn jitter on millisecond-scale runs).
    pub overhead_batch: usize,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions {
            repeats: 5,
            warmup: 1,
            seed: 42,
            nodes: 3,
            sf: 0.002,
            failure_p: 0.5,
            search_sf: 100.0,
            overhead_pairs: 11,
            overhead_batch: 20,
        }
    }
}

impl SuiteOptions {
    /// Reduced-cost profile for CI smoke runs: fewer repeats, no warmup.
    /// The matrix stays complete so the schema (and comparator coverage)
    /// is identical to a full run. The overhead measurement keeps its
    /// full sample count — it is cheap (~100 batched millisecond runs)
    /// and cutting it makes the comparator's budget gate flake.
    #[must_use]
    pub fn quick() -> Self {
        SuiteOptions { repeats: 2, warmup: 0, ..Self::default() }
    }
}

/// Exact sample statistics: quantiles are interpolated between closest
/// ranks of the sorted samples (no binning error, unlike the registry's
/// log-bucketed histograms — fine here because repeats are few).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Stats {
    /// Statistics of `samples`. Panics on an empty slice — every suite
    /// case produces at least one repeat.
    pub fn of(samples: &[f64]) -> Stats {
        assert!(!samples.is_empty(), "stats of zero samples");
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let q = |p: f64| -> f64 {
            let pos = p * (sorted.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        };
        Stats {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: q(0.5),
            p90: q(0.9),
            p99: q(0.99),
        }
    }
}

/// The machine a document was measured on (context for humans reading a
/// diff; the comparator ignores it).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostInfo {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Available parallelism.
    pub cpus: usize,
}

impl HostInfo {
    /// Probes the current machine.
    pub fn current() -> HostInfo {
        HostInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            // ftpde-allow(FT201: one-shot host CPU-count probe for the bench report header, not part of any synchronized protocol)
            cpus: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        }
    }
}

/// Wall-time statistics of one stage across a case's repeats (executions
/// of the same stage within one repeat — e.g. after a coarse restart —
/// are summed first).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageStat {
    /// Root operator id of the stage.
    pub stage: u32,
    /// Per-repeat wall time spent in this stage, microseconds.
    pub wall_us: Stats,
    /// Mean fine-grained retries per repeat.
    pub retries: f64,
}

/// One cell of the engine matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineCase {
    /// `"Q1"`, `"Q3"` or `"Q5"`.
    pub query: String,
    /// `"none"`, `"best"` or `"all"`.
    pub config: String,
    /// `"mem"` or `"disk"`.
    pub backend: String,
    /// Whether first-attempt failures were injected.
    pub failures: bool,
    /// Whole-query wall time per repeat, microseconds.
    pub wall_us: Stats,
    /// Per-stage wall-time statistics, in stage id order.
    pub stages: Vec<StageStat>,
    /// Mean fine-grained node retries per repeat.
    pub node_retries: f64,
    /// Mean coarse query restarts per repeat.
    pub query_restarts: f64,
    /// Mean physical bytes committed to the store per repeat.
    pub bytes_materialized: f64,
}

impl EngineCase {
    /// Stable case identity the comparator matches on.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}",
            self.query,
            self.config,
            self.backend,
            if self.failures { "failures" } else { "clean" }
        )
    }
}

/// Store micro-benchmark throughput (from [`store_micro`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreCase {
    /// `"mem"` or `"disk"`.
    pub backend: String,
    /// Values per row.
    pub row_width: usize,
    /// Logical megabytes written.
    pub mb_written: f64,
    /// Measured write throughput (the paper's `tm(o)`), MB/s.
    pub write_mb_per_s: Option<f64>,
    /// Measured read-back throughput, MB/s.
    pub read_mb_per_s: Option<f64>,
}

impl StoreCase {
    /// Stable case identity the comparator matches on.
    pub fn key(&self) -> String {
        format!("store/{}/w{}", self.backend, self.row_width)
    }
}

/// The engine benchmark document (`BENCH_engine.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineDoc {
    /// [`SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Always [`ENGINE_SUITE`].
    pub suite: String,
    /// Master seed the run used.
    pub seed: u64,
    /// Timed repeats per case.
    pub repeats: usize,
    /// Warmup runs per case.
    pub warmup: usize,
    /// Engine cluster width.
    pub nodes: usize,
    /// TPC-H scale factor of the generated database.
    pub sf: f64,
    /// Machine the document was measured on.
    pub host: HostInfo,
    /// Instrumentation overhead: relative p50 slowdown (percent) of
    /// traced (in-memory recorder) over untraced (no-op recorder) runs
    /// of Q3/all/mem/clean, interleaved pairs. The always-on metrics
    /// layer and the flight-recorder ring are active on both sides —
    /// this isolates the recorder.
    pub overhead_pct: f64,
    /// The engine matrix.
    pub cases: Vec<EngineCase>,
    /// Store micro-benchmark points.
    pub store: Vec<StoreCase>,
}

/// One search-suite case: a query's costed plan searched under one
/// pruning profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchCase {
    /// `"Q1"`, `"Q3"` or `"Q5"`.
    pub query: String,
    /// `"all"` (default rules) or `"none"`.
    pub pruning: String,
    /// Search wall time per repeat, microseconds.
    pub wall_us: Stats,
    /// Size of the unpruned configuration space.
    pub configs_unpruned: u64,
    /// Configurations fully explored.
    pub configs_explored: u64,
    /// Configurations eliminated by rule 1.
    pub configs_pruned_rule1: u64,
    /// Configurations eliminated by rule 2.
    pub configs_pruned_rule2: u64,
    /// Rule-3 early stops (runtime + estimate + memo).
    pub rule3_stops: u64,
    /// Rule-3 stops attributable to the path memo (Eq. 9).
    pub memo_hits: u64,
    /// Dominant-path candidates fully costed.
    pub paths_costed: u64,
    /// §5.5 pruning rate: outright-skipped configs plus half credit per
    /// rule-3 early stop, as a percentage of the unpruned space.
    pub pruning_rate_pct: f64,
}

impl SearchCase {
    /// Stable case identity the comparator matches on.
    pub fn key(&self) -> String {
        format!("{}/prune={}", self.query, self.pruning)
    }
}

/// The search benchmark document (`BENCH_search.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchDoc {
    /// [`SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Always [`SEARCH_SUITE`].
    pub suite: String,
    /// Master seed the run used.
    pub seed: u64,
    /// Timed repeats per case.
    pub repeats: usize,
    /// Cost-model scale factor of the searched plans.
    pub sf: f64,
    /// Machine the document was measured on.
    pub host: HostInfo,
    /// The search cases.
    pub cases: Vec<SearchCase>,
}

/// A parsed BENCH document of either kind.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchDoc {
    /// `BENCH_engine.json`.
    Engine(EngineDoc),
    /// `BENCH_search.json`.
    Search(SearchDoc),
}

/// Parses a BENCH document, dispatching on its `suite` field.
///
/// # Errors
/// Returns a description when the text is not valid JSON for either
/// document kind or names an unknown suite.
pub fn parse_doc(text: &str) -> Result<BenchDoc, String> {
    if let Ok(doc) = serde_json::from_str::<EngineDoc>(text) {
        if doc.suite == ENGINE_SUITE {
            return Ok(BenchDoc::Engine(doc));
        }
    }
    if let Ok(doc) = serde_json::from_str::<SearchDoc>(text) {
        if doc.suite == SEARCH_SUITE {
            return Ok(BenchDoc::Search(doc));
        }
    }
    Err("not a BENCH document (expected an ftpde-engine or ftpde-search suite JSON)".to_string())
}

/// The engine queries of the matrix.
fn engine_queries() -> Vec<(&'static str, EnginePlan)> {
    vec![("Q1", q1_engine_plan()), ("Q3", q3_engine_plan()), ("Q5", q5_engine_plan())]
}

/// Resolves a matrix config spec over `dag`. `best` runs the cost-based
/// search under the paper's 1-hour-MTBF cluster.
fn mat_config(spec: &str, dag: &PlanDag, nodes: usize) -> MatConfig {
    match spec {
        "none" => MatConfig::none(dag),
        "all" => MatConfig::all(dag),
        "best" => {
            let cluster = ClusterConfig::new(nodes, mtbf::HOUR, 1.0);
            let params = Scheme::cost_params(&cluster);
            let (best, _) =
                find_best_ft_plan(std::slice::from_ref(dag), &params, &PruneOptions::default())
                    .expect("engine plans are valid candidates");
            best.config
        }
        other => unreachable!("not a matrix config: {other}"),
    }
}

/// Collapsed stage roots of `(dag, config)` — the injector's logical
/// stage coordinates.
fn stage_roots(dag: &PlanDag, config: &MatConfig) -> Vec<u32> {
    let collapsed = CollapsedPlan::collapse(dag, config, 1.0);
    collapsed.op_ids().map(|cid| collapsed.op(cid).root.0).collect()
}

/// One timed engine run on a fresh instance of `backend`.
fn timed_run(
    plan: &EnginePlan,
    config: &MatConfig,
    catalog: &Catalog,
    injector: &FailureInjector,
    backend: &str,
    rec: &dyn Recorder,
) -> (f64, RunReport) {
    let store: Box<dyn StoreBackend> = match backend {
        "mem" => Box::new(MemBackend::new()),
        "disk" => Box::new(DiskBackend::ephemeral().expect("temp dir for ephemeral store")),
        other => unreachable!("not a matrix backend: {other}"),
    };
    let t0 = Instant::now();
    let report = run_query_resumable_traced(
        plan,
        config,
        catalog,
        injector,
        &RunOptions::default(),
        &*store,
        None,
        rec,
    );
    (t0.elapsed().as_micros() as f64, report)
}

/// Aggregates one case's repeats into an [`EngineCase`].
#[allow(clippy::too_many_arguments)]
fn run_engine_case(
    query: &str,
    spec: &str,
    backend: &str,
    failures: bool,
    plan: &EnginePlan,
    config: &MatConfig,
    catalog: &Catalog,
    roots: &[u32],
    opts: &SuiteOptions,
    seeds: &mut SmallRng,
) -> EngineCase {
    let injector = |seed: u64| {
        if failures {
            FailureInjector::random_first_attempts(roots, opts.nodes, opts.failure_p, seed)
        } else {
            FailureInjector::none()
        }
    };
    for _ in 0..opts.warmup {
        let _ =
            timed_run(plan, config, catalog, &injector(seeds.next_u64()), backend, &NoopRecorder);
    }
    let mut walls = Vec::with_capacity(opts.repeats);
    let mut retries = 0u64;
    let mut restarts = 0u64;
    let mut bytes = 0u64;
    // stage id -> (per-repeat summed wall_us, total retries)
    let mut stages: std::collections::BTreeMap<u32, (Vec<f64>, u64)> =
        std::collections::BTreeMap::new();
    for _ in 0..opts.repeats {
        let (wall, report) =
            timed_run(plan, config, catalog, &injector(seeds.next_u64()), backend, &NoopRecorder);
        walls.push(wall);
        retries += report.node_retries;
        restarts += u64::from(report.query_restarts);
        bytes += report.bytes_materialized;
        let mut per_stage: std::collections::BTreeMap<u32, (f64, u64)> =
            std::collections::BTreeMap::new();
        for t in &report.stage_timings {
            let e = per_stage.entry(t.stage).or_insert((0.0, 0));
            e.0 += t.wall_us as f64;
            e.1 += t.retries;
        }
        for (stage, (wall_us, r)) in per_stage {
            let e = stages.entry(stage).or_insert_with(|| (Vec::new(), 0));
            e.0.push(wall_us);
            e.1 += r;
        }
    }
    let n = opts.repeats as f64;
    EngineCase {
        query: query.to_string(),
        config: spec.to_string(),
        backend: backend.to_string(),
        failures,
        wall_us: Stats::of(&walls),
        stages: stages
            .into_iter()
            .map(|(stage, (walls, r))| StageStat {
                stage,
                wall_us: Stats::of(&walls),
                retries: r as f64 / n,
            })
            .collect(),
        node_retries: retries as f64 / n,
        query_restarts: restarts as f64 / n,
        bytes_materialized: bytes as f64 / n,
    }
}

/// Measures the recorder's overhead: interleaved batches of
/// Q3/all/mem/clean runs with a [`NoopRecorder`] vs a live
/// [`MemoryRecorder`], reported as the median of the per-pair relative
/// slowdowns in percent. Batching [`SuiteOptions::overhead_batch`] runs
/// per sample amortizes thread-spawn jitter (which dominates single
/// millisecond-scale runs), and pairing cancels slow drift — each
/// traced sample is compared against the untraced sample taken right
/// next to it. Can come out negative on a noisy box; the comparator
/// only gates the upper budget.
fn measure_overhead(catalog: &Catalog, opts: &SuiteOptions) -> f64 {
    let plan = q3_engine_plan();
    let dag = plan.to_plan_dag();
    let config = MatConfig::all(&dag);
    let injector = FailureInjector::none();
    let batch = |rec: &dyn Recorder| -> f64 {
        let t0 = Instant::now();
        for _ in 0..opts.overhead_batch {
            let _ = run_query_resumable_traced(
                &plan,
                &config,
                catalog,
                &injector,
                &RunOptions::default(),
                &MemBackend::new(),
                None,
                rec,
            );
        }
        t0.elapsed().as_micros() as f64
    };
    // One throwaway pair warms code and allocator paths.
    let _ = (batch(&NoopRecorder), batch(&MemoryRecorder::new()));
    let mut ratios = Vec::with_capacity(opts.overhead_pairs);
    for i in 0..opts.overhead_pairs {
        // Alternate which side of the pair runs first so systematic
        // first-runner effects cancel over the pair set.
        let (u, t) = if i % 2 == 0 {
            let u = batch(&NoopRecorder);
            (u, batch(&MemoryRecorder::new()))
        } else {
            let t = batch(&MemoryRecorder::new());
            (batch(&NoopRecorder), t)
        };
        ratios.push((t - u) / u * 100.0);
    }
    Stats::of(&ratios).p50
}

/// Runs the full engine suite.
pub fn run_engine_suite(opts: &SuiteOptions) -> EngineDoc {
    let catalog = load_catalog(&Database::generate(opts.sf, opts.seed), opts.nodes);
    let mut seeds = SmallRng::seed_from_u64(opts.seed);
    let mut cases = Vec::new();
    for (query, plan) in engine_queries() {
        let dag = plan.to_plan_dag();
        for spec in ["none", "best", "all"] {
            let config = mat_config(spec, &dag, opts.nodes);
            let roots = stage_roots(&dag, &config);
            for backend in ["mem", "disk"] {
                for failures in [false, true] {
                    cases.push(run_engine_case(
                        query, spec, backend, failures, &plan, &config, &catalog, &roots, opts,
                        &mut seeds,
                    ));
                }
            }
        }
    }
    let store = store_micro::run()
        .into_iter()
        .map(|p| StoreCase {
            backend: p.backend.to_string(),
            row_width: p.width,
            mb_written: p.bytes as f64 / 1e6,
            write_mb_per_s: p.write_bytes_per_s.map(|b| b / 1e6),
            read_mb_per_s: p.read_bytes_per_s.map(|b| b / 1e6),
        })
        .collect();
    EngineDoc {
        schema_version: SCHEMA_VERSION,
        suite: ENGINE_SUITE.to_string(),
        seed: opts.seed,
        repeats: opts.repeats,
        warmup: opts.warmup,
        nodes: opts.nodes,
        sf: opts.sf,
        host: HostInfo::current(),
        overhead_pct: measure_overhead(&catalog, opts),
        cases,
        store,
    }
}

/// Runs the search suite.
pub fn run_search_suite(opts: &SuiteOptions) -> SearchDoc {
    let cm = CostModel::xdb_calibrated();
    let cluster = ClusterConfig::paper_cluster(mtbf::HOUR);
    let params = Scheme::cost_params(&cluster);
    let mut cases = Vec::new();
    for query in [Query::Q1, Query::Q3, Query::Q5] {
        let plan = query.plan(opts.search_sf, &cm);
        for (pruning, popts) in [("all", PruneOptions::default()), ("none", PruneOptions::none())] {
            let mut walls = Vec::with_capacity(opts.repeats.max(1));
            let mut stats = None;
            for _ in 0..opts.warmup {
                let _ = find_best_ft_plan(std::slice::from_ref(&plan), &params, &popts);
            }
            for _ in 0..opts.repeats.max(1) {
                let t0 = Instant::now();
                let (_, s) = find_best_ft_plan(std::slice::from_ref(&plan), &params, &popts)
                    .expect("costed TPC-H plans are valid candidates");
                walls.push(t0.elapsed().as_micros() as f64);
                stats = Some(s);
            }
            let s = stats.expect("at least one repeat ran");
            let pruned = s.configs_skipped() as f64 + 0.5 * s.rule3_stops() as f64;
            cases.push(SearchCase {
                query: format!("{query:?}"),
                pruning: pruning.to_string(),
                wall_us: Stats::of(&walls),
                configs_unpruned: s.configs_unpruned,
                configs_explored: s.configs_explored,
                configs_pruned_rule1: s.configs_pruned_rule1,
                configs_pruned_rule2: s.configs_pruned_rule2,
                rule3_stops: s.rule3_stops(),
                memo_hits: s.rule3_memo_stops,
                paths_costed: s.paths_costed,
                pruning_rate_pct: pruned / s.configs_unpruned as f64 * 100.0,
            });
        }
    }
    SearchDoc {
        schema_version: SCHEMA_VERSION,
        suite: SEARCH_SUITE.to_string(),
        seed: opts.seed,
        repeats: opts.repeats.max(1),
        sf: opts.search_sf,
        host: HostInfo::current(),
        cases,
    }
}

/// One detected regression.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Regression {
    /// Case key (e.g. `Q3/all/disk/failures` or `Q5/prune=all`).
    pub case: String,
    /// The regressed metric.
    pub metric: String,
    /// Baseline value.
    pub old: f64,
    /// New value.
    pub new: f64,
    /// Relative change in percent (positive = worse).
    pub change_pct: f64,
}

impl Regression {
    /// One-line human rendering.
    pub fn render(&self) -> String {
        format!(
            "REGRESSION {}: {} {:.3} -> {:.3} ({:+.1}%)",
            self.case, self.metric, self.old, self.new, self.change_pct
        )
    }
}

/// Absolute slack added to wall-time gates, microseconds. The suite's
/// engine cases run in single-digit milliseconds, where OS scheduler
/// jitter alone swings samples by more than any sane relative tolerance;
/// a couple of milliseconds of slack absorbs that without masking real
/// regressions on runs long enough to measure.
pub const WALL_SLACK_US: f64 = 2_000.0;

/// Flags `new > old * (1 + tol) + slack` (for higher-is-worse metrics).
fn worse_up(
    case: &str,
    metric: &str,
    old: f64,
    new: f64,
    tol_pct: f64,
    slack: f64,
    out: &mut Vec<Regression>,
) {
    if old > 0.0 && new > old * (1.0 + tol_pct / 100.0) + slack {
        out.push(Regression {
            case: case.to_string(),
            metric: metric.to_string(),
            old,
            new,
            change_pct: (new - old) / old * 100.0,
        });
    }
}

/// Flags `new < old * (1 - tol)` (for higher-is-better metrics).
fn worse_down(
    case: &str,
    metric: &str,
    old: f64,
    new: f64,
    tol_pct: f64,
    out: &mut Vec<Regression>,
) {
    if old > 0.0 && new < old * (1.0 - tol_pct / 100.0) {
        out.push(Regression {
            case: case.to_string(),
            metric: metric.to_string(),
            old,
            new,
            change_pct: (new - old) / old * 100.0,
        });
    }
}

/// Flags a case present in the baseline but absent from the new run —
/// silently dropping coverage must fail the gate like a slowdown would.
fn missing(case: &str, out: &mut Vec<Regression>) {
    out.push(Regression {
        case: case.to_string(),
        metric: "case missing from new run".to_string(),
        old: 1.0,
        new: 0.0,
        change_pct: -100.0,
    });
}

/// Compares two engine documents; returns every regression beyond
/// `tol_pct`.
pub fn compare_engine(old: &EngineDoc, new: &EngineDoc, tol_pct: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    if old.schema_version != new.schema_version {
        out.push(Regression {
            case: "document".to_string(),
            metric: "schema_version mismatch".to_string(),
            old: f64::from(old.schema_version),
            new: f64::from(new.schema_version),
            change_pct: 0.0,
        });
        return out;
    }
    for oc in &old.cases {
        let key = oc.key();
        let Some(nc) = new.cases.iter().find(|c| c.key() == key) else {
            missing(&key, &mut out);
            continue;
        };
        worse_up(
            &key,
            "wall_us.p50",
            oc.wall_us.p50,
            nc.wall_us.p50,
            tol_pct,
            WALL_SLACK_US,
            &mut out,
        );
        // A p99 of fewer than five samples is just the max of a noisy
        // handful — only gate it when both sides measured enough repeats.
        if oc.wall_us.count >= 5 && nc.wall_us.count >= 5 {
            worse_up(
                &key,
                "wall_us.p99",
                oc.wall_us.p99,
                nc.wall_us.p99,
                tol_pct * 2.0,
                WALL_SLACK_US,
                &mut out,
            );
        }
    }
    for os in &old.store {
        let key = os.key();
        let Some(ns) = new.store.iter().find(|s| s.key() == key) else {
            missing(&key, &mut out);
            continue;
        };
        // Only the disk backend's throughput is gated: it is the measured
        // `tm(o)` of the paper's cost model, and real I/O makes it a
        // stable signal. The mem workload finishes in microseconds, where
        // clock granularity swings the quotient by integer factors — it
        // stays in the document as context but cannot gate.
        if os.backend != "disk" {
            continue;
        }
        if let (Some(o), Some(n)) = (os.write_mb_per_s, ns.write_mb_per_s) {
            worse_down(&key, "write_mb_per_s", o, n, tol_pct, &mut out);
        }
        if let (Some(o), Some(n)) = (os.read_mb_per_s, ns.read_mb_per_s) {
            worse_down(&key, "read_mb_per_s", o, n, tol_pct, &mut out);
        }
    }
    // The instrumentation budget is an absolute gate (< 5% on the mem
    // backend), scaled by the tolerance so smoke runs on noisy CI
    // runners don't flake.
    let budget = 5.0 * (1.0 + tol_pct / 100.0);
    if new.overhead_pct > budget {
        out.push(Regression {
            case: "instrumentation".to_string(),
            metric: format!("overhead_pct above budget {budget:.1}"),
            old: old.overhead_pct,
            new: new.overhead_pct,
            change_pct: new.overhead_pct - old.overhead_pct,
        });
    }
    out
}

/// Compares two search documents; returns every regression beyond
/// `tol_pct`. Wall time is tolerance-gated; the deterministic counters
/// (explored configs, costed paths) regress on *any* increase beyond
/// tolerance, and the pruning rate on any drop beyond a tenth of it —
/// those only move when the search itself changed.
pub fn compare_search(old: &SearchDoc, new: &SearchDoc, tol_pct: f64) -> Vec<Regression> {
    let mut out = Vec::new();
    if old.schema_version != new.schema_version {
        out.push(Regression {
            case: "document".to_string(),
            metric: "schema_version mismatch".to_string(),
            old: f64::from(old.schema_version),
            new: f64::from(new.schema_version),
            change_pct: 0.0,
        });
        return out;
    }
    for oc in &old.cases {
        let key = oc.key();
        let Some(nc) = new.cases.iter().find(|c| c.key() == key) else {
            missing(&key, &mut out);
            continue;
        };
        worse_up(
            &key,
            "wall_us.p50",
            oc.wall_us.p50,
            nc.wall_us.p50,
            tol_pct,
            WALL_SLACK_US,
            &mut out,
        );
        let counter_tol = (tol_pct / 10.0).max(1.0);
        worse_up(
            &key,
            "configs_explored",
            oc.configs_explored as f64,
            nc.configs_explored as f64,
            counter_tol,
            0.0,
            &mut out,
        );
        worse_up(
            &key,
            "paths_costed",
            oc.paths_costed as f64,
            nc.paths_costed as f64,
            counter_tol,
            0.0,
            &mut out,
        );
        worse_down(
            &key,
            "pruning_rate_pct",
            oc.pruning_rate_pct,
            nc.pruning_rate_pct,
            counter_tol,
            &mut out,
        );
    }
    out
}

/// Compares two parsed documents of the same kind.
///
/// # Errors
/// Returns a description when the documents are of different kinds.
pub fn compare(old: &BenchDoc, new: &BenchDoc, tol_pct: f64) -> Result<Vec<Regression>, String> {
    match (old, new) {
        (BenchDoc::Engine(o), BenchDoc::Engine(n)) => Ok(compare_engine(o, n, tol_pct)),
        (BenchDoc::Search(o), BenchDoc::Search(n)) => Ok(compare_search(o, n, tol_pct)),
        _ => Err("cannot compare an engine document against a search document".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SuiteOptions {
        SuiteOptions {
            repeats: 1,
            warmup: 0,
            overhead_pairs: 1,
            overhead_batch: 1,
            ..SuiteOptions::default()
        }
    }

    #[test]
    fn stats_quantiles_are_exact_on_small_samples() {
        let s = Stats::of(&[3.0, 1.0, 2.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.mean, 2.0);
        let one = Stats::of(&[7.0]);
        assert_eq!(one.p50, 7.0);
        assert_eq!(one.p99, 7.0);
    }

    #[test]
    fn engine_suite_covers_the_full_matrix_and_round_trips() {
        let doc = run_engine_suite(&tiny());
        assert_eq!(doc.schema_version, SCHEMA_VERSION);
        assert_eq!(doc.suite, ENGINE_SUITE);
        // 3 queries × 3 configs × 2 backends × 2 failure modes.
        assert_eq!(doc.cases.len(), 36);
        let keys: std::collections::BTreeSet<String> =
            doc.cases.iter().map(EngineCase::key).collect();
        assert_eq!(keys.len(), 36, "case keys must be unique");
        assert!(keys.contains("Q3/all/disk/failures"));
        for c in &doc.cases {
            assert!(c.wall_us.p50 > 0.0, "{}: no wall time", c.key());
            assert!(!c.stages.is_empty(), "{}: no stage stats", c.key());
            assert!(c.wall_us.p50 <= c.wall_us.p99, "{}: quantiles not monotone", c.key());
        }
        // Failure-injected fine-grained cases actually retried.
        let faulty = doc.cases.iter().find(|c| c.key() == "Q3/all/mem/failures").unwrap();
        assert!(faulty.node_retries > 0.0);
        assert!(!doc.store.is_empty());
        let json = serde_json::to_string_pretty(&doc).unwrap();
        match parse_doc(&json).unwrap() {
            BenchDoc::Engine(back) => assert_eq!(back, doc),
            BenchDoc::Search(_) => panic!("round-tripped into the wrong kind"),
        }
    }

    #[test]
    fn search_suite_reports_pruning_effect_and_round_trips() {
        let doc = run_search_suite(&tiny());
        assert_eq!(doc.suite, SEARCH_SUITE);
        assert_eq!(doc.cases.len(), 6);
        for q in ["Q1", "Q3", "Q5"] {
            let all = doc.cases.iter().find(|c| c.key() == format!("{q}/prune=all")).unwrap();
            let none = doc.cases.iter().find(|c| c.key() == format!("{q}/prune=none")).unwrap();
            // The unpruned space is pruning-invariant; exploration with
            // rules enabled never exceeds exploration without them.
            assert_eq!(all.configs_unpruned, none.configs_unpruned);
            assert!(all.configs_explored <= none.configs_explored);
            assert_eq!(none.pruning_rate_pct, 0.0);
            assert!(all.pruning_rate_pct >= 0.0);
        }
        let json = serde_json::to_string_pretty(&doc).unwrap();
        match parse_doc(&json).unwrap() {
            BenchDoc::Search(back) => assert_eq!(back, doc),
            BenchDoc::Engine(_) => panic!("round-tripped into the wrong kind"),
        }
    }

    #[test]
    fn comparator_flags_injected_regressions_and_passes_identity() {
        let mut doc = run_engine_suite(&tiny());
        // A single unwarmed pair measures overhead too noisily to trust
        // the absolute budget gate in a unit test; pin it so the
        // comparator checks below are deterministic.
        doc.overhead_pct = 1.0;
        // Scale wall times from the tiny run's milliseconds up to
        // seconds so the jitter slack is negligible against the
        // injected relative changes below.
        for c in &mut doc.cases {
            c.wall_us.mean *= 1e4;
            c.wall_us.min *= 1e4;
            c.wall_us.max *= 1e4;
            c.wall_us.p50 *= 1e4;
            c.wall_us.p90 *= 1e4;
            c.wall_us.p99 *= 1e4;
        }
        assert!(compare_engine(&doc, &doc, 10.0).is_empty(), "identity must pass");

        // Inject a 3x wall-time regression into one case.
        let mut slower = doc.clone();
        let c = &mut slower.cases[0];
        let key = c.key();
        c.wall_us.p50 *= 3.0;
        c.wall_us.p99 *= 3.0;
        let regs = compare_engine(&doc, &slower, 25.0);
        assert!(
            regs.iter().any(|r| r.case == key && r.metric == "wall_us.p50"),
            "3x p50 must regress: {regs:?}"
        );
        // Within tolerance: a 3x change passes a 300% gate.
        assert!(compare_engine(&doc, &slower, 300.0).is_empty());

        // A dropped case is a regression.
        let mut dropped = doc.clone();
        dropped.cases.remove(0);
        assert!(compare_engine(&doc, &dropped, 25.0).iter().any(|r| r.metric.contains("missing")));

        // Store throughput collapse is a regression (gated on the disk
        // backend only — mem intervals are too short to time reliably).
        let mut slow_store = doc.clone();
        if let Some(p) =
            slow_store.store.iter_mut().find(|s| s.backend == "disk" && s.write_mb_per_s.is_some())
        {
            p.write_mb_per_s = p.write_mb_per_s.map(|v| v / 10.0);
        }
        assert!(compare_engine(&doc, &slow_store, 25.0)
            .iter()
            .any(|r| r.metric == "write_mb_per_s"));

        // Blowing the instrumentation budget is a regression.
        let mut heavy = doc.clone();
        heavy.overhead_pct = 50.0;
        assert!(compare_engine(&doc, &heavy, 25.0)
            .iter()
            .any(|r| r.metric.contains("overhead_pct")));
    }

    #[test]
    fn search_comparator_flags_counter_increases() {
        let doc = run_search_suite(&tiny());
        assert!(compare_search(&doc, &doc, 10.0).is_empty());
        let mut worse = doc.clone();
        worse.cases[0].paths_costed *= 4;
        worse.cases[0].pruning_rate_pct = 0.0;
        let regs = compare_search(&doc, &worse, 25.0);
        assert!(regs.iter().any(|r| r.metric == "paths_costed"), "{regs:?}");
    }

    #[test]
    fn comparator_refuses_cross_kind_and_cross_schema() {
        let old = run_engine_suite(&tiny());
        let engine = BenchDoc::Engine(old.clone());
        let search = BenchDoc::Search(run_search_suite(&tiny()));
        assert!(compare(&engine, &search, 10.0).is_err());
        let mut newer = old.clone();
        newer.schema_version += 1;
        let regs = compare_engine(&old, &newer, 10.0);
        assert!(regs.iter().any(|r| r.metric.contains("schema_version")));
    }
}
