//! Shared experiment plumbing for the overhead figures (8, 10, 11).

use ftpde_cluster::config::ClusterConfig;
use ftpde_cluster::trace::TraceSet;
use ftpde_core::dag::PlanDag;
use ftpde_sim::metrics::{run_all_schemes, suggested_horizon, SchemeRun};
use ftpde_sim::scheme::Scheme;
use ftpde_sim::simulate::SimOptions;

/// Overheads of all four schemes on `plan` under `cluster`, averaged over
/// `n_traces` paired failure traces (`None` = every trace aborted, the
/// paper's "Aborted").
pub fn scheme_overheads(
    plan: &PlanDag,
    cluster: &ClusterConfig,
    n_traces: usize,
    seed: u64,
) -> Vec<(Scheme, Option<f64>)> {
    runs(plan, cluster, n_traces, seed)
        .into_iter()
        .map(|r| (r.scheme, r.mean_overhead_pct()))
        .collect()
}

/// Full per-scheme runs (for harnesses that need completion times or
/// configs, e.g. Figure 12).
pub fn runs(plan: &PlanDag, cluster: &ClusterConfig, n_traces: usize, seed: u64) -> Vec<SchemeRun> {
    let opts = SimOptions::default();
    let horizon = suggested_horizon(plan, cluster, &opts);
    let traces = TraceSet::generate(cluster, horizon, n_traces, seed);
    run_all_schemes(plan, cluster, &traces, &opts).expect("schemes run on valid plans")
}

/// Number of traces per measurement, as in the paper (§5.2).
pub const TRACES: usize = 10;

#[cfg(test)]
mod tests {
    use super::*;
    use ftpde_cluster::config::mtbf;
    use ftpde_optimizer::physical::CostModel;
    use ftpde_tpch::queries::q3_plan;

    #[test]
    fn overheads_come_back_for_all_four_schemes() {
        let plan = q3_plan(10.0, &CostModel::xdb_calibrated());
        let cluster = ClusterConfig::paper_cluster(mtbf::DAY);
        let out = scheme_overheads(&plan, &cluster, 3, 1);
        assert_eq!(out.len(), 4);
        for (_, oh) in &out {
            if let Some(v) = oh {
                assert!(*v >= -1e-9, "overhead cannot be negative: {v}");
            }
        }
    }
}
