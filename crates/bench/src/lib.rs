//! # ftpde-bench — experiment harnesses
//!
//! One module per table/figure of the paper's evaluation (§5). Every
//! module exposes a `run()` returning plain data and a `print()` that
//! emits the same rows/series the paper reports; the `benches/` targets
//! call both, so `cargo bench` regenerates the whole evaluation.
//!
//! | module | reproduces |
//! |--------|------------|
//! | [`fig01`] | Figure 1 — probability of success of a query |
//! | [`tab02`] | Table 2 / Figure 3 — worked cost-estimation example |
//! | [`fig08`] | Figure 8 — overhead across queries (low/high MTBF) |
//! | [`fig10`] | Figure 10 — overhead vs query runtime |
//! | [`fig11`] | Figure 11 — overhead vs MTBF |
//! | [`fig12`] | Figure 12 — accuracy of the cost model |
//! | [`tab03`] | Table 3 — robustness to statistics errors |
//! | [`fig13`] | Figure 13 — effectiveness of the pruning rules |

pub mod ablation;
pub mod common;
pub mod diagrams;
pub mod fig01;
pub mod fig08;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod report;
pub mod store_micro;
pub mod suite;
pub mod tab02;
pub mod tab03;
