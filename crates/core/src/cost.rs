//! The cost model for query runtime under mid-query failures
//! (paper §3.5, Equations 2–8).
//!
//! For a collapsed operator `c` with failure-free runtime `t(c)`:
//!
//! * probability that `c` fails during one attempt:
//!   `η(c) = 1 − e^(−t(c)/MTBF_cost)`; success `γ(c) = 1 − η(c)`;
//! * expected runtime wasted per failure (Eq. 3):
//!   `w(c) = MTBF_cost − t(c) / (e^(t(c)/MTBF_cost) − 1)`,
//!   approximated by `t(c)/2` (Eq. 4) — the paper's default, since
//!   `w(c) → t(c)/2` already for `MTBF_cost > t(c)`;
//! * number of *additional* attempts needed to reach the target success
//!   percentile `S` (Eq. 6):
//!   `a(c) = max(ln(1 − S)/ln(η(c)) − 1, 0)`;
//! * total runtime of the operator under failures (Eq. 8):
//!   `T(c) = t(c) + a(c)·w(c) + a(c)·MTTR_cost`;
//! * total runtime of an execution path (Eq. 7): `T_Pt = Σ_{c∈Pt} T(c)`.
//!
//! `MTBF_cost = MTBF · CONST_cost` and `MTTR_cost = MTTR · CONST_cost`
//! convert wall-clock reliability statistics into the engine's internal
//! cost unit; the paper's evaluation uses `CONST_cost = 1` (costs are
//! seconds).

use std::ops::ControlFlow;

use serde::{Deserialize, Serialize};

use crate::collapse::{CId, CollapsedPlan};
use crate::config::MatConfig;
use crate::dag::PlanDag;
use crate::error::{CoreError, Result};
use crate::paths::for_each_path;

/// How the expected wasted runtime per failure `w(c)` is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WastedTimeModel {
    /// The paper's default approximation `w(c) = t(c)/2` (Eq. 4).
    #[default]
    HalfRuntime,
    /// The exact expectation of Eq. 3,
    /// `w(c) = MTBF_cost − t(c)/(e^(t(c)/MTBF_cost) − 1)`.
    Exact,
}

/// Parameters of the cost model.
///
/// Construct with [`CostParams::new`] and customize via the with-methods:
///
/// ```
/// use ftpde_core::cost::CostParams;
///
/// let params = CostParams::new(3600.0, 1.0) // MTBF 1 h, MTTR 1 s
///     .with_success_target(0.95)
///     .with_pipe_const(1.0);
/// assert_eq!(params.mtbf_cost, 3600.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Mean time between failures of one node, in internal cost units
    /// (`MTBF · CONST_cost`).
    pub mtbf_cost: f64,
    /// Mean time to repair/redeploy, in internal cost units.
    pub mttr_cost: f64,
    /// Target success percentile `S` used to size the number of attempts;
    /// the paper uses `S = 0.95` throughout.
    pub success_target: f64,
    /// `CONST_pipe ∈ (0, 1]`: pipeline-parallelism factor applied to
    /// multi-operator collapsed sub-plans (Eq. 1). The paper's calibration
    /// on XDB yielded `1.0`.
    pub pipe_const: f64,
    /// Wasted-runtime model (Eq. 3 exact vs Eq. 4 approximation).
    pub wasted_model: WastedTimeModel,
}

impl CostParams {
    /// Creates parameters with the paper's defaults: `S = 0.95`,
    /// `CONST_pipe = 1`, `w(c) = t(c)/2`.
    pub fn new(mtbf_cost: f64, mttr_cost: f64) -> Self {
        CostParams {
            mtbf_cost,
            mttr_cost,
            success_target: 0.95,
            pipe_const: 1.0,
            wasted_model: WastedTimeModel::HalfRuntime,
        }
    }

    /// Sets the target success percentile `S ∈ (0, 1)`.
    pub fn with_success_target(mut self, s: f64) -> Self {
        self.success_target = s;
        self
    }

    /// Sets `CONST_pipe ∈ (0, 1]`.
    pub fn with_pipe_const(mut self, pipe: f64) -> Self {
        self.pipe_const = pipe;
        self
    }

    /// Selects the wasted-runtime model.
    pub fn with_wasted_model(mut self, model: WastedTimeModel) -> Self {
        self.wasted_model = model;
        self
    }

    /// Validates the parameter domain.
    pub fn validate(&self) -> Result<()> {
        if !(self.mtbf_cost.is_finite() && self.mtbf_cost > 0.0) {
            return Err(CoreError::InvalidParameter { what: "MTBF_cost", value: self.mtbf_cost });
        }
        if !(self.mttr_cost.is_finite() && self.mttr_cost >= 0.0) {
            return Err(CoreError::InvalidParameter { what: "MTTR_cost", value: self.mttr_cost });
        }
        if !(self.success_target > 0.0 && self.success_target < 1.0) {
            return Err(CoreError::InvalidParameter {
                what: "success_target",
                value: self.success_target,
            });
        }
        if !(self.pipe_const > 0.0 && self.pipe_const <= 1.0) {
            return Err(CoreError::InvalidParameter { what: "pipe_const", value: self.pipe_const });
        }
        Ok(())
    }

    /// `γ(c) = e^(−t/MTBF_cost)`: probability that an operator with runtime
    /// `t` completes without a failure on one node.
    #[inline]
    pub fn success_probability(&self, t: f64) -> f64 {
        (-t / self.mtbf_cost).exp()
    }

    /// `η(c) = 1 − γ(c)`: probability that one attempt fails.
    #[inline]
    pub fn failure_probability(&self, t: f64) -> f64 {
        -(-t / self.mtbf_cost).exp_m1()
    }

    /// Expected runtime wasted by one failure during an operator of
    /// runtime `t` (Eq. 3 or Eq. 4 depending on the configured model).
    #[inline]
    pub fn wasted_runtime(&self, t: f64) -> f64 {
        match self.wasted_model {
            WastedTimeModel::HalfRuntime => t / 2.0,
            WastedTimeModel::Exact => {
                if t == 0.0 {
                    0.0
                } else {
                    self.mtbf_cost - t / (t / self.mtbf_cost).exp_m1()
                }
            }
        }
    }

    /// `a(c)`: number of additional attempts (beyond the first) needed for
    /// an operator of runtime `t` to reach the success percentile `S`
    /// (Eq. 6). Fractional by design — the paper plugs the real-valued
    /// solution of the geometric series into Eq. 8.
    pub fn attempts(&self, t: f64) -> f64 {
        let eta = self.failure_probability(t);
        if eta <= 0.0 {
            return 0.0;
        }
        if eta >= 1.0 {
            return f64::INFINITY;
        }
        ((1.0 - self.success_target).ln() / eta.ln() - 1.0).max(0.0)
    }

    /// `T(c)` (Eq. 8): total expected runtime of an operator of
    /// failure-free runtime `t`, including wasted re-execution time and
    /// redeployment cost.
    pub fn op_cost(&self, t: f64) -> f64 {
        let a = self.attempts(t);
        t + a * self.wasted_runtime(t) + a * self.mttr_cost
    }
}

/// Cost of an execution path `Pt` *with* recovery costs: `T_Pt` (Eq. 7).
pub fn path_cost(plan: &CollapsedPlan, path: &[CId], params: &CostParams) -> f64 {
    path.iter().map(|&c| params.op_cost(plan.op(c).total_cost())).sum()
}

/// Cost of an execution path without failures: `R_Pt = Σ t(c)`.
pub fn path_runtime(plan: &CollapsedPlan, path: &[CId]) -> f64 {
    path.iter().map(|&c| plan.op(c).total_cost()).sum()
}

/// The cost estimate of one fault-tolerant plan `[P, M_P]`: the collapsed
/// plan together with its dominant execution path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FtEstimate {
    /// The collapsed plan the estimate was computed over.
    pub collapsed: CollapsedPlan,
    /// The dominant (maximal-cost) execution path.
    pub dominant_path: Vec<CId>,
    /// `T_Pt` of the dominant path — the plan's estimated runtime under
    /// mid-query failures.
    pub dominant_cost: f64,
    /// `R_Pt` of the dominant path — its runtime without failures.
    pub dominant_runtime: f64,
    /// Number of execution paths examined.
    pub paths_examined: u64,
}

/// Predicted cost decomposition of one collapsed stage under a
/// [`CostParams`]: the terms of Eq. 8 spelled out so the observability
/// layer can compare each one against what the simulator or engine
/// actually observed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageEstimate {
    /// Collapsed-operator index ([`CId`]) — the simulator's stage number.
    pub stage: u32,
    /// Plan operator id of the stage's root — the engine's stage number.
    pub root: u32,
    /// `tr(c)`: failure-free runtime of the stage.
    pub run_cost: f64,
    /// `tm(c)`: materialization penalty of the stage.
    pub mat_cost: f64,
    /// `a(c)`: additional attempts budgeted to reach the success target.
    pub attempts: f64,
    /// `a(c) · (w(c) + MTTR_cost)`: predicted time lost to failures.
    pub recovery_cost: f64,
    /// `T(c) = t(c) + recovery_cost`: total predicted stage cost (Eq. 8).
    pub ft_cost: f64,
    /// `true` iff the stage lies on the dominant execution path.
    pub on_dominant_path: bool,
}

/// An [`FtEstimate`] decomposed per stage — the predicted side of the
/// calibration join (serialize it, or feed it to `simulate_traced` /
/// `run_query_traced`, which tag their stage spans with these numbers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateBreakdown {
    /// `T_Pt` of the dominant path (the plan's headline prediction).
    pub dominant_cost: f64,
    /// `R_Pt` of the dominant path (prediction without failures).
    pub dominant_runtime: f64,
    /// One entry per collapsed stage, in [`CId`] order.
    pub stages: Vec<StageEstimate>,
}

impl EstimateBreakdown {
    /// The stage estimate whose root plan operator is `root`, if any —
    /// the lookup the execution engine joins on.
    pub fn by_root(&self, root: u32) -> Option<&StageEstimate> {
        self.stages.iter().find(|s| s.root == root)
    }
}

impl FtEstimate {
    /// Decomposes the estimate into per-stage predicted costs under
    /// `params` (which must be the parameters the estimate was computed
    /// with, or the recovery terms will not match the search's).
    pub fn breakdown(&self, params: &CostParams) -> EstimateBreakdown {
        let stages = self
            .collapsed
            .iter()
            .map(|(id, c)| {
                let t = c.total_cost();
                let attempts = params.attempts(t);
                let recovery_cost = attempts * (params.wasted_runtime(t) + params.mttr_cost);
                StageEstimate {
                    stage: id.0,
                    root: c.root.0,
                    run_cost: c.run_cost,
                    mat_cost: c.mat_cost,
                    attempts,
                    recovery_cost,
                    ft_cost: params.op_cost(t),
                    on_dominant_path: self.dominant_path.contains(&id),
                }
            })
            .collect();
        EstimateBreakdown {
            dominant_cost: self.dominant_cost,
            dominant_runtime: self.dominant_runtime,
            stages,
        }
    }
}

/// Estimates the runtime of the fault-tolerant plan `[plan, config]` under
/// mid-query failures: collapses the plan, enumerates all execution paths
/// and returns the dominant one (steps 2–4 of the paper's procedure).
pub fn estimate_ft_plan(plan: &PlanDag, config: &MatConfig, params: &CostParams) -> FtEstimate {
    let collapsed = CollapsedPlan::collapse(plan, config, params.pipe_const);
    let mut dominant_path = Vec::new();
    let mut dominant_cost = f64::NEG_INFINITY;
    let mut dominant_runtime = 0.0;
    let mut paths_examined = 0u64;
    for_each_path::<()>(&collapsed, |p| {
        paths_examined += 1;
        let c = path_cost(&collapsed, p, params);
        if c > dominant_cost {
            dominant_cost = c;
            dominant_runtime = path_runtime(&collapsed, p);
            dominant_path = p.to_vec();
        }
        ControlFlow::Continue(())
    });
    FtEstimate { collapsed, dominant_path, dominant_cost, dominant_runtime, paths_examined }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::figure2_plan;
    use crate::operator::OpId;

    fn table2_params() -> CostParams {
        CostParams::new(60.0, 0.0)
    }

    fn figure3_setup() -> (PlanDag, MatConfig) {
        let plan = figure2_plan();
        let cfg =
            MatConfig::from_materialized_free_ops(&plan, &[OpId(2), OpId(4), OpId(5), OpId(6)])
                .unwrap();
        (plan, cfg)
    }

    #[test]
    fn table2_success_probabilities() {
        let p = table2_params();
        // Table 2 row γ(c): 0.94, 0.95, 0.98, 0.96 for t = 4, 3, 1, 2.
        assert!((p.success_probability(4.0) - 0.94).abs() < 0.005);
        assert!((p.success_probability(3.0) - 0.95).abs() < 0.005);
        assert!((p.success_probability(1.0) - 0.98).abs() < 0.005);
        // (exact γ(2) = 0.967; the paper's table rounds it down to 0.96)
        assert!((p.success_probability(2.0) - 0.96).abs() < 0.01);
    }

    #[test]
    fn table2_attempts_with_paper_rounding() {
        // The paper computes a({1,2,3}) = 0.0648 from η rounded to 0.06.
        let s: f64 = 0.95;
        let eta_rounded: f64 = 0.06;
        let a = (1.0 - s).ln() / eta_rounded.ln() - 1.0;
        assert!((a - 0.0648).abs() < 1e-3, "paper's rounded value, got {a}");
        // Exact arithmetic gives a slightly larger value.
        let p = table2_params();
        let a_exact = p.attempts(4.0);
        assert!((a_exact - 0.0929).abs() < 1e-3, "exact value, got {a_exact}");
        // Operators with t = 3, 1, 2 need no extra attempt at S = 0.95.
        assert_eq!(p.attempts(3.0), 0.0);
        assert_eq!(p.attempts(1.0), 0.0);
        assert_eq!(p.attempts(2.0), 0.0);
    }

    #[test]
    fn table2_path_costs_and_dominant_path() {
        let (plan, cfg) = figure3_setup();
        let params = table2_params();
        let est = estimate_ft_plan(&plan, &cfg, &params);
        assert_eq!(est.paths_examined, 2);
        // Exact arithmetic: TPt1 = 8.186, TPt2 = 9.186 (paper reports
        // 8.13 / 9.13 from rounded η; the difference is only the a(c) of
        // the first collapsed operator).
        let t1 = path_cost(&est.collapsed, &[CId(0), CId(1), CId(2)], &params);
        let t2 = path_cost(&est.collapsed, &[CId(0), CId(1), CId(3)], &params);
        assert!((t1 - 8.13).abs() < 0.06, "TPt1 = {t1}");
        assert!((t2 - 9.13).abs() < 0.06, "TPt2 = {t2}");
        // Pt2 is dominant, as in Figure 3 step 4.
        assert_eq!(est.dominant_path, vec![CId(0), CId(1), CId(3)]);
        assert!((est.dominant_cost - t2).abs() < 1e-12);
        assert_eq!(est.dominant_runtime, 9.0);
    }

    #[test]
    fn wasted_runtime_half_model() {
        let p = table2_params();
        assert_eq!(p.wasted_runtime(4.0), 2.0);
        assert_eq!(p.wasted_runtime(0.0), 0.0);
    }

    #[test]
    fn wasted_runtime_exact_model_limits() {
        let p = table2_params().with_wasted_model(WastedTimeModel::Exact);
        // Exact w is always below t/2 and approaches it as MTBF >> t.
        for &t in &[0.1, 1.0, 10.0, 60.0, 600.0] {
            let w = p.wasted_runtime(t);
            assert!(w > 0.0 && w < t / 2.0 + 1e-12, "w({t}) = {w}");
        }
        let long_mtbf = CostParams::new(1e9, 0.0).with_wasted_model(WastedTimeModel::Exact);
        let w = long_mtbf.wasted_runtime(10.0);
        assert!((w - 5.0).abs() < 1e-3, "limit MTBF→∞ gives t/2, got {w}");
        assert_eq!(p.wasted_runtime(0.0), 0.0);
    }

    #[test]
    fn attempts_edge_cases() {
        let p = table2_params();
        assert_eq!(p.attempts(0.0), 0.0);
        // t >> MTBF: η → 1, attempts diverge.
        assert!(p.attempts(1e9).is_infinite());
        // Larger S needs at least as many attempts.
        let p90 = table2_params().with_success_target(0.90);
        let p99 = table2_params().with_success_target(0.99);
        assert!(p99.attempts(10.0) >= p90.attempts(10.0));
    }

    #[test]
    fn op_cost_includes_mttr_per_attempt() {
        let no_repair = CostParams::new(10.0, 0.0);
        let with_repair = CostParams::new(10.0, 5.0);
        let t = 8.0;
        let a = no_repair.attempts(t);
        assert!(a > 0.0);
        let diff = with_repair.op_cost(t) - no_repair.op_cost(t);
        assert!((diff - a * 5.0).abs() < 1e-9);
    }

    #[test]
    fn validate_domains() {
        assert!(CostParams::new(60.0, 0.0).validate().is_ok());
        assert!(CostParams::new(0.0, 0.0).validate().is_err());
        assert!(CostParams::new(-1.0, 0.0).validate().is_err());
        assert!(CostParams::new(60.0, -1.0).validate().is_err());
        assert!(CostParams::new(60.0, 0.0).with_success_target(1.0).validate().is_err());
        assert!(CostParams::new(60.0, 0.0).with_success_target(0.0).validate().is_err());
        assert!(CostParams::new(60.0, 0.0).with_pipe_const(0.0).validate().is_err());
        assert!(CostParams::new(60.0, 0.0).with_pipe_const(1.5).validate().is_err());
    }

    #[test]
    fn gamma_eta_sum_to_one() {
        let p = table2_params();
        for &t in &[0.0, 0.5, 1.0, 10.0, 100.0] {
            let sum = p.success_probability(t) + p.failure_probability(t);
            assert!((sum - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn breakdown_terms_sum_to_the_stage_cost() {
        let (plan, cfg) = figure3_setup();
        let params = table2_params();
        let est = estimate_ft_plan(&plan, &cfg, &params);
        let b = est.breakdown(&params);
        assert_eq!(b.stages.len(), est.collapsed.len());
        assert_eq!(b.dominant_cost, est.dominant_cost);
        for s in &b.stages {
            let t = s.run_cost + s.mat_cost;
            assert!((s.ft_cost - (t + s.recovery_cost)).abs() < 1e-12, "Eq. 8 partition");
            assert!(
                (s.recovery_cost - s.attempts * (params.wasted_runtime(t) + params.mttr_cost))
                    .abs()
                    < 1e-12
            );
        }
        // The dominant path flags match the estimate's path.
        let on_path: Vec<u32> =
            b.stages.iter().filter(|s| s.on_dominant_path).map(|s| s.stage).collect();
        assert_eq!(on_path, est.dominant_path.iter().map(|c| c.0).collect::<Vec<_>>());
        // The dominant cost is the sum of T(c) over the dominant path.
        let path_sum: f64 = b.stages.iter().filter(|s| s.on_dominant_path).map(|s| s.ft_cost).sum();
        assert!((path_sum - b.dominant_cost).abs() < 1e-9);
        // Root-based lookup joins the engine's stage numbering.
        let first = &b.stages[0];
        assert_eq!(b.by_root(first.root), Some(first));
        assert_eq!(b.by_root(9999), None);
    }

    #[test]
    fn breakdown_without_failures_is_pure_runtime() {
        let (plan, cfg) = figure3_setup();
        let params = CostParams::new(1e12, 0.0);
        let b = estimate_ft_plan(&plan, &cfg, &params).breakdown(&params);
        for s in &b.stages {
            assert_eq!(s.attempts, 0.0);
            assert_eq!(s.recovery_cost, 0.0);
            assert_eq!(s.ft_cost, s.run_cost + s.mat_cost);
        }
    }

    #[test]
    fn estimate_and_breakdown_round_trip_through_serde() {
        let (plan, cfg) = figure3_setup();
        let params = table2_params();
        let est = estimate_ft_plan(&plan, &cfg, &params);
        let est_back: FtEstimate =
            serde_json::from_str(&serde_json::to_string(&est).unwrap()).unwrap();
        assert_eq!(est_back, est);
        let b = est.breakdown(&params);
        let b_back: EstimateBreakdown =
            serde_json::from_str(&serde_json::to_string(&b).unwrap()).unwrap();
        assert_eq!(b_back, b);
    }

    #[test]
    fn estimate_single_op_plan() {
        let mut b = PlanDag::builder();
        b.free("only", 10.0, 2.0, &[]).unwrap();
        let plan = b.build().unwrap();
        let cfg = MatConfig::from_free_bits(&plan, 1);
        let params = CostParams::new(1e9, 0.0);
        let est = estimate_ft_plan(&plan, &cfg, &params);
        assert_eq!(est.dominant_cost, 12.0);
        assert_eq!(est.dominant_runtime, 12.0);
        assert_eq!(est.paths_examined, 1);
    }
}
