//! # ftpde-core — cost-based fault tolerance for parallel data processing
//!
//! This crate implements the core contribution of *"Cost-based
//! Fault-tolerance for Parallel Data Processing"* (Salama, Binnig, Kraska,
//! Zamanian — SIGMOD 2015): given a DAG-structured parallel execution plan,
//! select the subset of intermediate results to materialize (the
//! *materialization configuration*) that minimizes the query's total
//! runtime **under mid-query failures**.
//!
//! ## Pipeline
//!
//! 1. Build a [`dag::PlanDag`] of [`operator::Operator`]s carrying runtime
//!    (`tr`) and materialization (`tm`) cost estimates.
//! 2. Enumerate [`config::MatConfig`]s — or let the search do it.
//! 3. Each fault-tolerant plan `[P, M_P]` is collapsed
//!    ([`collapse::CollapsedPlan`]): maximal pipelined sub-plans become the
//!    units of re-execution.
//! 4. All source→sink execution paths of the collapsed plan are enumerated
//!    ([`paths`]) and costed under the failure model ([`cost`]); the
//!    *dominant* (most expensive) path represents the plan's runtime.
//! 5. [`search::find_best_ft_plan`] picks the plan/configuration with the
//!    shortest dominant path, applying the pruning rules of [`prune`].
//!
//! ## Quick example
//!
//! ```
//! use ftpde_core::prelude::*;
//!
//! // A three-operator chain: scan -> join -> aggregate.
//! let mut b = PlanDag::builder();
//! let scan = b.free("scan", 120.0, 250.0, &[]).unwrap();
//! let join = b.free("join", 300.0, 20.0, &[scan]).unwrap();
//! let _agg = b.free("agg", 60.0, 1.0, &[join]).unwrap();
//! let plan = b.build().unwrap();
//!
//! // A cluster with MTBF = 600 s and MTTR = 1 s per node (cost unit = s).
//! let params = CostParams::new(600.0, 1.0);
//! let (best, _stats) =
//!     find_best_ft_plan(std::slice::from_ref(&plan), &params, &PruneOptions::default())
//!         .unwrap();
//!
//! // On such an unreliable cluster, the cheap-to-materialize join output
//! // is checkpointed; the expensive scan output is not.
//! assert!(best.config.materializes(join));
//! assert!(!best.config.materializes(scan));
//! ```
//!
//! The failure model and its assumptions (exponential inter-arrival times,
//! intermediates survive failures, recovery from the last materialized
//! result after MTTR) are described in the paper's §2.2 and implemented in
//! [`cost::CostParams`].

pub mod collapse;
pub mod config;
pub mod cost;
pub mod dag;
pub mod error;
pub mod explain;
pub mod invariant;
pub mod operator;
pub mod paths;
pub mod prune;
pub mod search;
pub mod stats;
pub mod sync;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::collapse::{CId, CollapsedOp, CollapsedPlan};
    pub use crate::config::MatConfig;
    pub use crate::cost::{
        estimate_ft_plan, path_cost, path_runtime, CostParams, EstimateBreakdown, FtEstimate,
        StageEstimate, WastedTimeModel,
    };
    pub use crate::dag::{PlanDag, PlanDagBuilder};
    pub use crate::error::{CoreError, Result};
    pub use crate::explain::{
        explain_collapsed, explain_estimate, explain_plan, explain_search_stats, to_dot,
    };
    pub use crate::operator::{Binding, OpId, Operator};
    pub use crate::prune::{apply_rule1, apply_rule2, PathMemo, PruneOptions};
    pub use crate::search::{
        find_best_ft_plan, find_best_ft_plan_traced, record_partition_check, BestFtPlan,
        SearchStats,
    };
    pub use crate::stats::{baseline_positions, rank_configs, Perturbation, RankedConfig};
}
