//! Statistics perturbation and configuration-ranking helpers.
//!
//! The paper's robustness experiment (§5.4, Table 3) perturbs the inputs of
//! the cost model — the cluster MTBF, the I/O (materialization) costs, or
//! all operator costs — by a factor and observes how the *ranking* of
//! materialization configurations changes. This module provides the
//! perturbation operators and the ranking machinery; the experiment harness
//! lives in `ftpde-bench`.

use serde::{Deserialize, Serialize};

use crate::config::MatConfig;
use crate::cost::{estimate_ft_plan, CostParams};
use crate::dag::PlanDag;

/// A multiplicative error injected into the cost model's inputs before the
/// model runs (Table 3's three perturbation categories).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Perturbation {
    /// Scale the cluster MTBF by the factor.
    Mtbf(f64),
    /// Scale every operator's materialization cost `tm(o)` ("I/O costs").
    IoCost(f64),
    /// Scale every operator's `tr(o)` and `tm(o)` ("compute & I/O costs").
    AllCosts(f64),
}

impl Perturbation {
    /// The perturbation factor.
    pub fn factor(self) -> f64 {
        match self {
            Perturbation::Mtbf(f) | Perturbation::IoCost(f) | Perturbation::AllCosts(f) => f,
        }
    }

    /// Applies the perturbation, returning the (possibly) modified plan and
    /// parameters that the cost model will see.
    pub fn apply(self, plan: &PlanDag, params: &CostParams) -> (PlanDag, CostParams) {
        let mut plan = plan.clone();
        let mut params = *params;
        match self {
            Perturbation::Mtbf(f) => params.mtbf_cost *= f,
            Perturbation::IoCost(f) => {
                for id in plan.op_ids().collect::<Vec<_>>() {
                    plan.op_mut(id).mat_cost *= f;
                }
            }
            Perturbation::AllCosts(f) => {
                for id in plan.op_ids().collect::<Vec<_>>() {
                    plan.op_mut(id).run_cost *= f;
                    plan.op_mut(id).mat_cost *= f;
                }
            }
        }
        (plan, params)
    }
}

/// One entry of a configuration ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedConfig {
    /// The configuration.
    pub config: MatConfig,
    /// Its estimated dominant-path runtime under failures.
    pub estimated_cost: f64,
}

/// Ranks *all* materialization configurations of `plan` ascending by their
/// estimated runtime under mid-query failures (the x-axis ordering of the
/// paper's Figure 12b and the baseline ranking of Table 3).
pub fn rank_configs(plan: &PlanDag, params: &CostParams) -> Vec<RankedConfig> {
    let mut ranked: Vec<RankedConfig> = MatConfig::enumerate(plan)
        .map(|config| {
            let est = estimate_ft_plan(plan, &config, params);
            RankedConfig { config, estimated_cost: est.dominant_cost }
        })
        .collect();
    ranked.sort_by(|a, b| a.estimated_cost.partial_cmp(&b.estimated_cost).expect("finite costs"));
    ranked
}

/// For each of the first `top_n` configurations of `perturbed`, returns its
/// 1-based position in the `baseline` ranking — exactly the rows of
/// Table 3 ("which materialization configuration of the baseline ranking
/// moved to the top-5 positions").
///
/// # Panics
/// Panics if a perturbed configuration does not occur in the baseline
/// ranking (both rankings must enumerate the same plan).
pub fn baseline_positions(
    baseline: &[RankedConfig],
    perturbed: &[RankedConfig],
    top_n: usize,
) -> Vec<usize> {
    perturbed
        .iter()
        .take(top_n)
        .map(|rc| {
            baseline
                .iter()
                .position(|b| b.config == rc.config)
                .expect("perturbed config must exist in baseline ranking")
                + 1
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::figure2_plan;
    use crate::operator::OpId;

    fn params() -> CostParams {
        CostParams::new(60.0, 1.0)
    }

    #[test]
    fn mtbf_perturbation_touches_only_params() {
        let plan = figure2_plan();
        let p = params();
        let (plan2, p2) = Perturbation::Mtbf(0.5).apply(&plan, &p);
        assert_eq!(plan2, plan);
        assert_eq!(p2.mtbf_cost, 30.0);
        assert_eq!(p2.mttr_cost, p.mttr_cost);
    }

    #[test]
    fn io_perturbation_scales_mat_costs_only() {
        let plan = figure2_plan();
        let (plan2, p2) = Perturbation::IoCost(2.0).apply(&plan, &params());
        assert_eq!(p2, params());
        for id in plan.op_ids() {
            assert_eq!(plan2.op(id).mat_cost, plan.op(id).mat_cost * 2.0);
            assert_eq!(plan2.op(id).run_cost, plan.op(id).run_cost);
        }
    }

    #[test]
    fn all_costs_perturbation_scales_both() {
        let plan = figure2_plan();
        let (plan2, _) = Perturbation::AllCosts(10.0).apply(&plan, &params());
        for id in plan.op_ids() {
            assert_eq!(plan2.op(id).mat_cost, plan.op(id).mat_cost * 10.0);
            assert_eq!(plan2.op(id).run_cost, plan.op(id).run_cost * 10.0);
        }
    }

    #[test]
    fn factor_accessor() {
        assert_eq!(Perturbation::Mtbf(0.1).factor(), 0.1);
        assert_eq!(Perturbation::IoCost(2.0).factor(), 2.0);
        assert_eq!(Perturbation::AllCosts(10.0).factor(), 10.0);
    }

    #[test]
    fn ranking_is_sorted_and_complete() {
        let plan = figure2_plan();
        let ranked = rank_configs(&plan, &params());
        assert_eq!(ranked.len(), 128);
        for w in ranked.windows(2) {
            assert!(w[0].estimated_cost <= w[1].estimated_cost);
        }
    }

    #[test]
    fn identity_perturbation_keeps_top5_positions() {
        let plan = figure2_plan();
        let p = params();
        let baseline = rank_configs(&plan, &p);
        let (plan2, p2) = Perturbation::AllCosts(1.0).apply(&plan, &p);
        let perturbed = rank_configs(&plan2, &p2);
        assert_eq!(baseline_positions(&baseline, &perturbed, 5), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn extreme_io_perturbation_changes_the_ranking() {
        // Make one operator's materialization nominally cheap; under a 10x
        // I/O perturbation the model flees materialization-heavy configs.
        let mut plan = figure2_plan();
        plan.op_mut(OpId(2)).mat_cost = 3.0;
        let p = CostParams::new(10.0, 1.0);
        let baseline = rank_configs(&plan, &p);
        let (plan2, p2) = Perturbation::IoCost(10.0).apply(&plan, &p);
        let perturbed = rank_configs(&plan2, &p2);
        let pos = baseline_positions(&baseline, &perturbed, 5);
        assert!(pos != vec![1, 2, 3, 4, 5], "10x perturbation must disturb the top-5");
    }

    #[test]
    fn positions_are_one_based() {
        let plan = figure2_plan();
        let p = params();
        let baseline = rank_configs(&plan, &p);
        let pos = baseline_positions(&baseline, &baseline, 3);
        assert_eq!(pos, vec![1, 2, 3]);
    }
}
