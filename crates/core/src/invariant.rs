//! Debug-build invariant hooks (enabled by the `invariant-checks` feature).
//!
//! The properties the paper's procedure relies on — the collapsed plan
//! partitioning the operator DAG (§3.3), cost conservation modulo
//! `CONST_pipe` (Eq. 1) and the pruning-counter partition of the search —
//! are continuously re-checked on every [`CollapsedPlan::collapse`] and
//! [`crate::search::find_best_ft_plan`] call when the feature is on. The
//! same properties are available as offline diagnostics through the
//! `ftpde-analysis` crate; this module is the always-on, in-process
//! variant for tests and CI.
//!
//! All checks panic with a descriptive message on violation. They are
//! compiled out entirely without the feature, so the hot paths carry zero
//! cost in normal builds.

use crate::collapse::CollapsedPlan;
use crate::config::MatConfig;
use crate::dag::PlanDag;
use crate::search::SearchStats;

/// Relative tolerance for floating-point cost comparisons.
const EPS: f64 = 1e-9;

/// Asserts the collapse invariants of §3.3 for `collapsed` derived from
/// `[plan, config]` under `pipe_const`:
///
/// * every plan operator belongs to at least one collapsed operator, and
///   to more than one only when it does not materialize (shared
///   re-execution prefix);
/// * every collapse boundary (root) either materializes or is a sink;
/// * `tr(c)` equals the dominant path's runtime sum scaled by
///   `CONST_pipe` (Eq. 1, applied only to multi-operator paths);
/// * `tm(c)` is the root's `tm` when the root materializes, else zero.
///
/// # Panics
/// Panics on any violation.
pub fn check_collapse(
    plan: &PlanDag,
    config: &MatConfig,
    collapsed: &CollapsedPlan,
    pipe_const: f64,
) {
    let mut membership = vec![0usize; plan.len()];
    for (cid, c) in collapsed.iter() {
        assert!(
            config.materializes(c.root) || plan.consumers(c.root).is_empty(),
            "collapse invariant: root {:?} of {cid:?} neither materializes nor is a sink",
            c.root
        );
        for &m in &c.members {
            membership[m.index()] += 1;
        }
        let raw: f64 = c.dominant_path.iter().map(|&o| plan.op(o).run_cost).sum();
        let expected = if c.dominant_path.len() >= 2 { raw * pipe_const } else { raw };
        assert!(
            (c.run_cost - expected).abs() <= EPS * expected.max(1.0),
            "collapse invariant: tr({cid:?}) = {} but dominant path sums to {expected} (Eq. 1)",
            c.run_cost
        );
        let expected_mat = if config.materializes(c.root) { plan.op(c.root).mat_cost } else { 0.0 };
        assert!(
            (c.mat_cost - expected_mat).abs() <= EPS,
            "collapse invariant: tm({cid:?}) = {} but the root implies {expected_mat}",
            c.mat_cost
        );
    }
    for id in plan.op_ids() {
        let n = membership[id.index()];
        assert!(n >= 1, "collapse invariant: operator {id:?} belongs to no collapsed operator");
        assert!(
            n == 1 || !config.materializes(id),
            "collapse invariant: materialized operator {id:?} belongs to {n} collapsed operators"
        );
    }
}

/// Asserts the pruning-counter partition of [`SearchStats::partition_holds`]:
/// every configuration of the unpruned space is explored, eliminated by
/// rule 1/2, or abandoned by a rule-3 stop — nothing is double-counted or
/// lost.
///
/// # Panics
/// Panics if the partition does not hold.
pub fn check_search_stats(stats: &SearchStats) {
    assert!(
        stats.partition_holds(),
        "search invariant: pruning counters do not partition the config space: \
         {} explored + {} rule1 + {} rule2 + {} rule3 != {} unpruned",
        stats.configs_explored,
        stats.configs_pruned_rule1,
        stats.configs_pruned_rule2,
        stats.rule3_stops(),
        stats.configs_unpruned
    );
    assert!(
        stats.paths_costed <= stats.paths_examined,
        "search invariant: costed {} paths but examined only {}",
        stats.paths_costed,
        stats.paths_examined
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::figure2_plan;

    #[test]
    fn healthy_collapse_passes() {
        let plan = figure2_plan();
        for pipe in [1.0, 0.5] {
            for cfg in MatConfig::enumerate(&plan) {
                let pc = CollapsedPlan::collapse(&plan, &cfg, pipe);
                check_collapse(&plan, &cfg, &pc, pipe);
            }
        }
    }

    #[test]
    #[should_panic(expected = "collapse invariant")]
    fn mismatched_pipe_const_is_caught() {
        let plan = figure2_plan();
        let cfg = MatConfig::none(&plan);
        let pc = CollapsedPlan::collapse(&plan, &cfg, 1.0);
        // Checking against the wrong pipeline constant must trip Eq. 1.
        check_collapse(&plan, &cfg, &pc, 0.5);
    }

    #[test]
    fn healthy_stats_pass() {
        check_search_stats(&SearchStats::default());
    }

    #[test]
    #[should_panic(expected = "search invariant")]
    fn broken_partition_is_caught() {
        let stats = SearchStats { configs_unpruned: 8, configs_explored: 7, ..Default::default() };
        check_search_stats(&stats);
    }
}
