//! Execution-path enumeration over collapsed plans (paper §3.4, step 3).
//!
//! An *execution path* `Pt` is a path from a source (no incoming edges) to
//! a sink (no outgoing edges) of the collapsed plan `P^c`. The dominant
//! path — the path with the maximal estimated cost under failures — is used
//! as the representative runtime of the whole plan under inter-operator
//! parallelism.
//!
//! Enumeration is visitor-based so that pruning rule 3 (paper §4.3) can
//! abort it as soon as one path proves the current fault-tolerant plan
//! uncompetitive.

use std::ops::ControlFlow;

use crate::collapse::{CId, CollapsedPlan};

/// Enumerates every source→sink path of `plan`, invoking `visit` with each
/// path (a slice of collapsed-operator ids in execution order).
///
/// `visit` may return [`ControlFlow::Break`] to abort the enumeration; the
/// break value is returned. Returns `None` when all paths were visited.
///
/// Paths are produced in depth-first order: all paths through a source's
/// first consumer before its second, sources in topological order.
pub fn for_each_path<B>(
    plan: &CollapsedPlan,
    mut visit: impl FnMut(&[CId]) -> ControlFlow<B>,
) -> Option<B> {
    let mut stack: Vec<CId> = Vec::with_capacity(plan.len());
    for src in plan.sources() {
        if let Some(b) = dfs(plan, src, &mut stack, &mut visit) {
            return Some(b);
        }
        debug_assert!(stack.is_empty());
    }
    None
}

fn dfs<B>(
    plan: &CollapsedPlan,
    node: CId,
    stack: &mut Vec<CId>,
    visit: &mut impl FnMut(&[CId]) -> ControlFlow<B>,
) -> Option<B> {
    stack.push(node);
    let consumers = plan.consumers(node);
    let result = if consumers.is_empty() {
        match visit(stack) {
            ControlFlow::Break(b) => Some(b),
            ControlFlow::Continue(()) => None,
        }
    } else {
        let mut broke = None;
        for &next in consumers {
            if let Some(b) = dfs(plan, next, stack, visit) {
                broke = Some(b);
                break;
            }
        }
        broke
    };
    stack.pop();
    result
}

/// Collects all source→sink paths of `plan` into owned vectors.
///
/// Convenient for tests and small plans; on large DAGs prefer
/// [`for_each_path`], since the number of paths can grow exponentially with
/// plan size.
pub fn all_paths(plan: &CollapsedPlan) -> Vec<Vec<CId>> {
    let mut out = Vec::new();
    for_each_path::<()>(plan, |p| {
        out.push(p.to_vec());
        ControlFlow::Continue(())
    });
    out
}

/// Counts the source→sink paths of `plan` without materializing them,
/// using a linear-time DP over the DAG.
pub fn count_paths(plan: &CollapsedPlan) -> u64 {
    // paths_to_sink[v] = number of v→sink paths.
    let mut paths_to_sink = vec![0u64; plan.len()];
    for id in plan.op_ids().rev() {
        let consumers = plan.consumers(id);
        paths_to_sink[id.index()] = if consumers.is_empty() {
            1
        } else {
            consumers.iter().map(|c| paths_to_sink[c.index()]).sum()
        };
    }
    plan.sources().iter().map(|s| paths_to_sink[s.index()]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatConfig;
    use crate::dag::{figure2_plan, PlanDag};
    use crate::operator::OpId;

    fn figure3_collapsed() -> CollapsedPlan {
        let plan = figure2_plan();
        let cfg =
            MatConfig::from_materialized_free_ops(&plan, &[OpId(2), OpId(4), OpId(5), OpId(6)])
                .unwrap();
        CollapsedPlan::collapse(&plan, &cfg, 1.0)
    }

    #[test]
    fn figure3_has_two_paths() {
        let pc = figure3_collapsed();
        let paths = all_paths(&pc);
        assert_eq!(paths, vec![vec![CId(0), CId(1), CId(2)], vec![CId(0), CId(1), CId(3)]]);
        assert_eq!(count_paths(&pc), 2);
    }

    #[test]
    fn early_break_stops_enumeration() {
        let pc = figure3_collapsed();
        let mut seen = 0;
        let res = for_each_path(&pc, |p| {
            seen += 1;
            ControlFlow::Break(p.len())
        });
        assert_eq!(seen, 1);
        assert_eq!(res, Some(3));
    }

    #[test]
    fn diamond_plan_paths() {
        // a -> {b, c} -> d, everything materialized.
        let mut b = PlanDag::builder();
        let a = b.free("a", 1.0, 0.1, &[]).unwrap();
        let l = b.free("b", 1.0, 0.1, &[a]).unwrap();
        let r = b.free("c", 1.0, 0.1, &[a]).unwrap();
        b.free("d", 1.0, 0.1, &[l, r]).unwrap();
        let plan = b.build().unwrap();
        let pc = CollapsedPlan::collapse(&plan, &MatConfig::all(&plan), 1.0);
        let paths = all_paths(&pc);
        assert_eq!(paths.len(), 2);
        assert_eq!(count_paths(&pc), 2);
        for p in &paths {
            assert_eq!(p.len(), 3);
            assert_eq!(p[0], CId(0));
            assert_eq!(p[2], CId(3));
        }
    }

    #[test]
    fn multi_source_multi_sink() {
        // Two independent chains in one plan.
        let mut b = PlanDag::builder();
        let a = b.free("a", 1.0, 0.1, &[]).unwrap();
        b.free("b", 1.0, 0.1, &[a]).unwrap();
        let c = b.free("c", 1.0, 0.1, &[]).unwrap();
        b.free("d", 1.0, 0.1, &[c]).unwrap();
        let plan = b.build().unwrap();
        let pc = CollapsedPlan::collapse(&plan, &MatConfig::all(&plan), 1.0);
        assert_eq!(all_paths(&pc).len(), 2);
        assert_eq!(count_paths(&pc), 2);
    }

    #[test]
    fn count_matches_enumeration_on_every_figure2_config() {
        let plan = figure2_plan();
        for cfg in MatConfig::enumerate(&plan) {
            let pc = CollapsedPlan::collapse(&plan, &cfg, 1.0);
            assert_eq!(all_paths(&pc).len() as u64, count_paths(&pc));
        }
    }

    #[test]
    fn single_op_plan_has_one_path() {
        let mut b = PlanDag::builder();
        b.free("only", 1.0, 0.0, &[]).unwrap();
        let plan = b.build().unwrap();
        let pc = CollapsedPlan::collapse(&plan, &MatConfig::none(&plan), 1.0);
        assert_eq!(all_paths(&pc), vec![vec![CId(0)]]);
    }
}
