//! Error type for the core fault-tolerance crate.

use std::fmt;

use crate::operator::OpId;

/// Errors produced while building plans or running the cost-based search.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A plan must contain at least one operator.
    EmptyPlan,
    /// An operator id referenced an operator that does not exist in the plan.
    UnknownOperator(OpId),
    /// An operator listed itself as one of its own inputs.
    SelfLoop(OpId),
    /// An edge was declared twice between the same pair of operators.
    DuplicateEdge { from: OpId, to: OpId },
    /// A cost value was negative or not finite.
    InvalidCost { op: OpId, what: &'static str, value: f64 },
    /// A cost-model parameter was out of its valid domain.
    InvalidParameter { what: &'static str, value: f64 },
    /// The search was invoked with an empty set of candidate plans.
    NoCandidatePlans,
    /// A materialization configuration was built for a different plan shape.
    ConfigMismatch { expected_ops: usize, got_ops: usize },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyPlan => write!(f, "plan contains no operators"),
            CoreError::UnknownOperator(id) => write!(f, "unknown operator id {id:?}"),
            CoreError::SelfLoop(id) => {
                write!(f, "operator {id:?} lists itself as an input (self-loop)")
            }
            CoreError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from:?} -> {to:?}")
            }
            CoreError::InvalidCost { op, what, value } => {
                write!(f, "operator {op:?}: {what} cost {value} is not a finite non-negative number")
            }
            CoreError::InvalidParameter { what, value } => {
                write!(f, "cost parameter {what} = {value} is outside its valid domain")
            }
            CoreError::NoCandidatePlans => write!(f, "no candidate plans supplied to the search"),
            CoreError::ConfigMismatch { expected_ops, got_ops } => write!(
                f,
                "materialization configuration covers {got_ops} operators but the plan has {expected_ops}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::InvalidCost { op: OpId(3), what: "runtime", value: -1.0 };
        let s = e.to_string();
        assert!(s.contains("runtime"));
        assert!(s.contains("-1"));

        let e = CoreError::ConfigMismatch { expected_ops: 5, got_ops: 3 };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('3'));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_: E) {}
        assert_err(CoreError::EmptyPlan);
    }
}
