//! Clock shim for the optimizer: the crate's view of the workspace
//! wall-clock seam.
//!
//! `ftpde-core` is single-threaded by design — the cost-based search
//! owns all its state — so unlike the engine/store/obs shims there are
//! no synchronization primitives here. The only nondeterminism the
//! crate ever touches is wall time (the search's elapsed-time budget
//! accounting), and that routes through [`clock`] so a deterministic
//! simulator can virtualize it. The `FT202` source lint
//! (`ftpde lint --source`) enforces the routing.

pub use ftpde_obs::sync::clock;
