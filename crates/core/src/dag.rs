//! DAG-structured execution plans (paper §2.1, Figure 2).
//!
//! A [`PlanDag`] is an arena of [`Operator`]s plus directed edges that
//! follow the data flow: an edge `u -> v` means operator `v` consumes the
//! output of operator `u`. *Sources* are operators with no inputs (scans);
//! *sinks* are operators with no consumers (the query result).
//!
//! Plans are constructed through [`PlanDagBuilder`], which only allows an
//! operator's inputs to be operators that were added earlier. This makes
//! cycles unrepresentable and means that ascending [`OpId`] order is always
//! a valid topological order.

use serde::{Deserialize, Serialize};

use crate::error::{CoreError, Result};
use crate::operator::{Binding, OpId, Operator};

/// A DAG-structured parallel execution plan `P`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanDag {
    ops: Vec<Operator>,
    /// `inputs[i]` — producers feeding operator `i`.
    inputs: Vec<Vec<OpId>>,
    /// `consumers[i]` — operators consuming the output of operator `i`.
    consumers: Vec<Vec<OpId>>,
}

impl PlanDag {
    /// Starts building a new plan.
    pub fn builder() -> PlanDagBuilder {
        PlanDagBuilder::default()
    }

    /// Number of operators in the plan.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` iff the plan has no operators. Plans built through
    /// [`PlanDagBuilder`] always have at least one operator.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operator with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range; ids obtained from this plan's
    /// builder are always valid.
    #[inline]
    pub fn op(&self, id: OpId) -> &Operator {
        &self.ops[id.index()]
    }

    /// Mutable access to an operator (used by pruning rules to re-bind
    /// operators and by perturbation helpers to scale costs).
    #[inline]
    pub fn op_mut(&mut self, id: OpId) -> &mut Operator {
        &mut self.ops[id.index()]
    }

    /// Iterates over all operator ids in topological (insertion) order.
    pub fn op_ids(&self) -> impl DoubleEndedIterator<Item = OpId> + ExactSizeIterator {
        (0..self.ops.len() as u32).map(OpId)
    }

    /// Iterates over `(id, operator)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, &Operator)> {
        self.ops.iter().enumerate().map(|(i, op)| (OpId(i as u32), op))
    }

    /// The producers feeding operator `id`.
    #[inline]
    pub fn inputs(&self, id: OpId) -> &[OpId] {
        &self.inputs[id.index()]
    }

    /// The consumers of operator `id`'s output.
    #[inline]
    pub fn consumers(&self, id: OpId) -> &[OpId] {
        &self.consumers[id.index()]
    }

    /// Operators with no inputs (leaf scans).
    pub fn sources(&self) -> Vec<OpId> {
        self.op_ids().filter(|&id| self.inputs(id).is_empty()).collect()
    }

    /// Operators with no consumers (query results).
    pub fn sinks(&self) -> Vec<OpId> {
        self.op_ids().filter(|&id| self.consumers(id).is_empty()).collect()
    }

    /// Ids of all free operators (`f(o) = 1`), in topological order.
    pub fn free_ops(&self) -> Vec<OpId> {
        self.op_ids().filter(|&id| self.op(id).is_free()).collect()
    }

    /// Number of free operators; the exhaustive materialization-config
    /// search space is `2^free_count()`.
    pub fn free_count(&self) -> usize {
        self.ops.iter().filter(|o| o.is_free()).count()
    }

    /// Sum of `tr(o)` over all operators — a crude lower bound on
    /// sequential work, useful for sanity checks and metrics.
    pub fn total_run_cost(&self) -> f64 {
        self.ops.iter().map(|o| o.run_cost).sum()
    }

    /// Sum of `tm(o)` over all operators.
    pub fn total_mat_cost(&self) -> f64 {
        self.ops.iter().map(|o| o.mat_cost).sum()
    }

    /// Looks an operator up by name. Names are not required to be unique;
    /// the first match in topological order is returned.
    pub fn find_by_name(&self, name: &str) -> Option<OpId> {
        self.iter().find(|(_, op)| op.name == name).map(|(id, _)| id)
    }

    /// Re-binds an operator. Pruning rules use this to mark operators
    /// non-materializable (setting `m(o) = 0` and `f(o) = 0`, paper §4).
    pub fn set_binding(&mut self, id: OpId, binding: Binding) {
        self.ops[id.index()].binding = binding;
    }

    /// Length (in operators) of the longest source→sink path, weighting
    /// every operator equally. Useful to bound path-enumeration work.
    pub fn longest_path_len(&self) -> usize {
        let mut depth = vec![1usize; self.len()];
        for id in self.op_ids() {
            for &inp in self.inputs(id) {
                depth[id.index()] = depth[id.index()].max(depth[inp.index()] + 1);
            }
        }
        depth.into_iter().max().unwrap_or(0)
    }
}

/// Builder for [`PlanDag`]. Operators must be added bottom-up: the inputs
/// passed to [`PlanDagBuilder::add`] must be ids returned by earlier calls,
/// which structurally guarantees acyclicity.
#[derive(Debug, Default, Clone)]
pub struct PlanDagBuilder {
    ops: Vec<Operator>,
    inputs: Vec<Vec<OpId>>,
    consumers: Vec<Vec<OpId>>,
}

impl PlanDagBuilder {
    /// Adds an operator consuming the outputs of `inputs` and returns its id.
    ///
    /// # Errors
    /// * [`CoreError::SelfLoop`] if the operator lists its own (not yet
    ///   assigned) id as an input.
    /// * [`CoreError::UnknownOperator`] if an input id has not been added
    ///   yet (a dangling reference).
    /// * [`CoreError::DuplicateEdge`] if the same input is listed twice.
    /// * [`CoreError::InvalidCost`] if a cost is negative, NaN or infinite.
    pub fn add(&mut self, op: Operator, inputs: &[OpId]) -> Result<OpId> {
        let id = OpId(self.ops.len() as u32);
        if !(op.run_cost.is_finite() && op.run_cost >= 0.0) {
            return Err(CoreError::InvalidCost { op: id, what: "runtime", value: op.run_cost });
        }
        if !(op.mat_cost.is_finite() && op.mat_cost >= 0.0) {
            return Err(CoreError::InvalidCost {
                op: id,
                what: "materialization",
                value: op.mat_cost,
            });
        }
        for (i, &inp) in inputs.iter().enumerate() {
            if inp == id {
                return Err(CoreError::SelfLoop(id));
            }
            if inp.index() >= self.ops.len() {
                return Err(CoreError::UnknownOperator(inp));
            }
            if inputs[..i].contains(&inp) {
                return Err(CoreError::DuplicateEdge { from: inp, to: id });
            }
        }
        for &inp in inputs {
            self.consumers[inp.index()].push(id);
        }
        self.ops.push(op);
        self.inputs.push(inputs.to_vec());
        self.consumers.push(Vec::new());
        Ok(id)
    }

    /// Convenience: adds a free operator.
    pub fn free(
        &mut self,
        name: impl Into<String>,
        run_cost: f64,
        mat_cost: f64,
        inputs: &[OpId],
    ) -> Result<OpId> {
        self.add(Operator::free(name, run_cost, mat_cost), inputs)
    }

    /// Convenience: adds a bound, non-materializable operator.
    pub fn bound_pipelined(
        &mut self,
        name: impl Into<String>,
        run_cost: f64,
        mat_cost: f64,
        inputs: &[OpId],
    ) -> Result<OpId> {
        self.add(Operator::non_materializable(name, run_cost, mat_cost), inputs)
    }

    /// Convenience: adds a bound, always-materialized operator.
    pub fn bound_materialized(
        &mut self,
        name: impl Into<String>,
        run_cost: f64,
        mat_cost: f64,
        inputs: &[OpId],
    ) -> Result<OpId> {
        self.add(Operator::always_materialized(name, run_cost, mat_cost), inputs)
    }

    /// Finishes the plan.
    ///
    /// # Errors
    /// [`CoreError::EmptyPlan`] if no operator was added.
    pub fn build(self) -> Result<PlanDag> {
        if self.ops.is_empty() {
            return Err(CoreError::EmptyPlan);
        }
        Ok(PlanDag { ops: self.ops, inputs: self.inputs, consumers: self.consumers })
    }
}

/// Builds the example plan of the paper's Figure 2 / Figure 3 (step 1):
/// two scans feeding a hash join whose output is repartitioned and consumed
/// by a map UDF feeding two reduce UDFs.
///
/// The materialization flags shown in Figure 3 (ops 3, 5, 6, 7 materialize)
/// are *not* baked in here — all seven operators are created free so tests
/// and examples can explore the full configuration space. Per-operator
/// runtimes are taken so that the collapsed totals match Table 2 when using
/// the paper's `MatConfig` (see `collapse` module tests).
pub fn figure2_plan() -> PlanDag {
    let mut b = PlanDag::builder();
    // t({1,2,3}) = 4 in Table 2 (runtime 3.6 + materialization 0.4 with
    // CONST_pipe = 1); the split below keeps op 2 on the dominant path.
    let scan_r = b.free("scan R", 1.0, 0.5, &[]).unwrap();
    let scan_s = b.free("scan S", 1.6, 0.5, &[]).unwrap();
    let join = b.free("hash join", 2.0, 0.4, &[scan_r, scan_s]).unwrap();
    // t({4,5}) = 3: runtime 1.0 + 1.5, materialization 0.5.
    let repart = b.free("repartition", 1.0, 0.3, &[join]).unwrap();
    let map = b.free("map UDF", 1.5, 0.5, &[repart]).unwrap();
    // t({6}) = 1 and t({7}) = 2.
    let _reduce_a = b.free("reduce UDF A", 0.8, 0.2, &[map]).unwrap();
    let _reduce_b = b.free("reduce UDF B", 1.7, 0.3, &[map]).unwrap();
    b.build().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(costs: &[(f64, f64)]) -> PlanDag {
        let mut b = PlanDag::builder();
        let mut prev: Option<OpId> = None;
        for (i, &(tr, tm)) in costs.iter().enumerate() {
            let inputs: Vec<OpId> = prev.into_iter().collect();
            prev = Some(b.free(format!("op{i}"), tr, tm, &inputs).unwrap());
        }
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_dense_topological_ids() {
        let p = figure2_plan();
        assert_eq!(p.len(), 7);
        for id in p.op_ids() {
            for &inp in p.inputs(id) {
                assert!(inp < id, "inputs precede consumers");
            }
        }
    }

    #[test]
    fn sources_and_sinks() {
        let p = figure2_plan();
        assert_eq!(p.sources(), vec![OpId(0), OpId(1)]);
        assert_eq!(p.sinks(), vec![OpId(5), OpId(6)]);
    }

    #[test]
    fn consumers_are_inverse_of_inputs() {
        let p = figure2_plan();
        for id in p.op_ids() {
            for &inp in p.inputs(id) {
                assert!(p.consumers(inp).contains(&id));
            }
            for &cons in p.consumers(id) {
                assert!(p.inputs(cons).contains(&id));
            }
        }
    }

    #[test]
    fn unknown_input_is_rejected() {
        let mut b = PlanDag::builder();
        let err = b.free("x", 1.0, 1.0, &[OpId(5)]).unwrap_err();
        assert_eq!(err, CoreError::UnknownOperator(OpId(5)));
    }

    #[test]
    fn self_loop_is_rejected() {
        // The next operator would receive id 1; listing it as an input is
        // a self-loop, not merely a dangling reference.
        let mut b = PlanDag::builder();
        let a = b.free("a", 1.0, 1.0, &[]).unwrap();
        let err = b.free("x", 1.0, 1.0, &[OpId(1)]).unwrap_err();
        assert_eq!(err, CoreError::SelfLoop(OpId(1)));
        // The failed add must not have corrupted the builder.
        let ok = b.free("y", 1.0, 1.0, &[a]).unwrap();
        assert_eq!(ok, OpId(1));
        let plan = b.build().unwrap();
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.consumers(a), &[ok]);
    }

    #[test]
    fn dangling_reference_does_not_corrupt_builder() {
        let mut b = PlanDag::builder();
        let a = b.free("a", 1.0, 1.0, &[]).unwrap();
        // `a` is valid but OpId(7) dangles: the whole add is rejected and
        // no half-registered consumer edge may remain on `a`.
        assert_eq!(
            b.free("x", 1.0, 1.0, &[a, OpId(7)]).unwrap_err(),
            CoreError::UnknownOperator(OpId(7))
        );
        let plan = b.build().unwrap();
        assert!(plan.consumers(a).is_empty());
    }

    #[test]
    fn duplicate_input_is_rejected() {
        let mut b = PlanDag::builder();
        let a = b.free("a", 1.0, 1.0, &[]).unwrap();
        let err = b.free("x", 1.0, 1.0, &[a, a]).unwrap_err();
        assert!(matches!(err, CoreError::DuplicateEdge { .. }));
    }

    #[test]
    fn invalid_costs_are_rejected() {
        let mut b = PlanDag::builder();
        assert!(matches!(
            b.free("neg", -1.0, 0.0, &[]),
            Err(CoreError::InvalidCost { what: "runtime", .. })
        ));
        assert!(matches!(
            b.free("nan", 0.0, f64::NAN, &[]),
            Err(CoreError::InvalidCost { what: "materialization", .. })
        ));
        assert!(matches!(
            b.free("inf", f64::INFINITY, 0.0, &[]),
            Err(CoreError::InvalidCost { what: "runtime", .. })
        ));
    }

    #[test]
    fn empty_plan_is_rejected() {
        assert_eq!(PlanDag::builder().build().unwrap_err(), CoreError::EmptyPlan);
    }

    #[test]
    fn free_ops_and_counts() {
        let mut b = PlanDag::builder();
        let a = b.free("a", 1.0, 1.0, &[]).unwrap();
        let c = b.bound_pipelined("b", 1.0, 1.0, &[a]).unwrap();
        b.bound_materialized("c", 1.0, 1.0, &[c]).unwrap();
        let p = b.build().unwrap();
        assert_eq!(p.free_ops(), vec![a]);
        assert_eq!(p.free_count(), 1);
    }

    #[test]
    fn totals() {
        let p = chain(&[(1.0, 0.5), (2.0, 0.25)]);
        assert_eq!(p.total_run_cost(), 3.0);
        assert_eq!(p.total_mat_cost(), 0.75);
    }

    #[test]
    fn longest_path_len_chain_and_dag() {
        assert_eq!(chain(&[(1.0, 0.0); 4]).longest_path_len(), 4);
        assert_eq!(figure2_plan().longest_path_len(), 5); // scan→join→repart→map→reduce
    }

    #[test]
    fn find_by_name() {
        let p = figure2_plan();
        assert_eq!(p.find_by_name("hash join"), Some(OpId(2)));
        assert_eq!(p.find_by_name("nope"), None);
    }

    #[test]
    fn set_binding_rebinding() {
        let mut p = figure2_plan();
        p.set_binding(OpId(2), Binding::NonMaterializable);
        assert!(!p.op(OpId(2)).is_free());
        assert_eq!(p.free_count(), 6);
    }
}
