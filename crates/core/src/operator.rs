//! Operators of a DAG-structured execution plan.
//!
//! Terminology follows Table 1 of the paper:
//!
//! * `tr(o)` — estimated accumulated execution cost of operator `o`
//!   ([`Operator::run_cost`]), given for partition-parallel execution.
//! * `tm(o)` — estimated accumulated cost for materializing the output of
//!   `o` to fault-tolerant storage ([`Operator::mat_cost`]).
//! * `f(o)` — whether the enumeration may choose the materialization of `o`
//!   (a *free* operator) or whether the decision is fixed by the platform
//!   (a *bound* operator). Bound operators are either *always-materialized*
//!   (e.g. repartitioning operators in some PDEs) or *non-materializable*.

use serde::{Deserialize, Serialize};

/// Identifier of an operator inside a [`crate::dag::PlanDag`].
///
/// Ids are dense indices assigned in insertion order, which is guaranteed to
/// be a topological order of the DAG (inputs are always inserted before
/// their consumers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub u32);

impl OpId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The materialization binding of an operator (`f(o)` and fixed `m(o)` in
/// the paper's terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Binding {
    /// Free operator (`f(o) = 1`): the enumeration decides whether its
    /// output is materialized.
    #[default]
    Free,
    /// Bound operator with `m(o) = 1` fixed: the platform always
    /// materializes its output (e.g. repartitioning in some PDEs).
    AlwaysMaterialized,
    /// Bound operator with `m(o) = 0` fixed: its output can never be
    /// materialized (or a pruning rule has decided it never should be).
    NonMaterializable,
}

impl Binding {
    /// `true` iff the operator is free (`f(o) = 1`).
    #[inline]
    pub fn is_free(self) -> bool {
        matches!(self, Binding::Free)
    }
}

/// One operator of a DAG-structured execution plan.
///
/// The cost model is agnostic to what the operator actually computes: any
/// relational operator or UDF is supported as long as `tr(o)` and `tm(o)`
/// estimates are available (paper §2.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operator {
    /// Human-readable label (used in explanations and test assertions).
    pub name: String,
    /// `tr(o)`: estimated execution cost, in the engine's internal cost
    /// unit (seconds when `CONST_cost = 1` as in the paper's evaluation).
    pub run_cost: f64,
    /// `tm(o)`: estimated cost of materializing the operator's output to
    /// the fault-tolerant storage medium.
    pub mat_cost: f64,
    /// Whether the materialization decision for this operator is free or
    /// fixed by the platform.
    pub binding: Binding,
}

impl Operator {
    /// Creates a free operator with the given name and costs.
    pub fn free(name: impl Into<String>, run_cost: f64, mat_cost: f64) -> Self {
        Operator { name: name.into(), run_cost, mat_cost, binding: Binding::Free }
    }

    /// Creates a bound, always-materialized operator.
    pub fn always_materialized(name: impl Into<String>, run_cost: f64, mat_cost: f64) -> Self {
        Operator { name: name.into(), run_cost, mat_cost, binding: Binding::AlwaysMaterialized }
    }

    /// Creates a bound, non-materializable operator.
    pub fn non_materializable(name: impl Into<String>, run_cost: f64, mat_cost: f64) -> Self {
        Operator { name: name.into(), run_cost, mat_cost, binding: Binding::NonMaterializable }
    }

    /// `true` iff the enumeration may decide this operator's
    /// materialization (`f(o) = 1`).
    #[inline]
    pub fn is_free(&self) -> bool {
        self.binding.is_free()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_binding() {
        assert_eq!(Operator::free("a", 1.0, 2.0).binding, Binding::Free);
        assert_eq!(
            Operator::always_materialized("a", 1.0, 2.0).binding,
            Binding::AlwaysMaterialized
        );
        assert_eq!(Operator::non_materializable("a", 1.0, 2.0).binding, Binding::NonMaterializable);
    }

    #[test]
    fn free_predicate() {
        assert!(Binding::Free.is_free());
        assert!(!Binding::AlwaysMaterialized.is_free());
        assert!(!Binding::NonMaterializable.is_free());
        assert!(Operator::free("x", 0.0, 0.0).is_free());
    }

    #[test]
    fn op_id_index_roundtrip() {
        assert_eq!(OpId(7).index(), 7);
        assert_eq!(OpId(0).index(), 0);
    }

    #[test]
    fn op_ids_order_by_insertion() {
        assert!(OpId(1) < OpId(2));
    }
}
