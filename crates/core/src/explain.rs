//! Human-readable explanations of plans, configurations and estimates.
//!
//! These renderers are pure string builders (no I/O), so examples, the
//! CLI and tests can all assert on them.

use std::fmt::Write as _;

use crate::collapse::CollapsedPlan;
use crate::config::MatConfig;
use crate::cost::{CostParams, FtEstimate};
use crate::dag::PlanDag;
use crate::operator::Binding;
use crate::search::SearchStats;

/// Renders the plan as an indented operator table with per-operator costs
/// and the materialization decision of `config`.
pub fn explain_plan(plan: &PlanDag, config: &MatConfig) -> String {
    let mut out = String::new();
    let width = plan.iter().map(|(_, o)| o.name.len()).max().unwrap_or(4).max(8);
    let _ = writeln!(
        out,
        "{:<w$}  {:>10}  {:>10}  {:>12}  inputs",
        "operator",
        "tr(o)",
        "tm(o)",
        "decision",
        w = width
    );
    for (id, op) in plan.iter() {
        let decision = match (op.binding, config.materializes(id)) {
            (Binding::AlwaysMaterialized, _) => "bound: mat",
            (Binding::NonMaterializable, _) => "bound: pipe",
            (Binding::Free, true) => "MATERIALIZE",
            (Binding::Free, false) => "pipeline",
        };
        let inputs: Vec<String> = plan.inputs(id).iter().map(|i| i.0.to_string()).collect();
        let _ = writeln!(
            out,
            "{:<w$}  {:>10.2}  {:>10.2}  {:>12}  [{}]",
            op.name,
            op.run_cost,
            op.mat_cost,
            decision,
            inputs.join(","),
            w = width
        );
    }
    out
}

/// Renders the collapsed plan: one line per collapsed operator with its
/// members, dominant path and `t(c)`.
pub fn explain_collapsed(plan: &PlanDag, collapsed: &CollapsedPlan) -> String {
    let mut out = String::new();
    for (cid, c) in collapsed.iter() {
        let members: Vec<&str> = c.members.iter().map(|&m| plan.op(m).name.as_str()).collect();
        let dom: Vec<&str> = c.dominant_path.iter().map(|&m| plan.op(m).name.as_str()).collect();
        let _ = writeln!(
            out,
            "stage {}: t(c) = {:.2} (tr {:.2} + tm {:.2})\n  members: {}\n  dominant path: {}",
            cid.0,
            c.total_cost(),
            c.run_cost,
            c.mat_cost,
            members.join(", "),
            dom.join(" → ")
        );
    }
    out
}

/// Renders an estimate: dominant path, per-stage failure statistics and
/// the total expected runtime under failures.
pub fn explain_estimate(plan: &PlanDag, estimate: &FtEstimate, params: &CostParams) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "estimated runtime under failures: {:.2} (failure-free: {:.2})",
        estimate.dominant_cost, estimate.dominant_runtime
    );
    let _ = writeln!(out, "dominant path ({} stages):", estimate.dominant_path.len());
    for &cid in &estimate.dominant_path {
        let c = estimate.collapsed.op(cid);
        let t = c.total_cost();
        let root = &plan.op(c.root).name;
        let _ = writeln!(
            out,
            "  {root:<24} t = {t:8.2}  γ = {:.4}  a = {:.4}  T = {:8.2}",
            params.success_probability(t),
            params.attempts(t),
            params.op_cost(t),
        );
    }
    out
}

/// Renders the search-statistics summary: how the configuration space was
/// partitioned between the pruning rules and full exploration (the data
/// behind the paper's Figure 13), plus path-level counters.
pub fn explain_search_stats(stats: &SearchStats) -> String {
    let mut out = String::new();
    let pct = |part: u64| {
        if stats.configs_unpruned == 0 {
            0.0
        } else {
            100.0 * part as f64 / stats.configs_unpruned as f64
        }
    };
    let _ = writeln!(
        out,
        "search: {} candidate plan(s), {} configurations unpruned",
        stats.plans_considered, stats.configs_unpruned
    );
    let _ = writeln!(
        out,
        "  pruned by rule 1 (high mat cost):     {:>8}  ({:.1}%)",
        stats.configs_pruned_rule1,
        pct(stats.configs_pruned_rule1)
    );
    let _ = writeln!(
        out,
        "  pruned by rule 2 (success prob):      {:>8}  ({:.1}%)",
        stats.configs_pruned_rule2,
        pct(stats.configs_pruned_rule2)
    );
    let _ = writeln!(
        out,
        "  abandoned by rule 3 (long paths):     {:>8}  ({:.1}%)  \
         [runtime {} / estimate {} / memo {}]",
        stats.rule3_stops(),
        pct(stats.rule3_stops()),
        stats.rule3_runtime_stops,
        stats.rule3_estimate_stops,
        stats.rule3_memo_stops
    );
    let _ = writeln!(
        out,
        "  explored to completion:               {:>8}  ({:.1}%)",
        stats.configs_explored,
        pct(stats.configs_explored)
    );
    let _ = writeln!(
        out,
        "  paths: {} examined, {} costed; best plan replaced {} time(s)",
        stats.paths_examined, stats.paths_costed, stats.best_updates
    );
    if !stats.partition_holds() {
        let _ = writeln!(out, "  WARNING: pruning partition does not sum to the unpruned space");
    }
    out
}

/// Renders the fault-tolerant plan as Graphviz DOT: operators as nodes
/// (materialized ones double-peripheried and filled), data flow as edges,
/// and collapsed stages as dashed clusters. Paste the output into any DOT
/// renderer to visualize recovery granularity.
pub fn to_dot(plan: &PlanDag, config: &MatConfig, collapsed: &CollapsedPlan) -> String {
    let mut out =
        String::from("digraph ftplan {\n  rankdir=BT;\n  node [shape=box, fontsize=10];\n");
    // An operator shared by several stages (a non-materialized producer
    // with multiple consumers) is drawn in its first stage only — Graphviz
    // clusters cannot share nodes.
    let mut drawn = vec![false; plan.len()];
    for (cid, c) in collapsed.iter() {
        let _ = writeln!(out, "  subgraph cluster_{} {{", cid.0);
        let _ =
            writeln!(out, "    label=\"stage {} (t={:.1})\"; style=dashed;", cid.0, c.total_cost());
        for &m in &c.members {
            if drawn[m.index()] {
                continue;
            }
            drawn[m.index()] = true;
            let op = plan.op(m);
            let style = if config.materializes(m) {
                ", peripheries=2, style=filled, fillcolor=lightblue"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    op{} [label=\"{}\\ntr={:.1} tm={:.1}\"{}];",
                m.0,
                op.name.replace('"', "'"),
                op.run_cost,
                op.mat_cost,
                style
            );
        }
        let _ = writeln!(out, "  }}");
    }
    for id in plan.op_ids() {
        for &inp in plan.inputs(id) {
            let _ = writeln!(out, "  op{} -> op{};", inp.0, id.0);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::estimate_ft_plan;
    use crate::dag::figure2_plan;
    use crate::operator::OpId;

    fn setup() -> (PlanDag, MatConfig, CostParams) {
        let plan = figure2_plan();
        let cfg =
            MatConfig::from_materialized_free_ops(&plan, &[OpId(2), OpId(4), OpId(5), OpId(6)])
                .unwrap();
        (plan, cfg, CostParams::new(60.0, 0.0))
    }

    #[test]
    fn plan_explanation_lists_every_operator() {
        let (plan, cfg, _) = setup();
        let s = explain_plan(&plan, &cfg);
        for (_, op) in plan.iter() {
            assert!(s.contains(&op.name), "missing {}", op.name);
        }
        assert!(s.contains("MATERIALIZE"));
        assert!(s.contains("pipeline"));
    }

    #[test]
    fn collapsed_explanation_shows_stages_and_dominant_paths() {
        let (plan, cfg, params) = setup();
        let collapsed = CollapsedPlan::collapse(&plan, &cfg, params.pipe_const);
        let s = explain_collapsed(&plan, &collapsed);
        assert_eq!(s.matches("stage ").count(), 4);
        assert!(s.contains("dominant path: scan S → hash join"));
    }

    #[test]
    fn estimate_explanation_has_cost_model_columns() {
        let (plan, cfg, params) = setup();
        let est = estimate_ft_plan(&plan, &cfg, &params);
        let s = explain_estimate(&plan, &est, &params);
        assert!(s.contains("estimated runtime under failures: 9.19"));
        assert!(s.contains("γ = "));
        assert!(s.contains("reduce UDF B"), "dominant path ends at the expensive sink");
    }

    #[test]
    fn search_stats_summary_partitions_the_space() {
        use crate::prune::PruneOptions;
        use crate::search::find_best_ft_plan;

        let plan = figure2_plan();
        let p = CostParams::new(20.0, 1.0);
        let (_, stats) =
            find_best_ft_plan(std::slice::from_ref(&plan), &p, &PruneOptions::default()).unwrap();
        let s = explain_search_stats(&stats);
        assert!(s.contains("1 candidate plan(s)"));
        assert!(s.contains(&format!("{} configurations unpruned", stats.configs_unpruned)));
        assert!(s.contains("pruned by rule 1"));
        assert!(s.contains("pruned by rule 2"));
        assert!(s.contains("abandoned by rule 3"));
        assert!(s.contains("explored to completion"));
        assert!(!s.contains("WARNING"), "partition must hold:\n{s}");
    }

    #[test]
    fn search_stats_summary_flags_inconsistent_counters() {
        let stats = SearchStats { configs_unpruned: 10, configs_explored: 3, ..Default::default() };
        assert!(explain_search_stats(&stats).contains("WARNING"));
    }

    #[test]
    fn dot_export_is_well_formed() {
        let (plan, cfg, params) = setup();
        let collapsed = CollapsedPlan::collapse(&plan, &cfg, params.pipe_const);
        let dot = to_dot(&plan, &cfg, &collapsed);
        assert!(dot.starts_with("digraph ftplan {"));
        assert!(dot.trim_end().ends_with('}'));
        // One cluster per collapsed stage, one node definition per op,
        // one edge per plan edge.
        assert_eq!(dot.matches("subgraph cluster_").count(), collapsed.len());
        for id in plan.op_ids() {
            assert_eq!(
                dot.matches(&format!("op{} [", id.0)).count(),
                1,
                "operator {} drawn exactly once",
                id.0
            );
        }
        let edges: usize = plan.op_ids().map(|id| plan.inputs(id).len()).sum();
        assert_eq!(dot.matches(" -> ").count(), edges);
        // Materialized ops are highlighted.
        assert!(dot.contains("peripheries=2"));
    }

    #[test]
    fn dot_export_handles_shared_members() {
        // No materialization: the shared prefix belongs to both sink
        // stages but must be drawn once.
        let plan = figure2_plan();
        let cfg = MatConfig::none(&plan);
        let collapsed = CollapsedPlan::collapse(&plan, &cfg, 1.0);
        let dot = to_dot(&plan, &cfg, &collapsed);
        for id in plan.op_ids() {
            assert_eq!(dot.matches(&format!("op{} [", id.0)).count(), 1);
        }
    }

    #[test]
    fn bound_operators_render_their_binding() {
        let mut b = PlanDag::builder();
        let s = b.bound_pipelined("scan", 1.0, 1.0, &[]).unwrap();
        b.bound_materialized("shuffle", 1.0, 1.0, &[s]).unwrap();
        let plan = b.build().unwrap();
        let cfg = MatConfig::none(&plan);
        let out = explain_plan(&plan, &cfg);
        assert!(out.contains("bound: pipe"));
        assert!(out.contains("bound: mat"));
    }
}
