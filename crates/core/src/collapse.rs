//! Collapsed plans `P^c` (paper §3.3, step 2 of the procedure).
//!
//! Given a fault-tolerant plan `[P, M_P]`, all operators that do not
//! materialize their output are collapsed into the next materializing
//! consumer(s). A collapsed operator `c` represents a sub-plan of `P` that,
//! once its output is materialized, never needs to be re-executed after a
//! mid-query failure — it is the unit of recovery granularity.
//!
//! Two details follow the paper exactly:
//!
//! * The runtime of a collapsed operator is determined by its *dominant
//!   path* `dom(c)` — the most expensive execution path inside `coll(c)` —
//!   scaled by `CONST_pipe` to account for pipeline parallelism (Eq. 1).
//!   Following the paper's own worked examples (Figures 5 and 6), the
//!   constant is only applied when the dominant path contains at least two
//!   operators; a single operator has no pipeline to overlap.
//! * The materialization cost of a collapsed operator is the
//!   materialization cost of the final operator of the dominant path, i.e.
//!   of the collapsed operator's root (`tm({1,2,3}) = tm(3)` in Figure 3).
//!
//! Sinks of `P` are always collapse boundaries: producing the query result
//! ends re-execution scope whether or not the sink's output is also written
//! to fault-tolerant storage. A sink with `m(o) = 0` simply contributes no
//! materialization cost.
//!
//! A non-materialized operator whose output fans out to several
//! materializing consumers belongs to *each* consumer's collapsed operator:
//! every consuming sub-plan must re-execute it on recovery.

use serde::{Deserialize, Serialize};

use crate::config::MatConfig;
use crate::dag::PlanDag;
use crate::operator::OpId;

/// Identifier of a collapsed operator inside a [`CollapsedPlan`].
///
/// Ids are dense indices in topological order (ascending root [`OpId`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CId(pub u32);

impl CId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One collapsed operator `c ∈ P^c`: a maximal sub-plan whose only
/// materialization point is its root.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollapsedOp {
    /// The materializing operator (or sink) that terminates the sub-plan.
    pub root: OpId,
    /// All plan operators collapsed into this operator (`coll(c)`),
    /// in ascending id order; always contains `root`.
    pub members: Vec<OpId>,
    /// The dominant path `dom(c)` in execution order, ending at `root`.
    pub dominant_path: Vec<OpId>,
    /// `tr(c)` per Eq. 1: dominant-path runtime scaled by `CONST_pipe`.
    pub run_cost: f64,
    /// `tm(c)`: materialization cost of the root (zero for
    /// non-materializing sinks).
    pub mat_cost: f64,
}

impl CollapsedOp {
    /// `t(c) = tr(c) + tm(c)`: total accumulated runtime of the collapsed
    /// operator without mid-query failures.
    #[inline]
    pub fn total_cost(&self) -> f64 {
        self.run_cost + self.mat_cost
    }
}

/// A collapsed plan `P^c` derived from a fault-tolerant plan `[P, M_P]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollapsedPlan {
    ops: Vec<CollapsedOp>,
    inputs: Vec<Vec<CId>>,
    consumers: Vec<Vec<CId>>,
}

impl CollapsedPlan {
    /// Collapses `plan` under the materialization configuration `config`
    /// (paper §3.3), applying `pipe_const ∈ (0, 1]` per Eq. 1.
    ///
    /// `config` must belong to `plan` (same operator count); this is the
    /// caller's responsibility and is checked with a debug assertion since
    /// collapsing sits on the enumeration hot path.
    pub fn collapse(plan: &PlanDag, config: &MatConfig, pipe_const: f64) -> Self {
        debug_assert_eq!(config.len(), plan.len());
        debug_assert!(pipe_const > 0.0 && pipe_const <= 1.0);

        // A plan operator is a collapse boundary (root) iff it materializes
        // or is a sink.
        let is_root = |id: OpId| config.materializes(id) || plan.consumers(id).is_empty();

        let roots: Vec<OpId> = plan.op_ids().filter(|&id| is_root(id)).collect();
        // Dense maps indexed by plan-operator index (FT203: this sits on
        // the enumeration hot path, and operator ids are already dense).
        let mut root_cid: Vec<Option<CId>> = vec![None; plan.len()];
        for (i, &r) in roots.iter().enumerate() {
            root_cid[r.index()] = Some(CId(i as u32));
        }

        let mut ops = Vec::with_capacity(roots.len());
        let mut inputs: Vec<Vec<CId>> = vec![Vec::new(); roots.len()];
        let mut consumers: Vec<Vec<CId>> = vec![Vec::new(); roots.len()];

        // Scratch buffers reused across roots. `best`/`pred` carry stale
        // values between roots, but every member is written before it is
        // read (members are topological, reads go through `in_group`).
        let mut in_group = vec![false; plan.len()];
        let mut best = vec![0.0f64; plan.len()];
        let mut pred: Vec<Option<OpId>> = vec![None; plan.len()];

        for (ci, &root) in roots.iter().enumerate() {
            // Backward closure from `root` through non-materialized inputs.
            let mut members = vec![root];
            in_group[root.index()] = true;
            let mut stack = vec![root];
            while let Some(v) = stack.pop() {
                for &u in plan.inputs(v) {
                    if !config.materializes(u) && !in_group[u.index()] {
                        in_group[u.index()] = true;
                        members.push(u);
                        stack.push(u);
                    }
                }
            }
            members.sort_unstable();

            // Dominant path: longest tr-weighted path ending at root, using
            // only group members. Members are in topological order.
            for &v in &members {
                let mut best_in = 0.0f64;
                let mut best_pred = None;
                for &u in plan.inputs(v) {
                    if in_group[u.index()] {
                        let b = best[u.index()];
                        if b > best_in {
                            best_in = b;
                            best_pred = Some(u);
                        }
                    }
                }
                best[v.index()] = best_in + plan.op(v).run_cost;
                pred[v.index()] = best_pred;
            }
            let mut dominant_path = Vec::new();
            let mut cur = Some(root);
            while let Some(v) = cur {
                dominant_path.push(v);
                cur = pred[v.index()];
            }
            dominant_path.reverse();

            let raw_run: f64 = best[root.index()];
            let run_cost = if dominant_path.len() >= 2 { raw_run * pipe_const } else { raw_run };
            let mat_cost = if config.materializes(root) { plan.op(root).mat_cost } else { 0.0 };

            // Cross-group edges: a materialized input of any member feeds
            // this collapsed operator.
            for &v in &members {
                for &u in plan.inputs(v) {
                    if config.materializes(u) {
                        let from = root_cid[u.index()]
                            .expect("materialized operator is a collapse root by definition");
                        let to = CId(ci as u32);
                        if !inputs[to.index()].contains(&from) {
                            inputs[to.index()].push(from);
                            consumers[from.index()].push(to);
                        }
                    }
                }
            }

            for &v in &members {
                in_group[v.index()] = false;
            }
            ops.push(CollapsedOp { root, members, dominant_path, run_cost, mat_cost });
        }

        for v in inputs.iter_mut().chain(consumers.iter_mut()) {
            v.sort_unstable();
        }
        let collapsed = CollapsedPlan { ops, inputs, consumers };
        #[cfg(feature = "invariant-checks")]
        crate::invariant::check_collapse(plan, config, &collapsed, pipe_const);
        collapsed
    }

    /// Number of collapsed operators.
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` iff the plan has no collapsed operators (never the case for
    /// plans produced by [`CollapsedPlan::collapse`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The collapsed operator with the given id.
    #[inline]
    pub fn op(&self, id: CId) -> &CollapsedOp {
        &self.ops[id.index()]
    }

    /// Iterates over collapsed-operator ids in topological order.
    pub fn op_ids(&self) -> impl DoubleEndedIterator<Item = CId> + ExactSizeIterator {
        (0..self.ops.len() as u32).map(CId)
    }

    /// Iterates over `(id, collapsed operator)` pairs in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (CId, &CollapsedOp)> {
        self.ops.iter().enumerate().map(|(i, op)| (CId(i as u32), op))
    }

    /// Producers feeding collapsed operator `id`.
    #[inline]
    pub fn inputs(&self, id: CId) -> &[CId] {
        &self.inputs[id.index()]
    }

    /// Consumers of collapsed operator `id`.
    #[inline]
    pub fn consumers(&self, id: CId) -> &[CId] {
        &self.consumers[id.index()]
    }

    /// Collapsed operators with no inputs.
    pub fn sources(&self) -> Vec<CId> {
        self.op_ids().filter(|&id| self.inputs(id).is_empty()).collect()
    }

    /// Collapsed operators with no consumers.
    pub fn sinks(&self) -> Vec<CId> {
        self.op_ids().filter(|&id| self.consumers(id).is_empty()).collect()
    }

    /// The collapsed operator containing plan operator `op` as its root,
    /// if any.
    pub fn by_root(&self, op: OpId) -> Option<CId> {
        self.iter().find(|(_, c)| c.root == op).map(|(id, _)| id)
    }

    /// Sum of `t(c)` over all collapsed operators.
    pub fn total_cost(&self) -> f64 {
        self.ops.iter().map(CollapsedOp::total_cost).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::figure2_plan;

    /// The materialization configuration of Figure 3 step 1: operators
    /// 3, 5, 6 and 7 (0-based ids 2, 4, 5, 6) materialize.
    pub(crate) fn figure3_config(plan: &PlanDag) -> MatConfig {
        MatConfig::from_materialized_free_ops(plan, &[OpId(2), OpId(4), OpId(5), OpId(6)]).unwrap()
    }

    #[test]
    fn figure3_collapse_shape() {
        let plan = figure2_plan();
        let cfg = figure3_config(&plan);
        let pc = CollapsedPlan::collapse(&plan, &cfg, 1.0);
        assert_eq!(pc.len(), 4);
        let groups: Vec<Vec<u32>> =
            pc.iter().map(|(_, c)| c.members.iter().map(|o| o.0).collect()).collect();
        assert_eq!(groups, vec![vec![0, 1, 2], vec![3, 4], vec![5], vec![6]]);
        // Edges: {1,2,3} -> {4,5} -> {6} and {4,5} -> {7}.
        assert_eq!(pc.inputs(CId(1)), &[CId(0)]);
        assert_eq!(pc.consumers(CId(1)), &[CId(2), CId(3)]);
        assert_eq!(pc.sources(), vec![CId(0)]);
        assert_eq!(pc.sinks(), vec![CId(2), CId(3)]);
    }

    #[test]
    fn figure3_collapse_matches_table2_costs() {
        let plan = figure2_plan();
        let cfg = figure3_config(&plan);
        let pc = CollapsedPlan::collapse(&plan, &cfg, 1.0);
        let t: Vec<f64> = pc.iter().map(|(_, c)| c.total_cost()).collect();
        // Table 2: t(c) = 4, 3, 1, 2.
        assert_eq!(t, vec![4.0, 3.0, 1.0, 2.0]);
        assert_eq!(pc.total_cost(), 10.0);
    }

    #[test]
    fn dominant_path_takes_most_expensive_branch() {
        let plan = figure2_plan();
        let cfg = figure3_config(&plan);
        let pc = CollapsedPlan::collapse(&plan, &cfg, 1.0);
        // tr(scan S) = 1.6 > tr(scan R) = 1.0, so dom({1,2,3}) = 2 -> 3
        // (ids 1, 2), exactly the paper's example in §3.3.
        assert_eq!(pc.op(CId(0)).dominant_path, vec![OpId(1), OpId(2)]);
        assert_eq!(pc.op(CId(0)).run_cost, 1.6 + 2.0);
        // tm({1,2,3}) = tm(3) = 0.4.
        assert_eq!(pc.op(CId(0)).mat_cost, 0.4);
    }

    #[test]
    fn pipe_constant_scales_multi_op_paths_only() {
        let plan = figure2_plan();
        let cfg = figure3_config(&plan);
        let pc = CollapsedPlan::collapse(&plan, &cfg, 0.5);
        // Multi-operator dominant path is scaled...
        assert_eq!(pc.op(CId(0)).run_cost, (1.6 + 2.0) * 0.5);
        // ...singleton collapsed ops are not (Figure 5/6 convention).
        assert_eq!(pc.op(CId(2)).run_cost, 0.8);
    }

    #[test]
    fn all_materialized_collapses_to_identity() {
        let plan = figure2_plan();
        let cfg = MatConfig::all(&plan);
        let pc = CollapsedPlan::collapse(&plan, &cfg, 1.0);
        assert_eq!(pc.len(), plan.len());
        for (_, c) in pc.iter() {
            assert_eq!(c.members.len(), 1);
            assert_eq!(c.run_cost, plan.op(c.root).run_cost);
            assert_eq!(c.mat_cost, plan.op(c.root).mat_cost);
        }
    }

    #[test]
    fn no_materialization_collapses_to_one_group_per_sink() {
        let plan = figure2_plan();
        let cfg = MatConfig::none(&plan);
        let pc = CollapsedPlan::collapse(&plan, &cfg, 1.0);
        // Two sinks -> two collapsed operators, both containing the shared
        // prefix 1..5.
        assert_eq!(pc.len(), 2);
        for (_, c) in pc.iter() {
            assert_eq!(c.members.len(), 6); // 5 shared + own sink
            assert_eq!(c.mat_cost, 0.0, "non-materializing sink has no tm");
        }
        assert!(pc.inputs(CId(0)).is_empty());
        assert!(pc.inputs(CId(1)).is_empty());
    }

    #[test]
    fn shared_prefix_is_counted_in_both_consumers() {
        let plan = figure2_plan();
        let cfg = MatConfig::none(&plan);
        let pc = CollapsedPlan::collapse(&plan, &cfg, 1.0);
        // dom = scan S -> join -> repart -> map -> reduce X
        let c0 = pc.op(CId(0));
        assert_eq!(c0.dominant_path.len(), 5);
        assert_eq!(c0.run_cost, 1.6 + 2.0 + 1.0 + 1.5 + 0.8);
        let c1 = pc.op(CId(1));
        assert_eq!(c1.run_cost, 1.6 + 2.0 + 1.0 + 1.5 + 1.7);
    }

    #[test]
    fn by_root_lookup() {
        let plan = figure2_plan();
        let cfg = figure3_config(&plan);
        let pc = CollapsedPlan::collapse(&plan, &cfg, 1.0);
        assert_eq!(pc.by_root(OpId(2)), Some(CId(0)));
        assert_eq!(pc.by_root(OpId(1)), None);
    }

    #[test]
    fn collapsed_ids_are_topological() {
        let plan = figure2_plan();
        for cfg in MatConfig::enumerate(&plan) {
            let pc = CollapsedPlan::collapse(&plan, &cfg, 1.0);
            for id in pc.op_ids() {
                for &inp in pc.inputs(id) {
                    assert!(inp < id, "collapsed inputs precede consumers");
                }
            }
        }
    }
}
