//! Search-space pruning rules (paper §4).
//!
//! * **Rule 1 — high materialization costs** (§4.1): an operator whose
//!   materialization is guaranteed to cost more than collapsing it into its
//!   parent is marked non-materializable before configurations are
//!   enumerated.
//! * **Rule 2 — high probability of success** (§4.2): an operator whose
//!   collapsed `{o, p}` group already reaches the target success
//!   probability `S` is marked non-materializable.
//! * **Rule 3 — long execution paths** (§4.3): during path enumeration, a
//!   fault-tolerant plan is abandoned as soon as one of its paths proves it
//!   cannot beat the best dominant path found so far, either by its
//!   failure-free runtime `R_Pt ≥ bestT`, its estimated runtime
//!   `T_Pt ≥ bestT`, or the memoized dominant-path dominance check of
//!   Eq. 9. Rule 3 lives in [`crate::search`]; this module provides the
//!   [`PathMemo`] it uses.
//!
//! Rules 1 and 2 mutate the plan's operator bindings (setting `m(o) = 0`
//! and `f(o) = 0`); each bound operator halves the configuration space.

use serde::{Deserialize, Serialize};

use crate::cost::CostParams;
use crate::dag::PlanDag;
use crate::operator::{Binding, OpId};

/// Local collapsed cost `t({children..., p})` used by rules 1 and 2: the
/// group contains `p` plus the subset `group_children` of its inputs, with
/// the dominant path `max tr(child) + tr(p)` scaled by `CONST_pipe` (the
/// group has ≥ 2 operators by construction) and `tm(p)` as the group's
/// materialization cost — exactly the arithmetic of Figures 5 and 6.
fn local_group_cost(
    plan: &PlanDag,
    parent: OpId,
    group_children: &[OpId],
    params: &CostParams,
) -> f64 {
    let max_child_tr = group_children.iter().map(|&o| plan.op(o).run_cost).fold(0.0f64, f64::max);
    (max_child_tr + plan.op(parent).run_cost) * params.pipe_const + plan.op(parent).mat_cost
}

/// Singleton collapsed cost `t({o}) = tr(o) + tm(o)` (no pipeline factor,
/// per the paper's Figure 5/6 examples).
fn singleton_cost(plan: &PlanDag, o: OpId) -> f64 {
    plan.op(o).run_cost + plan.op(o).mat_cost
}

/// Applies **Rule 1** to `plan`, returning the operators that were marked
/// non-materializable.
///
/// For every operator `p` with free input operators `o_1..o_k` (each
/// consumed only by `p`), the children are bound to `m = 0` iff
/// `t({o_1..o_k, p}) ≤ t({o_i})` for all `i` — materializing any `o_i`
/// could then never shorten a path under the cost model (the paper proves
/// `T_Pt({o,p}) ≤ T_Pt({o},{p})` from the monotonicity of `w`, `a` and `γ`
/// in `t`). Parents are processed in topological order; inputs that are
/// already non-materializable participate in the group's dominant path,
/// which only makes the test more conservative.
pub fn apply_rule1(plan: &mut PlanDag, params: &CostParams) -> Vec<OpId> {
    let mut marked = Vec::new();
    for p in plan.op_ids().collect::<Vec<_>>() {
        let free_children: Vec<OpId> = plan
            .inputs(p)
            .iter()
            .copied()
            .filter(|&o| plan.op(o).is_free() && plan.consumers(o) == [p])
            .collect();
        if free_children.is_empty() {
            continue;
        }
        // The collapsed group contains every input that will not
        // materialize: the free candidates plus already-bound pipelined ones.
        let group: Vec<OpId> = plan
            .inputs(p)
            .iter()
            .copied()
            .filter(|&o| {
                free_children.contains(&o) || plan.op(o).binding == Binding::NonMaterializable
            })
            .collect();
        let collapsed = local_group_cost(plan, p, &group, params);
        if free_children.iter().all(|&o| collapsed <= singleton_cost(plan, o)) {
            for &o in &free_children {
                plan.set_binding(o, Binding::NonMaterializable);
                marked.push(o);
            }
        }
    }
    marked
}

/// Applies **Rule 2** to `plan`, returning the operators that were marked
/// non-materializable.
///
/// For a free operator `o` that is the only input of a unary parent `p`:
/// if the collapsed group `{o, p}` already succeeds with probability
/// `γ(t({o,p})) ≥ S`, no additional attempt is expected and materializing
/// `o` could only add `tm(o)` — so `o` is bound to `m = 0`.
pub fn apply_rule2(plan: &mut PlanDag, params: &CostParams) -> Vec<OpId> {
    let mut marked = Vec::new();
    for p in plan.op_ids().collect::<Vec<_>>() {
        let inputs = plan.inputs(p);
        if inputs.len() != 1 {
            continue;
        }
        let o = inputs[0];
        if !plan.op(o).is_free() || plan.consumers(o) != [p] {
            continue;
        }
        let t_group = local_group_cost(plan, p, &[o], params);
        if params.success_probability(t_group) >= params.success_target {
            plan.set_binding(o, Binding::NonMaterializable);
            marked.push(o);
        }
    }
    marked
}

/// Which pruning rules a search should apply. All rules are on by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneOptions {
    /// Rule 1: high materialization costs (§4.1).
    pub rule1: bool,
    /// Rule 2: high probability of success (§4.2).
    pub rule2: bool,
    /// Rule 3: early path-enumeration stop on `R_Pt ≥ bestT` or
    /// `T_Pt ≥ bestT` (§4.3).
    pub rule3: bool,
    /// The aggressive Rule 3 extension: memoized dominant-path dominance
    /// (Eq. 9).
    pub rule3_memo: bool,
}

impl Default for PruneOptions {
    fn default() -> Self {
        PruneOptions { rule1: true, rule2: true, rule3: true, rule3_memo: true }
    }
}

impl PruneOptions {
    /// No pruning at all (exhaustive baseline).
    pub fn none() -> Self {
        PruneOptions { rule1: false, rule2: false, rule3: false, rule3_memo: false }
    }

    /// Only the given rule (1, 2 or 3), as used by the Figure 13 ablation.
    ///
    /// # Panics
    /// Panics if `rule` is not 1, 2 or 3.
    pub fn only(rule: u8) -> Self {
        let mut o = PruneOptions::none();
        match rule {
            1 => o.rule1 = true,
            2 => o.rule2 = true,
            3 => {
                o.rule3 = true;
                o.rule3_memo = true;
            }
            _ => panic!("no such pruning rule: {rule}"),
        }
        o
    }
}

/// Memo of the best (cheapest) dominant path per collapsed-operator count,
/// used by the aggressive Rule 3 variant (Eq. 9).
///
/// A stored entry is the descending-sorted list of operator costs `t(c)` of
/// a dominant path together with its estimated runtime `T_Ptm`. A candidate
/// path `Pt` is *dominated* if some memoized path `Ptm` with at most as
/// many operators satisfies `sort(Pt)[i] ≥ sort(Ptm)[i]` for all `i`
/// (missing entries count as zero-cost operators) — then `T_Pt ≥ T_Ptm ≥
/// bestT` follows from the monotonicity of `T(c)` in `t(c)` without ever
/// evaluating the cost function on `Pt`.
#[derive(Debug, Clone, Default)]
pub struct PathMemo {
    /// `entries[len]` — best dominant path with exactly `len + 1`
    /// collapsed operators: (sorted-descending costs, `T_Ptm`).
    entries: Vec<Option<(Vec<f64>, f64)>>,
}

impl PathMemo {
    /// Creates an empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a fully-evaluated dominant path with per-operator costs
    /// `costs` (any order) and estimated runtime `total`. Keeps only the
    /// cheapest dominant path per operator count.
    pub fn record(&mut self, costs: &[f64], total: f64) {
        if costs.is_empty() {
            return;
        }
        let idx = costs.len() - 1;
        if self.entries.len() <= idx {
            self.entries.resize(idx + 1, None);
        }
        let slot = &mut self.entries[idx];
        if slot.as_ref().is_none_or(|(_, t)| total < *t) {
            let mut sorted = costs.to_vec();
            sorted.sort_by(|a, b| b.partial_cmp(a).expect("costs are finite"));
            *slot = Some((sorted, total));
        }
    }

    /// Returns `true` iff the path with (descending-sorted) operator costs
    /// `sorted_desc` is dominated by some memoized dominant path — i.e. its
    /// estimated runtime is guaranteed to be at least the memoized one.
    pub fn dominates(&self, sorted_desc: &[f64]) -> bool {
        if sorted_desc.is_empty() {
            return false;
        }
        let max_len = sorted_desc.len().min(self.entries.len());
        self.entries[..max_len].iter().flatten().any(|(memo, _)| {
            // memo.len() <= sorted_desc.len(); pad memo with zeros.
            memo.iter().chain(std::iter::repeat(&0.0)).zip(sorted_desc).all(|(m, p)| p >= m)
        })
    }

    /// Number of memoized dominant paths.
    pub fn len(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// `true` iff nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::PlanDag;

    fn params() -> CostParams {
        CostParams::new(3600.0, 0.0).with_pipe_const(0.8)
    }

    /// Figure 5, left: unary parent. tr(o)=2, tm(o)=10; tr(p)=2, tm(p)=1.
    #[test]
    fn rule1_unary_figure5_example() {
        let mut b = PlanDag::builder();
        let o = b.free("o", 2.0, 10.0, &[]).unwrap();
        let p = b.free("p", 2.0, 1.0, &[o]).unwrap();
        let mut plan = b.build().unwrap();
        // t({o,p}) = (2+2)*0.8 + 1 = 4.2 <= t({o}) = 12.
        let marked = apply_rule1(&mut plan, &params());
        assert_eq!(marked, vec![o]);
        assert_eq!(plan.op(o).binding, Binding::NonMaterializable);
        assert!(plan.op(p).is_free(), "parent stays free");
    }

    /// Figure 5, right: n-ary parent. tr(o1)=2, tm(o1)=10; tr(o2)=4,
    /// tm(o2)=5; tr(p)=2, tm(p)=1.
    #[test]
    fn rule1_nary_figure5_example() {
        let mut b = PlanDag::builder();
        let o1 = b.free("o1", 2.0, 10.0, &[]).unwrap();
        let o2 = b.free("o2", 4.0, 5.0, &[]).unwrap();
        b.free("p", 2.0, 1.0, &[o1, o2]).unwrap();
        let mut plan = b.build().unwrap();
        // t({o1,o2,p}) = (4+2)*0.8 + 1 = 5.8 <= t({o1}) = 12 and <= t({o2}) = 9.
        let marked = apply_rule1(&mut plan, &params());
        assert_eq!(marked, vec![o1, o2]);
    }

    #[test]
    fn rule1_does_not_fire_when_materialization_is_cheap() {
        let mut b = PlanDag::builder();
        let o = b.free("o", 2.0, 0.1, &[]).unwrap();
        b.free("p", 10.0, 1.0, &[o]).unwrap();
        let mut plan = b.build().unwrap();
        // t({o,p}) = (2+10)*0.8 + 1 = 10.6 > t({o}) = 2.1.
        assert!(apply_rule1(&mut plan, &params()).is_empty());
        assert!(plan.op(o).is_free());
    }

    #[test]
    fn rule1_nary_requires_condition_for_all_children() {
        let mut b = PlanDag::builder();
        let o1 = b.free("cheap-mat", 1.0, 0.05, &[]).unwrap(); // t({o1}) = 1.05
        let o2 = b.free("exp-mat", 4.0, 5.0, &[]).unwrap(); // t({o2}) = 9
        b.free("p", 2.0, 1.0, &[o1, o2]).unwrap();
        let mut plan = b.build().unwrap();
        // t({o1,o2,p}) = (4+2)*0.8 + 1 = 5.8 > t({o1}) → neither is marked.
        assert!(apply_rule1(&mut plan, &params()).is_empty());
    }

    #[test]
    fn rule1_skips_shared_children() {
        // o feeds two parents: collapsing it into one of them would not
        // spare the other re-execution, so the rule must not fire.
        let mut b = PlanDag::builder();
        let o = b.free("o", 2.0, 10.0, &[]).unwrap();
        b.free("p1", 2.0, 1.0, &[o]).unwrap();
        b.free("p2", 2.0, 1.0, &[o]).unwrap();
        let mut plan = b.build().unwrap();
        assert!(apply_rule1(&mut plan, &params()).is_empty());
    }

    /// Figure 6: tr(o)=0.5, tm(o)=1; tr(p)=0.2, tm(p)=0.15; MTBF = 3600.
    #[test]
    fn rule2_figure6_example() {
        let mut b = PlanDag::builder();
        let o = b.free("o", 0.5, 1.0, &[]).unwrap();
        b.free("p", 0.2, 0.15, &[o]).unwrap();
        let mut plan = b.build().unwrap();
        let params = CostParams::new(3600.0, 0.0); // pipe = 1 as in Fig. 6
                                                   // t({o,p}) = 0.7 + 0.15 = 0.85; γ = e^(-0.85/3600) ≈ 0.9998 ≥ 0.95.
        let marked = apply_rule2(&mut plan, &params);
        assert_eq!(marked, vec![o]);
    }

    #[test]
    fn rule2_does_not_fire_for_long_operators_on_unreliable_clusters() {
        let mut b = PlanDag::builder();
        let o = b.free("o", 500.0, 1.0, &[]).unwrap();
        b.free("p", 200.0, 0.15, &[o]).unwrap();
        let mut plan = b.build().unwrap();
        let params = CostParams::new(3600.0, 0.0);
        // γ(700.15) = e^(-0.194) ≈ 0.82 < 0.95.
        assert!(apply_rule2(&mut plan, &params).is_empty());
        assert!(plan.op(o).is_free());
    }

    #[test]
    fn rule2_only_applies_to_unary_parents() {
        let mut b = PlanDag::builder();
        let o1 = b.free("o1", 0.1, 0.1, &[]).unwrap();
        let o2 = b.free("o2", 0.1, 0.1, &[]).unwrap();
        b.free("p", 0.1, 0.1, &[o1, o2]).unwrap();
        let mut plan = b.build().unwrap();
        let params = CostParams::new(3600.0, 0.0);
        assert!(apply_rule2(&mut plan, &params).is_empty());
    }

    #[test]
    fn rules_skip_bound_operators() {
        let mut b = PlanDag::builder();
        let o = b.bound_materialized("shuffle", 2.0, 10.0, &[]).unwrap();
        b.free("p", 2.0, 1.0, &[o]).unwrap();
        let mut plan = b.build().unwrap();
        assert!(apply_rule1(&mut plan, &params()).is_empty());
        assert!(apply_rule2(&mut plan, &CostParams::new(3600.0, 0.0)).is_empty());
        assert_eq!(plan.op(o).binding, Binding::AlwaysMaterialized);
    }

    // --- Rule 3 memo (Eq. 9), including the paper's Figure 7 example. ---

    /// Figure 7: memoized Ptm1 = (5, 3, 1) and Ptm2 = (4, 4); the analyzed
    /// path Pt = (4, 4, 1) is not dominated by Ptm1 but dominated by Ptm2.
    #[test]
    fn memo_figure7_example() {
        let mut memo = PathMemo::new();
        memo.record(&[5.0, 3.0, 1.0], 9.5);
        memo.record(&[4.0, 4.0], 8.2);
        assert!(memo.dominates(&[4.0, 4.0, 1.0]));
        // Without Ptm2 the path would survive: 4 < 5 at index 0.
        let mut memo1 = PathMemo::new();
        memo1.record(&[5.0, 3.0, 1.0], 9.5);
        assert!(!memo1.dominates(&[4.0, 4.0, 1.0]));
    }

    #[test]
    fn memo_keeps_cheapest_per_length() {
        let mut memo = PathMemo::new();
        memo.record(&[10.0, 10.0], 25.0);
        memo.record(&[2.0, 1.0], 3.2);
        assert_eq!(memo.len(), 1);
        assert!(memo.dominates(&[2.0, 1.5]));
        assert!(!memo.dominates(&[1.0, 1.0]));
    }

    #[test]
    fn memo_never_compares_against_longer_paths() {
        let mut memo = PathMemo::new();
        memo.record(&[1.0, 1.0, 1.0], 3.3);
        // A 2-op path cannot be compared with a 3-op memo entry.
        assert!(!memo.dominates(&[5.0, 5.0]));
    }

    #[test]
    fn memo_empty_and_trivial_cases() {
        let mut memo = PathMemo::new();
        assert!(memo.is_empty());
        assert!(!memo.dominates(&[1.0]));
        memo.record(&[], 0.0); // ignored
        assert!(memo.is_empty());
        memo.record(&[1.0], 1.0);
        assert!(!memo.is_empty());
        assert!(memo.dominates(&[1.0]));
        assert!(memo.dominates(&[2.0]));
        assert!(!memo.dominates(&[0.5]));
    }

    #[test]
    fn prune_options_constructors() {
        let all = PruneOptions::default();
        assert!(all.rule1 && all.rule2 && all.rule3 && all.rule3_memo);
        let none = PruneOptions::none();
        assert!(!none.rule1 && !none.rule2 && !none.rule3 && !none.rule3_memo);
        assert!(PruneOptions::only(1).rule1);
        assert!(PruneOptions::only(2).rule2);
        assert!(PruneOptions::only(3).rule3);
        assert!(!PruneOptions::only(3).rule1);
    }

    #[test]
    #[should_panic(expected = "no such pruning rule")]
    fn prune_options_only_rejects_unknown_rule() {
        let _ = PruneOptions::only(4);
    }
}

/// Property tests for [`PathMemo::record`] / [`PathMemo::dominates`]:
/// the Eq. 9 dominance check must be monotone in the (prefix-sorted) cost
/// vector and must never fire on a path that is strictly cheaper in any
/// coordinate without compensation — a false positive here would make the
/// search discard competitive fault-tolerant plans.
#[cfg(test)]
mod memo_proptests {
    use proptest::prelude::*;

    use super::PathMemo;

    /// Descending-sorted cost vector with 1..=6 entries in (0, 50].
    fn arb_costs() -> impl Strategy<Value = Vec<f64>> {
        collection::vec(0.01f64..50.0, 1..=6).prop_map(|mut v| {
            v.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
            v
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Reflexivity on ties: a recorded path dominates itself (Eq. 9
        /// uses `>=`, so an exact tie cannot beat the memoized runtime and
        /// is correctly skipped).
        #[test]
        #[cfg_attr(miri, ignore = "256-case proptests are too slow under Miri")]
        fn recorded_path_dominates_itself(costs in arb_costs(), total in 0.1f64..1e3) {
            let mut memo = PathMemo::new();
            memo.record(&costs, total);
            prop_assert!(memo.dominates(&costs));
        }

        /// Monotonicity: inflating any coordinates of a dominated path
        /// keeps it dominated (prefix-sorted costs only grow pointwise).
        #[test]
        #[cfg_attr(miri, ignore = "256-case proptests are too slow under Miri")]
        fn dominance_is_monotone_under_inflation(
            costs in arb_costs(),
            total in 0.1f64..1e3,
            bumps in collection::vec(0.0f64..10.0, 6usize),
        ) {
            let mut memo = PathMemo::new();
            memo.record(&costs, total);
            let mut inflated: Vec<f64> =
                costs.iter().zip(&bumps).map(|(c, b)| c + b).collect();
            inflated.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
            prop_assert!(memo.dominates(&inflated));
        }

        /// No false dominance: deflating one coordinate of the only
        /// memoized entry must not be reported as dominated (single-entry
        /// memo, same length — nothing else could justify the skip).
        #[test]
        #[cfg_attr(miri, ignore = "256-case proptests are too slow under Miri")]
        fn no_false_dominance_below_the_entry(
            costs in arb_costs(),
            total in 0.1f64..1e3,
            pick in any::<u64>(),
        ) {
            let mut memo = PathMemo::new();
            memo.record(&costs, total);
            let i = (pick as usize) % costs.len();
            let mut cheaper = costs.clone();
            cheaper[i] *= 0.5;
            cheaper.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
            prop_assert!(!memo.dominates(&cheaper));
        }

        /// Shorter paths are never compared against longer memo entries:
        /// a k-operator path can only be dominated by entries with <= k
        /// operators (missing operators count as zero cost, Eq. 9).
        #[test]
        #[cfg_attr(miri, ignore = "256-case proptests are too slow under Miri")]
        fn shorter_paths_ignore_longer_entries(costs in arb_costs(), total in 0.1f64..1e3) {
            prop_assume!(costs.len() >= 2);
            let mut memo = PathMemo::new();
            memo.record(&costs, total);
            let shorter = &costs[..costs.len() - 1];
            // All coordinates of `shorter` match the entry's prefix, but
            // the entry has one more (positive-cost) operator: comparing
            // would under-report, so it must not dominate.
            prop_assert!(!memo.dominates(shorter));
        }

        /// `record` keeps only the cheapest entry per path length, so
        /// dominance reflects the cheaper total's cost vector.
        #[test]
        #[cfg_attr(miri, ignore = "256-case proptests are too slow under Miri")]
        fn record_keeps_cheapest_per_length(
            a in arb_costs(),
            b in arb_costs(),
            t1 in 0.1f64..1e3,
            dt in 0.1f64..1e3,
        ) {
            prop_assume!(a.len() == b.len());
            let (cheap, expensive) = (&a, &b);
            let mut memo = PathMemo::new();
            memo.record(cheap, t1);
            memo.record(expensive, t1 + dt); // more expensive: ignored
            prop_assert_eq!(memo.len(), 1);
            prop_assert!(memo.dominates(cheap));
            let mut both = PathMemo::new();
            both.record(expensive, t1 + dt);
            both.record(cheap, t1); // cheaper: replaces
            prop_assert!(both.dominates(cheap));
        }
    }
}
