//! Materialization configurations `M_P` (paper §2.1).
//!
//! A [`MatConfig`] assigns `m(o) ∈ {0, 1}` to every operator of a plan.
//! Bound operators always keep their fixed value; for free operators the
//! configuration stores an explicit decision. [`MatConfig::enumerate`]
//! yields all `2^n` configurations over the `n` free operators of a plan —
//! the raw search space of the paper's step 1 before pruning.

use serde::{Deserialize, Serialize};

use crate::dag::PlanDag;
use crate::error::{CoreError, Result};
use crate::operator::{Binding, OpId};

/// A materialization configuration: the set `{m(o) | o ∈ P}`.
///
/// Internally a bitset indexed by [`OpId`]; bits of bound operators mirror
/// their binding so that [`MatConfig::materializes`] answers the *effective*
/// `m(o)` for any operator.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatConfig {
    bits: Vec<bool>,
}

impl MatConfig {
    /// The configuration that materializes nothing beyond bound operators
    /// (the `no-mat` family of schemes).
    pub fn none(plan: &PlanDag) -> Self {
        Self::from_free_bits(plan, 0)
    }

    /// The configuration that materializes every operator that is not
    /// explicitly non-materializable (the `all-mat` / Hadoop-style scheme).
    pub fn all(plan: &PlanDag) -> Self {
        let bits =
            plan.iter().map(|(_, op)| !matches!(op.binding, Binding::NonMaterializable)).collect();
        MatConfig { bits }
    }

    /// Builds a configuration from the set of free operators to materialize.
    ///
    /// # Errors
    /// [`CoreError::UnknownOperator`] if an id is out of range, and
    /// [`CoreError::ConfigMismatch`] if a listed operator is not free.
    pub fn from_materialized_free_ops(plan: &PlanDag, ops: &[OpId]) -> Result<Self> {
        let mut cfg = Self::none(plan);
        for &id in ops {
            if id.index() >= plan.len() {
                return Err(CoreError::UnknownOperator(id));
            }
            if !plan.op(id).is_free() {
                return Err(CoreError::ConfigMismatch {
                    expected_ops: plan.free_count(),
                    got_ops: ops.len(),
                });
            }
            cfg.bits[id.index()] = true;
        }
        Ok(cfg)
    }

    /// Builds the configuration whose free-operator decisions are the bits
    /// of `mask`, where bit `k` corresponds to the `k`-th free operator in
    /// topological order. Masks `0..2^n` cover the whole search space.
    pub fn from_free_bits(plan: &PlanDag, mask: u64) -> Self {
        let mut bits = vec![false; plan.len()];
        let mut k = 0usize;
        for (id, op) in plan.iter() {
            match op.binding {
                Binding::AlwaysMaterialized => bits[id.index()] = true,
                Binding::NonMaterializable => {}
                Binding::Free => {
                    bits[id.index()] = (mask >> k) & 1 == 1;
                    k += 1;
                }
            }
        }
        MatConfig { bits }
    }

    /// Effective `m(o)` for operator `id`.
    #[inline]
    pub fn materializes(&self, id: OpId) -> bool {
        self.bits[id.index()]
    }

    /// Number of operators covered (equals the plan length).
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` iff the configuration covers no operators.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Ids of all materialized operators, in topological order.
    pub fn materialized_ops(&self) -> Vec<OpId> {
        self.bits.iter().enumerate().filter_map(|(i, &m)| m.then_some(OpId(i as u32))).collect()
    }

    /// Number of materialized operators.
    pub fn materialized_count(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Total materialization cost `Σ tm(o)·m(o)` implied by this
    /// configuration on `plan`.
    pub fn total_mat_cost(&self, plan: &PlanDag) -> f64 {
        plan.iter().filter(|(id, _)| self.materializes(*id)).map(|(_, op)| op.mat_cost).sum()
    }

    /// Validates that this configuration matches the shape of `plan`:
    /// same operator count and bound operators carrying their fixed values.
    pub fn validate(&self, plan: &PlanDag) -> Result<()> {
        if self.bits.len() != plan.len() {
            return Err(CoreError::ConfigMismatch {
                expected_ops: plan.len(),
                got_ops: self.bits.len(),
            });
        }
        for (id, op) in plan.iter() {
            let ok = match op.binding {
                Binding::AlwaysMaterialized => self.materializes(id),
                Binding::NonMaterializable => !self.materializes(id),
                Binding::Free => true,
            };
            if !ok {
                return Err(CoreError::ConfigMismatch {
                    expected_ops: plan.len(),
                    got_ops: self.bits.len(),
                });
            }
        }
        Ok(())
    }

    /// Exhaustively enumerates all `2^n` configurations over the free
    /// operators of `plan`, in ascending bit-mask order (the empty
    /// configuration first).
    ///
    /// Plans with more than 63 free operators are not enumerable
    /// exhaustively; callers should apply the pruning rules of [`crate::prune`]
    /// first (the paper's plans have ≤ 6 free operators).
    pub fn enumerate(plan: &PlanDag) -> ConfigEnumerator<'_> {
        let n = plan.free_count();
        assert!(n < 64, "cannot exhaustively enumerate {n} free operators");
        ConfigEnumerator { plan, next: 0, end: 1u64 << n }
    }
}

/// Iterator over all materialization configurations of a plan.
///
/// Created by [`MatConfig::enumerate`].
#[derive(Debug)]
pub struct ConfigEnumerator<'a> {
    plan: &'a PlanDag,
    next: u64,
    end: u64,
}

impl Iterator for ConfigEnumerator<'_> {
    type Item = MatConfig;

    fn next(&mut self) -> Option<MatConfig> {
        if self.next >= self.end {
            return None;
        }
        let cfg = MatConfig::from_free_bits(self.plan, self.next);
        self.next += 1;
        Some(cfg)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.end - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ConfigEnumerator<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::figure2_plan;

    fn mixed_plan() -> PlanDag {
        let mut b = PlanDag::builder();
        let a = b.free("scan", 1.0, 1.0, &[]).unwrap();
        let r = b.bound_materialized("repart", 1.0, 1.0, &[a]).unwrap();
        let j = b.free("join", 1.0, 1.0, &[r]).unwrap();
        b.bound_pipelined("project", 1.0, 1.0, &[j]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn enumerate_covers_full_space() {
        let p = figure2_plan();
        let cfgs: Vec<_> = MatConfig::enumerate(&p).collect();
        assert_eq!(cfgs.len(), 128); // 2^7 free operators
                                     // All distinct.
        let set: std::collections::HashSet<_> = cfgs.iter().cloned().collect();
        assert_eq!(set.len(), 128);
    }

    #[test]
    fn enumerator_reports_exact_size() {
        let p = figure2_plan();
        let mut e = MatConfig::enumerate(&p);
        assert_eq!(e.len(), 128);
        e.next();
        assert_eq!(e.len(), 127);
    }

    #[test]
    fn bound_operators_keep_fixed_values() {
        let p = mixed_plan();
        for cfg in MatConfig::enumerate(&p) {
            assert!(cfg.materializes(OpId(1)), "always-materialized stays 1");
            assert!(!cfg.materializes(OpId(3)), "non-materializable stays 0");
            cfg.validate(&p).unwrap();
        }
        assert_eq!(MatConfig::enumerate(&p).count(), 4); // 2 free ops
    }

    #[test]
    fn none_and_all() {
        let p = mixed_plan();
        let none = MatConfig::none(&p);
        assert_eq!(none.materialized_ops(), vec![OpId(1)]);
        let all = MatConfig::all(&p);
        assert_eq!(all.materialized_ops(), vec![OpId(0), OpId(1), OpId(2)]);
        assert_eq!(all.materialized_count(), 3);
    }

    #[test]
    fn from_materialized_free_ops_validates() {
        let p = mixed_plan();
        let cfg = MatConfig::from_materialized_free_ops(&p, &[OpId(2)]).unwrap();
        assert!(cfg.materializes(OpId(2)));
        assert!(!cfg.materializes(OpId(0)));
        // Bound op may not be listed.
        assert!(MatConfig::from_materialized_free_ops(&p, &[OpId(1)]).is_err());
        // Out-of-range id.
        assert!(MatConfig::from_materialized_free_ops(&p, &[OpId(9)]).is_err());
    }

    #[test]
    fn total_mat_cost_sums_materialized_only() {
        let p = mixed_plan();
        let cfg = MatConfig::from_materialized_free_ops(&p, &[OpId(0)]).unwrap();
        // op0 (free, chosen) + op1 (always materialized) = 2.0
        assert_eq!(cfg.total_mat_cost(&p), 2.0);
    }

    #[test]
    fn validate_rejects_wrong_length() {
        let p1 = mixed_plan();
        let p2 = figure2_plan();
        let cfg = MatConfig::none(&p1);
        assert!(cfg.validate(&p2).is_err());
    }

    #[test]
    fn from_free_bits_maps_kth_bit_to_kth_free_op() {
        let p = mixed_plan(); // free ops: 0 and 2
        let cfg = MatConfig::from_free_bits(&p, 0b10);
        assert!(!cfg.materializes(OpId(0)));
        assert!(cfg.materializes(OpId(2)));
    }
}

#[cfg(test)]
mod boundary_tests {
    use super::*;

    /// Exhaustive enumeration is refused past 63 free operators — the
    /// pruning rules exist precisely so realistic plans never get there.
    #[test]
    #[should_panic(expected = "cannot exhaustively enumerate")]
    fn enumerate_refuses_huge_free_sets() {
        let mut b = PlanDag::builder();
        let mut prev = None;
        for i in 0..64 {
            let inputs: Vec<OpId> = prev.into_iter().collect();
            prev = Some(b.free(format!("op{i}"), 1.0, 1.0, &inputs).unwrap());
        }
        let plan = b.build().unwrap();
        let _ = MatConfig::enumerate(&plan);
    }

    /// 63 free operators are representable (mask arithmetic at the edge).
    #[test]
    fn from_free_bits_at_the_63_bit_edge() {
        let mut b = PlanDag::builder();
        let mut prev = None;
        for i in 0..63 {
            let inputs: Vec<OpId> = prev.into_iter().collect();
            prev = Some(b.free(format!("op{i}"), 1.0, 1.0, &inputs).unwrap());
        }
        let plan = b.build().unwrap();
        let all_bits = (1u64 << 63) - 1;
        let cfg = MatConfig::from_free_bits(&plan, all_bits);
        assert_eq!(cfg.materialized_count(), 63);
        let none = MatConfig::from_free_bits(&plan, 0);
        assert_eq!(none.materialized_count(), 0);
    }

    /// Zero-cost operators collapse and cost out without NaNs.
    #[test]
    fn zero_cost_operators_are_harmless() {
        let mut b = PlanDag::builder();
        let a = b.free("zero", 0.0, 0.0, &[]).unwrap();
        let c = b.free("also zero", 0.0, 0.0, &[a]).unwrap();
        b.free("real", 5.0, 1.0, &[c]).unwrap();
        let plan = b.build().unwrap();
        let params = crate::cost::CostParams::new(10.0, 1.0);
        for cfg in MatConfig::enumerate(&plan) {
            let est = crate::cost::estimate_ft_plan(&plan, &cfg, &params);
            assert!(est.dominant_cost.is_finite());
            assert!(est.dominant_cost >= 5.0);
        }
    }
}
