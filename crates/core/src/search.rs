//! The `findBestFTPlan` procedure (paper §3.1, Listing 1) with the pruning
//! rules of §4 wired in.
//!
//! The search takes a set of candidate execution plans (in a full system,
//! the top-k plans produced by the cost-based join enumerator — see the
//! `ftpde-optimizer` crate) and, for each, enumerates materialization
//! configurations, estimating the dominant-path runtime under mid-query
//! failures for every fault-tolerant plan `[P, M_P]`. It returns the
//! fault-tolerant plan with the shortest dominant path, plus counters that
//! quantify how much work each pruning rule saved (the raw data behind the
//! paper's Figure 13).

use std::ops::ControlFlow;

use ftpde_obs::{Event, NoopRecorder, Recorder};
use serde::{Deserialize, Serialize};

use crate::collapse::{CId, CollapsedPlan};
use crate::config::MatConfig;
use crate::cost::{path_cost, path_runtime, CostParams, FtEstimate};
use crate::dag::PlanDag;
use crate::error::{CoreError, Result};
use crate::paths::for_each_path;
use crate::prune::{apply_rule1, apply_rule2, PathMemo, PruneOptions};

/// The best fault-tolerant plan `[P, M_P]` found by the search.
#[derive(Debug, Clone)]
pub struct BestFtPlan {
    /// Index of the winning plan in the candidate slice.
    pub plan_index: usize,
    /// The winning plan with post-pruning operator bindings.
    pub plan: PlanDag,
    /// The winning materialization configuration.
    pub config: MatConfig,
    /// Collapsed plan, dominant path and estimated runtime of the winner.
    pub estimate: FtEstimate,
}

/// Work counters collected during the search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Candidate plans examined.
    pub plans_considered: u64,
    /// `Σ 2^n` over candidates with `n` = free operators *before* rules
    /// 1/2 — the unpruned size of the configuration space.
    pub configs_unpruned: u64,
    /// Configurations actually enumerated (after rules 1/2 shrank the free
    /// sets; includes configurations later abandoned by rule 3).
    pub configs_enumerated: u64,
    /// Configurations eliminated by rule 1: for a plan with `n` free
    /// operators of which rule 1 binds `b1`, the `2^n - 2^(n-b1)`
    /// configurations that would have materialized a rule-1-bound operator.
    pub configs_pruned_rule1: u64,
    /// Configurations eliminated by rule 2 *after* rule 1 shrank the space:
    /// `2^(n-b1) - 2^(n-b1-b2)` per plan.
    pub configs_pruned_rule2: u64,
    /// Configurations whose every execution path was enumerated and costed
    /// to completion (i.e. not abandoned by rule 3).
    pub configs_explored: u64,
    /// Free operators bound by rule 1, summed over candidate plans.
    pub rule1_bound_ops: u64,
    /// Free operators bound by rule 2, summed over candidate plans.
    pub rule2_bound_ops: u64,
    /// Fault-tolerant plans abandoned mid-path-enumeration because a path's
    /// failure-free runtime already reached `bestT` (rule 3, condition 1).
    pub rule3_runtime_stops: u64,
    /// Fault-tolerant plans abandoned because a path's estimated runtime
    /// reached `bestT` (rule 3, condition 2).
    pub rule3_estimate_stops: u64,
    /// Fault-tolerant plans abandoned by the memoized dominant-path
    /// dominance check (Eq. 9).
    pub rule3_memo_stops: u64,
    /// Execution paths visited across all fault-tolerant plans.
    pub paths_examined: u64,
    /// Execution paths whose `T_Pt` was actually evaluated (rule 3's
    /// condition 1 and the memo check skip the cost function entirely).
    pub paths_costed: u64,
    /// How often the incumbent best plan was replaced.
    pub best_updates: u64,
}

impl SearchStats {
    /// Fault-tolerant plans abandoned early by any rule-3 variant.
    pub fn rule3_stops(&self) -> u64 {
        self.rule3_runtime_stops + self.rule3_estimate_stops + self.rule3_memo_stops
    }

    /// Configurations eliminated outright by rules 1/2 (never enumerated).
    pub fn configs_skipped(&self) -> u64 {
        self.configs_unpruned - self.configs_enumerated
    }

    /// The pruning-accounting partition: every configuration in the
    /// unpruned space is either explored to completion, eliminated by
    /// rule 1 or rule 2 before enumeration, or abandoned by a rule-3 stop.
    pub fn partition_holds(&self) -> bool {
        self.configs_explored
            + self.configs_pruned_rule1
            + self.configs_pruned_rule2
            + self.rule3_stops()
            == self.configs_unpruned
    }
}

/// Checks [`SearchStats::partition_holds`] and, on violation, mirrors a
/// `partition_violation` instant (category `"search"`) carrying every
/// counter of the partition into `rec`. Returns whether the invariant
/// holds. [`find_best_ft_plan_traced`] calls this after every search so a
/// counter regression shows up in traces instead of silently corrupting
/// the Figure 13 accounting.
pub fn record_partition_check(stats: &SearchStats, rec: &dyn Recorder, ts_us: u64) -> bool {
    let holds = stats.partition_holds();
    if !holds {
        rec.record_with(|| {
            Event::instant("partition_violation", "search", ts_us)
                .arg("configs_unpruned", stats.configs_unpruned)
                .arg("configs_explored", stats.configs_explored)
                .arg("configs_pruned_rule1", stats.configs_pruned_rule1)
                .arg("configs_pruned_rule2", stats.configs_pruned_rule2)
                .arg("rule3_stops", stats.rule3_stops())
        });
    }
    holds
}

/// Outcome of evaluating one fault-tolerant plan `[P, M_P]`.
enum ConfigOutcome {
    /// All paths enumerated; the dominant path and its cost.
    Complete { dominant: Vec<CId>, dominant_cost: f64, dominant_runtime: f64 },
    /// Abandoned early by rule 3 (cannot beat `bestT`).
    Abandoned,
}

/// Evaluates one configuration against the incumbent `bestT`, applying
/// rule 3 if enabled. Updates path counters in `stats`.
fn evaluate_config(
    collapsed: &CollapsedPlan,
    params: &CostParams,
    opts: &PruneOptions,
    best_t: f64,
    memo: &mut PathMemo,
    stats: &mut SearchStats,
) -> ConfigOutcome {
    enum Stop {
        Runtime,
        Estimate,
        Memo,
    }

    let mut dominant: Vec<CId> = Vec::new();
    let mut dominant_cost = f64::NEG_INFINITY;
    let mut dominant_runtime = 0.0;
    let mut sorted_scratch: Vec<f64> = Vec::new();

    let stop = for_each_path::<Stop>(collapsed, |path| {
        stats.paths_examined += 1;
        // Rule 3, condition 1: R_Pt >= bestT needs no cost-function call.
        if opts.rule3 {
            let r = path_runtime(collapsed, path);
            if r >= best_t {
                return ControlFlow::Break(Stop::Runtime);
            }
        }
        // Eq. 9 memo check: still no cost-function call.
        if opts.rule3_memo {
            sorted_scratch.clear();
            sorted_scratch.extend(path.iter().map(|&c| collapsed.op(c).total_cost()));
            sorted_scratch.sort_by(|a, b| b.partial_cmp(a).expect("finite costs"));
            if memo.dominates(&sorted_scratch) {
                return ControlFlow::Break(Stop::Memo);
            }
        }
        stats.paths_costed += 1;
        let t = path_cost(collapsed, path, params);
        if t > dominant_cost {
            dominant_cost = t;
            dominant_runtime = path_runtime(collapsed, path);
            dominant = path.to_vec();
        }
        // Rule 3, condition 2.
        if opts.rule3 && t >= best_t {
            return ControlFlow::Break(Stop::Estimate);
        }
        ControlFlow::Continue(())
    });

    match stop {
        Some(Stop::Runtime) => {
            stats.rule3_runtime_stops += 1;
            ConfigOutcome::Abandoned
        }
        Some(Stop::Estimate) => {
            stats.rule3_estimate_stops += 1;
            ConfigOutcome::Abandoned
        }
        Some(Stop::Memo) => {
            stats.rule3_memo_stops += 1;
            ConfigOutcome::Abandoned
        }
        None => ConfigOutcome::Complete { dominant, dominant_cost, dominant_runtime },
    }
}

/// Finds the best fault-tolerant plan over `candidates` (Listing 1).
///
/// For each candidate plan the rules 1/2 of `opts` first shrink the free
/// operator set, then all remaining materialization configurations are
/// enumerated and costed; rule 3 abandons configurations (and memoizes
/// dominant paths) across *all* candidates, as suggested at the end of
/// §4.3. Returns the winner and the search statistics.
///
/// # Errors
/// [`CoreError::NoCandidatePlans`] if `candidates` is empty; parameter
/// validation errors from [`CostParams::validate`].
pub fn find_best_ft_plan(
    candidates: &[PlanDag],
    params: &CostParams,
    opts: &PruneOptions,
) -> Result<(BestFtPlan, SearchStats)> {
    find_best_ft_plan_traced(candidates, params, opts, &NoopRecorder)
}

/// [`find_best_ft_plan`] with search events mirrored into `rec` under
/// category `"search"` (wall-clock microseconds from the call's start):
/// one `plan` instant per candidate (free-operator count and per-rule
/// bindings), one `best_update` instant per incumbent replacement, and a
/// closing `find_best_ft_plan` span carrying the final [`SearchStats`]
/// counters. With a [`NoopRecorder`] the instrumentation costs one branch
/// per site.
///
/// # Errors
/// Same as [`find_best_ft_plan`].
pub fn find_best_ft_plan_traced(
    candidates: &[PlanDag],
    params: &CostParams,
    opts: &PruneOptions,
    rec: &dyn Recorder,
) -> Result<(BestFtPlan, SearchStats)> {
    params.validate()?;
    if candidates.is_empty() {
        return Err(CoreError::NoCandidatePlans);
    }

    let t0 = crate::sync::clock::now();
    let now_us = || crate::sync::clock::elapsed(t0).as_micros() as u64;

    let mut stats = SearchStats::default();
    let mut memo = PathMemo::new();
    let mut best: Option<BestFtPlan> = None;
    let mut best_t = f64::INFINITY;

    for (plan_index, candidate) in candidates.iter().enumerate() {
        stats.plans_considered += 1;
        let free_ops = candidate.free_count() as u64;
        stats.configs_unpruned += 1u64 << free_ops;

        let mut plan = candidate.clone();
        let rule1_bound = if opts.rule1 { apply_rule1(&mut plan, params).len() as u64 } else { 0 };
        let rule2_bound = if opts.rule2 { apply_rule2(&mut plan, params).len() as u64 } else { 0 };
        stats.rule1_bound_ops += rule1_bound;
        stats.rule2_bound_ops += rule2_bound;
        // Each bound operator halves the remaining space; attribute the
        // eliminated configurations to the rule that bound it.
        stats.configs_pruned_rule1 += (1u64 << free_ops) - (1u64 << (free_ops - rule1_bound));
        stats.configs_pruned_rule2 +=
            (1u64 << (free_ops - rule1_bound)) - (1u64 << (free_ops - rule1_bound - rule2_bound));

        rec.record_with(|| {
            Event::instant("plan", "search", now_us())
                .arg("plan_index", plan_index)
                .arg("free_ops", free_ops)
                .arg("rule1_bound", rule1_bound)
                .arg("rule2_bound", rule2_bound)
        });

        for config in MatConfig::enumerate(&plan) {
            stats.configs_enumerated += 1;
            let collapsed = CollapsedPlan::collapse(&plan, &config, params.pipe_const);
            match evaluate_config(&collapsed, params, opts, best_t, &mut memo, &mut stats) {
                ConfigOutcome::Abandoned => {}
                ConfigOutcome::Complete { dominant, dominant_cost, dominant_runtime } => {
                    stats.configs_explored += 1;
                    if opts.rule3_memo {
                        let costs: Vec<f64> =
                            dominant.iter().map(|&c| collapsed.op(c).total_cost()).collect();
                        memo.record(&costs, dominant_cost);
                    }
                    if dominant_cost < best_t {
                        best_t = dominant_cost;
                        stats.best_updates += 1;
                        rec.record_with(|| {
                            Event::instant("best_update", "search", now_us())
                                .arg("plan_index", plan_index)
                                .arg("cost", dominant_cost)
                                .arg("materialized", config.materialized_count())
                        });
                        let paths_examined = stats.paths_examined;
                        best = Some(BestFtPlan {
                            plan_index,
                            plan: plan.clone(),
                            config,
                            estimate: FtEstimate {
                                collapsed: collapsed.clone(),
                                dominant_path: dominant,
                                dominant_cost,
                                dominant_runtime,
                                paths_examined,
                            },
                        });
                    }
                }
            }
        }
    }

    if !record_partition_check(&stats, rec, now_us()) {
        debug_assert!(false, "pruning-counter partition invariant broke: {stats:?}");
    }
    #[cfg(feature = "invariant-checks")]
    crate::invariant::check_search_stats(&stats);

    // Always-on metrics: fold this search's counters into the
    // process-global registry so optimizer activity (expansion, pruning,
    // memo effectiveness) is visible even with a no-op recorder.
    let g = ftpde_obs::global();
    g.counter_add("search.runs_total", 1);
    g.counter_add("search.plans_considered_total", stats.plans_considered);
    g.counter_add("search.configs_unpruned_total", stats.configs_unpruned);
    g.counter_add("search.configs_enumerated_total", stats.configs_enumerated);
    g.counter_add("search.configs_explored_total", stats.configs_explored);
    g.counter_add("search.configs_pruned_rule1_total", stats.configs_pruned_rule1);
    g.counter_add("search.configs_pruned_rule2_total", stats.configs_pruned_rule2);
    g.counter_add("search.rule3_stops_total", stats.rule3_stops());
    g.counter_add("search.memo_hits_total", stats.rule3_memo_stops);
    g.counter_add("search.paths_examined_total", stats.paths_examined);
    g.counter_add("search.paths_costed_total", stats.paths_costed);
    g.counter_add("search.best_updates_total", stats.best_updates);
    g.observe("search.seconds", crate::sync::clock::elapsed(t0).as_secs_f64());

    rec.record_with(|| {
        Event::span("find_best_ft_plan", "search", 0, now_us())
            .arg("plans", stats.plans_considered)
            .arg("configs_unpruned", stats.configs_unpruned)
            .arg("configs_explored", stats.configs_explored)
            .arg("configs_pruned_rule1", stats.configs_pruned_rule1)
            .arg("configs_pruned_rule2", stats.configs_pruned_rule2)
            .arg("rule3_stops", stats.rule3_stops())
            .arg("memo_hits", stats.rule3_memo_stops)
            .arg("paths_examined", stats.paths_examined)
            .arg("paths_costed", stats.paths_costed)
            .arg("best_updates", stats.best_updates)
    });

    Ok((best.expect("at least one config per plan completes"), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::estimate_ft_plan;
    use crate::dag::figure2_plan;

    fn params(mtbf: f64) -> CostParams {
        CostParams::new(mtbf, 1.0)
    }

    /// Exhaustive reference: the best config by brute force, no pruning.
    fn brute_force(plan: &PlanDag, params: &CostParams) -> (MatConfig, f64) {
        MatConfig::enumerate(plan)
            .map(|cfg| {
                let est = estimate_ft_plan(plan, &cfg, params);
                (cfg, est.dominant_cost)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
    }

    #[test]
    fn search_matches_brute_force_without_pruning() {
        let plan = figure2_plan();
        for mtbf in [5.0, 20.0, 60.0, 1000.0] {
            let p = params(mtbf);
            let (best, stats) =
                find_best_ft_plan(std::slice::from_ref(&plan), &p, &PruneOptions::none()).unwrap();
            let (_, bf_cost) = brute_force(&plan, &p);
            assert!(
                (best.estimate.dominant_cost - bf_cost).abs() < 1e-9,
                "mtbf={mtbf}: search {} vs brute force {bf_cost}",
                best.estimate.dominant_cost
            );
            assert_eq!(stats.configs_enumerated, 128);
            assert_eq!(stats.configs_unpruned, 128);
        }
    }

    #[test]
    fn rule3_alone_preserves_the_optimum_exactly() {
        // Rule 3 only abandons fault-tolerant plans that provably cannot
        // beat the incumbent, so the optimum is untouched.
        let plan = figure2_plan();
        for mtbf in [5.0, 20.0, 60.0, 1000.0, 1e6] {
            let p = params(mtbf);
            let (unpruned, _) =
                find_best_ft_plan(std::slice::from_ref(&plan), &p, &PruneOptions::none()).unwrap();
            let (pruned, _) =
                find_best_ft_plan(std::slice::from_ref(&plan), &p, &PruneOptions::only(3)).unwrap();
            assert!(
                (pruned.estimate.dominant_cost - unpruned.estimate.dominant_cost).abs() < 1e-9,
                "mtbf={mtbf}"
            );
        }
    }

    #[test]
    fn full_pruning_stays_near_the_optimum() {
        // Rules 1/2 are guaranteed only for the paper's pairwise comparison
        // (child vs child-collapsed-into-materializing-parent); when the
        // parent itself does not materialize they can exclude a marginally
        // better configuration. The result must never be better than the
        // exhaustive optimum and stays within a few percent of it.
        let plan = figure2_plan();
        for mtbf in [5.0, 20.0, 60.0, 1000.0, 1e6] {
            let p = params(mtbf);
            let (unpruned, _) =
                find_best_ft_plan(std::slice::from_ref(&plan), &p, &PruneOptions::none()).unwrap();
            let (pruned, stats) =
                find_best_ft_plan(std::slice::from_ref(&plan), &p, &PruneOptions::default())
                    .unwrap();
            let opt = unpruned.estimate.dominant_cost;
            let got = pruned.estimate.dominant_cost;
            assert!(got >= opt - 1e-9, "mtbf={mtbf}: pruning cannot beat exhaustive search");
            assert!(got <= opt * 1.05, "mtbf={mtbf}: pruned {got} vs optimal {opt}");
            assert!(stats.configs_enumerated <= stats.configs_unpruned);
        }
    }

    #[test]
    fn rule3_reduces_costed_paths() {
        let plan = figure2_plan();
        let p = params(60.0);
        let (_, no_prune) =
            find_best_ft_plan(std::slice::from_ref(&plan), &p, &PruneOptions::none()).unwrap();
        let (_, rule3) =
            find_best_ft_plan(std::slice::from_ref(&plan), &p, &PruneOptions::only(3)).unwrap();
        assert!(rule3.paths_costed < no_prune.paths_costed);
        assert!(rule3.rule3_stops() > 0);
    }

    #[test]
    fn high_mtbf_selects_no_materialization() {
        // With a near-infinite MTBF nothing should be materialized: any
        // tm(o) > 0 only adds cost.
        let plan = figure2_plan();
        let p = params(1e12);
        let (best, _) =
            find_best_ft_plan(std::slice::from_ref(&plan), &p, &PruneOptions::none()).unwrap();
        assert_eq!(best.config.materialized_count(), 0);
    }

    #[test]
    fn low_mtbf_materializes_something() {
        let plan = figure2_plan();
        let p = CostParams::new(4.0, 0.5);
        let (best, _) =
            find_best_ft_plan(std::slice::from_ref(&plan), &p, &PruneOptions::none()).unwrap();
        assert!(
            best.config.materialized_count() > 0,
            "an unreliable cluster must checkpoint intermediates"
        );
    }

    #[test]
    fn multiple_candidates_pick_the_cheaper_plan() {
        // Candidate B is a strictly cheaper copy of A.
        let a = figure2_plan();
        let mut b = figure2_plan();
        for id in b.op_ids().collect::<Vec<_>>() {
            b.op_mut(id).run_cost *= 0.5;
            b.op_mut(id).mat_cost *= 0.5;
        }
        let p = params(60.0);
        let (best, stats) = find_best_ft_plan(&[a, b], &p, &PruneOptions::default()).unwrap();
        assert_eq!(best.plan_index, 1);
        assert_eq!(stats.plans_considered, 2);
    }

    #[test]
    fn empty_candidates_error() {
        let p = params(60.0);
        assert_eq!(
            find_best_ft_plan(&[], &p, &PruneOptions::none()).unwrap_err(),
            CoreError::NoCandidatePlans
        );
    }

    #[test]
    fn invalid_params_error() {
        let plan = figure2_plan();
        let bad = CostParams::new(-1.0, 0.0);
        assert!(
            find_best_ft_plan(std::slice::from_ref(&plan), &bad, &PruneOptions::none()).is_err()
        );
    }

    #[test]
    fn stats_counters_are_consistent() {
        let plan = figure2_plan();
        let p = params(60.0);
        let (_, stats) =
            find_best_ft_plan(std::slice::from_ref(&plan), &p, &PruneOptions::default()).unwrap();
        assert_eq!(stats.plans_considered, 1);
        assert!(stats.configs_enumerated <= stats.configs_unpruned);
        assert!(stats.paths_costed <= stats.paths_examined);
        assert!(stats.best_updates >= 1);
        assert_eq!(stats.configs_skipped(), stats.configs_unpruned - stats.configs_enumerated);
    }

    #[test]
    fn pruning_counters_partition_the_config_space() {
        let plan = figure2_plan();
        for mtbf in [4.0, 20.0, 60.0, 1000.0] {
            for opts in [
                PruneOptions::none(),
                PruneOptions::only(1),
                PruneOptions::only(2),
                PruneOptions::only(3),
                PruneOptions::default(),
            ] {
                let p = params(mtbf);
                let (_, stats) = find_best_ft_plan(std::slice::from_ref(&plan), &p, &opts).unwrap();
                assert!(
                    stats.partition_holds(),
                    "mtbf={mtbf} opts={opts:?}: {} explored + {} rule1 + {} rule2 + {} rule3 \
                     != {} unpruned",
                    stats.configs_explored,
                    stats.configs_pruned_rule1,
                    stats.configs_pruned_rule2,
                    stats.rule3_stops(),
                    stats.configs_unpruned
                );
                // Every enumerated config ended either explored or stopped.
                assert_eq!(stats.configs_enumerated, stats.configs_explored + stats.rule3_stops());
            }
        }
    }

    #[test]
    fn traced_search_records_plan_and_summary_events() {
        use ftpde_obs::{ArgValue, MemoryRecorder};

        let plan = figure2_plan();
        let p = params(60.0);
        let rec = MemoryRecorder::new();
        let (_, stats) = find_best_ft_plan_traced(
            std::slice::from_ref(&plan),
            &p,
            &PruneOptions::default(),
            &rec,
        )
        .unwrap();
        let events = rec.events();
        assert_eq!(events.iter().filter(|e| e.name == "plan").count(), 1);
        assert_eq!(
            events.iter().filter(|e| e.name == "best_update").count(),
            stats.best_updates as usize
        );
        let done = events.last().unwrap();
        assert_eq!(done.name, "find_best_ft_plan");
        assert_eq!(done.cat, "search");
        assert_eq!(done.get_arg("configs_explored"), Some(&ArgValue::U64(stats.configs_explored)));
        assert_eq!(done.get_arg("memo_hits"), Some(&ArgValue::U64(stats.rule3_memo_stops)));
    }

    #[test]
    fn partition_check_is_silent_when_healthy_and_loud_when_broken() {
        use ftpde_obs::MemoryRecorder;

        // A healthy traced search must not emit a partition_violation.
        let plan = figure2_plan();
        let rec = MemoryRecorder::new();
        let (_, stats) = find_best_ft_plan_traced(
            std::slice::from_ref(&plan),
            &params(60.0),
            &PruneOptions::default(),
            &rec,
        )
        .unwrap();
        assert!(rec.events().iter().all(|e| e.name != "partition_violation"));
        assert!(record_partition_check(&stats, &NoopRecorder, 0));

        // A fabricated counter regression must be reported as an event.
        let broken =
            SearchStats { configs_unpruned: 16, configs_explored: 15, ..Default::default() };
        let rec = MemoryRecorder::new();
        assert!(!record_partition_check(&broken, &rec, 7));
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "partition_violation");
        assert_eq!(events[0].cat, "search");
        assert_eq!(events[0].get_arg("configs_unpruned"), Some(&ftpde_obs::ArgValue::U64(16)));
    }

    #[test]
    fn traced_and_untraced_search_agree() {
        let plan = figure2_plan();
        let p = params(60.0);
        let (best, stats) =
            find_best_ft_plan(std::slice::from_ref(&plan), &p, &PruneOptions::default()).unwrap();
        let (best_t, stats_t) = find_best_ft_plan_traced(
            std::slice::from_ref(&plan),
            &p,
            &PruneOptions::default(),
            &ftpde_obs::MemoryRecorder::new(),
        )
        .unwrap();
        assert_eq!(stats, stats_t);
        assert_eq!(best.estimate.dominant_cost, best_t.estimate.dominant_cost);
        assert_eq!(best.config, best_t.config);
    }

    #[test]
    fn rule1_and_2_shrink_the_enumerated_space_when_applicable() {
        // A chain whose materialization costs shrink towards the sink:
        // collapsing any child into its parent is always cheaper than the
        // child's own (more expensive) materialization, so rule 1 binds
        // every operator below the sink.
        let mut b = PlanDag::builder();
        let mut prev = b.free("scan", 1.0, 50.0, &[]).unwrap();
        for i in 0..4 {
            prev = b.free(format!("op{i}"), 1.0, 40.0 - 10.0 * i as f64, &[prev]).unwrap();
        }
        let plan = b.build().unwrap();
        let p = params(60.0);
        let (_, stats) =
            find_best_ft_plan(std::slice::from_ref(&plan), &p, &PruneOptions::only(1)).unwrap();
        assert!(stats.rule1_bound_ops >= 4);
        assert!(stats.configs_enumerated < stats.configs_unpruned);
    }
}
