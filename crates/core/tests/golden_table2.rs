//! Golden test: the paper's Table 2 / Figure 3 worked example, pinned.
//!
//! `figure2_plan()` under the Figure 3 materialization configuration
//! (operators 3, 5, 6, 7 materialize) must reproduce, step by step, the
//! numbers the paper derives in §3.3–§3.5:
//!
//! * Eq. 1 — collapsed runtimes `tr(c)` (dominant path × `CONST_pipe`);
//! * Table 2 — totals `t(c) = 4, 3, 1, 2` and success probabilities
//!   `γ(c)` under `MTBF_cost = 60`;
//! * Eq. 5/6 — attempts `a(c)` from the target percentile `S = 0.95`;
//! * Eq. 7/8 — path costs `T_Pt1 ≈ 8.19`, `T_Pt2 ≈ 9.19` and the
//!   dominant path `Pt2` of Figure 3 step 4.
//!
//! Any drift in these constants is a cost-model regression, not a
//! tolerance issue — the assertions are tight on purpose.

use ftpde_core::dag::figure2_plan;
use ftpde_core::prelude::*;

fn table2_setup() -> (PlanDag, MatConfig, CostParams) {
    let plan = figure2_plan();
    // Figure 3 step 1: operators 3, 5, 6, 7 (0-based 2, 4, 5, 6) materialize.
    let cfg = MatConfig::from_materialized_free_ops(&plan, &[OpId(2), OpId(4), OpId(5), OpId(6)])
        .unwrap();
    // Table 2 uses MTBF_cost = 60, MTTR_cost = 0, S = 0.95, CONST_pipe = 1.
    let params = CostParams::new(60.0, 0.0);
    (plan, cfg, params)
}

#[test]
fn table2_collapsed_totals_are_pinned() {
    let (plan, cfg, params) = table2_setup();
    let pc = CollapsedPlan::collapse(&plan, &cfg, params.pipe_const);

    // Figure 3 step 2: P^c = { {1,2,3}, {4,5}, {6}, {7} }.
    let members: Vec<Vec<u32>> =
        pc.iter().map(|(_, c)| c.members.iter().map(|o| o.0).collect()).collect();
    assert_eq!(members, vec![vec![0, 1, 2], vec![3, 4], vec![5], vec![6]]);

    // Eq. 1 with CONST_pipe = 1: tr(c) is the dominant-path runtime sum.
    // dom({1,2,3}) = 2 -> 3 (scan S then join): 1.6 + 2.0 = 3.6.
    assert_eq!(pc.op(CId(0)).run_cost, 3.6);
    assert_eq!(pc.op(CId(0)).mat_cost, 0.4); // tm({1,2,3}) = tm(3)
    assert_eq!(pc.op(CId(1)).run_cost, 2.5); // 1.0 + 1.5
    assert_eq!(pc.op(CId(1)).mat_cost, 0.5);

    // Table 2 row t(c): 4, 3, 1, 2.
    let totals: Vec<f64> = pc.iter().map(|(_, c)| c.total_cost()).collect();
    assert_eq!(totals, vec![4.0, 3.0, 1.0, 2.0]);
}

#[test]
fn table2_success_probabilities_and_attempts_are_pinned() {
    let (_, _, params) = table2_setup();

    // Table 2 row γ(c) = e^(-t/60) (Eq. 5): 0.94, 0.95, 0.98, 0.97
    // (the paper rounds γ(2) down to 0.96).
    let gammas: Vec<f64> =
        [4.0, 3.0, 1.0, 2.0].iter().map(|&t| params.success_probability(t)).collect();
    let expected = [0.935_506_98, 0.951_229_42, 0.983_471_45, 0.967_216_1];
    for (g, e) in gammas.iter().zip(expected) {
        assert!((g - e).abs() < 1e-6, "γ drifted: {g} vs {e}");
    }

    // Eq. 6: a(c) = max(ln(1-S)/ln(η(c)) - 1, 0). Only the first collapsed
    // operator (t = 4, η ≈ 0.064) needs a fraction of an extra attempt.
    assert!((params.attempts(4.0) - 0.092_854_98).abs() < 1e-6);
    assert_eq!(params.attempts(3.0), 0.0);
    assert_eq!(params.attempts(1.0), 0.0);
    assert_eq!(params.attempts(2.0), 0.0);
}

#[test]
fn table2_path_costs_and_dominant_path_are_pinned() {
    let (plan, cfg, params) = table2_setup();
    let est = estimate_ft_plan(&plan, &cfg, &params);

    // Figure 3 step 3: two execution paths through P^c.
    assert_eq!(est.paths_examined, 2);

    // Eq. 7/8 with exact (unrounded) η: T(c1) = 4 + a·(w + MTTR)
    // = 4 + 0.0929·2 = 4.1857; Pt1 = c1+c2+c3 = 8.1857, Pt2 = 9.1857.
    // (The paper's 8.13/9.13 comes from rounding η to 0.06 first.)
    let t_c1 = params.op_cost(4.0);
    assert!((t_c1 - 4.185_709_96).abs() < 1e-6, "T(c1) drifted: {t_c1}");
    let t1 = path_cost(&est.collapsed, &[CId(0), CId(1), CId(2)], &params);
    let t2 = path_cost(&est.collapsed, &[CId(0), CId(1), CId(3)], &params);
    assert!((t1 - 8.185_709_96).abs() < 1e-6, "T_Pt1 drifted: {t1}");
    assert!((t2 - 9.185_709_96).abs() < 1e-6, "T_Pt2 drifted: {t2}");

    // Figure 3 step 4: Pt2 (through the expensive reduce UDF B) dominates.
    assert_eq!(est.dominant_path, vec![CId(0), CId(1), CId(3)]);
    assert!((est.dominant_cost - t2).abs() < 1e-12);
    assert_eq!(est.dominant_runtime, 9.0); // R_Pt2 = 4 + 3 + 2 (Table 2)
}
