//! Property-based tests for the core cost model and plan machinery.
//!
//! These check the paper's analytic claims over randomly generated inputs:
//! the limit analysis of Eq. 4, monotonicity of attempts and operator cost,
//! structural invariants of collapsing, and the soundness of the pruning
//! memo (Eq. 9).

use proptest::prelude::*;

use ftpde_core::prelude::*;

/// Strategy: a random DAG-structured plan with `1..=max_ops` operators.
/// Each operator picks a random subset of earlier operators as inputs
/// (possibly none → extra sources), random costs, and a random binding.
fn arb_plan(max_ops: usize) -> impl Strategy<Value = PlanDag> {
    let op = (0.01f64..50.0, 0.0f64..20.0, 0u8..6, any::<u64>());
    collection::vec(op, 1..=max_ops).prop_map(|specs| {
        let mut b = PlanDag::builder();
        let mut ids: Vec<OpId> = Vec::new();
        for (i, (tr, tm, bind, seed)) in specs.into_iter().enumerate() {
            // Pick up to two distinct earlier ops as inputs.
            let mut inputs = Vec::new();
            if !ids.is_empty() {
                let a = (seed as usize) % (ids.len() + 1);
                if a < ids.len() {
                    inputs.push(ids[a]);
                }
                let c = ((seed >> 32) as usize) % (ids.len() + 1);
                if c < ids.len() && !inputs.contains(&ids[c]) {
                    inputs.push(ids[c]);
                }
            }
            let op = match bind {
                0..=3 => Operator::free(format!("op{i}"), tr, tm),
                4 => Operator::always_materialized(format!("op{i}"), tr, tm),
                _ => Operator::non_materializable(format!("op{i}"), tr, tm),
            };
            ids.push(b.add(op, &inputs).unwrap());
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Eq. 3 vs Eq. 4: the exact wasted time never exceeds t/2 and
    /// converges to t/2 for MTBF >> t (the paper's limit analysis).
    #[test]
    fn wasted_exact_bounded_by_half(t in 0.0f64..1e4, mtbf in 0.1f64..1e7) {
        let p = CostParams::new(mtbf, 0.0).with_wasted_model(WastedTimeModel::Exact);
        let w = p.wasted_runtime(t);
        prop_assert!(w >= 0.0);
        prop_assert!(w <= t / 2.0 + 1e-9, "w = {w} > t/2 = {}", t / 2.0);
        if mtbf > 100.0 * t && t > 0.0 {
            prop_assert!((w - t / 2.0).abs() < t * 0.01, "w = {w} far from t/2");
        }
    }

    /// Attempts a(c) grow with operator runtime and shrink with MTBF.
    #[test]
    fn attempts_monotone(t in 0.01f64..1e3, dt in 0.01f64..1e3, mtbf in 1.0f64..1e5) {
        let p = CostParams::new(mtbf, 0.0);
        prop_assert!(p.attempts(t + dt) >= p.attempts(t) - 1e-12);
        let p2 = CostParams::new(mtbf * 2.0, 0.0);
        prop_assert!(p2.attempts(t) <= p.attempts(t) + 1e-12);
    }

    /// T(c) >= t(c): failures can only add runtime (Eq. 8).
    #[test]
    fn op_cost_dominates_runtime(t in 0.0f64..1e4, mtbf in 0.1f64..1e6, mttr in 0.0f64..100.0) {
        let p = CostParams::new(mtbf, mttr);
        prop_assert!(p.op_cost(t) >= t);
    }

    /// γ and η are complementary probabilities in [0, 1].
    #[test]
    fn probabilities_well_formed(t in 0.0f64..1e6, mtbf in 0.1f64..1e6) {
        let p = CostParams::new(mtbf, 0.0);
        let gamma = p.success_probability(t);
        let eta = p.failure_probability(t);
        prop_assert!((0.0..=1.0).contains(&gamma));
        prop_assert!((0.0..=1.0).contains(&eta));
        prop_assert!((gamma + eta - 1.0).abs() < 1e-12);
    }

    /// Collapsing preserves the operator set: every plan operator appears
    /// in at least one collapsed group, roots are materialization points,
    /// and collapsed edges are topological.
    #[test]
    fn collapse_structural_invariants(plan in arb_plan(12), mask in any::<u64>()) {
        let n = plan.free_count();
        let cfg = MatConfig::from_free_bits(&plan, mask & ((1u64 << n) - 1));
        let pc = CollapsedPlan::collapse(&plan, &cfg, 1.0);

        let mut covered = vec![false; plan.len()];
        for (cid, c) in pc.iter() {
            prop_assert!(
                cfg.materializes(c.root) || plan.consumers(c.root).is_empty(),
                "root must materialize or be a sink"
            );
            prop_assert!(c.members.contains(&c.root));
            for &m in &c.members {
                covered[m.index()] = true;
            }
            // Dominant path ends at the root and is made of members.
            prop_assert_eq!(*c.dominant_path.last().unwrap(), c.root);
            for &o in &c.dominant_path {
                prop_assert!(c.members.contains(&o));
            }
            for &inp in pc.inputs(cid) {
                prop_assert!(inp < cid);
            }
        }
        prop_assert!(covered.into_iter().all(|b| b), "every op belongs to some group");
    }

    /// The dominant path's cost is an upper bound over all paths, and the
    /// failure-free runtime of any path never exceeds its runtime under
    /// failures.
    #[test]
    fn dominant_path_is_maximal(plan in arb_plan(10), mask in any::<u64>(), mtbf in 1.0f64..1e5) {
        let n = plan.free_count();
        let cfg = MatConfig::from_free_bits(&plan, mask & ((1u64 << n) - 1));
        let params = CostParams::new(mtbf, 1.0);
        let est = estimate_ft_plan(&plan, &cfg, &params);
        prop_assert!(est.dominant_cost >= est.dominant_runtime - 1e-9);
        for path in ftpde_core::paths::all_paths(&est.collapsed) {
            let c = path_cost(&est.collapsed, &path, &params);
            prop_assert!(c <= est.dominant_cost + 1e-9);
        }
    }

    /// Rule-3 memo soundness: whenever the memo claims dominance, actually
    /// evaluating the cost function confirms T_Pt >= T_Ptm.
    #[test]
    fn memo_dominance_is_sound(
        memo_costs in collection::vec(0.1f64..50.0, 1..6),
        probe_costs in collection::vec(0.1f64..50.0, 1..6),
        mtbf in 1.0f64..1e4,
    ) {
        let params = CostParams::new(mtbf, 1.0);
        let cost_of = |cs: &[f64]| cs.iter().map(|&t| params.op_cost(t)).sum::<f64>();
        let mut memo = PathMemo::new();
        memo.record(&memo_costs, cost_of(&memo_costs));
        let mut sorted = probe_costs.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        if memo.dominates(&sorted) {
            prop_assert!(
                cost_of(&probe_costs) >= cost_of(&memo_costs) - 1e-9,
                "memo claimed dominance but probe is cheaper"
            );
        }
    }

    /// The full search never returns a config worse than any config it
    /// enumerated exhaustively (cross-check against a direct scan) and the
    /// chosen config's estimate is internally consistent.
    #[test]
    fn search_result_is_consistent(plan in arb_plan(8), mtbf in 1.0f64..1e5) {
        let params = CostParams::new(mtbf, 1.0);
        let (best, stats) =
            find_best_ft_plan(std::slice::from_ref(&plan), &params, &PruneOptions::none()).unwrap();
        // Re-estimating the winner reproduces its recorded cost.
        let re = estimate_ft_plan(&best.plan, &best.config, &params);
        prop_assert!((re.dominant_cost - best.estimate.dominant_cost).abs() < 1e-9);
        // Exhaustive cross-check.
        let exhaustive = MatConfig::enumerate(&plan)
            .map(|c| estimate_ft_plan(&plan, &c, &params).dominant_cost)
            .fold(f64::INFINITY, f64::min);
        prop_assert!((best.estimate.dominant_cost - exhaustive).abs() < 1e-9);
        prop_assert_eq!(stats.configs_enumerated, 1u64 << plan.free_count());
    }

    /// The search's pruning counters partition the configuration space:
    /// every candidate configuration is either explored to completion,
    /// pruned up front by rule 1 or rule 2, or abandoned mid-enumeration
    /// by rule 3 — under any combination of prune rules.
    #[test]
    fn pruning_counters_partition_config_space(
        plan in arb_plan(10),
        mtbf in 1.0f64..1e5,
        which in 0u8..5,
    ) {
        let opts = match which {
            0 => PruneOptions::none(),
            1 => PruneOptions::only(1),
            2 => PruneOptions::only(2),
            3 => PruneOptions::only(3),
            _ => PruneOptions::default(),
        };
        let params = CostParams::new(mtbf, 1.0);
        let (_, stats) =
            find_best_ft_plan(std::slice::from_ref(&plan), &params, &opts).unwrap();
        prop_assert_eq!(
            stats.configs_explored + stats.configs_pruned_rule1 + stats.configs_pruned_rule2
                + stats.rule3_stops(),
            stats.configs_unpruned,
            "partition violated: {:?}", stats
        );
        prop_assert_eq!(
            stats.configs_enumerated,
            stats.configs_explored + stats.rule3_stops()
        );
    }

    /// Rules 1/2 never *unbind* operators and never bind bound ones.
    #[test]
    fn rules_only_bind_free_ops(plan in arb_plan(10), mtbf in 1.0f64..1e5) {
        let params = CostParams::new(mtbf, 1.0);
        let mut p1 = plan.clone();
        let marked1 = apply_rule1(&mut p1, &params);
        for id in plan.op_ids() {
            if marked1.contains(&id) {
                prop_assert!(plan.op(id).is_free());
                prop_assert_eq!(p1.op(id).binding, Binding::NonMaterializable);
            } else {
                prop_assert_eq!(p1.op(id).binding, plan.op(id).binding);
            }
        }
        let mut p2 = plan.clone();
        let marked2 = apply_rule2(&mut p2, &params);
        for &id in &marked2 {
            prop_assert!(plan.op(id).is_free());
        }
    }

    /// Path enumeration agrees with the closed-form path count.
    #[test]
    fn path_count_matches_enumeration(plan in arb_plan(10), mask in any::<u64>()) {
        let n = plan.free_count();
        let cfg = MatConfig::from_free_bits(&plan, mask & ((1u64 << n) - 1));
        let pc = CollapsedPlan::collapse(&plan, &cfg, 1.0);
        let listed = ftpde_core::paths::all_paths(&pc);
        prop_assert_eq!(listed.len() as u64, ftpde_core::paths::count_paths(&pc));
        // Every enumerated path starts at a source and ends at a sink.
        for p in &listed {
            prop_assert!(pc.inputs(p[0]).is_empty());
            prop_assert!(pc.consumers(*p.last().unwrap()).is_empty());
        }
    }
}
