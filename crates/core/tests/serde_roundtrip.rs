//! Serialization round-trips: plans, configurations, parameters and
//! collapsed plans all survive a JSON round-trip unchanged — the contract
//! a coordinator needs to persist fault-tolerant plans next to the
//! intermediates they describe.

use ftpde_core::collapse::CollapsedPlan;
use ftpde_core::config::MatConfig;
use ftpde_core::cost::{CostParams, WastedTimeModel};
use ftpde_core::dag::{figure2_plan, PlanDag};
use ftpde_core::prune::PruneOptions;
use ftpde_core::search::SearchStats;

#[test]
fn plan_dag_roundtrip() {
    let plan = figure2_plan();
    let json = serde_json::to_string(&plan).unwrap();
    let back: PlanDag = serde_json::from_str(&json).unwrap();
    assert_eq!(back, plan);
    // Structure survives: same sources/sinks/edges.
    assert_eq!(back.sources(), plan.sources());
    assert_eq!(back.sinks(), plan.sinks());
}

#[test]
fn mat_config_roundtrip_preserves_decisions() {
    let plan = figure2_plan();
    for cfg in MatConfig::enumerate(&plan).step_by(17) {
        let json = serde_json::to_string(&cfg).unwrap();
        let back: MatConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        assert_eq!(back.materialized_ops(), cfg.materialized_ops());
    }
}

#[test]
fn cost_params_roundtrip() {
    let params = CostParams::new(3600.0, 1.5)
        .with_success_target(0.99)
        .with_pipe_const(0.8)
        .with_wasted_model(WastedTimeModel::Exact);
    let json = serde_json::to_string(&params).unwrap();
    let back: CostParams = serde_json::from_str(&json).unwrap();
    assert_eq!(back, params);
}

#[test]
fn collapsed_plan_roundtrip() {
    let plan = figure2_plan();
    let cfg = MatConfig::from_free_bits(&plan, 0b0110100);
    let pc = CollapsedPlan::collapse(&plan, &cfg, 1.0);
    let json = serde_json::to_string(&pc).unwrap();
    let back: CollapsedPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(back, pc);
    assert_eq!(back.total_cost(), pc.total_cost());
}

#[test]
fn options_and_stats_roundtrip() {
    let opts = PruneOptions::only(2);
    let back: PruneOptions = serde_json::from_str(&serde_json::to_string(&opts).unwrap()).unwrap();
    assert_eq!(back, opts);

    let stats = SearchStats { plans_considered: 3, configs_unpruned: 96, ..Default::default() };
    let back: SearchStats = serde_json::from_str(&serde_json::to_string(&stats).unwrap()).unwrap();
    assert_eq!(back, stats);
}
