//! Logical join graphs: the input of the join-order enumerator.
//!
//! A [`JoinGraph`] holds base relations (with filtered cardinalities) and
//! join edges (with join selectivities). Relation sets are represented as
//! bitsets (`u32`), which caps the enumerator at 32 relations — far beyond
//! the NP-hard practical limit for exhaustive DAG join ordering the paper
//! cites \[Moerkotte\].

use serde::{Deserialize, Serialize};

/// Index of a relation in a [`JoinGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RelId(pub u8);

impl RelId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The singleton bitset containing only this relation.
    #[inline]
    pub fn bit(self) -> u32 {
        1u32 << self.0
    }
}

/// A base relation with its local predicates already applied.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relation {
    /// Display name (e.g. `σ(REGION)`).
    pub name: String,
    /// Cardinality of the unfiltered base table.
    pub base_rows: f64,
    /// Selectivity of local predicates on this relation (1.0 = no filter).
    pub selectivity: f64,
    /// Average output row width in bytes (after projection).
    pub row_bytes: f64,
}

impl Relation {
    /// Cardinality after local predicates.
    #[inline]
    pub fn rows(&self) -> f64 {
        self.base_rows * self.selectivity
    }
}

/// An (undirected) join edge with its join selectivity:
/// `|L ⋈ R| = |L| · |R| · selectivity`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JoinEdge {
    /// One endpoint.
    pub a: RelId,
    /// The other endpoint.
    pub b: RelId,
    /// Join selectivity.
    pub selectivity: f64,
}

/// A query's join graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinGraph {
    relations: Vec<Relation>,
    edges: Vec<JoinEdge>,
}

impl JoinGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        JoinGraph { relations: Vec::new(), edges: Vec::new() }
    }

    /// Adds a relation and returns its id.
    ///
    /// # Panics
    /// Panics beyond 32 relations (bitset capacity).
    pub fn add_relation(
        &mut self,
        name: impl Into<String>,
        base_rows: f64,
        selectivity: f64,
        row_bytes: f64,
    ) -> RelId {
        assert!(self.relations.len() < 32, "join graphs are limited to 32 relations");
        let id = RelId(self.relations.len() as u8);
        self.relations.push(Relation { name: name.into(), base_rows, selectivity, row_bytes });
        id
    }

    /// Adds an undirected join edge.
    ///
    /// # Panics
    /// Panics if an endpoint is unknown or the selectivity is not in
    /// `(0, 1]`.
    pub fn add_edge(&mut self, a: RelId, b: RelId, selectivity: f64) {
        assert!(a.index() < self.relations.len() && b.index() < self.relations.len());
        assert!(a != b, "self-joins must be modelled as two relations");
        assert!(selectivity > 0.0 && selectivity <= 1.0);
        self.edges.push(JoinEdge { a, b, selectivity });
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// `true` iff the graph has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The relation with the given id.
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.index()]
    }

    /// All edges.
    pub fn edges(&self) -> &[JoinEdge] {
        &self.edges
    }

    /// Ids of all relations.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> {
        (0..self.relations.len() as u8).map(RelId)
    }

    /// The bitset containing every relation.
    pub fn all_rels(&self) -> u32 {
        if self.relations.is_empty() {
            0
        } else {
            (1u32 << self.relations.len()) - 1
        }
    }

    /// `true` iff some edge connects `a` (a bitset) with `b` (a bitset).
    pub fn sets_connected(&self, a: u32, b: u32) -> bool {
        self.edges.iter().any(|e| {
            (e.a.bit() & a != 0 && e.b.bit() & b != 0) || (e.a.bit() & b != 0 && e.b.bit() & a != 0)
        })
    }

    /// `true` iff the relation subset `set` induces a connected subgraph.
    pub fn is_connected(&self, set: u32) -> bool {
        if set == 0 {
            return false;
        }
        let start = set & set.wrapping_neg(); // lowest bit
        let mut reached = start;
        loop {
            let mut grew = false;
            for e in &self.edges {
                let (ab, bb) = (e.a.bit(), e.b.bit());
                if ab & set != 0 && bb & set != 0 {
                    if reached & ab != 0 && reached & bb == 0 {
                        reached |= bb;
                        grew = true;
                    } else if reached & bb != 0 && reached & ab == 0 {
                        reached |= ab;
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        reached == set
    }

    /// Estimated cardinality of joining the relation subset `set`:
    /// the product of filtered base cardinalities times the selectivity of
    /// every edge internal to the subset (the classic independence
    /// assumption the paper's `tr`/`tm` derivation relies on \[Moerkotte\]).
    pub fn subset_rows(&self, set: u32) -> f64 {
        let mut rows = 1.0;
        for id in self.rel_ids() {
            if set & id.bit() != 0 {
                rows *= self.relation(id).rows();
            }
        }
        for e in &self.edges {
            if set & e.a.bit() != 0 && set & e.b.bit() != 0 {
                rows *= e.selectivity;
            }
        }
        rows
    }

    /// Estimated output row width of the subset (sum of member widths,
    /// damped for projection of join keys).
    pub fn subset_row_bytes(&self, set: u32) -> f64 {
        let total: f64 = self
            .rel_ids()
            .filter(|id| set & id.bit() != 0)
            .map(|id| self.relation(id).row_bytes)
            .sum();
        if set.count_ones() > 1 {
            total * 0.7
        } else {
            total
        }
    }
}

impl Default for JoinGraph {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds a chain graph `r0 — r1 — … — r(n−1)` from `(name, rows,
/// selectivity, row_bytes)` specs and per-edge selectivities
/// (`edge_sels[i]` joins `ri` with `r(i+1)`).
///
/// # Panics
/// Panics unless `edge_sels.len() + 1 == rels.len()`.
pub fn chain_graph(rels: &[(&str, f64, f64, f64)], edge_sels: &[f64]) -> JoinGraph {
    assert_eq!(edge_sels.len() + 1, rels.len());
    let mut g = JoinGraph::new();
    let ids: Vec<RelId> = rels.iter().map(|(n, r, s, w)| g.add_relation(*n, *r, *s, *w)).collect();
    for (i, &sel) in edge_sels.iter().enumerate() {
        g.add_edge(ids[i], ids[i + 1], sel);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> JoinGraph {
        let mut g = JoinGraph::new();
        let a = g.add_relation("A", 100.0, 1.0, 8.0);
        let b = g.add_relation("B", 200.0, 0.5, 8.0);
        let c = g.add_relation("C", 300.0, 1.0, 8.0);
        g.add_edge(a, b, 0.01);
        g.add_edge(b, c, 0.02);
        g.add_edge(a, c, 0.5);
        g
    }

    #[test]
    fn relation_rows_apply_selectivity() {
        let g = triangle();
        assert_eq!(g.relation(RelId(1)).rows(), 100.0);
    }

    #[test]
    fn connectivity() {
        let g = triangle();
        assert!(g.is_connected(0b111));
        assert!(g.is_connected(0b011));
        assert!(g.is_connected(0b001));
        assert!(!g.is_connected(0b000));
        let mut chain = chain_graph(
            &[("A", 1.0, 1.0, 8.0), ("B", 1.0, 1.0, 8.0), ("C", 1.0, 1.0, 8.0)],
            &[1.0, 1.0],
        );
        assert!(!chain.is_connected(0b101), "A and C are not adjacent in the chain");
        assert!(chain.is_connected(0b111));
        // Extra edge closes the gap.
        chain.add_edge(RelId(0), RelId(2), 1.0);
        assert!(chain.is_connected(0b101));
    }

    #[test]
    fn sets_connected_between_disjoint_sets() {
        let g = triangle();
        assert!(g.sets_connected(0b001, 0b010));
        assert!(g.sets_connected(0b001, 0b110));
        let chain = chain_graph(
            &[("A", 1.0, 1.0, 8.0), ("B", 1.0, 1.0, 8.0), ("C", 1.0, 1.0, 8.0)],
            &[1.0, 1.0],
        );
        assert!(!chain.sets_connected(0b001, 0b100));
    }

    #[test]
    fn subset_cardinality_uses_independence() {
        let g = triangle();
        // A ⋈ B = 100 * 100 * 0.01 = 100.
        assert_eq!(g.subset_rows(0b011), 100.0);
        // A ⋈ B ⋈ C = 100*100*300 * 0.01*0.02*0.5.
        let expected = 100.0 * 100.0 * 300.0 * 0.01 * 0.02 * 0.5;
        assert!((g.subset_rows(0b111) - expected).abs() < 1e-9);
    }

    #[test]
    fn subset_width_damps_joins() {
        let g = triangle();
        assert_eq!(g.subset_row_bytes(0b001), 8.0);
        assert!((g.subset_row_bytes(0b011) - 16.0 * 0.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "self-joins")]
    fn self_edge_rejected() {
        let mut g = JoinGraph::new();
        let a = g.add_relation("A", 1.0, 1.0, 8.0);
        g.add_edge(a, a, 0.5);
    }

    #[test]
    fn all_rels_mask() {
        assert_eq!(triangle().all_rels(), 0b111);
        assert_eq!(JoinGraph::new().all_rels(), 0);
    }
}
