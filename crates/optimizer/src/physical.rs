//! Physical plan generation: converting join trees into cost-annotated
//! [`PlanDag`]s that the fault-tolerance machinery consumes.
//!
//! The conversion derives `tr(o)` and `tm(o)` from cardinality estimates,
//! exactly as the paper assumes ("typically, these estimates are
//! calculated based on input/output cardinalities of each operator",
//! §2.1): execution cost is work (in row units) divided by the cluster's
//! aggregate processing rate; materialization cost is output volume (in
//! bytes) divided by the aggregate bandwidth to the fault-tolerant
//! storage medium.

use serde::{Deserialize, Serialize};

use ftpde_core::dag::{PlanDag, PlanDagBuilder};
use ftpde_core::operator::OpId;

use crate::enumerate::{JoinTree, BUILD_FACTOR, LOOKUP_FACTOR};
use crate::logical::JoinGraph;

/// Converts cardinalities into time costs for a concrete cluster.
///
/// Three throughput classes reflect the XDB-over-MySQL execution profile:
/// sequential/index-range **scans** are fast; **join** work (index-nested-
/// loop build staging and lookups) is per-row expensive; **aggregation**
/// streams rows at an intermediate rate; **materialization** is bound by
/// the shared fault-tolerant storage target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Worker nodes executing each operator partition-parallel.
    pub nodes: usize,
    /// Join work units (build rows / output lookups) per second per node.
    pub join_rows_per_sec_node: f64,
    /// Base-table rows scanned per second per node.
    pub scan_rows_per_sec_node: f64,
    /// Rows aggregated per second per node.
    pub agg_rows_per_sec_node: f64,
    /// Bytes written per second per node to the fault-tolerant storage
    /// (the paper's shared iSCSI target — slow and contended).
    pub mat_bytes_per_sec_node: f64,
}

impl CostModel {
    /// Calibration matching the paper's XDB cluster (§5.1–5.3): 10 nodes;
    /// throughputs chosen so that TPC-H Q5 at SF = 100 has a ≈ 905 s
    /// failure-free baseline and its five join materializations total
    /// ≈ 34 % of the baseline (both anchors reported in the paper).
    /// See `ftpde-tpch`'s calibration tests.
    pub fn xdb_calibrated() -> Self {
        CostModel {
            nodes: 10,
            join_rows_per_sec_node: 12_400.0,
            scan_rows_per_sec_node: 2_000_000.0,
            agg_rows_per_sec_node: 1_000_000.0,
            mat_bytes_per_sec_node: 850_000.0,
        }
    }

    #[inline]
    fn aggregate_rate(&self, per_node: f64) -> f64 {
        per_node * self.nodes as f64
    }

    /// `tr` of a base-table scan reading `base_rows`.
    pub fn scan_cost(&self, base_rows: f64) -> f64 {
        base_rows / self.aggregate_rate(self.scan_rows_per_sec_node)
    }

    /// `tr` of an index-nested-loop join with `build_rows` on the build
    /// side and `out_rows` output lookups
    /// (`BUILD_FACTOR·build + LOOKUP_FACTOR·out` work units).
    pub fn join_cost(&self, build_rows: f64, out_rows: f64) -> f64 {
        (BUILD_FACTOR * build_rows + LOOKUP_FACTOR * out_rows)
            / self.aggregate_rate(self.join_rows_per_sec_node)
    }

    /// `tr` of an aggregation consuming `in_rows`.
    pub fn agg_cost(&self, in_rows: f64) -> f64 {
        in_rows / self.aggregate_rate(self.agg_rows_per_sec_node)
    }

    /// `tm(o)`: time to materialize `rows` output rows of `row_bytes`
    /// bytes each to the fault-tolerant storage.
    pub fn mat_cost(&self, rows: f64, row_bytes: f64) -> f64 {
        rows * row_bytes / (self.mat_bytes_per_sec_node * self.nodes as f64)
    }
}

/// An aggregation appended on top of a join tree (e.g. Figure 9's Γ).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggSpec {
    /// Number of output groups.
    pub out_rows: f64,
    /// Output row width in bytes.
    pub row_bytes: f64,
    /// Whether the materialization decision for the aggregate is free.
    /// Sinks are recovery boundaries either way; middle aggregations (as
    /// in the paper's Q1C/Q2C) should be free.
    pub free: bool,
}

/// Converts `tree` into a [`PlanDag`]: one bound pipelined scan per leaf,
/// one free hash-join operator per join, and optionally `agg` on top.
///
/// Scans are `m(o) = 0`-bound: base tables are already stored, so
/// re-materializing them buys nothing (the paper's Figure 9 likewise
/// offers only the joins, 1–5, for materialization).
pub fn tree_to_plan(
    graph: &JoinGraph,
    tree: &JoinTree,
    cm: &CostModel,
    agg: Option<AggSpec>,
) -> PlanDag {
    let mut b = PlanDag::builder();
    let root = build_op(graph, tree, cm, &mut b);
    if let Some(a) = agg {
        let in_rows = graph.subset_rows(tree.rel_set());
        let run = cm.agg_cost(in_rows + a.out_rows);
        let mat = cm.mat_cost(a.out_rows, a.row_bytes);
        if a.free {
            b.free("Γ", run, mat, &[root]).expect("valid agg operator");
        } else {
            b.bound_pipelined("Γ", run, mat, &[root]).expect("valid agg operator");
        }
    }
    b.build().expect("non-empty plan")
}

fn build_op(graph: &JoinGraph, tree: &JoinTree, cm: &CostModel, b: &mut PlanDagBuilder) -> OpId {
    match tree {
        JoinTree::Leaf { rel } => {
            let r = graph.relation(*rel);
            let run = cm.scan_cost(r.base_rows);
            let mat = cm.mat_cost(r.rows(), r.row_bytes);
            b.bound_pipelined(format!("scan {}", r.name), run, mat, &[])
                .expect("valid scan operator")
        }
        JoinTree::Join { left, right } => {
            let l = build_op(graph, left, cm, b);
            let r = build_op(graph, right, cm, b);
            let l_rows = graph.subset_rows(left.rel_set());
            let set = tree.rel_set();
            let out_rows = graph.subset_rows(set);
            let out_bytes = graph.subset_row_bytes(set);
            let name = format!(
                "⋈ [{}]",
                graph
                    .rel_ids()
                    .filter(|id| set & id.bit() != 0)
                    .map(|id| graph.relation(id).name.clone())
                    .collect::<Vec<_>>()
                    .join(",")
            );
            b.free(name, cm.join_cost(l_rows, out_rows), cm.mat_cost(out_rows, out_bytes), &[l, r])
                .expect("valid join operator")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::k_best_plans;
    use crate::logical::chain_graph;

    fn graph() -> JoinGraph {
        chain_graph(&[("A", 10_000.0, 0.5, 100.0), ("B", 100_000.0, 1.0, 50.0)], &[0.0001])
    }

    fn unit_cm() -> CostModel {
        CostModel {
            nodes: 10,
            join_rows_per_sec_node: 1000.0,
            scan_rows_per_sec_node: 10_000.0,
            agg_rows_per_sec_node: 5000.0,
            mat_bytes_per_sec_node: 100.0,
        }
    }

    #[test]
    fn cost_model_arithmetic() {
        let cm = unit_cm();
        assert_eq!(cm.scan_cost(200_000.0), 2.0);
        // (1.5·1000 + 3·500) / 10_000 = 0.3
        assert_eq!(cm.join_cost(1000.0, 500.0), 0.3);
        assert_eq!(cm.agg_cost(100_000.0), 2.0);
        assert_eq!(cm.mat_cost(100.0, 10.0), 1.0);
    }

    #[test]
    fn tree_converts_to_expected_shape() {
        let g = graph();
        let best = k_best_plans(&g, 1);
        let cm = CostModel::xdb_calibrated();
        let plan = tree_to_plan(&g, &best[0], &cm, None);
        assert_eq!(plan.len(), 3); // 2 scans + 1 join
        assert_eq!(plan.free_count(), 1); // only the join is free
        assert_eq!(plan.sinks().len(), 1);
        assert_eq!(plan.sources().len(), 2);
    }

    #[test]
    fn agg_on_top_bound_or_free() {
        let g = graph();
        let best = k_best_plans(&g, 1);
        let cm = CostModel::xdb_calibrated();
        let spec = AggSpec { out_rows: 5.0, row_bytes: 40.0, free: false };
        let plan = tree_to_plan(&g, &best[0], &cm, Some(spec));
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.free_count(), 1);
        let free_spec = AggSpec { free: true, ..spec };
        let plan2 = tree_to_plan(&g, &best[0], &cm, Some(free_spec));
        assert_eq!(plan2.free_count(), 2);
    }

    #[test]
    fn join_costs_reflect_cardinalities() {
        let g = graph();
        let best = k_best_plans(&g, 1);
        let cm = CostModel {
            nodes: 1,
            join_rows_per_sec_node: 1.0,
            scan_rows_per_sec_node: 1.0,
            agg_rows_per_sec_node: 1.0,
            mat_bytes_per_sec_node: 1.0,
        };
        let plan = tree_to_plan(&g, &best[0], &cm, None);
        let join = plan.find_by_name("⋈ [A,B]").unwrap();
        // A' = 5000 (build), out = 5000·100k·1e-4 = 50k lookups.
        let expected_work = BUILD_FACTOR * 5000.0 + LOOKUP_FACTOR * 50_000.0;
        assert!((plan.op(join).run_cost - expected_work).abs() < 1e-6);
        let expected_mat = 50_000.0 * (150.0 * 0.7);
        assert!((plan.op(join).mat_cost - expected_mat).abs() < 1e-6);
    }

    #[test]
    fn scans_are_bound() {
        let g = graph();
        let best = k_best_plans(&g, 1);
        let plan = tree_to_plan(&g, &best[0], &CostModel::xdb_calibrated(), None);
        for (_, op) in plan.iter().filter(|(_, o)| o.name.starts_with("scan")) {
            assert!(!op.is_free());
        }
    }
}
