//! Join-order enumeration: connected-subgraph dynamic programming over
//! bitsets, producing the k cheapest bushy join trees without cross
//! products (the first phase of the paper's `enumFTPlans`, §3.2), plus an
//! exhaustive enumerator and an order counter used by the Figure 13
//! pruning experiment (the paper reports 1344 equivalent join orders for
//! TPC-H Q5).
//!
//! Commutative variants (`A ⋈ B` vs `B ⋈ A`) are distinct plans: the build
//! and probe side of a hash join have different costs.

use std::rc::Rc;

use crate::logical::{JoinGraph, RelId};

/// Per-row cost factor for reading and staging a join's build input.
pub const BUILD_FACTOR: f64 = 1.5;

/// Per-output-row cost factor for index lookups into the probe side.
///
/// The joins are costed as index-nested-loop joins, matching the paper's
/// XDB-over-MySQL execution where every join runs as a sub-query against
/// indexed, co-partitioned MySQL tables: the probe side is accessed
/// through its index (never fully scanned), so join work is
/// `BUILD_FACTOR·|build| + LOOKUP_FACTOR·|output|`.
pub const LOOKUP_FACTOR: f64 = 3.0;

/// A bushy join tree over a [`JoinGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum JoinTree {
    /// A base-relation scan (local predicates applied).
    Leaf {
        /// The scanned relation.
        rel: RelId,
    },
    /// An inner join; `left` is the build side, `right` the probe side.
    Join {
        /// Build side.
        left: Rc<JoinTree>,
        /// Probe side.
        right: Rc<JoinTree>,
    },
}

impl JoinTree {
    /// The bitset of relations covered by this tree.
    pub fn rel_set(&self) -> u32 {
        match self {
            JoinTree::Leaf { rel } => rel.bit(),
            JoinTree::Join { left, right } => left.rel_set() | right.rel_set(),
        }
    }

    /// Output cardinality of this tree under `graph`'s statistics.
    pub fn rows(&self, graph: &JoinGraph) -> f64 {
        graph.subset_rows(self.rel_set())
    }

    /// Total join work of the tree in row units: per index-nested-loop
    /// join, `BUILD_FACTOR·|build| + LOOKUP_FACTOR·|output|` (the probe
    /// side is index-accessed, never scanned — see [`LOOKUP_FACTOR`]).
    /// Leaves carry no join work (base reads are charged by the physical
    /// scan costing); the asymmetry in the build term is what makes
    /// commutative variants cost-distinct. The same model drives
    /// [`crate::physical`].
    pub fn work(&self, graph: &JoinGraph) -> f64 {
        match self {
            JoinTree::Leaf { .. } => 0.0,
            JoinTree::Join { left, right } => {
                left.work(graph)
                    + right.work(graph)
                    + BUILD_FACTOR * left.rows(graph)
                    + LOOKUP_FACTOR * self.rows(graph)
            }
        }
    }

    /// Number of joins in the tree.
    pub fn join_count(&self) -> usize {
        match self {
            JoinTree::Leaf { .. } => 0,
            JoinTree::Join { left, right } => 1 + left.join_count() + right.join_count(),
        }
    }

    /// Renders the tree as `((A ⋈ B) ⋈ C)` using relation names.
    pub fn render(&self, graph: &JoinGraph) -> String {
        match self {
            JoinTree::Leaf { rel } => graph.relation(*rel).name.clone(),
            JoinTree::Join { left, right } => {
                format!("({} ⋈ {})", left.render(graph), right.render(graph))
            }
        }
    }
}

/// Iterates non-empty proper submasks of `set` in decreasing order.
fn submasks(set: u32) -> impl Iterator<Item = u32> {
    let mut sub = set;
    std::iter::from_fn(move || {
        if sub == 0 {
            return None;
        }
        sub = (sub - 1) & set;
        if sub == 0 {
            None
        } else {
            Some(sub)
        }
    })
}

/// All subsets of `universe`, grouped by ascending population count.
fn subsets_by_size(universe: u32) -> Vec<u32> {
    let mut subs: Vec<u32> = (1..=universe).filter(|s| s & universe == *s).collect();
    subs.sort_by_key(|s| s.count_ones());
    subs
}

/// Enumerates the `k` cheapest (by [`JoinTree::work`]) bushy join trees
/// over the whole graph, without cross products.
///
/// Uses a k-best-per-subset dynamic program: exact for `k = 1`, the
/// standard near-exact relaxation for `k > 1` (a global i-th best plan is
/// only missed if more than `k` subplans of some subset beat all of its
/// own). Returns fewer than `k` trees if the space is smaller.
///
/// # Panics
/// Panics if the graph is empty or disconnected (a cross product would be
/// required).
pub fn k_best_plans(graph: &JoinGraph, k: usize) -> Vec<Rc<JoinTree>> {
    assert!(k > 0);
    assert!(!graph.is_empty(), "cannot enumerate an empty graph");
    assert!(graph.is_connected(graph.all_rels()), "disconnected graphs would need cross products");
    let universe = graph.all_rels();
    let n_subsets = (universe as usize) + 1;
    // best[set] — up to k trees, ascending by work.
    let mut best: Vec<Vec<(f64, Rc<JoinTree>)>> = vec![Vec::new(); n_subsets];
    for rel in graph.rel_ids() {
        best[rel.bit() as usize] = vec![(0.0, Rc::new(JoinTree::Leaf { rel }))];
    }

    for set in subsets_by_size(universe) {
        if set.count_ones() < 2 || !graph.is_connected(set) {
            continue;
        }
        let out_rows = graph.subset_rows(set);
        let mut cands: Vec<(f64, Rc<JoinTree>)> = Vec::new();
        for s1 in submasks(set) {
            let s2 = set ^ s1;
            if !graph.sets_connected(s1, s2) {
                continue;
            }
            if best[s1 as usize].is_empty() || best[s2 as usize].is_empty() {
                continue; // a side is disconnected
            }
            let r1 = graph.subset_rows(s1);
            for (w1, t1) in &best[s1 as usize] {
                for (w2, t2) in &best[s2 as usize] {
                    let work = w1 + w2 + BUILD_FACTOR * r1 + LOOKUP_FACTOR * out_rows;
                    cands.push((
                        work,
                        Rc::new(JoinTree::Join { left: Rc::clone(t1), right: Rc::clone(t2) }),
                    ));
                }
            }
        }
        cands.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite work"));
        cands.truncate(k);
        best[set as usize] = cands;
    }

    best[universe as usize].iter().map(|(_, t)| Rc::clone(t)).collect()
}

/// Exhaustively enumerates **all** bushy join trees without cross
/// products (ordered children — commutative variants are distinct). Used
/// by the Figure 13 experiment, which analyses all 1344 join orders of
/// TPC-H Q5.
///
/// # Panics
/// As [`k_best_plans`].
pub fn all_plans(graph: &JoinGraph) -> Vec<Rc<JoinTree>> {
    assert!(!graph.is_empty(), "cannot enumerate an empty graph");
    assert!(graph.is_connected(graph.all_rels()), "disconnected graphs would need cross products");
    let universe = graph.all_rels();
    let mut table: Vec<Vec<Rc<JoinTree>>> = vec![Vec::new(); universe as usize + 1];
    for rel in graph.rel_ids() {
        table[rel.bit() as usize] = vec![Rc::new(JoinTree::Leaf { rel })];
    }
    for set in subsets_by_size(universe) {
        if set.count_ones() < 2 || !graph.is_connected(set) {
            continue;
        }
        let mut trees = Vec::new();
        for s1 in submasks(set) {
            let s2 = set ^ s1;
            if !graph.sets_connected(s1, s2) {
                continue;
            }
            for t1 in &table[s1 as usize] {
                for t2 in &table[s2 as usize] {
                    trees.push(Rc::new(JoinTree::Join {
                        left: Rc::clone(t1),
                        right: Rc::clone(t2),
                    }));
                }
            }
        }
        table[set as usize] = trees;
    }
    std::mem::take(&mut table[universe as usize])
}

/// Counts the bushy join trees without cross products (ordered children)
/// without materializing them.
pub fn count_join_orders(graph: &JoinGraph) -> u64 {
    if graph.is_empty() {
        return 0;
    }
    let universe = graph.all_rels();
    let mut count: Vec<u64> = vec![0; universe as usize + 1];
    for rel in graph.rel_ids() {
        count[rel.bit() as usize] = 1;
    }
    for set in subsets_by_size(universe) {
        if set.count_ones() < 2 || !graph.is_connected(set) {
            continue;
        }
        let mut c = 0u64;
        for s1 in submasks(set) {
            let s2 = set ^ s1;
            if graph.sets_connected(s1, s2) {
                c += count[s1 as usize] * count[s2 as usize];
            }
        }
        count[set as usize] = c;
    }
    count[universe as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::chain_graph;

    fn chain(n: usize) -> JoinGraph {
        let rels: Vec<(&str, f64, f64, f64)> = (0..n)
            .map(|i| {
                let name: &'static str = Box::leak(format!("R{i}").into_boxed_str());
                (name, 1000.0 * (i + 1) as f64, 1.0, 8.0)
            })
            .collect();
        let sels = vec![0.001; n - 1];
        chain_graph(&rels, &sels)
    }

    #[test]
    fn chain_counts_match_closed_form() {
        // Ordered bushy trees over a chain: 1, 2, 8, 40, 224, 1344 —
        // the last value is the paper's Q5 figure.
        let expected = [1u64, 2, 8, 40, 224, 1344];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(count_join_orders(&chain(i + 1)), e, "chain of {}", i + 1);
        }
    }

    #[test]
    fn all_plans_matches_count() {
        for n in 2..=5 {
            let g = chain(n);
            assert_eq!(all_plans(&g).len() as u64, count_join_orders(&g));
        }
    }

    #[test]
    fn all_plans_have_no_cross_products() {
        let g = chain(4);
        for t in all_plans(&g) {
            fn check(t: &JoinTree, g: &JoinGraph) {
                if let JoinTree::Join { left, right } = t {
                    assert!(g.sets_connected(left.rel_set(), right.rel_set()));
                    check(left, g);
                    check(right, g);
                }
            }
            check(&t, &g);
            assert_eq!(t.rel_set(), g.all_rels());
            assert_eq!(t.join_count(), 3);
        }
    }

    #[test]
    fn k_best_is_sorted_and_consistent_with_exhaustive() {
        let g = chain(5);
        let k = 10;
        let best = k_best_plans(&g, k);
        assert_eq!(best.len(), k);
        let works: Vec<f64> = best.iter().map(|t| t.work(&g)).collect();
        for w in works.windows(2) {
            assert!(w[0] <= w[1], "k-best must be sorted by work");
        }
        // The k=1 winner equals the exhaustive minimum.
        let exhaustive_min = all_plans(&g).iter().map(|t| t.work(&g)).fold(f64::INFINITY, f64::min);
        assert!((works[0] - exhaustive_min).abs() < 1e-6);
    }

    #[test]
    fn star_graph_counts_exceed_chain() {
        // A star (hub connected to all satellites) has more connected
        // orders than a chain of the same size.
        let mut star = JoinGraph::new();
        let hub = star.add_relation("hub", 1000.0, 1.0, 8.0);
        for i in 0..4 {
            let s = star.add_relation(format!("s{i}"), 100.0, 1.0, 8.0);
            star.add_edge(hub, s, 0.01);
        }
        assert!(count_join_orders(&star) > count_join_orders(&chain(5)));
    }

    #[test]
    fn single_relation() {
        let g = chain(1);
        assert_eq!(count_join_orders(&g), 1);
        let plans = all_plans(&g);
        assert_eq!(plans.len(), 1);
        assert!(matches!(*plans[0], JoinTree::Leaf { .. }));
        assert_eq!(k_best_plans(&g, 3).len(), 1);
    }

    #[test]
    fn commutative_variants_are_distinct() {
        let g = chain(2);
        let plans = all_plans(&g);
        assert_eq!(plans.len(), 2);
        assert_ne!(plans[0].render(&g), plans[1].render(&g));
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_graph_rejected() {
        let mut g = JoinGraph::new();
        g.add_relation("A", 1.0, 1.0, 8.0);
        g.add_relation("B", 1.0, 1.0, 8.0);
        let _ = all_plans(&g);
    }

    #[test]
    fn render_and_work() {
        let g = chain(2);
        let best = k_best_plans(&g, 1);
        // Build side should be the smaller relation (R0: 1000 rows).
        assert_eq!(best[0].render(&g), "(R0 ⋈ R1)");
        // work = 1.5·build 1000 + 3·out 2000 (probe side is index-accessed).
        assert!((best[0].work(&g) - (1500.0 + 6000.0)).abs() < 1e-9);
    }
}
