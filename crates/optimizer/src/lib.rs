//! # ftpde-optimizer — cost-based join-order enumeration
//!
//! The first phase of the paper's `enumFTPlans` (§3.2): a dynamic-
//! programming join enumerator over connected subgraphs that produces the
//! top-k bushy join trees (no cross products) ordered by failure-free
//! cost, plus the physical conversion that turns a join tree into a
//! cost-annotated `PlanDag` for the fault-tolerance search.
//!
//! ```
//! use ftpde_optimizer::prelude::*;
//!
//! // A two-relation join graph.
//! let g = chain_graph(
//!     &[("A", 10_000.0, 1.0, 64.0), ("B", 1_000.0, 1.0, 64.0)],
//!     &[0.001],
//! );
//! assert_eq!(count_join_orders(&g), 2); // A⋈B and B⋈A
//! let best = k_best_plans(&g, 2);
//! let plan = tree_to_plan(&g, &best[0], &CostModel::xdb_calibrated(), None);
//! assert_eq!(plan.free_count(), 1);
//! ```

pub mod enumerate;
pub mod greedy;
pub mod logical;
pub mod physical;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::enumerate::{
        all_plans, count_join_orders, k_best_plans, JoinTree, BUILD_FACTOR,
    };
    pub use crate::greedy::greedy_plan;
    pub use crate::logical::{chain_graph, JoinEdge, JoinGraph, RelId, Relation};
    pub use crate::physical::{tree_to_plan, AggSpec, CostModel};
}
