//! Greedy join-order construction (GOO-style) for graphs too large for
//! exhaustive dynamic programming.
//!
//! The paper notes that join ordering for DAG-structured plans is NP-hard
//! \[Moerkotte\] and therefore uses approximate enumeration. The DP in
//! [`crate::enumerate`] is exact but exponential; this module provides the
//! standard polynomial fallback: repeatedly merge the pair of connected
//! sub-plans whose join produces the cheapest work increment. On the
//! paper's 6-relation Q5 the greedy result is close to (often equal to)
//! the DP optimum; on 20+-relation graphs it is the only practical option.

use std::rc::Rc;

use crate::enumerate::{JoinTree, BUILD_FACTOR, LOOKUP_FACTOR};
use crate::logical::JoinGraph;

/// Builds one join tree greedily.
///
/// At each step, among all pairs of current sub-plans connected by a join
/// edge, the pair with the smallest incremental work
/// (`BUILD_FACTOR·|build| + LOOKUP_FACTOR·|out|`, with the smaller side as
/// build) is merged. Ties are broken deterministically by (work, smaller
/// relation set).
///
/// # Panics
/// Panics if the graph is empty or disconnected.
pub fn greedy_plan(graph: &JoinGraph) -> Rc<JoinTree> {
    assert!(!graph.is_empty(), "cannot plan an empty graph");
    assert!(graph.is_connected(graph.all_rels()), "disconnected graphs would need cross products");

    let mut forest: Vec<Rc<JoinTree>> =
        graph.rel_ids().map(|rel| Rc::new(JoinTree::Leaf { rel })).collect();

    while forest.len() > 1 {
        let mut best: Option<(f64, u32, usize, usize)> = None;
        for i in 0..forest.len() {
            for j in 0..forest.len() {
                if i == j {
                    continue;
                }
                let (si, sj) = (forest[i].rel_set(), forest[j].rel_set());
                if !graph.sets_connected(si, sj) {
                    continue;
                }
                let (ri, out) = (graph.subset_rows(si), graph.subset_rows(si | sj));
                let rj = graph.subset_rows(sj);
                // Build on the smaller side: only consider i as build when
                // it is no larger than j (the symmetric pair covers the
                // other orientation).
                if ri > rj {
                    continue;
                }
                let work = BUILD_FACTOR * ri + LOOKUP_FACTOR * out;
                let key = (work, si | sj, i, j);
                if best.is_none_or(|b| (key.0, key.1) < (b.0, b.1)) {
                    best = Some(key);
                }
            }
        }
        let (_, _, i, j) = best.expect("connected graph always has a joinable pair");
        let build = Rc::clone(&forest[i]);
        let probe = Rc::clone(&forest[j]);
        // Remove the higher index first so the lower stays valid.
        forest.swap_remove(i.max(j));
        forest.swap_remove(i.min(j));
        forest.push(Rc::new(JoinTree::Join { left: build, right: probe }));
    }
    forest.pop().expect("one tree remains")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::k_best_plans;
    use crate::logical::chain_graph;

    fn chain(n: usize) -> JoinGraph {
        let rels: Vec<(&str, f64, f64, f64)> = (0..n)
            .map(|i| {
                let name: &'static str = Box::leak(format!("R{i}").into_boxed_str());
                (name, 1000.0 * (i + 1) as f64, 1.0, 8.0)
            })
            .collect();
        chain_graph(&rels, &vec![0.0005; n - 1])
    }

    #[test]
    fn greedy_covers_all_relations_without_cross_products() {
        fn check(t: &JoinTree, g: &JoinGraph) {
            if let JoinTree::Join { left, right } = t {
                assert!(g.sets_connected(left.rel_set(), right.rel_set()));
                check(left, g);
                check(right, g);
            }
        }
        for n in 2..=8 {
            let g = chain(n);
            let t = greedy_plan(&g);
            assert_eq!(t.rel_set(), g.all_rels());
            assert_eq!(t.join_count(), n - 1);
            check(&t, &g);
        }
    }

    #[test]
    fn greedy_is_close_to_dp_on_small_graphs() {
        for n in 3..=6 {
            let g = chain(n);
            let dp = k_best_plans(&g, 1)[0].work(&g);
            let greedy = greedy_plan(&g).work(&g);
            assert!(greedy <= dp * 2.0, "chain {n}: greedy {greedy} vs dp {dp} — too far off");
            assert!(greedy >= dp - 1e-9, "greedy cannot beat the exact optimum");
        }
    }

    #[test]
    fn greedy_scales_to_graphs_dp_cannot_touch() {
        // A 24-relation chain: 2^24 subsets would strain the DP; greedy is
        // instant.
        let g = chain(24);
        let t = greedy_plan(&g);
        assert_eq!(t.join_count(), 23);
        assert!(t.work(&g).is_finite());
    }

    #[test]
    fn greedy_is_deterministic() {
        let g = chain(10);
        let a = greedy_plan(&g).render(&g);
        let b = greedy_plan(&g).render(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn greedy_on_star_graph_joins_satellites_cheaply() {
        let mut g = JoinGraph::new();
        let hub = g.add_relation("hub", 1_000_000.0, 1.0, 8.0);
        for i in 0..5 {
            let s = g.add_relation(format!("s{i}"), 100.0 * (i + 1) as f64, 1.0, 8.0);
            g.add_edge(hub, s, 1e-6);
        }
        let t = greedy_plan(&g);
        assert_eq!(t.rel_set(), g.all_rels());
        // Against the DP optimum on this still-small graph.
        let dp = k_best_plans(&g, 1)[0].work(&g);
        assert!(t.work(&g) <= dp * 2.0);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn greedy_rejects_disconnected_graphs() {
        let mut g = JoinGraph::new();
        g.add_relation("A", 1.0, 1.0, 8.0);
        g.add_relation("B", 1.0, 1.0, 8.0);
        let _ = greedy_plan(&g);
    }
}
