//! Property-based tests of the join-order enumerator and physical costing.

use proptest::prelude::*;

use ftpde_optimizer::enumerate::{all_plans, count_join_orders, k_best_plans, JoinTree};
use ftpde_optimizer::logical::{JoinGraph, RelId};
use ftpde_optimizer::physical::{tree_to_plan, AggSpec, CostModel};

/// Strategy: a random connected join graph of 2..=6 relations. Starts
/// from a random spanning chain and adds a few random extra edges.
fn arb_graph() -> impl Strategy<Value = JoinGraph> {
    let rels = collection::vec((10.0f64..1e6, 0.01f64..1.0, 8.0f64..128.0), 2..=6);
    let extras = collection::vec((any::<u8>(), any::<u8>()), 0..4);
    (rels, extras).prop_map(|(rels, extras)| {
        let mut g = JoinGraph::new();
        let ids: Vec<RelId> = rels
            .iter()
            .enumerate()
            .map(|(i, &(rows, sel, width))| g.add_relation(format!("R{i}"), rows, sel, width))
            .collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 1.0 / 1000.0);
        }
        for (a, b) in extras {
            let a = RelId(a % ids.len() as u8);
            let b = RelId(b % ids.len() as u8);
            if a != b {
                g.add_edge(a, b, 0.01);
            }
        }
        g
    })
}

fn assert_valid_tree(t: &JoinTree, g: &JoinGraph) {
    if let JoinTree::Join { left, right } = t {
        assert!(g.sets_connected(left.rel_set(), right.rel_set()), "cross product!");
        assert_eq!(left.rel_set() & right.rel_set(), 0, "overlapping sides");
        assert_valid_tree(left, g);
        assert_valid_tree(right, g);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The closed-form counter matches exhaustive enumeration, every
    /// enumerated tree is valid, covers all relations, and all trees are
    /// pairwise distinct.
    #[test]
    fn enumeration_is_sound_and_complete(g in arb_graph()) {
        let plans = all_plans(&g);
        prop_assert_eq!(plans.len() as u64, count_join_orders(&g));
        let mut renders = std::collections::HashSet::new();
        for t in &plans {
            assert_valid_tree(t, &g);
            prop_assert_eq!(t.rel_set(), g.all_rels());
            prop_assert_eq!(t.join_count(), g.len() - 1);
            prop_assert!(renders.insert(t.render(&g)), "duplicate plan");
        }
    }

    /// k-best returns sorted plans whose minimum equals the exhaustive
    /// minimum and whose k-th element is never better than exhaustive
    /// rank k.
    #[test]
    fn k_best_is_a_superset_bound(g in arb_graph(), k in 1usize..8) {
        let best = k_best_plans(&g, k);
        prop_assert!(!best.is_empty());
        let works: Vec<f64> = best.iter().map(|t| t.work(&g)).collect();
        for w in works.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
        let mut exhaustive: Vec<f64> = all_plans(&g).iter().map(|t| t.work(&g)).collect();
        exhaustive.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert!((works[0] - exhaustive[0]).abs() < 1e-6 * (1.0 + exhaustive[0].abs()));
        for (i, w) in works.iter().enumerate() {
            prop_assert!(*w + 1e-6 >= exhaustive[i] - 1e-6 * exhaustive[i].abs(),
                "k-best rank {i} better than exhaustive rank {i}");
        }
    }

    /// Physical conversion: plan shape and cost positivity invariants.
    #[test]
    fn physical_plans_are_well_formed(g in arb_graph(), with_agg in any::<bool>()) {
        let cm = CostModel::xdb_calibrated();
        let tree = &k_best_plans(&g, 1)[0];
        let agg = with_agg.then_some(AggSpec { out_rows: 10.0, row_bytes: 32.0, free: false });
        let plan = tree_to_plan(&g, tree, &cm, agg);
        let expected_len = g.len() /* scans */ + (g.len() - 1) /* joins */ + usize::from(with_agg);
        prop_assert_eq!(plan.len(), expected_len);
        prop_assert_eq!(plan.free_count(), g.len() - 1, "exactly the joins are free");
        prop_assert_eq!(plan.sources().len(), g.len());
        prop_assert_eq!(plan.sinks().len(), 1);
        for (_, op) in plan.iter() {
            prop_assert!(op.run_cost.is_finite() && op.run_cost >= 0.0);
            prop_assert!(op.mat_cost.is_finite() && op.mat_cost >= 0.0);
        }
    }

    /// Join cardinalities are symmetric in commutation: both orders of the
    /// same relation set estimate the same output size.
    #[test]
    fn cardinality_is_order_independent(g in arb_graph()) {
        let plans = all_plans(&g);
        let full = g.all_rels();
        let rows: Vec<f64> = plans.iter().map(|t| t.rows(&g)).collect();
        for r in &rows {
            prop_assert!((r - g.subset_rows(full)).abs() <= 1e-9 * (1.0 + r.abs()));
        }
    }
}
