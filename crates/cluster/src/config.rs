//! Cluster configuration: node count, reliability statistics and the
//! monitoring/repair behaviour of the coordinator (paper §5.1).

use serde::{Deserialize, Serialize};

/// Durations are plain `f64` seconds throughout the cluster model; the
/// engine's internal cost unit equals seconds when `CONST_cost = 1`, as in
/// the paper's evaluation.
pub type Seconds = f64;

/// Common MTBF presets used by the paper's experiments.
pub mod mtbf {
    use super::Seconds;

    /// 30 minutes (Figure 12a's most unreliable setting).
    pub const HALF_HOUR: Seconds = 1800.0;
    /// 1 hour (cluster C in Figures 11 and 13).
    pub const HOUR: Seconds = 3600.0;
    /// 1 day (cluster B; also Figure 10's setting).
    pub const DAY: Seconds = 86_400.0;
    /// 1 week (cluster A).
    pub const WEEK: Seconds = 604_800.0;
    /// 1 month — 30 days (Figure 12a's most reliable setting).
    pub const MONTH: Seconds = 2_592_000.0;
}

/// A shared-nothing cluster as seen by the fault-tolerance machinery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of worker nodes participating in query execution.
    pub nodes: usize,
    /// Mean time between failures of **one** node, in seconds.
    pub mtbf: Seconds,
    /// Mean time to repair/redeploy a failed sub-plan, in seconds. The
    /// paper's XDB setup uses a 2 s monitoring interval, giving an average
    /// detection+redeploy time of 1 s.
    pub mttr: Seconds,
}

impl ClusterConfig {
    /// Creates a cluster configuration.
    ///
    /// # Panics
    /// Panics if `nodes == 0`, `mtbf <= 0` or `mttr < 0` — configurations
    /// are programmer-provided constants, not runtime inputs.
    pub fn new(nodes: usize, mtbf: Seconds, mttr: Seconds) -> Self {
        assert!(nodes > 0, "a cluster needs at least one node");
        assert!(mtbf > 0.0 && mtbf.is_finite(), "MTBF must be positive");
        assert!(mttr >= 0.0 && mttr.is_finite(), "MTTR must be non-negative");
        ClusterConfig { nodes, mtbf, mttr }
    }

    /// The paper's experimental cluster: 10 nodes, MTTR = 1 s.
    pub fn paper_cluster(mtbf: Seconds) -> Self {
        ClusterConfig::new(10, mtbf, 1.0)
    }

    /// Per-node failure rate λ = 1/MTBF.
    #[inline]
    pub fn lambda(&self) -> f64 {
        1.0 / self.mtbf
    }

    /// Effective MTBF of the whole cluster (first failure on any of the
    /// `n` independent nodes): `MTBF / n`.
    #[inline]
    pub fn cluster_mtbf(&self) -> Seconds {
        self.mtbf / self.nodes as f64
    }
}

/// The four cluster setups of the paper's Figure 1.
pub fn figure1_clusters() -> [(&'static str, ClusterConfig); 4] {
    [
        ("Cluster 1 (MTBF=1 hour,n=100)", ClusterConfig::new(100, mtbf::HOUR, 1.0)),
        ("Cluster 2 (MTBF=1 week,n=100)", ClusterConfig::new(100, mtbf::WEEK, 1.0)),
        ("Cluster 3 (MTBF=1 hour,n=10)", ClusterConfig::new(10, mtbf::HOUR, 1.0)),
        ("Cluster 4 (MTBF=1 week,n=10)", ClusterConfig::new(10, mtbf::WEEK, 1.0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_and_cluster_mtbf() {
        let c = ClusterConfig::new(10, 3600.0, 1.0);
        assert_eq!(c.lambda(), 1.0 / 3600.0);
        assert_eq!(c.cluster_mtbf(), 360.0);
    }

    #[test]
    fn paper_cluster_defaults() {
        let c = ClusterConfig::paper_cluster(mtbf::DAY);
        assert_eq!(c.nodes, 10);
        assert_eq!(c.mtbf, 86_400.0);
        assert_eq!(c.mttr, 1.0);
    }

    #[test]
    fn figure1_setups() {
        let setups = figure1_clusters();
        assert_eq!(setups[0].1.nodes, 100);
        assert_eq!(setups[3].1.mtbf, mtbf::WEEK);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = ClusterConfig::new(0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "MTBF must be positive")]
    fn non_positive_mtbf_rejected() {
        let _ = ClusterConfig::new(1, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "MTTR must be non-negative")]
    fn negative_mttr_rejected() {
        let _ = ClusterConfig::new(1, 1.0, -1.0);
    }

    #[test]
    fn mtbf_presets_are_consistent() {
        assert_eq!(mtbf::HOUR, 2.0 * mtbf::HALF_HOUR);
        assert_eq!(mtbf::DAY, 24.0 * mtbf::HOUR);
        assert_eq!(mtbf::WEEK, 7.0 * mtbf::DAY);
        assert_eq!(mtbf::MONTH, 30.0 * mtbf::DAY);
    }
}
