//! Failure-trace generation (paper §5.1, "Statistics").
//!
//! The paper injects failures from pre-generated traces: for each unique
//! MTBF, ten traces are drawn from an exponential distribution with
//! `λ = 1/MTBF` and the *same* trace set is replayed against every
//! fault-tolerance scheme so that overhead comparisons are paired.
//!
//! A [`FailureTrace`] holds, per node, the absolute times at which that
//! node fails. Traces are deterministic given a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::config::{ClusterConfig, Seconds};

/// Failure times for every node of a cluster over a finite horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureTrace {
    /// `node_failures[i]` — strictly increasing failure times of node `i`.
    node_failures: Vec<Vec<Seconds>>,
    /// The horizon up to which the trace is populated.
    horizon: Seconds,
}

impl FailureTrace {
    /// Draws a trace for `cluster` covering `[0, horizon)` using
    /// exponential inter-arrival times with mean `cluster.mtbf`,
    /// deterministically from `seed`.
    pub fn generate(cluster: &ClusterConfig, horizon: Seconds, seed: u64) -> Self {
        assert!(horizon >= 0.0 && horizon.is_finite());
        let mut rng = StdRng::seed_from_u64(seed);
        let node_failures = (0..cluster.nodes)
            .map(|_| {
                let mut times = Vec::new();
                let mut t = 0.0;
                loop {
                    t += exponential(&mut rng, cluster.mtbf);
                    if t >= horizon {
                        break;
                    }
                    times.push(t);
                }
                times
            })
            .collect();
        FailureTrace { node_failures, horizon }
    }

    /// A trace with no failures at all (baseline runs).
    pub fn failure_free(cluster: &ClusterConfig, horizon: Seconds) -> Self {
        FailureTrace { node_failures: vec![Vec::new(); cluster.nodes], horizon }
    }

    /// Builds a trace from explicit failure times (tests, worked examples).
    /// Each node's times are sorted internally.
    pub fn from_times(mut node_failures: Vec<Vec<Seconds>>, horizon: Seconds) -> Self {
        for times in &mut node_failures {
            times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        }
        FailureTrace { node_failures, horizon }
    }

    /// Number of nodes covered.
    pub fn nodes(&self) -> usize {
        self.node_failures.len()
    }

    /// The populated horizon.
    pub fn horizon(&self) -> Seconds {
        self.horizon
    }

    /// Failure times of one node.
    pub fn failures_of(&self, node: usize) -> &[Seconds] {
        &self.node_failures[node]
    }

    /// First failure of `node` at or after time `t`, if within the horizon.
    pub fn next_failure(&self, node: usize, t: Seconds) -> Option<Seconds> {
        let times = &self.node_failures[node];
        let idx = times.partition_point(|&x| x < t);
        times.get(idx).copied()
    }

    /// First failure on *any* node at or after `t`, as `(time, node)`.
    pub fn next_cluster_failure(&self, t: Seconds) -> Option<(Seconds, usize)> {
        (0..self.nodes())
            .filter_map(|n| self.next_failure(n, t).map(|ft| (ft, n)))
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"))
    }

    /// Total number of failures across all nodes.
    pub fn total_failures(&self) -> usize {
        self.node_failures.iter().map(Vec::len).sum()
    }
}

/// A set of traces replayed against every scheme (the paper uses 10 per
/// MTBF).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSet {
    traces: Vec<FailureTrace>,
}

impl TraceSet {
    /// Generates `count` traces with seeds `base_seed..base_seed+count`.
    pub fn generate(
        cluster: &ClusterConfig,
        horizon: Seconds,
        count: usize,
        base_seed: u64,
    ) -> Self {
        let traces = (0..count)
            .map(|i| FailureTrace::generate(cluster, horizon, base_seed + i as u64))
            .collect();
        TraceSet { traces }
    }

    /// The traces in this set.
    pub fn iter(&self) -> impl Iterator<Item = &FailureTrace> {
        self.traces.iter()
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// `true` iff the set holds no traces.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }
}

/// Draws from an exponential distribution with the given mean via inverse
/// transform sampling. Implemented locally to keep the dependency surface
/// to `rand` core (no `rand_distr`).
fn exponential(rng: &mut impl Rng, mean: Seconds) -> Seconds {
    // gen::<f64>() is in [0, 1); use 1 - u to avoid ln(0).
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterConfig {
        ClusterConfig::new(10, 3600.0, 1.0)
    }

    #[test]
    fn generation_is_deterministic() {
        let c = cluster();
        let a = FailureTrace::generate(&c, 1e5, 42);
        let b = FailureTrace::generate(&c, 1e5, 42);
        assert_eq!(a, b);
        let c2 = FailureTrace::generate(&c, 1e5, 43);
        assert_ne!(a, c2);
    }

    #[test]
    fn times_are_increasing_and_within_horizon() {
        let t = FailureTrace::generate(&cluster(), 50_000.0, 7);
        for n in 0..t.nodes() {
            let times = t.failures_of(n);
            for w in times.windows(2) {
                assert!(w[0] < w[1]);
            }
            for &x in times {
                assert!((0.0..50_000.0).contains(&x));
            }
        }
    }

    #[test]
    fn empirical_rate_matches_mtbf() {
        // Over a long horizon the empirical failure count approaches
        // horizon/MTBF per node.
        let c = ClusterConfig::new(20, 1000.0, 0.0);
        let horizon = 200_000.0;
        let t = FailureTrace::generate(&c, horizon, 1);
        let expected = c.nodes as f64 * horizon / c.mtbf; // 4000
        let got = t.total_failures() as f64;
        assert!((got - expected).abs() < expected * 0.1, "expected ≈ {expected}, got {got}");
    }

    #[test]
    fn next_failure_lookup() {
        let t = FailureTrace::from_times(vec![vec![5.0, 1.0, 9.0], vec![]], 10.0);
        assert_eq!(t.failures_of(0), &[1.0, 5.0, 9.0]); // sorted
        assert_eq!(t.next_failure(0, 0.0), Some(1.0));
        assert_eq!(t.next_failure(0, 1.0), Some(1.0)); // inclusive
        assert_eq!(t.next_failure(0, 1.1), Some(5.0));
        assert_eq!(t.next_failure(0, 9.5), None);
        assert_eq!(t.next_failure(1, 0.0), None);
    }

    #[test]
    fn next_cluster_failure_picks_minimum() {
        let t = FailureTrace::from_times(vec![vec![5.0], vec![3.0], vec![8.0]], 10.0);
        assert_eq!(t.next_cluster_failure(0.0), Some((3.0, 1)));
        assert_eq!(t.next_cluster_failure(4.0), Some((5.0, 0)));
        assert_eq!(t.next_cluster_failure(9.0), None);
    }

    #[test]
    fn failure_free_trace() {
        let t = FailureTrace::failure_free(&cluster(), 1e9);
        assert_eq!(t.total_failures(), 0);
        assert_eq!(t.next_cluster_failure(0.0), None);
    }

    #[test]
    fn trace_set_seeds_are_distinct() {
        let set = TraceSet::generate(&cluster(), 1e5, 10, 100);
        assert_eq!(set.len(), 10);
        let firsts: Vec<_> = set.iter().map(|t| t.next_cluster_failure(0.0)).collect();
        // Not all traces identical.
        assert!(firsts.iter().any(|f| *f != firsts[0]));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let mean = 123.0;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, mean)).sum();
        let emp = sum / n as f64;
        assert!((emp - mean).abs() < mean * 0.05, "empirical mean {emp}");
    }
}
