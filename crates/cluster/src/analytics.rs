//! Analytic reliability formulas (paper §1, footnote 1 — Figure 1).
//!
//! Failures arrive per node as a Poisson process with rate `1/MTBF`;
//! failures of the `n` nodes are independent. The probability that a query
//! of runtime `t` sees **no** failure anywhere in the cluster is
//!
//! ```text
//! P(Nⁿ_t = 0) = P(N¹_t = 0)ⁿ = e^(−t·n / MTBF)
//! ```
//!
//! which is exactly the success-probability curve plotted in Figure 1 for
//! four cluster setups.

use crate::config::{ClusterConfig, Seconds};

/// Probability that **no** node of `cluster` fails during an interval of
/// length `t` seconds.
pub fn success_probability(cluster: &ClusterConfig, t: Seconds) -> f64 {
    (-t * cluster.nodes as f64 / cluster.mtbf).exp()
}

/// Probability of **at least one** failure in the cluster during `t`
/// seconds: `P(Nⁿ_t > 0) = 1 − e^(−t·n/MTBF)` (footnote 1).
pub fn failure_probability(cluster: &ClusterConfig, t: Seconds) -> f64 {
    -(-t * cluster.nodes as f64 / cluster.mtbf).exp_m1()
}

/// Expected number of failures across the cluster during `t` seconds
/// (the Poisson mean `t·n/MTBF`).
pub fn expected_failures(cluster: &ClusterConfig, t: Seconds) -> f64 {
    t * cluster.nodes as f64 / cluster.mtbf
}

/// Probability of exactly `k` failures across the cluster during `t`
/// seconds (Poisson pmf).
pub fn failure_count_probability(cluster: &ClusterConfig, t: Seconds, k: u32) -> f64 {
    let mean = expected_failures(cluster, t);
    let mut log_p = -mean + k as f64 * mean.ln();
    for i in 1..=k {
        log_p -= (i as f64).ln();
    }
    if mean == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    log_p.exp()
}

/// One point of a Figure 1 curve: query runtime (minutes) and success
/// probability (percent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuccessPoint {
    /// Query runtime in minutes (Figure 1's x axis).
    pub runtime_min: f64,
    /// Probability of finishing without any mid-query failure, in percent.
    pub success_pct: f64,
}

/// Samples the success-probability curve of Figure 1 for one cluster,
/// from 0 to `max_minutes` in steps of `step_minutes`.
pub fn success_curve(
    cluster: &ClusterConfig,
    max_minutes: f64,
    step_minutes: f64,
) -> Vec<SuccessPoint> {
    assert!(step_minutes > 0.0);
    let steps = (max_minutes / step_minutes).round() as usize;
    (0..=steps)
        .map(|i| {
            let runtime_min = i as f64 * step_minutes;
            let p = success_probability(cluster, runtime_min * 60.0);
            SuccessPoint { runtime_min, success_pct: p * 100.0 }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{figure1_clusters, mtbf};

    #[test]
    fn success_and_failure_are_complementary() {
        let c = ClusterConfig::new(100, mtbf::HOUR, 1.0);
        for t in [0.0, 60.0, 600.0, 6000.0] {
            let s = success_probability(&c, t);
            let f = failure_probability(&c, t);
            assert!((s + f - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn figure1_anchor_points() {
        let clusters = figure1_clusters();
        // Cluster 1 (MTBF=1h, n=100): a 10-minute query survives with
        // e^(-600*100/3600) ≈ e^(-16.7) — essentially never.
        let p1 = success_probability(&clusters[0].1, 600.0);
        assert!(p1 < 1e-6, "cluster 1 almost never succeeds: {p1}");
        // Cluster 4 (MTBF=1wk, n=10): a 160-minute query survives with
        // e^(-9600*10/604800) ≈ 0.853 — very likely.
        let p4 = success_probability(&clusters[3].1, 160.0 * 60.0);
        assert!((p4 - 0.853).abs() < 0.01, "cluster 4: {p4}");
        // Cluster 2 (MTBF=1wk, n=100): runtime-dependent mid-range, as the
        // figure shows ≈ 20% at 160 min.
        let p2 = success_probability(&clusters[1].1, 160.0 * 60.0);
        assert!((0.15..0.30).contains(&p2), "cluster 2: {p2}");
        // Cluster 3 (MTBF=1h, n=10): ≈ 19% at 10 min.
        let p3 = success_probability(&clusters[2].1, 10.0 * 60.0);
        assert!((0.15..0.25).contains(&p3), "cluster 3: {p3}");
    }

    #[test]
    fn expected_failures_scales_linearly() {
        let c = ClusterConfig::new(10, 1000.0, 0.0);
        assert_eq!(expected_failures(&c, 100.0), 1.0);
        assert_eq!(expected_failures(&c, 200.0), 2.0);
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        let c = ClusterConfig::new(10, 1000.0, 0.0);
        let total: f64 = (0..60).map(|k| failure_count_probability(&c, 300.0, k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "pmf sums to {total}");
        // P(0 failures) must equal the success probability.
        assert!(
            (failure_count_probability(&c, 300.0, 0) - success_probability(&c, 300.0)).abs()
                < 1e-12
        );
    }

    #[test]
    fn poisson_pmf_zero_interval() {
        let c = ClusterConfig::new(10, 1000.0, 0.0);
        assert_eq!(failure_count_probability(&c, 0.0, 0), 1.0);
        assert_eq!(failure_count_probability(&c, 0.0, 3), 0.0);
    }

    #[test]
    fn curve_shape() {
        let c = ClusterConfig::new(10, mtbf::HOUR, 1.0);
        let curve = success_curve(&c, 160.0, 20.0);
        assert_eq!(curve.len(), 9);
        assert_eq!(curve[0].success_pct, 100.0);
        for w in curve.windows(2) {
            assert!(w[0].success_pct >= w[1].success_pct, "monotone decreasing");
        }
    }
}
