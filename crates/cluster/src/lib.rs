//! # ftpde-cluster — cluster failure model
//!
//! The reliability substrate of the reproduction: cluster configurations
//! (node count, per-node MTBF, MTTR), deterministic exponential failure
//! traces (replayed identically against every fault-tolerance scheme, as
//! in the paper's §5.1), and the closed-form Poisson reliability analytics
//! behind the paper's Figure 1.
//!
//! ```
//! use ftpde_cluster::prelude::*;
//!
//! let cluster = ClusterConfig::new(100, mtbf::HOUR, 1.0);
//! // A 30-minute query on 100 unreliable nodes almost never succeeds in
//! // one attempt:
//! assert!(success_probability(&cluster, 30.0 * 60.0) < 1e-10);
//!
//! // Deterministic failure traces for simulation:
//! let trace = FailureTrace::generate(&cluster, 7200.0, 42);
//! assert!(trace.total_failures() > 0);
//! ```

pub mod analytics;
pub mod config;
pub mod trace;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::analytics::{
        expected_failures, failure_count_probability, failure_probability, success_curve,
        success_probability, SuccessPoint,
    };
    pub use crate::config::{figure1_clusters, mtbf, ClusterConfig, Seconds};
    pub use crate::trace::{FailureTrace, TraceSet};
}
