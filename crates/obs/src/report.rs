//! A structured plain-text summary: banners, aligned tables and free
//! lines collected into one renderable value instead of scattered
//! `println!` calls — so harness output can be printed, diffed against a
//! golden transcript, exported, or mirrored into a [`Recorder`] as
//! events.

use crate::event::Event;
use crate::metrics::MetricsSnapshot;
use crate::recorder::Recorder;

#[derive(Debug, Clone)]
enum Item {
    Banner(String),
    Table { headers: Vec<String>, rows: Vec<Vec<String>> },
    Line(String),
}

/// An ordered collection of report items.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    items: Vec<Item>,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a title banner.
    pub fn banner(&mut self, title: impl Into<String>) -> &mut Self {
        self.items.push(Item::Banner(title.into()));
        self
    }

    /// Appends a table: a header row and rows of equal arity,
    /// right-aligned per column at render time.
    pub fn table(&mut self, headers: &[&str], rows: &[Vec<String>]) -> &mut Self {
        self.items.push(Item::Table {
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: rows.to_vec(),
        });
        self
    }

    /// Appends one free-form line.
    pub fn line(&mut self, text: impl Into<String>) -> &mut Self {
        self.items.push(Item::Line(text.into()));
        self
    }

    /// Appends a `key: value` line.
    pub fn kv(&mut self, key: &str, value: impl std::fmt::Display) -> &mut Self {
        self.line(format!("{key}: {value}"))
    }

    /// `true` when nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Renders the whole summary to text (trailing newline included).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for item in &self.items {
            match item {
                Item::Banner(title) => {
                    out.push('\n');
                    out.push_str(&format!("==== {title} ====\n"));
                }
                Item::Table { headers, rows } => {
                    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
                    for row in rows {
                        for (i, cell) in row.iter().enumerate() {
                            widths[i] = widths[i].max(cell.len());
                        }
                    }
                    let fmt_row = |cells: &[String]| -> String {
                        cells
                            .iter()
                            .enumerate()
                            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                            .collect::<Vec<_>>()
                            .join("  ")
                    };
                    out.push_str(&fmt_row(headers));
                    out.push('\n');
                    out.push_str(
                        &"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)),
                    );
                    out.push('\n');
                    for row in rows {
                        out.push_str(&fmt_row(row));
                        out.push('\n');
                    }
                }
                Item::Line(text) => {
                    out.push_str(text);
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Prints the rendered summary to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Mirrors the summary's structure into `rec` as instant events
    /// under category `cat`: one `section` event per banner (carrying the
    /// title) and one `table` event per table (carrying its dimensions
    /// and the section it belongs to).
    pub fn record_events(&self, rec: &dyn Recorder, cat: &str) {
        if !rec.enabled() {
            return;
        }
        let mut section = String::new();
        let mut seq = 0u64;
        for item in &self.items {
            seq += 1;
            match item {
                Item::Banner(title) => {
                    section = title.clone();
                    rec.record(Event::instant("section", cat, seq).arg("title", title.as_str()));
                }
                Item::Table { headers, rows } => {
                    rec.record(
                        Event::instant("table", cat, seq)
                            .arg("section", section.as_str())
                            .arg("cols", headers.len())
                            .arg("rows", rows.len()),
                    );
                }
                Item::Line(_) => {}
            }
        }
    }
}

/// Renders a [`MetricsSnapshot`] as a [`Summary`]: one table per metric
/// kind, histogram rows carrying interpolated p50/p90/p99 quantiles.
pub fn metrics_summary(snap: &MetricsSnapshot) -> Summary {
    let mut out = Summary::new();
    out.banner("Metrics");
    if !snap.counters.is_empty() {
        let rows: Vec<Vec<String>> =
            snap.counters.iter().map(|(n, v)| vec![n.clone(), v.to_string()]).collect();
        out.table(&["counter", "value"], &rows);
    }
    if !snap.gauges.is_empty() {
        let rows: Vec<Vec<String>> =
            snap.gauges.iter().map(|(n, v)| vec![n.clone(), format!("{v:.4}")]).collect();
        out.table(&["gauge", "value"], &rows);
    }
    if !snap.histograms.is_empty() {
        let q = |h: &crate::metrics::HistogramSnapshot, q: f64| {
            h.quantile(q).map_or_else(|| "-".into(), |v| format!("{v:.4}"))
        };
        let rows: Vec<Vec<String>> = snap
            .histograms
            .iter()
            .map(|(n, h)| {
                vec![
                    n.clone(),
                    h.count.to_string(),
                    h.mean().map_or_else(|| "-".into(), |m| format!("{m:.4}")),
                    q(h, 0.5),
                    q(h, 0.9),
                    q(h, 0.99),
                    h.max.map_or_else(|| "-".into(), |m| format!("{m:.4}")),
                ]
            })
            .collect();
        out.table(&["histogram", "count", "mean", "p50", "p90", "p99", "max"], &rows);
    }
    if snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty() {
        out.line("no metrics recorded");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::MemoryRecorder;

    #[test]
    fn renders_banner_table_and_lines() {
        let mut s = Summary::new();
        s.banner("Figure X");
        s.table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["bb".into(), "22".into()]],
        );
        s.kv("Pearson", format!("{:.3}", 0.987_6));
        let text = s.render();
        let expected = "\n==== Figure X ====\nname  value\n-----------\n   a      1\n  bb     22\nPearson: 0.988\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn table_alignment_matches_widest_cell() {
        let mut s = Summary::new();
        s.table(&["h"], &[vec!["wide-cell".into()]]);
        assert_eq!(s.render(), "        h\n---------\nwide-cell\n");
    }

    #[test]
    fn record_events_mirrors_structure() {
        let mut s = Summary::new();
        s.banner("A").table(&["x"], &[]).banner("B").table(&["y"], &[vec!["1".into()]]);
        let rec = MemoryRecorder::new();
        s.record_events(&rec, "bench");
        let events = rec.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].name, "section");
        assert_eq!(events[1].name, "table");
        assert_eq!(events[3].get_arg("section"), Some(&crate::event::ArgValue::Str("B".into())));
    }

    #[test]
    fn metrics_summary_shows_quantiles() {
        use crate::metrics::MetricsRegistry;
        let reg = MetricsRegistry::new();
        reg.counter_add("retries", 4);
        reg.gauge_set("overhead_pct", 7.5);
        for _ in 0..10 {
            reg.observe("stage_seconds", 2.5);
        }
        let text = metrics_summary(&reg.snapshot()).render();
        assert!(text.contains("==== Metrics ===="));
        assert!(text.contains("retries"));
        assert!(text.contains("7.5000"));
        // Constant distribution: every quantile column shows the constant.
        assert!(text.contains("2.5000"));

        let empty = metrics_summary(&Default::default()).render();
        assert!(empty.contains("no metrics recorded"));
    }

    #[test]
    fn empty_summary_renders_empty() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.render(), "");
    }
}
