//! Always-on metrics: named counters, gauges and log-bucketed histograms,
//! cheap enough to leave enabled in every build.
//!
//! Two layers:
//!
//! - **Lock-free primitives** — [`ShardedCounter`] (per-thread striped
//!   atomic counters so concurrent `add`s don't bounce one cache line),
//!   [`AtomicF64`] (CAS on the bit pattern) and [`AtomicHistogram`]
//!   (one relaxed `fetch_add` per observation into fixed power-of-two
//!   buckets, plus CAS-maintained sum/min/max). A [`MutexHistogram`]
//!   reference implementation with identical snapshots is kept for
//!   differential tests.
//! - **The registry** — [`MetricsRegistry`] maps names to primitives
//!   behind a read-mostly `RwLock`: the first touch of a name takes the
//!   write lock once; every later update is a read-lock + atomic op. Hot
//!   paths should resolve a [`Counter`] / [`Gauge`] / [`HistogramHandle`]
//!   once and update through it with no locking or lookup at all.
//!
//! The process-global registry behind [`global()`] is what the engine
//! coordinator, the store backends, the optimizer search and the
//! simulator instrument unconditionally — metrics exist even when no
//! JSONL recorder is attached to a run. Snapshots
//! ([`MetricsSnapshot`]) are serde-serializable for export
//! (`export::to_prometheus`) or test assertions.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::sync::plain::{Arc, AtomicU64, AtomicUsize, Mutex, OnceLock, Ordering, RwLock};

/// Number of power-of-two histogram buckets. Bucket `i` covers values in
/// `[2^(i-OFFSET), 2^(i-OFFSET+1))`; the extremes clamp.
const BUCKETS: usize = 80;
/// Bucket 40 covers `[1, 2)`: forty octaves of sub-unit resolution
/// (down to ~1e-12, enough for microsecond fractions of a second) and
/// forty above (up to ~1e12).
const OFFSET: i32 = 40;
/// Stripes per [`ShardedCounter`]; must be a power of two.
const SHARDS: usize = 16;

fn bucket_index(value: f64) -> usize {
    let v = value.max(1e-300);
    (v.log2().floor() as i32 + OFFSET).clamp(0, BUCKETS as i32 - 1) as usize
}

/// A small stable per-thread index, assigned on first use.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    IDX.with(|i| *i) & (SHARDS - 1)
}

/// An `f64` updated atomically via CAS on its bit pattern.
#[derive(Debug)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// A new cell holding `v`.
    pub fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Last-write-wins store.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomically adds `delta` (CAS loop).
    pub fn add(&self, delta: f64) {
        let _ = self.0.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            Some((f64::from_bits(bits) + delta).to_bits())
        });
    }

    /// Atomically lowers the cell to `min(current, v)`.
    fn update_min(&self, v: f64) {
        let _ = self.0.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            (v < f64::from_bits(bits)).then(|| v.to_bits())
        });
    }

    /// Atomically raises the cell to `max(current, v)`.
    fn update_max(&self, v: f64) {
        let _ = self.0.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            (v > f64::from_bits(bits)).then(|| v.to_bits())
        });
    }
}

/// One cache line per stripe so concurrent writers don't false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Shard(AtomicU64);

/// A monotonic counter striped across `SHARDS` cache lines: `add` is a
/// single relaxed `fetch_add` on the calling thread's stripe; `get` sums
/// the stripes.
#[derive(Debug)]
pub struct ShardedCounter {
    shards: Vec<Shard>,
}

impl Default for ShardedCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        ShardedCounter { shards: (0..SHARDS).map(|_| Shard::default()).collect() }
    }

    /// Adds `delta` to the calling thread's stripe.
    pub fn add(&self, delta: u64) {
        self.shards[shard_index()].0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Sum over all stripes.
    pub fn get(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A lock-free log-bucketed histogram: `observe` is one relaxed
/// `fetch_add` into the value's bucket plus CAS updates of sum/min/max —
/// no lock, no allocation.
///
/// Snapshots taken while writers are active are *per-field* consistent
/// (each bucket, the sum, min and max are individually atomic) but not a
/// point-in-time cut across fields; quiescent snapshots are exact and
/// equal to [`MutexHistogram`]'s for the same observation stream.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicF64,
    min: AtomicF64,
    max: AtomicF64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicF64::new(0.0),
            min: AtomicF64::new(f64::INFINITY),
            max: AtomicF64::new(f64::NEG_INFINITY),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.add(value);
        self.min.update_min(value);
        self.max.update_max(value);
    }

    /// Freezes the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut count = 0u64;
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                count += c;
                (c > 0).then_some((i as u64, c))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: if count > 0 { self.sum.get() } else { 0.0 },
            min: (count > 0).then(|| self.min.get()),
            max: (count > 0).then(|| self.max.get()),
            buckets,
        }
    }
}

/// The original mutex-guarded histogram, kept as the reference
/// implementation the lock-free [`AtomicHistogram`] is differentially
/// tested against: for any quiescent observation stream both produce
/// identical [`HistogramSnapshot`]s.
#[derive(Debug, Default)]
pub struct MutexHistogram {
    inner: Mutex<Histogram>,
}

impl MutexHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        self.inner.lock().observe(value);
    }

    /// Freezes the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.inner.lock().snapshot()
    }
}

#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: Vec<u64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; BUCKETS],
        }
    }
}

impl Histogram {
    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    fn snapshot(&self) -> HistogramSnapshot {
        // Sparse form: only non-empty buckets, as (index, count).
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u64, c))
            .collect();
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: (self.count > 0).then_some(self.min),
            max: (self.count > 0).then_some(self.max),
            buckets,
        }
    }
}

/// Frozen state of one histogram.
///
/// `min`/`max` are `None` when the histogram has no observations — the
/// `±inf` sentinels of the live histogram would serialize to JSON `null`
/// and fail to deserialize back as bare floats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation, `None` when empty.
    pub min: Option<f64>,
    /// Largest observation, `None` when empty.
    pub max: Option<f64>,
    /// Sparse `(bucket_index, count)` pairs; bucket `i` covers
    /// `[2^(i-40), 2^(i-39))`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// An empty snapshot (no observations).
    pub fn empty() -> Self {
        HistogramSnapshot { count: 0, sum: 0.0, min: None, max: None, buckets: Vec::new() }
    }

    /// Mean observation, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The `[lower, upper)` value range of bucket `index`.
    pub fn bucket_bounds(index: u64) -> (f64, f64) {
        let lo = 2f64.powi(index as i32 - OFFSET);
        (lo, lo * 2.0)
    }

    /// The combined distribution of `self` and `other`: counts and sums
    /// add, bucket counts add index-wise, min/max take the extremes.
    /// Merging histograms recorded on different threads (or bench
    /// repeats) is equivalent to having observed both streams into one.
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: BTreeMap<u64, u64> = self.buckets.iter().copied().collect();
        for &(i, c) in &other.buckets {
            *buckets.entry(i).or_insert(0) += c;
        }
        let opt = |a: Option<f64>, b: Option<f64>, pick: fn(f64, f64) -> f64| match (a, b) {
            (Some(x), Some(y)) => Some(pick(x, y)),
            (x, y) => x.or(y),
        };
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min: opt(self.min, other.min, f64::min),
            max: opt(self.max, other.max, f64::max),
            buckets: buckets.into_iter().collect(),
        }
    }

    /// Quantile `q ∈ [0, 1]` interpolated from the log-bucketed counts,
    /// `None` when empty.
    ///
    /// The cumulative rank `q·count` is located in the sparse buckets and
    /// interpolated linearly within the containing bucket's `[lo, hi)`
    /// range, then clamped to the exact observed `[min, max]` — so
    /// `quantile(0.0) == min` and `quantile(1.0) == max` exactly, and a
    /// constant distribution returns the constant at every `q`. Between
    /// those anchors the resolution is one power-of-two bucket (≤ 2×).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let (min, max) = (self.min?, self.max?);
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for &(i, c) in &self.buckets {
            if (cum + c) as f64 >= rank {
                let (lo, hi) = Self::bucket_bounds(i);
                let frac = if c == 0 { 0.0 } else { (rank - cum as f64) / c as f64 };
                return Some((lo + frac * (hi - lo)).clamp(min, max));
            }
            cum += c;
        }
        Some(max)
    }
}

/// Frozen state of a whole registry, sorted by name.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins values.
    pub gauges: Vec<(String, f64)>,
    /// Distributions.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of a counter, `0` if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// Value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A histogram's snapshot, if it has observations.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

/// A pre-resolved counter: updates are lock-free and lookup-free.
#[derive(Debug, Clone)]
pub struct Counter(Arc<ShardedCounter>);

impl Counter {
    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.0.add(delta);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A pre-resolved gauge.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicF64>);

impl Gauge {
    /// Last-write-wins store.
    pub fn set(&self, value: f64) {
        self.0.set(value);
    }

    /// Current value (`NaN` while never set).
    pub fn get(&self) -> f64 {
        self.0.get()
    }
}

/// A pre-resolved histogram.
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<AtomicHistogram>);

impl HistogramHandle {
    /// Records one observation.
    pub fn observe(&self, value: f64) {
        self.0.observe(value);
    }

    /// Freezes the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.0.snapshot()
    }
}

#[derive(Debug, Default)]
struct Registered {
    counters: BTreeMap<String, Arc<ShardedCounter>>,
    gauges: BTreeMap<String, Arc<AtomicF64>>,
    histograms: BTreeMap<String, Arc<AtomicHistogram>>,
}

/// Thread-safe registry of named metrics.
///
/// Name-based updates ([`counter_add`](Self::counter_add),
/// [`gauge_set`](Self::gauge_set), [`observe`](Self::observe)) take a
/// read lock for the lookup and update atomically; hot paths should
/// resolve a handle once ([`counter`](Self::counter),
/// [`gauge`](Self::gauge), [`histogram`](Self::histogram)) and skip the
/// lookup entirely.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: RwLock<Registered>,
}

/// Resolves `name` in one of [`Registered`]'s maps, registering it (write
/// lock, once per name) on first touch.
fn resolve<T: Default>(
    registry: &MetricsRegistry,
    pick: impl Fn(&Registered) -> &BTreeMap<String, Arc<T>>,
    pick_mut: impl Fn(&mut Registered) -> &mut BTreeMap<String, Arc<T>>,
    name: &str,
) -> Arc<T> {
    if let Some(v) = pick(&registry.inner.read()).get(name) {
        return Arc::clone(v);
    }
    let mut inner = registry.inner.write();
    Arc::clone(pick_mut(&mut inner).entry(name.to_owned()).or_default())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (registering if needed) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter(resolve(self, |r| &r.counters, |r| &mut r.counters, name))
    }

    /// Resolves (registering if needed) the gauge `name`. A gauge that
    /// was never `set` holds `NaN` and is omitted from snapshots.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(v) = self.inner.read().gauges.get(name) {
            return Gauge(Arc::clone(v));
        }
        let mut inner = self.inner.write();
        Gauge(Arc::clone(
            inner
                .gauges
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(AtomicF64::new(f64::NAN))),
        ))
    }

    /// Resolves (registering if needed) the histogram `name`.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        HistogramHandle(resolve(self, |r| &r.histograms, |r| &mut r.histograms, name))
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn counter_add(&self, name: &str, delta: u64) {
        if let Some(c) = self.inner.read().counters.get(name) {
            c.add(delta);
            return;
        }
        self.counter(name).add(delta);
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if let Some(g) = self.inner.read().gauges.get(name) {
            g.set(value);
            return;
        }
        self.gauge(name).set(value);
    }

    /// Records one observation into histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(h) = self.inner.read().histograms.get(name) {
            h.observe(value);
            return;
        }
        self.histogram(name).observe(value);
    }

    /// Freezes the current state (sorted by metric name). Gauges that
    /// were registered but never set (still `NaN`) are omitted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.read();
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: inner
                .gauges
                .iter()
                .filter(|(_, v)| !v.get().is_nan())
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner.histograms.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect(),
        }
    }
}

/// The process-global registry: the always-on sink the engine
/// coordinator, store backends, optimizer search and simulator
/// instrument unconditionally, so operational metrics exist even when no
/// event recorder is attached to a run. Export with
/// [`crate::export::to_prometheus`]`(&global().snapshot())`.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.counter_add("retries", 1);
        m.counter_add("retries", 2);
        m.counter_add("restarts", 5);
        let s = m.snapshot();
        assert_eq!(s.counter("retries"), 3);
        assert_eq!(s.counter("restarts"), 5);
        assert_eq!(s.counter("absent"), 0);
    }

    #[test]
    fn gauges_take_the_last_value() {
        let m = MetricsRegistry::new();
        m.gauge_set("overhead_pct", 12.0);
        m.gauge_set("overhead_pct", 7.5);
        assert_eq!(m.snapshot().gauge("overhead_pct"), Some(7.5));
        assert_eq!(m.snapshot().gauge("absent"), None);
    }

    #[test]
    fn registered_but_unset_gauges_are_omitted() {
        let m = MetricsRegistry::new();
        let g = m.gauge("pending");
        assert!(g.get().is_nan());
        assert_eq!(m.snapshot().gauge("pending"), None);
        g.set(0.0);
        assert_eq!(m.snapshot().gauge("pending"), Some(0.0));
    }

    #[test]
    fn handles_share_state_with_name_based_updates() {
        let m = MetricsRegistry::new();
        let c = m.counter("n");
        c.add(2);
        m.counter_add("n", 3);
        assert_eq!(c.get(), 5);
        assert_eq!(m.counter("n").get(), 5);

        let h = m.histogram("lat");
        h.observe(1.0);
        m.observe("lat", 2.0);
        assert_eq!(h.snapshot().count, 2);
        assert_eq!(m.snapshot().histogram("lat").unwrap().count, 2);
    }

    #[test]
    fn histograms_track_distribution() {
        let m = MetricsRegistry::new();
        for v in [0.5, 1.0, 1.5, 2.0, 100.0] {
            m.observe("stage_seconds", v);
        }
        let s = m.snapshot();
        let h = s.histogram("stage_seconds").unwrap();
        assert_eq!(h.count, 5);
        assert!((h.sum - 105.0).abs() < 1e-12);
        assert_eq!(h.min, Some(0.5));
        assert_eq!(h.max, Some(100.0));
        assert_eq!(h.mean(), Some(21.0));
        // 0.5 → bucket 39; 1.0 and 1.5 → 40; 2.0 → 41; 100 → 46.
        let total: u64 = h.buckets.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5);
        assert!(h.buckets.iter().any(|&(i, c)| i == 40 && c == 2));
    }

    #[test]
    fn empty_histogram_snapshot_has_no_min_max() {
        let m = MetricsRegistry::new();
        m.observe("touched", 1.0); // force the histogram map to exist
        let s = m.snapshot();
        assert_eq!(s.histogram("absent"), None);
        let empty = HistogramSnapshot::empty();
        assert_eq!(empty.min, None);
        assert_eq!(empty.max, None);
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn quantile_is_exact_on_constant_distributions() {
        let m = MetricsRegistry::new();
        for _ in 0..17 {
            m.observe("c", 3.25);
        }
        let s = m.snapshot();
        let h = s.histogram("c").unwrap();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(3.25), "q = {q}");
        }
    }

    #[test]
    fn quantile_pins_extremes_and_bimodal_tail() {
        // 50 × 1.0 and 50 × 1024.0: p50 lands in the low mode, p99 in the
        // high mode; min/max clamping makes both exact.
        let m = MetricsRegistry::new();
        for _ in 0..50 {
            m.observe("b", 1.0);
            m.observe("b", 1024.0);
        }
        let s = m.snapshot();
        let h = s.histogram("b").unwrap();
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(1024.0));
        // rank 50 is exactly the last observation of the low bucket.
        assert_eq!(h.quantile(0.5), Some(2.0)); // bucket [1,2) upper edge, within 2× of 1.0
        assert_eq!(h.quantile(0.99), Some(1024.0)); // clamped to max
    }

    #[test]
    fn quantiles_are_monotone() {
        let m = MetricsRegistry::new();
        for v in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0] {
            m.observe("mono", v);
        }
        let s = m.snapshot();
        let h = s.histogram("mono").unwrap();
        let p50 = h.quantile(0.5).unwrap();
        let p90 = h.quantile(0.9).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99, "p50 = {p50}, p90 = {p90}, p99 = {p99}");
        assert!(p99 <= h.max.unwrap());
    }

    #[test]
    fn bucket_bounds_bracket_their_observations() {
        for v in [0.0001, 0.7, 1.0, 1.9, 1000.0] {
            let i = bucket_index(v) as u64;
            let (lo, hi) = HistogramSnapshot::bucket_bounds(i);
            assert!(lo <= v && v < hi, "value {v} outside bucket {i} = [{lo}, {hi})");
        }
    }

    #[test]
    fn bucket_index_clamps_extremes() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(f64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(1.0), OFFSET as usize);
    }

    #[test]
    fn concurrent_updates_are_consistent() {
        let m = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = &m;
                s.spawn(|| {
                    for _ in 0..1000 {
                        m.counter_add("n", 1);
                    }
                });
            }
        });
        assert_eq!(m.snapshot().counter("n"), 8000);
    }

    #[test]
    fn sharded_counter_sums_across_threads() {
        let c = ShardedCounter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = &c;
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn atomic_f64_add_min_max() {
        let v = AtomicF64::new(1.5);
        v.add(2.5);
        assert_eq!(v.get(), 4.0);
        v.update_min(3.0);
        assert_eq!(v.get(), 3.0);
        v.update_min(5.0);
        assert_eq!(v.get(), 3.0);
        v.update_max(7.0);
        assert_eq!(v.get(), 7.0);
        v.update_max(2.0);
        assert_eq!(v.get(), 7.0);
        v.set(-1.0);
        assert_eq!(v.get(), -1.0);
    }

    /// The differential contract: for any quiescent observation stream
    /// the lock-free histogram and the mutex-based reference produce
    /// identical snapshots.
    #[test]
    fn atomic_histogram_matches_mutex_reference() {
        let atomic = AtomicHistogram::new();
        let mutex = MutexHistogram::new();
        let values: Vec<f64> =
            (0..500).map(|i| ((i * 2_654_435_761_u64 % 10_000) as f64).max(0.001) * 0.37).collect();
        for &v in &values {
            atomic.observe(v);
            mutex.observe(v);
        }
        let a = atomic.snapshot();
        let m = mutex.snapshot();
        assert_eq!(a.count, m.count);
        assert_eq!(a.min, m.min);
        assert_eq!(a.max, m.max);
        assert_eq!(a.buckets, m.buckets);
        assert!((a.sum - m.sum).abs() < 1e-6 * m.sum.abs().max(1.0));
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), m.quantile(q), "q = {q}");
        }
    }

    /// Concurrent observers into the atomic histogram must account every
    /// observation exactly once, and merging per-thread mutex histograms
    /// must reproduce the shared atomic one.
    #[test]
    fn concurrent_atomic_observes_match_merged_mutex_snapshots() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 2_000;
        let atomic = AtomicHistogram::new();
        let merged = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let atomic = &atomic;
                    s.spawn(move || {
                        let local = MutexHistogram::new();
                        for i in 0..PER_THREAD {
                            let v = (t * PER_THREAD + i + 1) as f64 * 0.125;
                            atomic.observe(v);
                            local.observe(v);
                        }
                        local.snapshot()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("observer thread"))
                .fold(HistogramSnapshot::empty(), |acc, s| acc.merge(&s))
        });
        let a = atomic.snapshot();
        assert_eq!(a.count, (THREADS * PER_THREAD) as u64);
        assert_eq!(a.count, merged.count);
        assert_eq!(a.min, merged.min);
        assert_eq!(a.max, merged.max);
        assert_eq!(a.buckets, merged.buckets);
        assert!((a.sum - merged.sum).abs() < 1e-6 * merged.sum.abs().max(1.0));
    }

    #[test]
    fn merge_combines_counts_sums_and_extremes() {
        let a = MutexHistogram::new();
        let b = MutexHistogram::new();
        for v in [1.0, 2.0, 3.0] {
            a.observe(v);
        }
        for v in [0.5, 10.0] {
            b.observe(v);
        }
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.count, 5);
        assert!((m.sum - 16.5).abs() < 1e-12);
        assert_eq!(m.min, Some(0.5));
        assert_eq!(m.max, Some(10.0));
        // Merging with the empty snapshot is the identity.
        assert_eq!(m.merge(&HistogramSnapshot::empty()), m);
        assert_eq!(HistogramSnapshot::empty().merge(&m), m);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a: *const MetricsRegistry = global();
        let b: *const MetricsRegistry = global();
        assert_eq!(a, b);
        // Use a namespaced key so other tests touching the global
        // registry cannot interfere.
        global().counter_add("metrics_tests.global_singleton", 1);
        assert!(global().snapshot().counter("metrics_tests.global_singleton") >= 1);
    }
}
