//! A small metrics registry: named counters, gauges and log-bucketed
//! histograms, safe to update from worker threads, snapshot-able into a
//! serde-serializable value for export or test assertions.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Number of power-of-two histogram buckets. Bucket `i` covers values in
/// `[2^(i-OFFSET), 2^(i-OFFSET+1))`; the extremes clamp.
const BUCKETS: usize = 80;
/// Bucket 40 covers `[1, 2)`: forty octaves of sub-unit resolution
/// (down to ~1e-12, enough for microsecond fractions of a second) and
/// forty above (up to ~1e12).
const OFFSET: i32 = 40;

fn bucket_index(value: f64) -> usize {
    let v = value.max(1e-300);
    (v.log2().floor() as i32 + OFFSET).clamp(0, BUCKETS as i32 - 1) as usize
}

#[derive(Debug, Clone)]
struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: Vec<u64>,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: vec![0; BUCKETS],
        }
    }

    fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    fn snapshot(&self) -> HistogramSnapshot {
        // Sparse form: only non-empty buckets, as (index, count).
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u64, c))
            .collect();
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: (self.count > 0).then_some(self.min),
            max: (self.count > 0).then_some(self.max),
            buckets,
        }
    }
}

/// Frozen state of one histogram.
///
/// `min`/`max` are `None` when the histogram has no observations — the
/// `±inf` sentinels of the live histogram would serialize to JSON `null`
/// and fail to deserialize back as bare floats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: f64,
    /// Smallest observation, `None` when empty.
    pub min: Option<f64>,
    /// Largest observation, `None` when empty.
    pub max: Option<f64>,
    /// Sparse `(bucket_index, count)` pairs; bucket `i` covers
    /// `[2^(i-40), 2^(i-39))`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// An empty snapshot (no observations).
    pub fn empty() -> Self {
        HistogramSnapshot { count: 0, sum: 0.0, min: None, max: None, buckets: Vec::new() }
    }

    /// Mean observation, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// The `[lower, upper)` value range of bucket `index`.
    pub fn bucket_bounds(index: u64) -> (f64, f64) {
        let lo = 2f64.powi(index as i32 - OFFSET);
        (lo, lo * 2.0)
    }

    /// Quantile `q ∈ [0, 1]` interpolated from the log-bucketed counts,
    /// `None` when empty.
    ///
    /// The cumulative rank `q·count` is located in the sparse buckets and
    /// interpolated linearly within the containing bucket's `[lo, hi)`
    /// range, then clamped to the exact observed `[min, max]` — so
    /// `quantile(0.0) == min` and `quantile(1.0) == max` exactly, and a
    /// constant distribution returns the constant at every `q`. Between
    /// those anchors the resolution is one power-of-two bucket (≤ 2×).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let (min, max) = (self.min?, self.max?);
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for &(i, c) in &self.buckets {
            if (cum + c) as f64 >= rank {
                let (lo, hi) = Self::bucket_bounds(i);
                let frac = if c == 0 { 0.0 } else { (rank - cum as f64) / c as f64 };
                return Some((lo + frac * (hi - lo)).clamp(min, max));
            }
            cum += c;
        }
        Some(max)
    }
}

/// Frozen state of a whole registry, sorted by name.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins values.
    pub gauges: Vec<(String, f64)>,
    /// Distributions.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of a counter, `0` if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// Value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// A histogram's snapshot, if it has observations.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe registry of named metrics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock();
        *inner.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.inner.lock().gauges.insert(name.to_owned(), value);
    }

    /// Records one observation into histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock();
        inner.histograms.entry(name.to_owned()).or_insert_with(Histogram::new).observe(value);
    }

    /// Freezes the current state (sorted by metric name).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner.histograms.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.counter_add("retries", 1);
        m.counter_add("retries", 2);
        m.counter_add("restarts", 5);
        let s = m.snapshot();
        assert_eq!(s.counter("retries"), 3);
        assert_eq!(s.counter("restarts"), 5);
        assert_eq!(s.counter("absent"), 0);
    }

    #[test]
    fn gauges_take_the_last_value() {
        let m = MetricsRegistry::new();
        m.gauge_set("overhead_pct", 12.0);
        m.gauge_set("overhead_pct", 7.5);
        assert_eq!(m.snapshot().gauge("overhead_pct"), Some(7.5));
        assert_eq!(m.snapshot().gauge("absent"), None);
    }

    #[test]
    fn histograms_track_distribution() {
        let m = MetricsRegistry::new();
        for v in [0.5, 1.0, 1.5, 2.0, 100.0] {
            m.observe("stage_seconds", v);
        }
        let s = m.snapshot();
        let h = s.histogram("stage_seconds").unwrap();
        assert_eq!(h.count, 5);
        assert!((h.sum - 105.0).abs() < 1e-12);
        assert_eq!(h.min, Some(0.5));
        assert_eq!(h.max, Some(100.0));
        assert_eq!(h.mean(), Some(21.0));
        // 0.5 → bucket 39; 1.0 and 1.5 → 40; 2.0 → 41; 100 → 46.
        let total: u64 = h.buckets.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5);
        assert!(h.buckets.iter().any(|&(i, c)| i == 40 && c == 2));
    }

    #[test]
    fn empty_histogram_snapshot_has_no_min_max() {
        let m = MetricsRegistry::new();
        m.observe("touched", 1.0); // force the histogram map to exist
        let s = m.snapshot();
        assert_eq!(s.histogram("absent"), None);
        let empty = HistogramSnapshot::empty();
        assert_eq!(empty.min, None);
        assert_eq!(empty.max, None);
        assert_eq!(empty.mean(), None);
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn quantile_is_exact_on_constant_distributions() {
        let m = MetricsRegistry::new();
        for _ in 0..17 {
            m.observe("c", 3.25);
        }
        let s = m.snapshot();
        let h = s.histogram("c").unwrap();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(3.25), "q = {q}");
        }
    }

    #[test]
    fn quantile_pins_extremes_and_bimodal_tail() {
        // 50 × 1.0 and 50 × 1024.0: p50 lands in the low mode, p99 in the
        // high mode; min/max clamping makes both exact.
        let m = MetricsRegistry::new();
        for _ in 0..50 {
            m.observe("b", 1.0);
            m.observe("b", 1024.0);
        }
        let s = m.snapshot();
        let h = s.histogram("b").unwrap();
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(1024.0));
        // rank 50 is exactly the last observation of the low bucket.
        assert_eq!(h.quantile(0.5), Some(2.0)); // bucket [1,2) upper edge, within 2× of 1.0
        assert_eq!(h.quantile(0.99), Some(1024.0)); // clamped to max
    }

    #[test]
    fn quantiles_are_monotone() {
        let m = MetricsRegistry::new();
        for v in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0] {
            m.observe("mono", v);
        }
        let s = m.snapshot();
        let h = s.histogram("mono").unwrap();
        let p50 = h.quantile(0.5).unwrap();
        let p90 = h.quantile(0.9).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p90 && p90 <= p99, "p50 = {p50}, p90 = {p90}, p99 = {p99}");
        assert!(p99 <= h.max.unwrap());
    }

    #[test]
    fn bucket_bounds_bracket_their_observations() {
        for v in [0.0001, 0.7, 1.0, 1.9, 1000.0] {
            let i = bucket_index(v) as u64;
            let (lo, hi) = HistogramSnapshot::bucket_bounds(i);
            assert!(lo <= v && v < hi, "value {v} outside bucket {i} = [{lo}, {hi})");
        }
    }

    #[test]
    fn bucket_index_clamps_extremes() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(f64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(1.0), OFFSET as usize);
    }

    #[test]
    fn concurrent_updates_are_consistent() {
        let m = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = &m;
                s.spawn(|| {
                    for _ in 0..1000 {
                        m.counter_add("n", 1);
                    }
                });
            }
        });
        assert_eq!(m.snapshot().counter("n"), 8000);
    }
}
