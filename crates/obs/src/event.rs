//! The trace-event model.
//!
//! An [`Event`] is deliberately shaped after the Chrome trace-event
//! format (name / category / phase / ts / dur / pid / tid / args) so the
//! exporter is a direct mapping; the same struct round-trips through the
//! JSONL exporter for machine consumption.

use serde::{Deserialize, Serialize};

/// A typed argument value attached to an event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArgValue {
    /// Unsigned counter-like value.
    U64(u64),
    /// Signed value.
    I64(i64),
    /// Floating-point value (seconds, ratios, costs).
    F64(f64),
    /// Free-form text.
    Str(String),
    /// Flag.
    Bool(bool),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}
impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}
impl From<bool> for ArgValue {
    fn from(v: bool) -> Self {
        ArgValue::Bool(v)
    }
}

/// Chrome trace-event phase of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// A complete span with a duration (`ph: "X"`).
    Span,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
}

/// One recorded event. Timestamps are microseconds on whatever clock the
/// producing layer uses: the engine records wall-clock offsets from the
/// run start, the simulator records *simulated* time — the unit, not the
/// epoch, is the contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Human-readable event name (`stage ⋈ C,O`, `node_failure`, …).
    pub name: String,
    /// Producing layer: `"search"`, `"sim"`, `"engine"`, `"bench"`.
    pub cat: String,
    /// Span or instant.
    pub phase: Phase,
    /// Start time in microseconds.
    pub ts_us: u64,
    /// Duration in microseconds; `0` for instants.
    pub dur_us: u64,
    /// Track group; `0` unless a layer separates processes.
    pub pid: u32,
    /// Track within the group — the engine uses the node index.
    pub tid: u32,
    /// Named arguments shown in the trace viewer's detail pane.
    pub args: Vec<(String, ArgValue)>,
}

impl Event {
    /// A complete span starting at `ts_us` lasting `dur_us`.
    pub fn span(name: impl Into<String>, cat: impl Into<String>, ts_us: u64, dur_us: u64) -> Self {
        Event {
            name: name.into(),
            cat: cat.into(),
            phase: Phase::Span,
            ts_us,
            dur_us,
            pid: 0,
            tid: 0,
            args: Vec::new(),
        }
    }

    /// A point-in-time marker at `ts_us`.
    pub fn instant(name: impl Into<String>, cat: impl Into<String>, ts_us: u64) -> Self {
        Event {
            name: name.into(),
            cat: cat.into(),
            phase: Phase::Instant,
            ts_us,
            dur_us: 0,
            pid: 0,
            tid: 0,
            args: Vec::new(),
        }
    }

    /// Sets the track id (builder-style).
    pub fn tid(mut self, tid: u32) -> Self {
        self.tid = tid;
        self
    }

    /// Sets the track group id (builder-style).
    pub fn pid(mut self, pid: u32) -> Self {
        self.pid = pid;
        self
    }

    /// Attaches a named argument (builder-style).
    pub fn arg(mut self, key: impl Into<String>, value: impl Into<ArgValue>) -> Self {
        self.args.push((key.into(), value.into()));
        self
    }

    /// Looks up an argument by name.
    pub fn get_arg(&self, key: &str) -> Option<&ArgValue> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_fill_fields() {
        let e = Event::span("stage", "engine", 10, 250).tid(3).arg("rows", 17u64).arg("ok", true);
        assert_eq!(e.phase, Phase::Span);
        assert_eq!(e.dur_us, 250);
        assert_eq!(e.tid, 3);
        assert_eq!(e.get_arg("rows"), Some(&ArgValue::U64(17)));
        assert_eq!(e.get_arg("ok"), Some(&ArgValue::Bool(true)));
        assert_eq!(e.get_arg("missing"), None);

        let i = Event::instant("failure", "engine", 99);
        assert_eq!(i.phase, Phase::Instant);
        assert_eq!(i.dur_us, 0);
    }
}
