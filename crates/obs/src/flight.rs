//! The flight recorder: an always-on, bounded ring of recent events with
//! anomaly-triggered dumps.
//!
//! Post-hoc traces ([`crate::export::to_jsonl`]) answer "what happened"
//! only if someone was recording *before* the interesting run. The flight
//! recorder closes that gap the way an aircraft recorder does: a
//! fixed-capacity ring of the most recent events is always being written,
//! cheap enough to leave on (one atomic ticket fetch plus one
//! uncontended per-slot lock per event), and when an anomaly occurs —
//! a `segment_corrupt`, a producer rewind (`input_rewind`), a coarse
//! `query_restart`, or a span breaching the configured latency budget —
//! the ring is snapshotted to a JSONL file that `ftpde check` and
//! `ftpde obs` replay like any other trace. Triggered dumps require a
//! configured dump directory; without one the trigger path costs
//! nothing, keeping failure-heavy workloads inside the instrumentation
//! budget.
//!
//! ## Ring protocol
//!
//! Writers claim a monotonically increasing *ticket* from an atomic
//! counter, then store `(ticket, event)` into slot `ticket % capacity`
//! behind that slot's own mutex. Two writers contend on a slot only a
//! full ring apart (ticket distance ≥ capacity), so the hot path is one
//! `fetch_add` plus an uncontended lock — writers to different slots
//! never serialize. A snapshot locks each slot briefly, collects the
//! occupied entries and orders them by ticket; the per-slot mutex makes
//! torn events impossible, and loss is bounded by construction: a
//! quiescent snapshot holds exactly the newest `min(total, capacity)`
//! events, while a snapshot racing active writers sees a ticket-ordered
//! subsequence of them (it may miss an event whose slot it visited
//! before the store landed — never a reorder, duplicate or torn entry).
//! The protocol is model-checked under loom in
//! `crates/obs/tests/loom.rs`.
//!
//! Synchronization goes through [`crate::sync`] so the loom CI job
//! checks the exact ring the production build runs.

use std::path::{Path, PathBuf};

use crate::event::{Event, Phase};
use crate::export;
use crate::recorder::Recorder;
use crate::sync::{AtomicU64, Mutex, Ordering};

/// Event names that trigger an anomaly dump when they enter the ring.
pub const DUMP_TRIGGERS: [&str; 3] = ["segment_corrupt", "input_rewind", "query_restart"];

/// Environment variable overriding the global ring capacity.
pub const CAPACITY_ENV: &str = "FTPDE_FLIGHT_CAPACITY";
/// Environment variable selecting the anomaly-dump directory. Unset
/// disables anomaly-*triggered* dumps entirely — a trigger with nowhere
/// to write would otherwise pay a full ring snapshot per anomaly, which
/// failure-heavy workloads (the benchmark suite's injected-failure
/// matrix) cannot afford. Explicit [`FlightRecorder::dump_now`] calls
/// still capture in memory ([`FlightRecorder::last_dump`]).
pub const DUMP_DIR_ENV: &str = "FTPDE_FLIGHT_DIR";
/// Environment variable setting the span latency budget, milliseconds.
pub const BUDGET_ENV: &str = "FTPDE_FLIGHT_BUDGET_MS";

/// Default ring capacity of the process-global recorder.
pub const DEFAULT_CAPACITY: usize = 4096;

/// One anomaly dump: the ring contents at trigger time.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// What fired the dump (an entry of [`DUMP_TRIGGERS`], or
    /// `"latency_budget"` / `"manual"`).
    pub trigger: String,
    /// Where the JSONL snapshot was written, when a dump directory is
    /// configured.
    pub path: Option<PathBuf>,
    /// The ring contents, oldest first.
    pub events: Vec<Event>,
}

/// Mutable dump-side state, touched only on the (rare) anomaly path.
#[derive(Debug, Default)]
struct DumpState {
    dir: Option<PathBuf>,
    count: u64,
    write_errors: u64,
    last: Option<FlightDump>,
}

/// A bounded, always-on ring of recent events. See the module docs for
/// the write/snapshot protocol.
#[derive(Debug)]
pub struct FlightRecorder {
    /// Ticket dispenser: total events ever recorded.
    head: AtomicU64,
    /// `slots[t % capacity]` holds the event with ticket `t` (or an
    /// older lap's event until the writer for `t` completes its store).
    slots: Vec<Mutex<Option<(u64, Event)>>>,
    /// Span latency budget in microseconds; `0` disables the trigger.
    latency_budget_us: AtomicU64,
    dump: Mutex<DumpState>,
}

impl FlightRecorder {
    /// A ring holding the last `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            latency_budget_us: AtomicU64::new(0),
            dump: Mutex::new(DumpState::default()),
        }
    }

    /// Sets the directory anomaly dumps are written to (builder-style).
    #[must_use]
    pub fn with_dump_dir(self, dir: impl AsRef<Path>) -> Self {
        self.set_dump_dir(Some(dir.as_ref().to_path_buf()));
        self
    }

    /// Sets (or clears) the anomaly-dump directory.
    pub fn set_dump_dir(&self, dir: Option<PathBuf>) {
        self.dump.lock().dir = dir;
    }

    /// Sets the span latency budget in microseconds; a recorded span
    /// whose duration exceeds it triggers a dump. `0` disables.
    pub fn set_latency_budget_us(&self, budget_us: u64) {
        self.latency_budget_us.store(budget_us, Ordering::Relaxed);
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including those since overwritten).
    pub fn total_recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Number of anomaly dumps taken so far.
    pub fn dump_count(&self) -> u64 {
        self.dump.lock().count
    }

    /// Dump files that failed to write (dump directory unwritable).
    pub fn dump_write_errors(&self) -> u64 {
        self.dump.lock().write_errors
    }

    /// The most recent anomaly dump, if any.
    pub fn last_dump(&self) -> Option<FlightDump> {
        self.dump.lock().last.clone()
    }

    /// The ring contents, oldest ticket first. Never tears an event; see
    /// the module docs for the loss bound.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut entries: Vec<(u64, Event)> =
            self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        entries.sort_by_key(|&(ticket, _)| ticket);
        entries.into_iter().map(|(_, e)| e).collect()
    }

    /// Which dump trigger (if any) this event fires.
    fn trigger_of(&self, event: &Event) -> Option<&'static str> {
        if let Some(&t) = DUMP_TRIGGERS.iter().find(|&&t| t == event.name) {
            return Some(t);
        }
        let budget = self.latency_budget_us.load(Ordering::Relaxed);
        if budget > 0 && event.phase == Phase::Span && event.dur_us > budget {
            return Some("latency_budget");
        }
        None
    }

    /// Snapshots the ring as an anomaly dump right now, independent of
    /// any trigger. Returns the written file's path when a dump
    /// directory is configured (write failures are counted, not
    /// propagated — the recorder must never take down the recording
    /// thread).
    pub fn dump_now(&self, trigger: &str) -> Option<PathBuf> {
        let events = self.snapshot();
        // Claim a sequence number and resolve the target path under the
        // lock, then write the file *outside* it: the write is the slow
        // part, and the claimed sequence already gives concurrent dumps
        // distinct file names (FT211 — no blocking I/O under a guard).
        let mut st = self.dump.lock();
        st.count += 1;
        let seq = st.count;
        let target = st.dir.as_ref().map(|d| d.join(format!("flight-{seq:04}-{trigger}.jsonl")));
        drop(st);
        let path = match target {
            Some(p) => {
                if export::write_file(&p, &export::to_jsonl(&events)).is_ok() {
                    Some(p)
                } else {
                    self.dump.lock().write_errors += 1;
                    None
                }
            }
            None => None,
        };
        self.dump.lock().last =
            Some(FlightDump { trigger: trigger.to_owned(), path: path.clone(), events });
        #[cfg(not(loom))]
        crate::metrics::global().counter_add("obs.flight_dumps_total", 1);
        path
    }
}

impl Recorder for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        let trigger = self.trigger_of(&event);
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let idx = (ticket % self.slots.len() as u64) as usize;
        *self.slots[idx].lock() = Some((ticket, event));
        // The dump runs *after* the store so it includes the triggering
        // event itself — and only when a dump directory is configured:
        // a full ring snapshot per anomaly is far too expensive to pay
        // with nowhere to write it (failure-injected benchmark runs
        // trigger on every rewind/restart).
        if let Some(t) = trigger {
            if self.dump.lock().dir.is_some() {
                self.dump_now(t);
            }
        }
    }
}

/// The process-global flight recorder: always on, shared by every layer
/// that mirrors events (the engine coordinator tees its trace here).
///
/// Configured once, lazily, from the environment: capacity from
/// [`CAPACITY_ENV`] (default [`DEFAULT_CAPACITY`]), dump directory from
/// [`DUMP_DIR_ENV`] (unset: dumps stay in memory), latency budget from
/// [`BUDGET_ENV`] in milliseconds (unset: off).
#[cfg(not(loom))]
pub fn global() -> &'static FlightRecorder {
    static GLOBAL: crate::sync::plain::OnceLock<FlightRecorder> =
        crate::sync::plain::OnceLock::new();
    GLOBAL.get_or_init(|| {
        let capacity = std::env::var(CAPACITY_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CAPACITY);
        let rec = FlightRecorder::new(capacity);
        if let Ok(dir) = std::env::var(DUMP_DIR_ENV) {
            if !dir.is_empty() {
                rec.set_dump_dir(Some(PathBuf::from(dir)));
            }
        }
        if let Some(ms) = std::env::var(BUDGET_ENV).ok().and_then(|v| v.parse::<u64>().ok()) {
            rec.set_latency_budget_us(ms * 1000);
        }
        rec
    })
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn ev(name: &str, ts: u64) -> Event {
        Event::instant(name, "test", ts)
    }

    #[test]
    fn ring_keeps_most_recent_events_in_order() {
        let fr = FlightRecorder::new(4);
        for i in 0..10u64 {
            fr.record(ev(&format!("e{i}"), i));
        }
        let snap = fr.snapshot();
        let names: Vec<&str> = snap.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["e6", "e7", "e8", "e9"]);
        assert_eq!(fr.total_recorded(), 10);
        assert_eq!(fr.capacity(), 4);
    }

    #[test]
    fn partially_filled_ring_snapshots_whats_there() {
        let fr = FlightRecorder::new(8);
        fr.record(ev("a", 1));
        fr.record(ev("b", 2));
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].name, "a");
        assert_eq!(snap[1].name, "b");
    }

    #[test]
    fn anomaly_event_triggers_dump_including_itself() {
        let dir = std::env::temp_dir().join("ftpde_obs_flight_trigger");
        let _ = std::fs::remove_dir_all(&dir);
        let fr = FlightRecorder::new(16).with_dump_dir(&dir);
        fr.record(ev("stage_skipped", 1));
        fr.record(ev("segment_corrupt", 2));
        assert_eq!(fr.dump_count(), 1);
        let dump = fr.last_dump().expect("dump taken");
        assert_eq!(dump.trigger, "segment_corrupt");
        assert!(dump.path.is_some());
        assert_eq!(dump.events.len(), 2);
        assert_eq!(dump.events[1].name, "segment_corrupt");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_dump_dir_means_no_automatic_dumps() {
        // Without a directory there is nowhere to write, and failure-heavy
        // workloads can't afford a ring snapshot per anomaly — so the
        // trigger path is a no-op.
        let fr = FlightRecorder::new(16);
        fr.record(ev("segment_corrupt", 1));
        fr.record(ev("query_restart", 2));
        assert_eq!(fr.dump_count(), 0);
        assert!(fr.last_dump().is_none());
        // Explicit dumps still capture in memory.
        fr.dump_now("manual");
        assert_eq!(fr.dump_count(), 1);
        let dump = fr.last_dump().unwrap();
        assert_eq!(dump.trigger, "manual");
        assert_eq!(dump.path, None);
        assert_eq!(dump.events.len(), 2);
    }

    #[test]
    fn all_trigger_names_fire() {
        let dir = std::env::temp_dir().join("ftpde_obs_flight_names");
        let _ = std::fs::remove_dir_all(&dir);
        for t in DUMP_TRIGGERS {
            let fr = FlightRecorder::new(4).with_dump_dir(dir.join(t));
            fr.record(ev(t, 0));
            assert_eq!(fr.dump_count(), 1, "{t} must trigger a dump");
            assert_eq!(fr.last_dump().unwrap().trigger, t);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn latency_budget_breach_triggers_dump() {
        let dir = std::env::temp_dir().join("ftpde_obs_flight_budget");
        let _ = std::fs::remove_dir_all(&dir);
        let fr = FlightRecorder::new(8).with_dump_dir(&dir);
        fr.set_latency_budget_us(1000);
        fr.record(Event::span("stage 3", "engine", 0, 999));
        assert_eq!(fr.dump_count(), 0, "within budget");
        fr.record(Event::span("stage 3", "engine", 0, 1001));
        assert_eq!(fr.dump_count(), 1, "over budget");
        assert_eq!(fr.last_dump().unwrap().trigger, "latency_budget");
        // Instants never breach the budget regardless of args.
        fr.record(ev("some_instant", 5000));
        assert_eq!(fr.dump_count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dump_writes_replayable_jsonl_when_dir_configured() {
        let dir = std::env::temp_dir().join("ftpde_obs_flight_test");
        let _ = std::fs::remove_dir_all(&dir);
        let fr = FlightRecorder::new(8).with_dump_dir(&dir);
        fr.record(ev("materialize", 1));
        fr.record(ev("input_rewind", 2));
        let dump = fr.last_dump().unwrap();
        let path = dump.path.expect("dump written to configured dir");
        let text = std::fs::read_to_string(&path).unwrap();
        let replayed = export::from_jsonl(&text).unwrap();
        assert_eq!(replayed, dump.events);
        assert_eq!(fr.dump_write_errors(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_dump_dir_is_counted_not_fatal() {
        let file = std::env::temp_dir().join("ftpde_obs_flight_notdir");
        std::fs::write(&file, "x").unwrap();
        // A file in place of the directory makes the write fail.
        let fr = FlightRecorder::new(4).with_dump_dir(file.join("sub"));
        fr.record(ev("query_restart", 1));
        assert_eq!(fr.dump_count(), 1);
        assert_eq!(fr.dump_write_errors(), 1);
        assert!(fr.last_dump().unwrap().path.is_none());
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn concurrent_writers_never_tear_and_loss_is_bounded() {
        let fr = FlightRecorder::new(64);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let fr = &fr;
                s.spawn(move || {
                    for i in 0..100u64 {
                        fr.record(ev("w", t * 1000 + i).tid(t as u32));
                    }
                });
            }
        });
        assert_eq!(fr.total_recorded(), 400);
        let snap = fr.snapshot();
        assert_eq!(snap.len(), 64, "full ring after 400 writes");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = FlightRecorder::new(0);
    }
}
