//! The embedded HTTP telemetry server: `/metrics`, `/healthz`,
//! `/flight`, `/queries`.
//!
//! Dependency-free by construction — a blocking [`TcpListener`] accept
//! loop on its own thread, hand-written HTTP/1.1 responses, one
//! connection handled at a time (scrapes and dashboard polls are tiny) —
//! so it can be embedded anywhere: `ftpde serve-metrics` wraps it, and
//! any long-running process does `ftpde_obs::serve::serve(ftpde_obs::global())`.
//!
//! ## Endpoints
//!
//! | path | content | payload |
//! |------|---------|---------|
//! | `/metrics` | `text/plain; version=0.0.4` | the registry snapshot in Prometheus text exposition format ([`crate::export::to_prometheus`]) |
//! | `/healthz` | `application/json` | `{status, uptime_s, queries_running, corrupt_segments, flight: {capacity, recorded, dumps}, store: <health source>}` — `status` is `"degraded"` when corruption counters are nonzero or the health source says so, `"ok"` otherwise (always HTTP 200; the field carries the verdict) |
//! | `/flight` | `application/json` | `{capacity, recorded, dumps, events: [Event…]}` — the flight-recorder ring, oldest first, each event in the JSONL object schema |
//! | `/queries` | `application/json` | a [`crate::progress::ProgressSnapshot`]: live queries plus bounded recent history |
//!
//! Unknown paths get 404, non-GET methods 405. Every response closes the
//! connection (`Connection: close`).

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use crate::sync::clock;
use crate::sync::plain::{thread, Arc, AtomicBool, Ordering};

use serde::Value;

use crate::export;
use crate::metrics::MetricsRegistry;

/// Default telemetry port: what `ftpde serve-metrics` binds when no
/// `--port` is given and where `ftpde top` looks when no `--addr` is
/// given. `0` remains available for an ephemeral port.
pub const DEFAULT_PORT: u16 = 9188;

/// Pluggable `/healthz` detail: returns `(healthy, detail)` where
/// `detail` lands under the response's `"store"` key. The CLI wires a
/// disk-store verify summary through this; embedded users can attach
/// anything.
pub type HealthSource = Box<dyn Fn() -> (bool, Value) + Send + Sync>;

/// Server configuration.
#[derive(Default)]
pub struct ServeOptions {
    /// Port to bind on 127.0.0.1; `0` picks an ephemeral port (read it
    /// back from [`ServerHandle::addr`]).
    pub port: u16,
    /// Optional `/healthz` detail provider.
    pub health: Option<HealthSource>,
}

impl std::fmt::Debug for ServeOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeOptions")
            .field("port", &self.port)
            .field("health", &self.health.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

/// A running telemetry server. Dropping the handle stops it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.shutdown();
        }
    }
}

/// Starts the telemetry server on an ephemeral localhost port, serving
/// `registry` on `/metrics` and the process-global flight recorder and
/// progress registry on `/flight` / `/queries`. The `obs::serve(global())`
/// one-liner for embedded use; pick a port with [`serve_with`].
///
/// # Errors
/// Propagates the bind failure.
pub fn serve(registry: &'static MetricsRegistry) -> std::io::Result<ServerHandle> {
    serve_with(registry, ServeOptions::default())
}

/// [`serve`] with explicit options.
///
/// # Errors
/// Propagates the bind failure.
pub fn serve_with(
    registry: &'static MetricsRegistry,
    opts: ServeOptions,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(("127.0.0.1", opts.port))?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let health = opts.health;
    let started = clock::now();
    let thread = thread::Builder::new().name("ftpde-telemetry".into()).spawn(move || {
        while !stop2.load(Ordering::SeqCst) {
            let Ok((stream, _)) = listener.accept() else { continue };
            if stop2.load(Ordering::SeqCst) {
                break;
            }
            // A slow or stuck client must not wedge the telemetry plane.
            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
            let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
            handle_connection(stream, registry, health.as_ref(), started);
        }
    })?;
    Ok(ServerHandle { addr, stop, thread: Some(thread) })
}

fn handle_connection(
    stream: TcpStream,
    registry: &MetricsRegistry,
    health: Option<&HealthSource>,
    started: Instant,
) {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the header block so the client sees a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header).is_ok() {
        if header == "\r\n" || header == "\n" || header.is_empty() {
            break;
        }
        header.clear();
    }
    let mut stream = reader.into_inner();

    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        respond(&mut stream, 405, "text/plain; charset=utf-8", "method not allowed\n");
        return;
    }
    // Ignore any query string: `/flight?n=10` routes like `/flight`.
    let route = path.split('?').next().unwrap_or("");
    match route {
        "/" => respond(
            &mut stream,
            200,
            "text/plain; charset=utf-8",
            "ftpde telemetry: /metrics /healthz /flight /queries\n",
        ),
        "/metrics" => {
            let body = export::to_prometheus(&registry.snapshot());
            respond(&mut stream, 200, "text/plain; version=0.0.4; charset=utf-8", &body);
        }
        "/healthz" => {
            let body = healthz_body(registry, health, started);
            respond(&mut stream, 200, "application/json", &body);
        }
        "/flight" => {
            respond(&mut stream, 200, "application/json", &flight_body());
        }
        "/queries" => {
            let snap = crate::progress::global().snapshot();
            let body = serde_json::to_string(&snap).expect("progress snapshot serializes");
            respond(&mut stream, 200, "application/json", &body);
        }
        _ => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

/// Builds the `/healthz` JSON. Degraded when any `*corrupt*` counter in
/// the registry is nonzero or the health source reports unhealthy.
fn healthz_body(
    registry: &MetricsRegistry,
    health: Option<&HealthSource>,
    started: Instant,
) -> String {
    let snap = registry.snapshot();
    let corrupt: u64 =
        snap.counters.iter().filter(|(name, _)| name.contains("corrupt")).map(|&(_, v)| v).sum();
    let (source_healthy, store_detail) = match health {
        Some(h) => h(),
        None => (true, Value::Null),
    };
    let flight = crate::flight::global();
    let status = if corrupt == 0 && source_healthy { "ok" } else { "degraded" };
    let obj = Value::Object(vec![
        ("status".into(), Value::Str(status.into())),
        ("uptime_s".into(), Value::Float(clock::elapsed(started).as_secs_f64())),
        (
            "queries_running".into(),
            Value::UInt(crate::progress::global().snapshot().running() as u64),
        ),
        ("corrupt_segments".into(), Value::UInt(corrupt)),
        (
            "flight".into(),
            Value::Object(vec![
                ("capacity".into(), Value::UInt(flight.capacity() as u64)),
                ("recorded".into(), Value::UInt(flight.total_recorded())),
                ("dumps".into(), Value::UInt(flight.dump_count())),
            ]),
        ),
        ("store".into(), store_detail),
    ]);
    serde_json::to_string(&obj).expect("healthz serializes")
}

/// Builds the `/flight` JSON: ring metadata plus the events themselves.
fn flight_body() -> String {
    let flight = crate::flight::global();
    let events = flight.snapshot();
    let events_json = serde_json::to_string(&events).expect("events serialize");
    format!(
        "{{\"capacity\":{},\"recorded\":{},\"dumps\":{},\"events\":{}}}",
        flight.capacity(),
        flight.total_recorded(),
        flight.dump_count(),
        events_json
    )
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Minimal HTTP/1.1 GET client for the telemetry endpoints — what
/// `ftpde top` polls with and what the tests assert through. Returns
/// `(status, body)`.
///
/// # Errors
/// I/O errors connecting or reading, or a malformed status line.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header block"))?;
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_owned()))
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::recorder::Recorder as _;

    fn start() -> ServerHandle {
        serve(crate::metrics::global()).expect("bind ephemeral port")
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        crate::metrics::global().counter_add("serve_test.requests_total", 7);
        let srv = start();
        let (status, body) = http_get(srv.addr(), "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE serve_test_requests_total counter"), "{body}");
        srv.stop();
    }

    #[test]
    fn healthz_reports_status_and_flight_metadata() {
        let srv = start();
        let (status, body) = http_get(srv.addr(), "/healthz").unwrap();
        assert_eq!(status, 200);
        let v: Value = serde_json::from_str(&body).unwrap();
        let s = v.get("status").and_then(Value::as_str).unwrap();
        assert!(s == "ok" || s == "degraded");
        assert!(v.get("uptime_s").and_then(Value::as_f64).unwrap() >= 0.0);
        assert!(v.get("flight").and_then(|f| f.get("capacity")).is_some());
        srv.stop();
    }

    #[test]
    fn healthz_uses_the_health_source() {
        let opts = ServeOptions {
            port: 0,
            health: Some(Box::new(|| {
                (false, Value::Object(vec![("segments".into(), Value::UInt(3))]))
            })),
        };
        let srv = serve_with(crate::metrics::global(), opts).unwrap();
        let (_, body) = http_get(srv.addr(), "/healthz").unwrap();
        let v: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v.get("status").and_then(Value::as_str), Some("degraded"));
        assert_eq!(v.get("store").and_then(|s| s.get("segments")).and_then(Value::as_u64), Some(3));
        srv.stop();
    }

    #[test]
    fn flight_endpoint_returns_ring_as_json() {
        crate::flight::global().record(Event::instant("serve_flight_probe", "test", 1));
        let srv = start();
        let (status, body) = http_get(srv.addr(), "/flight").unwrap();
        assert_eq!(status, 200);
        let v: Value = serde_json::from_str(&body).unwrap();
        assert!(v.get("capacity").and_then(Value::as_u64).unwrap() > 0);
        let events = v.get("events").and_then(Value::as_array).unwrap();
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(Value::as_str) == Some("serve_flight_probe")),
            "probe event visible on /flight"
        );
        srv.stop();
    }

    #[test]
    fn queries_endpoint_round_trips_progress_snapshot() {
        let h = crate::progress::global().start("serve_test_query", 3, Some(0.5));
        h.stage_done();
        let srv = start();
        let (status, body) = http_get(srv.addr(), "/queries").unwrap();
        assert_eq!(status, 200);
        let snap: crate::progress::ProgressSnapshot = serde_json::from_str(&body).unwrap();
        let q = snap
            .queries
            .iter()
            .find(|q| q.label == "serve_test_query")
            .expect("registered query on /queries");
        assert_eq!(q.stages_done, 1);
        assert_eq!(q.predicted_s, Some(0.5));
        h.complete(false);
        srv.stop();
    }

    #[test]
    fn unknown_path_404_and_post_405_and_root_index() {
        let srv = start();
        assert_eq!(http_get(srv.addr(), "/nope").unwrap().0, 404);
        let (status, body) = http_get(srv.addr(), "/").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("/metrics"));
        // Raw POST.
        let mut s = TcpStream::connect(srv.addr()).unwrap();
        s.write_all(b"POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
        srv.stop();
    }

    #[test]
    fn query_strings_are_ignored_in_routing() {
        let srv = start();
        assert_eq!(http_get(srv.addr(), "/healthz?verbose=1").unwrap().0, 200);
        srv.stop();
    }
}
