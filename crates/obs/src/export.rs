//! Event-log exporters: JSONL (machine-readable, one event per line,
//! lossless round-trip), Chrome trace-event JSON (loadable in
//! `chrome://tracing` or Perfetto's legacy importer), and Prometheus
//! text exposition format for [`MetricsSnapshot`]s.

use std::fmt::Write as _;
use std::io::Write;
use std::path::Path;

use serde::Value;

use crate::event::{ArgValue, Event, Phase};
use crate::metrics::MetricsSnapshot;

/// Serializes events as JSONL: one self-contained JSON object per line.
/// The format round-trips through [`from_jsonl`] losslessly.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&serde_json::to_string(e).expect("events always serialize"));
        out.push('\n');
    }
    out
}

/// Parses a JSONL event log produced by [`to_jsonl`].
///
/// # Errors
/// Returns the underlying JSON error if any non-empty line fails to parse
/// or does not describe an [`Event`].
pub fn from_jsonl(s: &str) -> Result<Vec<Event>, serde_json::Error> {
    s.lines().map(str::trim).filter(|l| !l.is_empty()).map(serde_json::from_str::<Event>).collect()
}

/// Args whose values are wall-clock measurements: identical logical
/// executions produce different numbers here, so the canonical
/// projection strips them.
const TIMING_ARGS: &[&str] = &["lost_s", "write_bytes_per_s", "read_bytes_per_s"];

/// Which tracks [`canonical_trace`] keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CanonicalScope {
    /// Every `(pid, tid)` track — for runs whose per-track event order
    /// is deterministic (e.g. fine-grained recovery, where each worker's
    /// events happen-before the stage join that publishes them).
    AllTracks,
    /// Only coordinator events (`tid == 0`) plus `materialize` instants
    /// (emitted by the coordinator after the stage join, merely *tagged*
    /// with a worker tid). For runs whose worker tracks race by design —
    /// coarse restarts cancel sibling workers at arbitrary batch
    /// boundaries, so whether a `worker_cancelled` event exists at all
    /// is a scheduler coin-flip.
    CoordinatorOnly,
}

/// Projects an event log onto its *canonical* form: the part of a trace
/// that must be byte-identical when the same seeded run executes twice.
///
/// Raw logs are append-ordered in real time, so two identical executions
/// interleave their worker tracks differently and stamp every event with
/// a different wall-clock microsecond. The projection removes exactly
/// those freedoms and nothing else:
///
/// * events are regrouped by `(pid, tid)` track (ascending), preserving
///   the within-track order — the order that *is* deterministic;
/// * `ts_us` becomes the event's sequence index in the projected log and
///   `dur_us` becomes zero;
/// * wall-clock measurement args (`lost_s`, `write_bytes_per_s`,
///   `read_bytes_per_s`) are dropped.
///
/// The simulation harness compares `to_jsonl(&canonical_trace(..))` of a
/// run against its replay; any byte difference is an FT301 finding.
pub fn canonical_trace(events: &[Event], scope: CanonicalScope) -> Vec<Event> {
    let mut tracks: Vec<(u32, u32)> = events.iter().map(|e| (e.pid, e.tid)).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let mut out = Vec::with_capacity(events.len());
    for (pid, tid) in tracks {
        for e in events.iter().filter(|e| e.pid == pid && e.tid == tid) {
            if scope == CanonicalScope::CoordinatorOnly && e.tid != 0 && e.name != "materialize" {
                continue;
            }
            let mut c = e.clone();
            c.ts_us = out.len() as u64;
            c.dur_us = 0;
            c.args.retain(|(k, _)| !TIMING_ARGS.contains(&k.as_str()));
            out.push(c);
        }
    }
    out
}

fn arg_to_json(v: &ArgValue) -> Value {
    match v {
        ArgValue::U64(n) => Value::UInt(*n),
        ArgValue::I64(n) => Value::Int(*n),
        ArgValue::F64(f) => Value::Float(*f),
        ArgValue::Str(s) => Value::Str(s.clone()),
        ArgValue::Bool(b) => Value::Bool(*b),
    }
}

/// Serializes events in the Chrome trace-event format: a JSON object with
/// a `traceEvents` array whose entries use `ph: "X"` for spans and
/// `ph: "i"` for instants, timestamps in microseconds.
pub fn to_chrome_trace(events: &[Event]) -> String {
    let trace_events: Vec<Value> = events
        .iter()
        .map(|e| {
            let mut obj: Vec<(String, Value)> = vec![
                ("name".into(), Value::Str(e.name.clone())),
                ("cat".into(), Value::Str(e.cat.clone())),
                ("ts".into(), Value::UInt(e.ts_us)),
                ("pid".into(), Value::UInt(e.pid as u64)),
                ("tid".into(), Value::UInt(e.tid as u64)),
            ];
            match e.phase {
                Phase::Span => {
                    obj.push(("ph".into(), Value::Str("X".into())));
                    obj.push(("dur".into(), Value::UInt(e.dur_us)));
                }
                Phase::Instant => {
                    obj.push(("ph".into(), Value::Str("i".into())));
                    // Thread-scoped instant: renders on its tid track.
                    obj.push(("s".into(), Value::Str("t".into())));
                }
            }
            if !e.args.is_empty() {
                let args: Vec<(String, Value)> =
                    e.args.iter().map(|(k, v)| (k.clone(), arg_to_json(v))).collect();
                obj.push(("args".into(), Value::Object(args)));
            }
            Value::Object(obj)
        })
        .collect();
    let root = Value::Object(vec![
        ("traceEvents".into(), Value::Array(trace_events)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
    ]);
    serde_json::to_string(&root).expect("trace always serializes")
}

/// Maps a metric name onto the Prometheus charset: `[a-zA-Z0-9_:]`, not
/// starting with a digit. Everything else becomes `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Formats a float the way Prometheus expects (no exponent mangling;
/// `+Inf`/`-Inf`/`NaN` spelled out).
fn prom_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else if v.is_nan() {
        "NaN".into()
    } else {
        format!("{v}")
    }
}

/// Escapes a Prometheus label value (backslash, double quote, newline).
fn prom_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// The exported metric kinds, in emission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum PromKind {
    Counter,
    Gauge,
    Histogram,
}

impl PromKind {
    fn as_str(self) -> &'static str {
        match self {
            PromKind::Counter => "counter",
            PromKind::Gauge => "gauge",
            PromKind::Histogram => "histogram",
        }
    }
}

/// Groups one kind's metrics into families keyed by sanitized name. Each
/// family keeps the original names of every metric that mapped onto it.
fn prom_families<T>(
    metrics: &[(String, T)],
) -> std::collections::BTreeMap<String, Vec<(&str, &T)>> {
    let mut families: std::collections::BTreeMap<String, Vec<(&str, &T)>> = Default::default();
    for (name, value) in metrics {
        families.entry(prom_name(name)).or_default().push((name.as_str(), value));
    }
    families
}

/// Serializes a [`MetricsSnapshot`] in the Prometheus text exposition
/// format (version 0.0.4).
///
/// Counters export as `counter`, gauges as `gauge` — except unset
/// gauges still holding the registry's NaN sentinel, which are skipped
/// (Prometheus scrapers reject a `NaN` sample) — histograms as
/// `histogram` with cumulative `_bucket{le="..."}` series (bucket upper
/// bounds are the log-bucket upper edges `2^(i-39)`), a `+Inf` bucket,
/// `_sum` and `_count`. Every exported family gets exactly one `# HELP`
/// line (naming the original, unsanitized metric) and one `# TYPE` line.
///
/// Sanitization can make distinct metric names collide (`a.b` and `a-b`
/// both map to `a_b`). Collisions stay valid exposition text: within a
/// kind, colliding metrics share one family and each sample carries a
/// `name="<original>"` label so series remain distinct; across kinds,
/// the family name gets a `_counter`/`_gauge`/`_histogram` suffix so no
/// family is declared with two types.
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    use crate::metrics::HistogramSnapshot;

    // Unset gauges carry the registry's NaN sentinel; a `NaN` sample is
    // rejected by Prometheus text-format 0.0.4 scrapers, so they are
    // dropped before family grouping (a family whose every gauge is
    // unset vanishes entirely rather than emitting HELP/TYPE with no
    // samples).
    let set_gauges: Vec<(String, f64)> =
        snapshot.gauges.iter().filter(|(_, v)| !v.is_nan()).cloned().collect();

    let counters = prom_families(&snapshot.counters);
    let gauges = prom_families(&set_gauges);
    let histograms = prom_families(&snapshot.histograms);

    // A sanitized name claimed by more than one kind must fork into
    // per-kind families: one name cannot carry two `# TYPE`s.
    let mut kinds: std::collections::BTreeMap<&str, u32> = Default::default();
    for fam in counters.keys().chain(gauges.keys()).chain(histograms.keys()) {
        *kinds.entry(fam).or_insert(0) += 1;
    }
    let family_name = |fam: &str, kind: PromKind| -> String {
        if kinds.get(fam).copied().unwrap_or(0) > 1 {
            format!("{fam}_{}", kind.as_str())
        } else {
            fam.to_owned()
        }
    };
    // HELP text: the original name(s) the family aggregates.
    let help = |originals: &[&str]| originals.join(", ");
    // Sample label: empty for a one-metric family, `{name="orig"}` (or a
    // `name="orig",` prefix inside an existing label set) otherwise.
    let name_label = |orig: &str, solo: bool| -> String {
        if solo {
            String::new()
        } else {
            format!("name=\"{}\"", prom_label_value(orig))
        }
    };

    let mut out = String::new();
    for (fam, members) in &counters {
        let n = family_name(fam, PromKind::Counter);
        let originals: Vec<&str> = members.iter().map(|(o, _)| *o).collect();
        let _ = writeln!(out, "# HELP {n} {}", help(&originals));
        let _ = writeln!(out, "# TYPE {n} counter");
        for (orig, value) in members {
            let label = name_label(orig, members.len() == 1);
            if label.is_empty() {
                let _ = writeln!(out, "{n} {value}");
            } else {
                let _ = writeln!(out, "{n}{{{label}}} {value}");
            }
        }
    }
    for (fam, members) in &gauges {
        let n = family_name(fam, PromKind::Gauge);
        let originals: Vec<&str> = members.iter().map(|(o, _)| *o).collect();
        let _ = writeln!(out, "# HELP {n} {}", help(&originals));
        let _ = writeln!(out, "# TYPE {n} gauge");
        for (orig, value) in members {
            let label = name_label(orig, members.len() == 1);
            if label.is_empty() {
                let _ = writeln!(out, "{n} {}", prom_f64(**value));
            } else {
                let _ = writeln!(out, "{n}{{{label}}} {}", prom_f64(**value));
            }
        }
    }
    for (fam, members) in &histograms {
        let n = family_name(fam, PromKind::Histogram);
        let originals: Vec<&str> = members.iter().map(|(o, _)| *o).collect();
        let _ = writeln!(out, "# HELP {n} {}", help(&originals));
        let _ = writeln!(out, "# TYPE {n} histogram");
        for (orig, h) in members {
            let label = name_label(orig, members.len() == 1);
            let prefix = if label.is_empty() { String::new() } else { format!("{label},") };
            let suffix = if label.is_empty() { String::new() } else { format!("{{{label}}}") };
            let mut cum = 0u64;
            for &(i, c) in &h.buckets {
                cum += c;
                let (_, hi) = HistogramSnapshot::bucket_bounds(i);
                let _ = writeln!(out, "{n}_bucket{{{prefix}le=\"{}\"}} {cum}", prom_f64(hi));
            }
            let _ = writeln!(out, "{n}_bucket{{{prefix}le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum{suffix} {}", prom_f64(h.sum));
            let _ = writeln!(out, "{n}_count{suffix} {}", h.count);
        }
    }
    out
}

/// Writes `contents` to `path`, creating parent directories as needed.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_file(path: impl AsRef<Path>, contents: &str) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(contents.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Event> {
        vec![
            Event::span("stage ⋈ C,O", "engine", 100, 2500)
                .tid(1)
                .arg("rows", 42u64)
                .arg("attempt", 0u64),
            Event::instant("node_failure", "engine", 1200).tid(1).arg("attempt", 0u64),
            Event::instant("best_update", "search", 7).arg("cost", 123.5),
        ]
    }

    #[test]
    fn canonical_trace_is_invariant_across_interleavings() {
        // The same logical run, logged under two different thread
        // interleavings and wall clocks.
        let a = vec![
            Event::span("stage", "engine", 100, 900).arg("nodes", 2u64),
            Event::span("attempt", "engine", 110, 300).tid(1).arg("rows", 5u64),
            Event::instant("node_failure", "engine", 200).tid(2).arg("lost_s", 0.25),
            Event::span("attempt", "engine", 210, 600).tid(2).arg("rows", 7u64),
        ];
        let b = vec![
            Event::instant("node_failure", "engine", 4000).tid(2).arg("lost_s", 0.75),
            Event::span("attempt", "engine", 4100, 333).tid(2).arg("rows", 7u64),
            Event::span("attempt", "engine", 3900, 10).tid(1).arg("rows", 5u64),
            Event::span("stage", "engine", 3800, 1000).arg("nodes", 2u64),
        ];
        let ca = canonical_trace(&a, CanonicalScope::AllTracks);
        let cb = canonical_trace(&b, CanonicalScope::AllTracks);
        assert_eq!(to_jsonl(&ca), to_jsonl(&cb));
        // Sequence-index timestamps, zero durations, no timing args.
        assert_eq!(ca.iter().map(|e| e.ts_us).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(ca.iter().all(|e| e.dur_us == 0));
        assert!(ca.iter().all(|e| e.args.iter().all(|(k, _)| k != "lost_s")));
        // Track order: tid 0 first, then 1, then 2.
        assert_eq!(ca.iter().map(|e| e.tid).collect::<Vec<_>>(), vec![0, 1, 2, 2]);
    }

    #[test]
    fn canonical_trace_coordinator_scope_drops_racy_worker_tracks() {
        let events = vec![
            Event::span("stage", "engine", 0, 10),
            Event::instant("worker_cancelled", "engine", 3).tid(2),
            Event::instant("materialize", "engine", 5).tid(1).arg("rows", 9u64),
            Event::instant("query_completed", "engine", 9),
        ];
        let c = canonical_trace(&events, CanonicalScope::CoordinatorOnly);
        let names: Vec<&str> = c.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["stage", "query_completed", "materialize"]);
    }

    #[test]
    fn jsonl_round_trips() {
        let events = sample();
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), 3);
        let parsed = from_jsonl(&text).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn jsonl_ignores_blank_lines_and_rejects_garbage() {
        let text = format!("\n{}\n\n", to_jsonl(&sample()));
        assert_eq!(from_jsonl(&text).unwrap().len(), 3);
        assert!(from_jsonl("not json\n").is_err());
    }

    #[test]
    fn chrome_trace_has_expected_shape() {
        let text = to_chrome_trace(&sample());
        let root: Value = serde_json::from_str(&text).unwrap();
        let events = root.get("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(events.len(), 3);
        let span = &events[0];
        assert_eq!(span.get("ph").and_then(Value::as_str), Some("X"));
        assert_eq!(span.get("dur").and_then(Value::as_u64), Some(2500));
        assert_eq!(span.get("ts").and_then(Value::as_u64), Some(100));
        assert_eq!(span.get("tid").and_then(Value::as_u64), Some(1));
        let args = span.get("args").unwrap();
        assert_eq!(args.get("rows").and_then(Value::as_u64), Some(42));
        let instant = &events[1];
        assert_eq!(instant.get("ph").and_then(Value::as_str), Some("i"));
        assert_eq!(instant.get("s").and_then(Value::as_str), Some("t"));
        let f = &events[2];
        assert_eq!(f.get("args").unwrap().get("cost").and_then(Value::as_f64), Some(123.5));
    }

    #[test]
    fn prometheus_export_passes_format_sanity() {
        use crate::metrics::MetricsRegistry;

        let reg = MetricsRegistry::new();
        reg.counter_add("search.memo_hits", 42);
        reg.gauge_set("sim.overhead_pct", 12.5);
        for v in [0.25, 1.0, 1.5, 3.0, 250.0] {
            reg.observe("engine.stage_seconds", v);
        }
        let text = to_prometheus(&reg.snapshot());

        // Exactly one `# TYPE` line per metric, with sanitized names.
        let type_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE ")).collect();
        assert_eq!(
            type_lines,
            vec![
                "# TYPE search_memo_hits counter",
                "# TYPE sim_overhead_pct gauge",
                "# TYPE engine_stage_seconds histogram",
            ]
        );
        assert!(text.contains("search_memo_hits 42\n"));
        assert!(text.contains("sim_overhead_pct 12.5\n"));

        // Every exported family carries a HELP line naming the original
        // (unsanitized) metric, immediately before its TYPE line.
        let help_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# HELP ")).collect();
        assert_eq!(
            help_lines,
            vec![
                "# HELP search_memo_hits search.memo_hits",
                "# HELP sim_overhead_pct sim.overhead_pct",
                "# HELP engine_stage_seconds engine.stage_seconds",
            ]
        );
        let lines: Vec<&str> = text.lines().collect();
        for (i, l) in lines.iter().enumerate() {
            if l.starts_with("# HELP ") {
                assert!(lines[i + 1].starts_with("# TYPE "), "HELP not followed by TYPE: {l}");
            }
        }

        // Histogram buckets are cumulative and monotone, ending at +Inf
        // with the total count; _sum and _count close the family.
        let cums: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("engine_stage_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(cums.len() >= 2);
        assert!(cums.windows(2).all(|w| w[0] <= w[1]), "buckets not monotone: {cums:?}");
        assert_eq!(*cums.last().unwrap(), 5);
        assert!(text.contains("engine_stage_seconds_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("engine_stage_seconds_sum 255.75\n"));
        assert!(text.contains("engine_stage_seconds_count 5\n"));
    }

    #[test]
    fn prometheus_name_sanitization() {
        assert_eq!(prom_name("engine.stage_seconds"), "engine_stage_seconds");
        assert_eq!(prom_name("9lives"), "_9lives");
        assert_eq!(prom_name("a:b-c d"), "a:b_c_d");
        assert_eq!(prom_name(""), "_");
    }

    #[test]
    fn prometheus_export_of_empty_snapshot_is_empty() {
        let snap = MetricsSnapshot::default();
        assert_eq!(to_prometheus(&snap), "");
    }

    /// An unset gauge (the registry's NaN sentinel, reachable in
    /// hand-built or deserialized snapshots) must not serialize as a
    /// `NaN` sample: text-format 0.0.4 scrapers reject it.
    #[test]
    fn prometheus_skips_nan_sentinel_gauges() {
        let mut snap = MetricsSnapshot::default();
        snap.gauges.push(("engine.unset".into(), f64::NAN));
        snap.gauges.push(("engine.set".into(), 2.5));
        let text = to_prometheus(&snap);

        assert!(!text.contains("NaN"), "NaN sample leaked: {text}");
        assert!(text.contains("engine_set 2.5\n"));
        // The all-unset family vanishes entirely — no HELP/TYPE for it.
        assert!(!text.contains("engine_unset"), "unset gauge family leaked: {text}");

        // All-NaN snapshot exports nothing at all.
        let mut snap = MetricsSnapshot::default();
        snap.gauges.push(("only.unset".into(), f64::NAN));
        assert_eq!(to_prometheus(&snap), "");

        // Infinities are representable in the exposition format and stay.
        let mut snap = MetricsSnapshot::default();
        snap.gauges.push(("inf.gauge".into(), f64::INFINITY));
        assert!(to_prometheus(&snap).contains("inf_gauge +Inf\n"));
    }

    /// Distinct metric names that sanitize onto the same family must not
    /// produce duplicate series: within a kind they share one
    /// HELP/TYPE and are told apart by a `name` label.
    #[test]
    fn prometheus_within_kind_collisions_get_name_labels() {
        use crate::metrics::MetricsRegistry;

        let reg = MetricsRegistry::new();
        reg.counter_add("store.put.bytes", 10);
        reg.counter_add("store.put bytes", 32); // both sanitize to store_put_bytes
        let text = to_prometheus(&reg.snapshot());

        assert_eq!(text.matches("# TYPE store_put_bytes counter").count(), 1);
        assert!(text.contains("# HELP store_put_bytes store.put bytes, store.put.bytes\n"));
        assert!(text.contains("store_put_bytes{name=\"store.put bytes\"} 32\n"));
        assert!(text.contains("store_put_bytes{name=\"store.put.bytes\"} 10\n"));
        // No unlabeled (ambiguous) sample remains.
        assert!(!text.contains("\nstore_put_bytes 1"));
    }

    /// A sanitized name claimed by two kinds cannot share one family
    /// (one name, two `# TYPE`s is invalid exposition text): each kind
    /// forks off with a kind suffix.
    #[test]
    fn prometheus_cross_kind_collisions_fork_families() {
        use crate::metrics::MetricsRegistry;

        let reg = MetricsRegistry::new();
        reg.counter_add("engine.retries", 3);
        reg.gauge_set("engine-retries", 1.5); // sanitizes to engine_retries too
        reg.observe("engine retries", 0.5); // and so does this histogram
        let text = to_prometheus(&reg.snapshot());

        assert!(text.contains("# TYPE engine_retries_counter counter\n"));
        assert!(text.contains("# TYPE engine_retries_gauge gauge\n"));
        assert!(text.contains("# TYPE engine_retries_histogram histogram\n"));
        assert!(!text.contains("# TYPE engine_retries counter"));
        assert!(!text.contains("# TYPE engine_retries gauge"));
        assert!(text.contains("engine_retries_counter 3\n"));
        assert!(text.contains("engine_retries_gauge 1.5\n"));
        assert!(text.contains("engine_retries_histogram_count 1\n"));
        // No family name is declared with two types.
        let mut families = std::collections::HashMap::new();
        for l in text.lines().filter(|l| l.starts_with("# TYPE ")) {
            let mut parts = l.split(' ').skip(2);
            let fam = parts.next().unwrap();
            let kind = parts.next().unwrap();
            assert!(families.insert(fam, kind).is_none(), "family {fam} declared twice");
        }
    }

    /// Histograms in a colliding family keep the `name` label on every
    /// series (`_bucket`, `_sum`, `_count`) alongside `le`.
    #[test]
    fn prometheus_histogram_collisions_label_all_series() {
        use crate::metrics::MetricsRegistry;

        let reg = MetricsRegistry::new();
        reg.observe("put.seconds", 1.0);
        reg.observe("put-seconds", 4.0);
        let text = to_prometheus(&reg.snapshot());

        assert_eq!(text.matches("# TYPE put_seconds histogram").count(), 1);
        assert!(text.contains("put_seconds_bucket{name=\"put-seconds\",le=\"8\"} 1\n"));
        assert!(text.contains("put_seconds_bucket{name=\"put.seconds\",le=\"2\"} 1\n"));
        assert!(text.contains("put_seconds_bucket{name=\"put-seconds\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("put_seconds_sum{name=\"put.seconds\"} 1\n"));
        assert!(text.contains("put_seconds_count{name=\"put-seconds\"} 1\n"));
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        assert_eq!(prom_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn write_file_creates_parents() {
        let dir = std::env::temp_dir().join("ftpde_obs_test_export");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/trace.json");
        write_file(&path, "{}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
