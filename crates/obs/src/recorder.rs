//! Event sinks.
//!
//! Instrumented code takes `&dyn Recorder` and calls
//! `Recorder::record_with`: when recording is disabled that is a single
//! virtual call returning a constant — the closure never runs, so the
//! no-op path allocates nothing.

use std::time::Instant;

use crate::event::Event;
use crate::sync::clock;
use crate::sync::plain::Mutex;

/// An event sink shared across worker threads.
pub trait Recorder: Sync {
    /// `false` for sinks that drop everything; callers gate event
    /// construction on this.
    fn enabled(&self) -> bool;

    /// Stores one event. Implementations must be thread-safe.
    fn record(&self, event: Event);
}

impl dyn Recorder + '_ {
    /// Builds and records an event only when the sink is enabled — the
    /// one-branch gate instrumentation sites should use.
    pub fn record_with(&self, build: impl FnOnce() -> Event) {
        if self.enabled() {
            self.record(build());
        }
    }
}

/// Drops every event. `enabled()` is `false`, so sites gated through
/// [`Recorder::record_with`](trait.Recorder.html) never construct the event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _event: Event) {}
}

/// Collects events in memory behind a mutex, stamping its own creation
/// time as the epoch for wall-clock producers.
#[derive(Debug)]
pub struct MemoryRecorder {
    epoch: Instant,
    events: Mutex<Vec<Event>>,
}

impl Default for MemoryRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoryRecorder {
    /// An empty recorder whose epoch is "now".
    pub fn new() -> Self {
        MemoryRecorder { epoch: clock::now(), events: Mutex::new(Vec::new()) }
    }

    /// Microseconds elapsed since this recorder was created — the
    /// timestamp wall-clock producers should use.
    pub fn now_us(&self) -> u64 {
        clock::elapsed(self.epoch).as_micros() as u64
    }

    /// A copy of everything recorded so far, in recording order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Drains the recorded events, leaving the recorder empty.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl Recorder for MemoryRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        self.events.lock().push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_never_builds_the_event() {
        let rec = NoopRecorder;
        let dyn_rec: &dyn Recorder = &rec;
        let mut built = false;
        dyn_rec.record_with(|| {
            built = true;
            Event::instant("x", "t", 0)
        });
        assert!(!built, "closure must not run on a disabled sink");
    }

    #[test]
    fn memory_recorder_collects_in_order() {
        let rec = MemoryRecorder::new();
        let dyn_rec: &dyn Recorder = &rec;
        dyn_rec.record_with(|| Event::instant("a", "t", 1));
        dyn_rec.record_with(|| Event::instant("b", "t", 2));
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[1].name, "b");
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.take().len(), 2);
        assert!(rec.is_empty());
    }

    #[test]
    fn memory_recorder_is_shareable_across_threads() {
        let rec = MemoryRecorder::new();
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let rec = &rec;
                s.spawn(move || {
                    for i in 0..25u64 {
                        rec.record(Event::instant(format!("e{i}"), "t", i).tid(t));
                    }
                });
            }
        });
        assert_eq!(rec.len(), 100);
    }

    #[test]
    fn now_us_is_monotonic() {
        let rec = MemoryRecorder::new();
        let a = rec.now_us();
        let b = rec.now_us();
        assert!(b >= a);
    }
}
