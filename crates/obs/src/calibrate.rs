//! Cost-model calibration: joins the *predicted* side of a trace (stage
//! spans tagged with the cost model's per-stage estimates, a
//! `plan_estimate` instant carrying the dominant-path cost) against the
//! *observed* side (span durations, failure instants, query completion)
//! and reports how well the model's Eq. 1–8 predictions match reality.
//!
//! The join is purely over event arguments — producers tag their stage
//! spans with `pred_run_s` / `pred_mat_s` / `pred_rec_s` / `pred_cost_s`
//! when they hold an estimate, so a recorded JSONL trace is
//! self-contained and can be calibrated offline (`ftpde obs --trace`).
//!
//! Error convention: **signed relative error** `(observed − predicted) /
//! predicted`. Positive means the model under-predicted (reality was
//! slower), negative means it over-predicted.

use serde::{Deserialize, Serialize};

use crate::event::{ArgValue, Event, Phase};
use crate::metrics::MetricsRegistry;
use crate::report::Summary;

/// Below this predicted magnitude a relative error is meaningless and the
/// observation is dropped from the distributions.
const MIN_PREDICTED_S: f64 = 1e-9;

fn arg_f64(e: &Event, key: &str) -> Option<f64> {
    match e.get_arg(key)? {
        ArgValue::F64(v) => Some(*v),
        ArgValue::U64(v) => Some(*v as f64),
        ArgValue::I64(v) => Some(*v as f64),
        _ => None,
    }
}

fn arg_u64(e: &Event, key: &str) -> Option<u64> {
    match e.get_arg(key)? {
        ArgValue::U64(v) => Some(*v),
        ArgValue::I64(v) if *v >= 0 => Some(*v as u64),
        _ => None,
    }
}

/// Distribution statistics over a set of signed errors. Quantiles are
/// exact (computed from the sorted values, linearly interpolated), not
/// bucketed approximations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorStats {
    /// Number of observations.
    pub count: u64,
    /// Mean signed error — the model's *bias* (positive: under-predicts).
    pub bias: f64,
    /// Mean absolute error.
    pub mean_abs: f64,
    /// Median signed error.
    pub p50: f64,
    /// 90th percentile signed error.
    pub p90: f64,
    /// 99th percentile signed error.
    pub p99: f64,
    /// Smallest signed error.
    pub min: f64,
    /// Largest signed error.
    pub max: f64,
}

impl ErrorStats {
    /// Computes stats over `values`, `None` when empty.
    pub fn from_values(values: &[f64]) -> Option<ErrorStats> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("errors are finite"));
        let n = sorted.len();
        let quantile = |q: f64| -> f64 {
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] + frac * (sorted[hi] - sorted[lo])
        };
        let sum: f64 = sorted.iter().sum();
        let abs_sum: f64 = sorted.iter().map(|v| v.abs()).sum();
        Some(ErrorStats {
            count: n as u64,
            bias: sum / n as f64,
            mean_abs: abs_sum / n as f64,
            p50: quantile(0.5),
            p90: quantile(0.9),
            p99: quantile(0.99),
            min: sorted[0],
            max: sorted[n - 1],
        })
    }

    /// Drift score in `[-1, 1]`: `bias / mean_abs`. `+1` means every
    /// error is an under-prediction, `-1` every error an over-prediction,
    /// `0` a model whose misses cancel out. `None` when all errors are
    /// exactly zero (a perfectly calibrated model has no drift).
    pub fn drift(&self) -> Option<f64> {
        (self.mean_abs > 0.0).then(|| self.bias / self.mean_abs)
    }
}

/// Where a stage's prediction error comes from: the Eq. 8 decomposition
/// `T(c) = tr + tm + a·(w + MTTR)` gives three predicted components;
/// observed recovery is measured from failure instants, and the
/// runtime/materialization residual is split by predicted share.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BlameBreakdown {
    /// Error attributed to the runtime cost `tr(c)` (seconds).
    pub runtime_s: f64,
    /// Error attributed to the materialization cost `tm(c)` (seconds).
    pub materialization_s: f64,
    /// Error attributed to the recovery term `a(c)·(w(c)+MTTR)` (seconds).
    pub recovery_s: f64,
}

impl BlameBreakdown {
    fn add(&mut self, other: &BlameBreakdown) {
        self.runtime_s += other.runtime_s;
        self.materialization_s += other.materialization_s;
        self.recovery_s += other.recovery_s;
    }

    /// Total signed error (sum of the three components), seconds.
    pub fn total_s(&self) -> f64 {
        self.runtime_s + self.materialization_s + self.recovery_s
    }
}

/// One stage span joined against its predicted estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageCalibration {
    /// Producing layer (`"sim"`, `"engine"`).
    pub cat: String,
    /// Stage id as the producer numbers it (CId for the simulator, root
    /// OpId for the engine).
    pub stage: u64,
    /// Predicted total stage cost `T(c)` — `tr + tm + a·(w + MTTR)`.
    pub predicted_s: f64,
    /// Observed stage wall time (span duration).
    pub observed_s: f64,
    /// Predicted runtime component `tr(c)`.
    pub pred_run_s: f64,
    /// Predicted materialization component `tm(c)`.
    pub pred_mat_s: f64,
    /// Predicted recovery component `a(c)·(w(c)+MTTR)`.
    pub pred_rec_s: f64,
    /// Observed recovery time (repair + lost work over this stage's
    /// failure instants).
    pub observed_recovery_s: f64,
    /// Failure instants attributed to this stage.
    pub failures: u64,
    /// `true` when the stage lies on the predicted dominant path.
    pub dominant: bool,
    /// Signed absolute error `observed − predicted`, seconds.
    pub error_s: f64,
    /// Signed relative error `(observed − predicted) / predicted`;
    /// `None` when the prediction is too small to divide by.
    pub rel_error: Option<f64>,
    /// The error split into runtime / materialization / recovery blame.
    pub blame: BlameBreakdown,
}

/// Whole-query prediction joined against the observed completion time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryCalibration {
    /// Producing layer.
    pub cat: String,
    /// Predicted dominant-path cost `T_Pt` under failures.
    pub predicted_s: f64,
    /// Predicted failure-free dominant-path runtime, if tagged.
    pub predicted_runtime_s: Option<f64>,
    /// Observed completion time (timestamp of `query_completed` /
    /// `query_aborted`).
    pub observed_s: f64,
    /// `true` when the query aborted instead of completing.
    pub aborted: bool,
    /// Signed relative error; `None` for tiny predictions.
    pub rel_error: Option<f64>,
}

/// The calibration join of one recorded trace: per-stage and per-query
/// predicted-vs-observed comparisons plus aggregate error statistics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Stage-level comparisons, in trace order.
    pub stages: Vec<StageCalibration>,
    /// Query-level comparisons, one per producing layer.
    pub queries: Vec<QueryCalibration>,
    /// Measured materialization throughput (bytes/s to durable storage)
    /// from the trace's last `store_stats` instant — the *observed*
    /// `tm(o)` rate. When present, materialization blame can be grounded
    /// against actual storage speed instead of the model's assumed
    /// constant.
    pub measured_tm_bytes_per_s: Option<f64>,
}

impl CalibrationReport {
    /// Builds the report from a recorded event stream.
    ///
    /// Joins three event shapes, all matched by argument — event order
    /// does not matter:
    ///
    /// - **Stage spans** carrying a `stage` arg plus `pred_run_s` /
    ///   `pred_mat_s` / `pred_rec_s` prediction tags (untagged spans are
    ///   skipped — there is nothing to compare against).
    /// - **`node_failure` instants**: attributed to the tagged span of the
    ///   same category and stage whose time interval contains the
    ///   failure's timestamp (falling back to the first span of that
    ///   stage). Observed recovery per failure is `lost_s` plus, when
    ///   present, the `resumes_at_s − ts` repair window.
    /// - **`plan_estimate` instants** (`pred_cost_s`, `pred_runtime_s`)
    ///   paired with the category's `query_completed` / `query_aborted`
    ///   timestamp.
    ///
    /// Additionally, the last `store_stats` instant carrying a
    /// `write_bytes_per_s` arg (emitted by the engine's store-backed
    /// runs) supplies [`CalibrationReport::measured_tm_bytes_per_s`].
    pub fn from_events(events: &[Event]) -> CalibrationReport {
        let mut stages: Vec<StageCalibration> = Vec::new();
        // Span intervals for failure attribution, parallel to `stages`.
        let mut intervals: Vec<(u64, u64)> = Vec::new();

        for e in events {
            if e.phase != Phase::Span {
                continue;
            }
            let (Some(stage), Some(run), Some(mat), Some(rec)) = (
                arg_u64(e, "stage"),
                arg_f64(e, "pred_run_s"),
                arg_f64(e, "pred_mat_s"),
                arg_f64(e, "pred_rec_s"),
            ) else {
                continue;
            };
            let predicted = arg_f64(e, "pred_cost_s").unwrap_or(run + mat + rec);
            let dominant = matches!(e.get_arg("dominant"), Some(ArgValue::Bool(true)));
            stages.push(StageCalibration {
                cat: e.cat.clone(),
                stage,
                predicted_s: predicted,
                observed_s: e.dur_us as f64 / 1e6,
                pred_run_s: run,
                pred_mat_s: mat,
                pred_rec_s: rec,
                observed_recovery_s: 0.0,
                failures: 0,
                dominant,
                error_s: 0.0,
                rel_error: None,
                blame: BlameBreakdown::default(),
            });
            intervals.push((e.ts_us, e.ts_us + e.dur_us));
        }

        for e in events {
            if e.phase != Phase::Instant || e.name != "node_failure" {
                continue;
            }
            let Some(stage) = arg_u64(e, "stage") else { continue };
            let lost = arg_f64(e, "lost_s").unwrap_or(0.0);
            let repair =
                arg_f64(e, "resumes_at_s").map_or(0.0, |r| (r - e.ts_us as f64 / 1e6).max(0.0));
            let matching = |s: &StageCalibration| s.cat == e.cat && s.stage == stage;
            let idx = stages
                .iter()
                .enumerate()
                .position(|(i, s)| {
                    matching(s) && intervals[i].0 <= e.ts_us && e.ts_us <= intervals[i].1
                })
                .or_else(|| stages.iter().position(matching));
            if let Some(i) = idx {
                stages[i].failures += 1;
                stages[i].observed_recovery_s += lost + repair;
            }
        }

        for s in &mut stages {
            s.error_s = s.observed_s - s.predicted_s;
            s.rel_error = (s.predicted_s > MIN_PREDICTED_S).then(|| s.error_s / s.predicted_s);
            // Recovery blame is directly measurable; the residual is split
            // between runtime and materialization by predicted share.
            let recovery = s.observed_recovery_s - s.pred_rec_s;
            let residual = s.error_s - recovery;
            let base = s.pred_run_s + s.pred_mat_s;
            let run_share = if base > 0.0 { s.pred_run_s / base } else { 1.0 };
            s.blame = BlameBreakdown {
                runtime_s: residual * run_share,
                materialization_s: residual * (1.0 - run_share),
                recovery_s: recovery,
            };
        }

        // Query-level join: per category, the last plan_estimate and the
        // last query termination instant.
        let mut queries: Vec<QueryCalibration> = Vec::new();
        let cats: Vec<&str> = {
            let mut seen: Vec<&str> = Vec::new();
            for e in events {
                if e.name == "plan_estimate" && !seen.contains(&e.cat.as_str()) {
                    seen.push(&e.cat);
                }
            }
            seen
        };
        for cat in cats {
            let est = events
                .iter()
                .rev()
                .find(|e| e.cat == cat && e.name == "plan_estimate")
                .expect("cat came from a plan_estimate event");
            let Some(predicted) = arg_f64(est, "pred_cost_s") else { continue };
            let done = events.iter().rev().find(|e| {
                e.cat == cat && (e.name == "query_completed" || e.name == "query_aborted")
            });
            let Some(done) = done else { continue };
            let observed = done.ts_us as f64 / 1e6;
            queries.push(QueryCalibration {
                cat: cat.to_owned(),
                predicted_s: predicted,
                predicted_runtime_s: arg_f64(est, "pred_runtime_s"),
                observed_s: observed,
                aborted: done.name == "query_aborted",
                rel_error: (predicted > MIN_PREDICTED_S)
                    .then(|| (observed - predicted) / predicted),
            });
        }

        let measured_tm_bytes_per_s = events
            .iter()
            .rev()
            .filter(|e| e.name == "store_stats")
            .find_map(|e| arg_f64(e, "write_bytes_per_s"))
            .filter(|v| *v > 0.0);

        CalibrationReport { stages, queries, measured_tm_bytes_per_s }
    }

    /// Signed relative errors of all comparable stages.
    pub fn stage_rel_errors(&self) -> Vec<f64> {
        self.stages.iter().filter_map(|s| s.rel_error).collect()
    }

    /// Error statistics over the stage-level relative errors.
    pub fn stage_error_stats(&self) -> Option<ErrorStats> {
        ErrorStats::from_values(&self.stage_rel_errors())
    }

    /// Error statistics over the query-level relative errors.
    pub fn query_error_stats(&self) -> Option<ErrorStats> {
        let errors: Vec<f64> = self.queries.iter().filter_map(|q| q.rel_error).collect();
        ErrorStats::from_values(&errors)
    }

    /// Aggregate blame across all stages (seconds of signed error per
    /// cost-model term).
    pub fn blame(&self) -> BlameBreakdown {
        let mut total = BlameBreakdown::default();
        for s in &self.stages {
            total.add(&s.blame);
        }
        total
    }

    /// Stage-level drift score (see [`ErrorStats::drift`]).
    pub fn drift_score(&self) -> Option<f64> {
        self.stage_error_stats().and_then(|s| s.drift())
    }

    /// Pushes the report into `reg` as gauges and histograms, so the
    /// Prometheus exporter can serve calibration alongside raw metrics.
    ///
    /// Signed relative errors do not fit the log-bucketed (positive-only)
    /// histograms directly, so magnitudes are split by sign:
    /// `calibration.stage_rel_error_over` holds under-predictions
    /// (observed > predicted), `..._under` holds over-predictions.
    pub fn export_metrics(&self, reg: &MetricsRegistry) {
        reg.gauge_set("calibration.stage_count", self.stages.len() as f64);
        reg.gauge_set("calibration.query_count", self.queries.len() as f64);
        if let Some(stats) = self.stage_error_stats() {
            reg.gauge_set("calibration.stage_rel_error_bias", stats.bias);
            reg.gauge_set("calibration.stage_rel_error_mean_abs", stats.mean_abs);
            reg.gauge_set("calibration.stage_rel_error_p50", stats.p50);
            reg.gauge_set("calibration.stage_rel_error_p90", stats.p90);
            reg.gauge_set("calibration.stage_rel_error_p99", stats.p99);
            if let Some(d) = stats.drift() {
                reg.gauge_set("calibration.stage_drift", d);
            }
        }
        if let Some(stats) = self.query_error_stats() {
            reg.gauge_set("calibration.query_rel_error_bias", stats.bias);
            reg.gauge_set("calibration.query_rel_error_p50", stats.p50);
        }
        let blame = self.blame();
        reg.gauge_set("calibration.blame_runtime_s", blame.runtime_s);
        reg.gauge_set("calibration.blame_materialization_s", blame.materialization_s);
        reg.gauge_set("calibration.blame_recovery_s", blame.recovery_s);
        if let Some(tm) = self.measured_tm_bytes_per_s {
            reg.gauge_set("calibration.measured_tm_bytes_per_s", tm);
        }
        for err in self.stage_rel_errors() {
            if err > 0.0 {
                reg.observe("calibration.stage_rel_error_over", err);
            } else if err < 0.0 {
                reg.observe("calibration.stage_rel_error_under", -err);
            }
        }
    }

    /// Renders the report as a plain-text [`Summary`].
    pub fn to_summary(&self) -> Summary {
        let pct = |v: Option<f64>| match v {
            Some(v) => format!("{:+.1}%", v * 100.0),
            None => "-".into(),
        };
        let secs = |v: f64| format!("{v:.3}");

        let mut out = Summary::new();
        out.banner("Calibration: predicted vs observed");
        if self.stages.is_empty() && self.queries.is_empty() {
            out.line("no prediction-tagged events in trace");
            return out;
        }
        if !self.stages.is_empty() {
            let rows: Vec<Vec<String>> = self
                .stages
                .iter()
                .map(|s| {
                    vec![
                        s.cat.clone(),
                        s.stage.to_string(),
                        if s.dominant { "*".into() } else { "".into() },
                        secs(s.predicted_s),
                        secs(s.observed_s),
                        pct(s.rel_error),
                        s.failures.to_string(),
                        secs(s.pred_rec_s),
                        secs(s.observed_recovery_s),
                    ]
                })
                .collect();
            out.table(
                &[
                    "layer", "stage", "dom", "pred(s)", "obs(s)", "rel err", "fails", "rec pred",
                    "rec obs",
                ],
                &rows,
            );
            if let Some(stats) = self.stage_error_stats() {
                out.line(format!(
                    "stage rel error: p50 {} · p90 {} · p99 {} · bias {} ({} stages)",
                    pct(Some(stats.p50)),
                    pct(Some(stats.p90)),
                    pct(Some(stats.p99)),
                    pct(Some(stats.bias)),
                    stats.count,
                ));
                match stats.drift() {
                    Some(d) => out.kv("drift score", format!("{d:+.2}")),
                    None => out.kv("drift score", "0 (perfectly calibrated)"),
                };
            }
            let blame = self.blame();
            out.line(format!(
                "blame: runtime {:+.3}s · materialization {:+.3}s · recovery {:+.3}s",
                blame.runtime_s, blame.materialization_s, blame.recovery_s,
            ));
        }
        if let Some(tm) = self.measured_tm_bytes_per_s {
            out.kv("measured tm (store write)", format!("{:.2} MB/s", tm / 1e6));
        }
        if !self.queries.is_empty() {
            let rows: Vec<Vec<String>> = self
                .queries
                .iter()
                .map(|q| {
                    vec![
                        q.cat.clone(),
                        secs(q.predicted_s),
                        secs(q.observed_s),
                        pct(q.rel_error),
                        if q.aborted { "ABORTED".into() } else { "ok".into() },
                    ]
                })
                .collect();
            out.table(&["layer", "pred T_Pt(s)", "obs(s)", "rel err", "outcome"], &rows);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tagged_span(
        cat: &str,
        stage: u64,
        ts_us: u64,
        dur_us: u64,
        run: f64,
        mat: f64,
        rec: f64,
    ) -> Event {
        Event::span(format!("stage {stage}"), cat, ts_us, dur_us)
            .arg("stage", stage)
            .arg("pred_run_s", run)
            .arg("pred_mat_s", mat)
            .arg("pred_rec_s", rec)
            .arg("pred_cost_s", run + mat + rec)
    }

    #[test]
    fn error_stats_pin_quantiles_exactly() {
        let values = [-0.5, -0.1, 0.0, 0.1, 0.5];
        let s = ErrorStats::from_values(&values).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.min, -0.5);
        assert_eq!(s.max, 0.5);
        assert!((s.bias - 0.0).abs() < 1e-12);
        assert!((s.mean_abs - 0.24).abs() < 1e-12);
        assert_eq!(s.drift(), Some(0.0));
        assert_eq!(ErrorStats::from_values(&[]), None);
    }

    #[test]
    fn drift_is_signed_fraction_of_mean_abs() {
        let all_under = ErrorStats::from_values(&[0.1, 0.2, 0.3]).unwrap();
        assert_eq!(all_under.drift(), Some(1.0));
        let all_over = ErrorStats::from_values(&[-0.1, -0.2]).unwrap();
        assert_eq!(all_over.drift(), Some(-1.0));
        let perfect = ErrorStats::from_values(&[0.0, 0.0]).unwrap();
        assert_eq!(perfect.drift(), None);
    }

    #[test]
    fn joins_tagged_spans_and_ignores_untagged() {
        let events = vec![
            tagged_span("sim", 0, 0, 2_000_000, 1.5, 0.5, 0.0),
            // Untagged span: no prediction to compare against.
            Event::span("stage 1", "sim", 2_000_000, 1_000_000).arg("stage", 1u64),
            Event::instant("query_completed", "sim", 3_000_000),
        ];
        let report = CalibrationReport::from_events(&events);
        assert_eq!(report.stages.len(), 1);
        let s = &report.stages[0];
        assert_eq!(s.stage, 0);
        assert_eq!(s.predicted_s, 2.0);
        assert_eq!(s.observed_s, 2.0);
        assert_eq!(s.rel_error, Some(0.0));
        assert_eq!(s.error_s, 0.0);
    }

    #[test]
    fn failures_are_attributed_to_their_containing_span() {
        let events = vec![
            tagged_span("sim", 0, 0, 3_000_000, 1.0, 0.0, 0.5),
            tagged_span("sim", 1, 3_000_000, 1_000_000, 1.0, 0.0, 0.0),
            // Failure inside stage 0's interval: lost 1s, repair 0.5s.
            Event::instant("node_failure", "sim", 1_000_000)
                .arg("stage", 0u64)
                .arg("node", 2u64)
                .arg("lost_s", 1.0)
                .arg("resumes_at_s", 1.5),
            // Engine-style failure (no resumes_at): attributed to stage 1.
            Event::instant("node_failure", "sim", 3_500_000).arg("stage", 1u64).arg("lost_s", 0.25),
        ];
        let report = CalibrationReport::from_events(&events);
        assert_eq!(report.stages[0].failures, 1);
        assert!((report.stages[0].observed_recovery_s - 1.5).abs() < 1e-9);
        assert_eq!(report.stages[1].failures, 1);
        assert!((report.stages[1].observed_recovery_s - 0.25).abs() < 1e-9);
    }

    #[test]
    fn blame_decomposes_the_signed_error() {
        // Predicted 1.0 run + 1.0 mat + 0.5 rec = 2.5s; observed 4.0s with
        // 1.5s observed recovery → recovery blame 1.0, residual 0.5 split
        // 50/50 between runtime and materialization.
        let events = vec![
            tagged_span("engine", 0, 0, 4_000_000, 1.0, 1.0, 0.5),
            Event::instant("node_failure", "engine", 500_000).arg("stage", 0u64).arg("lost_s", 1.5),
        ];
        let report = CalibrationReport::from_events(&events);
        let b = &report.stages[0].blame;
        assert!((b.recovery_s - 1.0).abs() < 1e-9);
        assert!((b.runtime_s - 0.25).abs() < 1e-9);
        assert!((b.materialization_s - 0.25).abs() < 1e-9);
        assert!((b.total_s() - report.stages[0].error_s).abs() < 1e-9);
    }

    #[test]
    fn query_join_pairs_estimate_with_completion() {
        let events = vec![
            Event::instant("plan_estimate", "sim", 0)
                .arg("pred_cost_s", 10.0)
                .arg("pred_runtime_s", 8.0),
            Event::instant("query_completed", "sim", 11_000_000),
            Event::instant("plan_estimate", "engine", 0).arg("pred_cost_s", 5.0),
            Event::instant("query_aborted", "engine", 20_000_000),
        ];
        let report = CalibrationReport::from_events(&events);
        assert_eq!(report.queries.len(), 2);
        let sim = &report.queries[0];
        assert_eq!(sim.cat, "sim");
        assert_eq!(sim.predicted_runtime_s, Some(8.0));
        assert!(!sim.aborted);
        assert!((sim.rel_error.unwrap() - 0.1).abs() < 1e-9);
        assert!(report.queries[1].aborted);
        assert_eq!(report.queries[1].rel_error, Some(3.0));
    }

    #[test]
    fn aggregate_stats_and_metrics_export() {
        let events = vec![
            tagged_span("sim", 0, 0, 1_100_000, 1.0, 0.0, 0.0), // +10%
            tagged_span("sim", 1, 1_100_000, 900_000, 1.0, 0.0, 0.0), // -10%
        ];
        let report = CalibrationReport::from_events(&events);
        let stats = report.stage_error_stats().unwrap();
        assert_eq!(stats.count, 2);
        assert!(stats.bias.abs() < 1e-9, "symmetric errors cancel");
        assert!((stats.mean_abs - 0.1).abs() < 1e-9);
        assert_eq!(report.drift_score(), Some(stats.drift().unwrap()));

        let reg = MetricsRegistry::new();
        report.export_metrics(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("calibration.stage_count"), Some(2.0));
        assert_eq!(snap.histogram("calibration.stage_rel_error_over").unwrap().count, 1);
        assert_eq!(snap.histogram("calibration.stage_rel_error_under").unwrap().count, 1);
        // The exported registry must survive the Prometheus formatter.
        let text = crate::export::to_prometheus(&snap);
        assert!(text.contains("# TYPE calibration_stage_rel_error_over histogram"));
    }

    #[test]
    fn summary_renders_stage_and_query_tables() {
        let events = vec![
            tagged_span("sim", 0, 0, 2_000_000, 1.5, 0.5, 0.0),
            Event::instant("plan_estimate", "sim", 0).arg("pred_cost_s", 2.0),
            Event::instant("query_completed", "sim", 2_000_000),
        ];
        let report = CalibrationReport::from_events(&events);
        let text = report.to_summary().render();
        assert!(text.contains("Calibration: predicted vs observed"));
        assert!(text.contains("rel err"));
        assert!(text.contains("+0.0%"));
        assert!(text.contains("T_Pt"));

        let empty = CalibrationReport::from_events(&[]);
        assert!(empty.to_summary().render().contains("no prediction-tagged events"));
    }

    #[test]
    fn measured_tm_comes_from_the_last_store_stats_instant() {
        let events = vec![
            tagged_span("engine", 0, 0, 2_000_000, 1.5, 0.5, 0.0),
            Event::instant("store_stats", "engine", 1_000_000).arg("write_bytes_per_s", 1e6),
            Event::instant("store_stats", "engine", 2_000_000).arg("write_bytes_per_s", 2e6),
        ];
        let report = CalibrationReport::from_events(&events);
        assert_eq!(report.measured_tm_bytes_per_s, Some(2e6));
        assert!(report.to_summary().render().contains("2.00 MB/s"));

        let reg = MetricsRegistry::new();
        report.export_metrics(&reg);
        assert_eq!(reg.snapshot().gauge("calibration.measured_tm_bytes_per_s"), Some(2e6));

        // Absent (or zero-rate) store stats leave the hook empty.
        let no_store =
            CalibrationReport::from_events(&[
                Event::instant("store_stats", "engine", 0).arg("write_bytes_per_s", 0.0)
            ]);
        assert_eq!(no_store.measured_tm_bytes_per_s, None);
    }

    #[test]
    fn report_round_trips_through_serde() {
        let events = vec![
            tagged_span("sim", 0, 0, 2_000_000, 1.5, 0.5, 0.1),
            Event::instant("plan_estimate", "sim", 0).arg("pred_cost_s", 2.1),
            Event::instant("query_completed", "sim", 2_000_000),
        ];
        let report = CalibrationReport::from_events(&events);
        let text = serde_json::to_string(&report).unwrap();
        let back: CalibrationReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
    }
}
