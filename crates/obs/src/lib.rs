//! Observability for the fault-tolerance stack.
//!
//! Three pieces, all dependency-light (serde + serde_json + parking_lot
//! only) so every other crate can depend on this one:
//!
//! - **Event recording** ([`event`], [`recorder`]): a [`Recorder`] trait
//!   with an allocation-free no-op implementation and an in-memory sink.
//!   Events carry explicit microsecond timestamps, so both wall-clock
//!   layers (the execution engine) and simulated-time layers (the
//!   discrete-event simulator) record through the same interface.
//! - **Metrics** ([`metrics`]): a registry of named counters, gauges and
//!   log-bucketed histograms whose [`metrics::MetricsSnapshot`] is
//!   serde-serializable for export and assertion in tests. Updates are
//!   lock-free (sharded atomic counters, atomic histograms), cheap
//!   enough that the process-global registry behind [`metrics::global`]
//!   is always on — the engine, store, optimizer search and simulator
//!   record into it even when no event recorder is attached.
//! - **Exporters** ([`export`]): JSONL event logs (one JSON object per
//!   line), Chrome trace-event JSON loadable in `chrome://tracing` /
//!   Perfetto, and the Prometheus text exposition format for metric
//!   snapshots.
//! - **Calibration** ([`calibrate`]): joins prediction-tagged stage spans
//!   against observed durations and failure instants, producing
//!   per-stage / per-query error distributions and a blame breakdown of
//!   the cost model's terms.
//! - **Live telemetry** ([`flight`], [`progress`], `serve`): an
//!   always-on bounded flight recorder with anomaly-triggered JSONL
//!   dumps, a per-query progress registry, and a dependency-free
//!   embedded HTTP server exposing `/metrics`, `/healthz`, `/flight`
//!   and `/queries` (`ftpde serve-metrics` wraps it; `ftpde top` polls
//!   it).
//!
//! The intended pattern at an instrumentation site:
//!
//! ```
//! use ftpde_obs::{Event, MemoryRecorder, Recorder};
//!
//! fn hot_path(rec: &dyn Recorder) {
//!     // One branch when disabled; the Event is only built when enabled.
//!     rec.record_with(|| Event::instant("cache_miss", "search", 42));
//! }
//!
//! let rec = MemoryRecorder::new();
//! hot_path(&rec);
//! assert_eq!(rec.events().len(), 1);
//! ```

pub mod calibrate;
pub mod event;
pub mod export;
pub mod flight;
pub mod metrics;
pub mod progress;
pub mod recorder;
pub mod report;
// The HTTP server serves the process-global flight recorder, which is
// unavailable under the loom model checker.
#[cfg(not(loom))]
pub mod serve;
pub mod sync;

pub use calibrate::{
    BlameBreakdown, CalibrationReport, ErrorStats, QueryCalibration, StageCalibration,
};
pub use event::{ArgValue, Event, Phase};
pub use flight::{FlightDump, FlightRecorder};
pub use metrics::{
    global, AtomicHistogram, Counter, Gauge, HistogramHandle, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot, MutexHistogram, ShardedCounter,
};
pub use progress::{ProgressRegistry, ProgressSnapshot, QueryHandle, QuerySnapshot};
pub use recorder::{MemoryRecorder, NoopRecorder, Recorder};
pub use report::{metrics_summary, Summary};
#[cfg(not(loom))]
pub use serve::{serve, serve_with, ServeOptions, ServerHandle};
