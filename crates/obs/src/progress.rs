//! Live per-query progress: the `/queries` data model.
//!
//! The engine coordinator registers every query run here (see
//! `ftpde-engine`'s coordinator) and updates it on the hot path with the
//! same discipline as the metrics registry: pre-resolved handles, one
//! atomic RMW per update, no locks. A [`ProgressRegistry::snapshot`] is
//! what the HTTP telemetry server serializes for `/queries` and what
//! `ftpde top` renders — stages done/total, retries, restarts, bytes
//! materialized, and predicted-vs-elapsed runtime (the prediction comes
//! from the cost model's [`EstimateBreakdown`], so drift between the
//! two columns is the live view of what `ftpde obs` calibrates offline).
//!
//! [`EstimateBreakdown`]: https://docs.rs/ftpde-core
//!
//! Completed queries are retained in a bounded recent-history list so a
//! dashboard polling a few times per second still sees short queries.

use std::collections::VecDeque;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::sync::clock;
use crate::sync::plain::{Arc, AtomicU32, AtomicU64, Mutex, OnceLock, Ordering};

/// Completed/aborted queries kept for `/queries` after they finish.
pub const RECENT_KEEP: usize = 32;

const STATE_RUNNING: u32 = 0;
const STATE_COMPLETED: u32 = 1;
const STATE_ABORTED: u32 = 2;

/// Shared mutable state of one live query, all-atomic so worker threads
/// and the coordinator update it without locks.
#[derive(Debug)]
struct QueryState {
    id: u64,
    label: String,
    started: Instant,
    /// Cost-model predicted runtime in seconds, when an estimate was
    /// supplied at registration.
    predicted_s: Option<f64>,
    stages_total: AtomicU64,
    stages_done: AtomicU64,
    retries: AtomicU64,
    restarts: AtomicU64,
    bytes_materialized: AtomicU64,
    rows_materialized: AtomicU64,
    segments_corrupt: AtomicU64,
    state: AtomicU32,
    final_elapsed_us: AtomicU64,
}

impl QueryState {
    fn snapshot(&self) -> QuerySnapshot {
        let state = self.state.load(Ordering::Relaxed);
        let elapsed_s = if state == STATE_RUNNING {
            clock::elapsed(self.started).as_secs_f64()
        } else {
            self.final_elapsed_us.load(Ordering::Relaxed) as f64 / 1e6
        };
        let stages_total = self.stages_total.load(Ordering::Relaxed);
        let stages_done = self.stages_done.load(Ordering::Relaxed).min(stages_total);
        QuerySnapshot {
            id: self.id,
            label: self.label.clone(),
            state: match state {
                STATE_COMPLETED => "completed",
                STATE_ABORTED => "aborted",
                _ => "running",
            }
            .to_owned(),
            stages_done,
            stages_total,
            retries: self.retries.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            bytes_materialized: self.bytes_materialized.load(Ordering::Relaxed),
            rows_materialized: self.rows_materialized.load(Ordering::Relaxed),
            segments_corrupt: self.segments_corrupt.load(Ordering::Relaxed),
            elapsed_s,
            predicted_s: self.predicted_s,
        }
    }
}

/// One query's progress as serialized on `/queries`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySnapshot {
    /// Registry-assigned id, unique within the process.
    pub id: u64,
    /// Human-readable label (the engine uses the sink operator's name).
    pub label: String,
    /// `"running"`, `"completed"` or `"aborted"`.
    pub state: String,
    /// Stages finished (executed or resumed from the store) this attempt.
    /// A coarse restart resets this to zero.
    pub stages_done: u64,
    /// Stages in the collapsed plan.
    pub stages_total: u64,
    /// Fine-grained per-node sub-plan re-executions so far.
    pub retries: u64,
    /// Coarse whole-query restarts so far.
    pub restarts: u64,
    /// Physical bytes committed to the fault-tolerant store so far.
    pub bytes_materialized: u64,
    /// Logical rows written to the store so far.
    pub rows_materialized: u64,
    /// Corrupt segments encountered (and recovered from) so far.
    pub segments_corrupt: u64,
    /// Wall-clock seconds: still counting for running queries, final
    /// otherwise.
    pub elapsed_s: f64,
    /// Cost-model predicted runtime in seconds, when known. Comparing it
    /// against `elapsed_s` is the live calibration-drift view.
    pub predicted_s: Option<f64>,
}

impl QuerySnapshot {
    /// Fraction of stages done this attempt, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.stages_total == 0 {
            return 0.0;
        }
        self.stages_done as f64 / self.stages_total as f64
    }
}

/// The `/queries` payload: every live query plus a bounded recent
/// history, live first, each group in start order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProgressSnapshot {
    /// Per-query progress rows.
    pub queries: Vec<QuerySnapshot>,
}

impl ProgressSnapshot {
    /// Number of queries currently running.
    pub fn running(&self) -> usize {
        self.queries.iter().filter(|q| q.state == "running").count()
    }
}

#[derive(Debug, Default)]
struct Inner {
    live: Vec<Arc<QueryState>>,
    recent: VecDeque<QuerySnapshot>,
}

/// Registry of live (and recently finished) query runs.
#[derive(Debug, Default)]
pub struct ProgressRegistry {
    next_id: AtomicU64,
    inner: Mutex<Inner>,
}

impl ProgressRegistry {
    /// An empty registry. Most callers want [`global`] instead.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a starting query and returns its update handle.
    /// `predicted_s` is the cost model's runtime estimate when available.
    pub fn start(
        self: &Arc<Self>,
        label: impl Into<String>,
        stages_total: u64,
        predicted_s: Option<f64>,
    ) -> QueryHandle {
        let state = Arc::new(QueryState {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            label: label.into(),
            started: clock::now(),
            predicted_s: predicted_s.filter(|p| p.is_finite()),
            stages_total: AtomicU64::new(stages_total),
            stages_done: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            bytes_materialized: AtomicU64::new(0),
            rows_materialized: AtomicU64::new(0),
            segments_corrupt: AtomicU64::new(0),
            state: AtomicU32::new(STATE_RUNNING),
            final_elapsed_us: AtomicU64::new(0),
        });
        self.inner.lock().live.push(Arc::clone(&state));
        QueryHandle { state, registry: Arc::clone(self) }
    }

    /// Everything the registry knows right now.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let inner = self.inner.lock();
        let mut queries: Vec<QuerySnapshot> = inner.live.iter().map(|s| s.snapshot()).collect();
        queries.extend(inner.recent.iter().cloned());
        ProgressSnapshot { queries }
    }

    fn finish(&self, state: &Arc<QueryState>) {
        let mut inner = self.inner.lock();
        inner.live.retain(|s| s.id != state.id);
        inner.recent.push_back(state.snapshot());
        while inner.recent.len() > RECENT_KEEP {
            inner.recent.pop_front();
        }
    }
}

/// Update handle for one registered query. All methods are single atomic
/// RMWs, safe to call from worker threads. Dropping a handle that was
/// never [`complete`](QueryHandle::complete)d marks the query aborted —
/// a panicking run must not linger as "running" forever.
#[derive(Debug)]
pub struct QueryHandle {
    state: Arc<QueryState>,
    registry: Arc<ProgressRegistry>,
}

impl QueryHandle {
    /// Registry-assigned query id.
    pub fn id(&self) -> u64 {
        self.state.id
    }

    /// One more stage finished (executed or resume-skipped).
    pub fn stage_done(&self) {
        self.state.stages_done.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds fine-grained node retries.
    pub fn add_retries(&self, n: u64) {
        if n > 0 {
            self.state.retries.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// A coarse whole-query restart: progress rewinds to zero stages.
    pub fn restart(&self) {
        self.state.restarts.fetch_add(1, Ordering::Relaxed);
        self.state.stages_done.store(0, Ordering::Relaxed);
    }

    /// Adds recovered corrupt-segment encounters.
    pub fn add_corrupt(&self, n: u64) {
        if n > 0 {
            self.state.segments_corrupt.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Sets the run's materialized-volume counters (monotone totals,
    /// typically the store-stats delta since the run began).
    pub fn set_materialized(&self, bytes: u64, rows: u64) {
        self.state.bytes_materialized.store(bytes, Ordering::Relaxed);
        self.state.rows_materialized.store(rows, Ordering::Relaxed);
    }

    /// Marks the query finished and moves it to the recent list.
    /// Idempotent; the handle's `Drop` calls this with `aborted = true`
    /// if nobody did.
    pub fn complete(&self, aborted: bool) {
        let new = if aborted { STATE_ABORTED } else { STATE_COMPLETED };
        if self
            .state
            .state
            .compare_exchange(STATE_RUNNING, new, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
        {
            self.state
                .final_elapsed_us
                .store(clock::elapsed(self.state.started).as_micros() as u64, Ordering::Relaxed);
            self.registry.finish(&self.state);
        }
    }
}

impl Drop for QueryHandle {
    fn drop(&mut self) {
        self.complete(true);
    }
}

/// The process-global progress registry the engine coordinator reports
/// into and the telemetry server serves from.
pub fn global() -> &'static Arc<ProgressRegistry> {
    static GLOBAL: OnceLock<Arc<ProgressRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(ProgressRegistry::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_running_to_completed() {
        let reg = Arc::new(ProgressRegistry::new());
        let h = reg.start("q3", 4, Some(2.5));
        h.stage_done();
        h.stage_done();
        h.add_retries(3);
        h.set_materialized(1024, 10);
        let snap = reg.snapshot();
        assert_eq!(snap.queries.len(), 1);
        let q = &snap.queries[0];
        assert_eq!(q.state, "running");
        assert_eq!((q.stages_done, q.stages_total), (2, 4));
        assert_eq!(q.retries, 3);
        assert_eq!(q.bytes_materialized, 1024);
        assert_eq!(q.predicted_s, Some(2.5));
        assert!((q.progress() - 0.5).abs() < 1e-12);
        assert_eq!(snap.running(), 1);

        h.complete(false);
        let snap = reg.snapshot();
        assert_eq!(snap.queries.len(), 1, "finished query stays in recent history");
        assert_eq!(snap.queries[0].state, "completed");
        assert_eq!(snap.running(), 0);
    }

    #[test]
    fn restart_rewinds_progress() {
        let reg = Arc::new(ProgressRegistry::new());
        let h = reg.start("coarse", 3, None);
        h.stage_done();
        h.restart();
        let q = &reg.snapshot().queries[0];
        assert_eq!(q.stages_done, 0);
        assert_eq!(q.restarts, 1);
        assert_eq!(q.predicted_s, None);
    }

    #[test]
    fn drop_without_complete_marks_aborted() {
        let reg = Arc::new(ProgressRegistry::new());
        drop(reg.start("doomed", 2, None));
        let snap = reg.snapshot();
        assert_eq!(snap.queries[0].state, "aborted");
    }

    #[test]
    fn complete_is_idempotent_and_recent_is_bounded() {
        let reg = Arc::new(ProgressRegistry::new());
        for i in 0..(RECENT_KEEP + 5) {
            let h = reg.start(format!("q{i}"), 1, None);
            h.stage_done();
            h.complete(false);
            h.complete(true); // second call must not double-insert or flip state
        }
        let snap = reg.snapshot();
        assert_eq!(snap.queries.len(), RECENT_KEEP);
        assert!(snap.queries.iter().all(|q| q.state == "completed"));
        // Oldest entries were evicted: the first surviving label is q5.
        assert_eq!(snap.queries[0].label, "q5");
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = Arc::new(ProgressRegistry::new());
        let h = reg.start("q5", 6, Some(1.25));
        h.stage_done();
        let snap = reg.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: ProgressSnapshot = serde_json::from_str(&text).unwrap();
        // elapsed_s keeps ticking for running queries; compare the rest.
        assert_eq!(back.queries.len(), 1);
        assert_eq!(back.queries[0].label, snap.queries[0].label);
        assert_eq!(back.queries[0].stages_done, 1);
        assert_eq!(back.queries[0].predicted_s, Some(1.25));
        drop(h);
    }

    #[test]
    fn stages_done_never_exceeds_total_in_snapshot() {
        let reg = Arc::new(ProgressRegistry::new());
        let h = reg.start("overshoot", 2, None);
        h.stage_done();
        h.stage_done();
        h.stage_done();
        assert_eq!(reg.snapshot().queries[0].stages_done, 2);
        h.complete(false);
    }
}
