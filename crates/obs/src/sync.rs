//! Synchronization shim for the flight recorder: `std` + `parking_lot`
//! normally, `loom` under `--cfg loom`.
//!
//! The flight recorder ([`crate::flight`]) is the one piece of this crate
//! with a non-trivial concurrent protocol — a ticket-dispensing ring
//! written by every worker thread and snapshotted concurrently — so its
//! primitives cross this module and the loom CI job
//! (`RUSTFLAGS="--cfg loom"`) model-checks the very ring the production
//! build runs (`crates/obs/tests/loom.rs`). Everything else in the crate
//! (metrics registry, progress registry, HTTP server) uses plain `std` /
//! `parking_lot` directly: those paths are either lock-free single-word
//! atomics or coarse mutexes with no ordering protocol worth modeling.

#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicU64, Ordering};

#[cfg(not(loom))]
pub use parking_lot::{Mutex, MutexGuard};

#[cfg(loom)]
mod loom_impl {
    /// Guard returned by [`Mutex::lock`].
    pub type MutexGuard<'a, T> = loom::sync::MutexGuard<'a, T>;

    /// A loom-instrumented mutex with parking_lot's non-poisoning API.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(loom::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Creates a new mutex.
        pub fn new(value: T) -> Self {
            Mutex(loom::sync::Mutex::new(value))
        }

        /// Acquires the lock. Every acquisition is a loom schedule point.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }
}

#[cfg(loom)]
pub use loom_impl::{Mutex, MutexGuard};
