//! Synchronization shim for the flight recorder: `std` + `parking_lot`
//! normally, `loom` under `--cfg loom`.
//!
//! The flight recorder ([`crate::flight`]) is the one piece of this crate
//! with a non-trivial concurrent protocol — a ticket-dispensing ring
//! written by every worker thread and snapshotted concurrently — so its
//! primitives cross this module and the loom CI job
//! (`RUSTFLAGS="--cfg loom"`) model-checks the very ring the production
//! build runs (`crates/obs/tests/loom.rs`). Everything else in the crate
//! (metrics registry, progress registry, HTTP server) uses [`plain`]:
//! `std` / `parking_lot` in every build, documented as *outside* the
//! loom-modeled protocol — those paths are either lock-free single-word
//! atomics or coarse mutexes with no ordering protocol worth modeling.
//! The source-discipline analyzer (`FT201`, `ftpde lint --source`)
//! enforces that every primitive in library code routes through one of
//! the two, so the split is visible instead of ambient.
//!
//! [`clock`] is the workspace's wall-clock seam (`FT202`): library code
//! reads time through it, which is what lets a future deterministic
//! simulator virtualize time without touching the call sites.

#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicU64, Ordering};

#[cfg(not(loom))]
pub use parking_lot::{Mutex, MutexGuard};

#[cfg(loom)]
mod loom_impl {
    /// Guard returned by [`Mutex::lock`].
    pub type MutexGuard<'a, T> = loom::sync::MutexGuard<'a, T>;

    /// A loom-instrumented mutex with parking_lot's non-poisoning API.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(loom::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Creates a new mutex.
        pub fn new(value: T) -> Self {
            Mutex(loom::sync::Mutex::new(value))
        }

        /// Acquires the lock. Every acquisition is a loom schedule point.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }
}

#[cfg(loom)]
pub use loom_impl::{Mutex, MutexGuard};

/// `std`/`parking_lot` primitives re-exported unchanged in **every**
/// build, including `--cfg loom`.
///
/// Code importing from here is declaring: *this synchronization is not
/// part of a loom-modeled protocol* — lock-free counters, coarse
/// registry mutexes, thread handles for the HTTP acceptor. Routing the
/// declaration through one module keeps the escape visible (grep
/// `sync::plain`) and lets the `FT201` source lint flag any primitive
/// that bypasses both this module and the loom-switched one above.
/// Anything with an ordering protocol worth model-checking belongs on
/// the loom-switched re-exports instead.
pub mod plain {
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    pub use std::sync::{Arc, OnceLock};
    pub use std::thread;

    pub use parking_lot::{Mutex, MutexGuard, RwLock};
}

/// The wall-clock seam: all library reads of monotonic time route
/// through [`clock::now`]/[`clock::elapsed`] (`FT202`).
///
/// Normally this is exactly `Instant::now()`. The indirection buys one
/// thing: a process-global virtual offset that a deterministic
/// simulator (ROADMAP: VOPR-style sim) can [`advance`](clock::advance)
/// to fast-forward timeouts and make timing-dependent control flow
/// reproducible, without touching any call site. The offset starts at
/// zero and nothing in production advances it, so shipping behavior is
/// byte-identical to calling `Instant::now()` directly.
pub mod clock {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{Duration, Instant};

    /// The offset logic behind the global functions, kept as a struct
    /// so tests can exercise advancement without perturbing the
    /// process-global clock other tests are reading.
    #[derive(Debug, Default)]
    pub struct VirtualClock {
        /// Nanoseconds of virtual time added on top of the real clock.
        offset_nanos: AtomicU64,
    }

    impl VirtualClock {
        /// A clock with zero offset: indistinguishable from the real one.
        pub const fn new() -> Self {
            VirtualClock { offset_nanos: AtomicU64::new(0) }
        }

        /// The current instant: real monotonic time plus the virtual
        /// offset. Monotone because both terms are.
        pub fn now(&self) -> Instant {
            Instant::now() + Duration::from_nanos(self.offset_nanos.load(Ordering::Relaxed))
        }

        /// Time elapsed since `earlier` on this clock — the seam's
        /// replacement for `earlier.elapsed()`. Saturates to zero if
        /// `earlier` was taken after the last offset advance.
        pub fn elapsed(&self, earlier: Instant) -> Duration {
            self.now().saturating_duration_since(earlier)
        }

        /// Fast-forwards the clock by `delta`. Simulator-only; nothing
        /// in production calls this. Saturates at u64 nanoseconds
        /// (~584 years of virtual time).
        pub fn advance(&self, delta: Duration) {
            let nanos = u64::try_from(delta.as_nanos()).unwrap_or(u64::MAX);
            let mut cur = self.offset_nanos.load(Ordering::Relaxed);
            // CAS loop: `fetch_add` would wrap, not saturate.
            while let Err(seen) = self.offset_nanos.compare_exchange_weak(
                cur,
                cur.saturating_add(nanos),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                cur = seen;
            }
        }
    }

    /// The process-global clock every library call site reads.
    static GLOBAL: VirtualClock = VirtualClock::new();

    /// The current instant on the global clock (drop-in for
    /// `Instant::now()`).
    pub fn now() -> Instant {
        GLOBAL.now()
    }

    /// Elapsed time since `earlier` on the global clock (drop-in for
    /// `earlier.elapsed()`).
    pub fn elapsed(earlier: Instant) -> Duration {
        GLOBAL.elapsed(earlier)
    }

    /// Fast-forwards the global clock. Simulator-only.
    pub fn advance(delta: Duration) {
        GLOBAL.advance(delta);
    }

    #[cfg(all(test, not(loom)))]
    mod tests {
        use super::*;

        #[test]
        fn advancing_moves_now_and_elapsed_saturates() {
            let clock = VirtualClock::new();
            let t0 = clock.now();
            clock.advance(Duration::from_secs(3600));
            assert!(clock.elapsed(t0) >= Duration::from_secs(3600));
            // An instant taken after the jump is "in the future" of t0
            // but elapsed against a *later* instant saturates to zero
            // rather than panicking.
            let t1 = clock.now();
            assert_eq!(Duration::ZERO, VirtualClock::new().elapsed(t1));
            // Overflow-proof: a ludicrous delta saturates.
            clock.advance(Duration::from_secs(u64::MAX));
            let _ = clock.now();
        }

        #[test]
        fn global_clock_is_monotone_and_starts_real() {
            let a = now();
            let b = now();
            assert!(b >= a);
            assert!(elapsed(a) < Duration::from_secs(3600), "offset starts at zero");
        }
    }
}
