//! Loom model of the flight-recorder ring (`RUSTFLAGS="--cfg loom"`).
//!
//! The protocol under test is `ftpde_obs::flight`'s ticket ring: writers
//! claim a ticket from an atomic counter and store `(ticket, event)`
//! behind the slot's mutex; a snapshot locks each slot briefly and
//! orders the occupied entries by ticket. Because the ring's
//! synchronization routes through `ftpde_obs::sync`, the model checks
//! the exact primitives the production build runs.
//!
//! Invariants checked across adversarial interleavings:
//!
//! 1. **No torn events** — a snapshot taken concurrently with writers
//!    only ever observes events that were written, each internally
//!    consistent (name, timestamp and track agree).
//! 2. **Bounded loss** — once writers finish, a snapshot holds exactly
//!    `min(total, capacity)` events: the newest `capacity` tickets, in
//!    ticket order.

#![cfg(loom)]

use ftpde_obs::flight::FlightRecorder;
use ftpde_obs::{Event, Recorder};
use loom::sync::Arc;
use loom::thread;

/// Encodes writer `t`'s `i`-th event so a reader can verify every field
/// against every other field — any torn mix of two writes is detectable.
fn encoded(t: u64, i: u64) -> Event {
    Event::instant(format!("w{t}e{i}"), "loom", t * 10 + i).tid(t as u32)
}

/// Asserts the event is an untorn copy of some `encoded(t, i)`.
fn assert_untorn(e: &Event) {
    assert_eq!(e.cat, "loom", "foreign event in ring: {e:?}");
    let bytes = e.name.as_bytes();
    assert_eq!(bytes.len(), 4, "torn name: {e:?}");
    let t = u64::from(bytes[1] - b'0');
    let i = u64::from(bytes[3] - b'0');
    assert_eq!(e.ts_us, t * 10 + i, "fields disagree (torn write): {e:?}");
    assert_eq!(u64::from(e.tid), t, "fields disagree (torn write): {e:?}");
}

#[test]
fn concurrent_writers_vs_snapshot_no_tearing_bounded_loss() {
    loom::model(|| {
        // Capacity 2 with 4 total writes forces wraparound — the
        // interesting regime where a slot is overwritten while a
        // concurrent snapshot walks the ring.
        let fr = Arc::new(FlightRecorder::new(2));

        let writers: Vec<_> = (0..2u64)
            .map(|t| {
                let fr = Arc::clone(&fr);
                thread::spawn(move || {
                    for i in 0..2u64 {
                        fr.record(encoded(t, i));
                    }
                })
            })
            .collect();

        // Snapshot races the writers: whatever it sees must be untorn
        // and in ticket order.
        let mid = {
            let fr = Arc::clone(&fr);
            thread::spawn(move || fr.snapshot()).join().unwrap()
        };
        assert!(mid.len() <= 2, "snapshot exceeds capacity");
        for e in &mid {
            assert_untorn(e);
        }

        for w in writers {
            w.join().unwrap();
        }

        // Quiescent: exactly the newest `capacity` tickets survive.
        assert_eq!(fr.total_recorded(), 4);
        let fin = fr.snapshot();
        assert_eq!(fin.len(), 2, "loss must be bounded by capacity");
        for e in &fin {
            assert_untorn(e);
        }
    });
}

#[test]
fn snapshot_sees_every_event_within_capacity() {
    loom::model(|| {
        // One writer, capacity ≥ writes: the quiescent snapshot is
        // exactly the write order; a racing snapshot is a subsequence.
        let fr = Arc::new(FlightRecorder::new(4));
        let w = {
            let fr = Arc::clone(&fr);
            thread::spawn(move || {
                for i in 0..3u64 {
                    fr.record(encoded(0, i));
                }
            })
        };
        let racer = {
            let fr = Arc::clone(&fr);
            thread::spawn(move || fr.snapshot())
        };
        let mid = racer.join().unwrap();
        for e in &mid {
            assert_untorn(e);
        }
        // A racing snapshot is a ticket-ordered *subsequence* of the
        // write order — it may miss an event whose slot it visited
        // before the store landed, but never reorders or duplicates.
        let names: Vec<&str> = mid.iter().map(|e| e.name.as_str()).collect();
        let full = ["w0e0", "w0e1", "w0e2"];
        let mut cursor = 0usize;
        for n in &names {
            match full[cursor..].iter().position(|f| f == n) {
                Some(p) => cursor += p + 1,
                None => panic!("snapshot not a write-order subsequence: {names:?}"),
            }
        }
        w.join().unwrap();
        let fin = fr.snapshot();
        assert_eq!(
            fin.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(),
            vec!["w0e0", "w0e1", "w0e2"]
        );
    });
}
