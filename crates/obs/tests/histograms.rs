//! Integration coverage for the histogram layer through the public API:
//! `HistogramSnapshot` quantile edge cases, `bucket_bounds` round-trips
//! against `observe`, and differential consistency of the lock-free
//! `AtomicHistogram` against the mutex-based reference implementation.

use ftpde_obs::{AtomicHistogram, HistogramSnapshot, MetricsRegistry, MutexHistogram};

fn snapshot_of(values: &[f64]) -> HistogramSnapshot {
    let h = AtomicHistogram::new();
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

#[test]
fn quantile_of_empty_histogram_is_none() {
    let empty = HistogramSnapshot::empty();
    for q in [0.0, 0.5, 1.0] {
        assert_eq!(empty.quantile(q), None);
    }
    assert_eq!(empty.mean(), None);
    assert_eq!(empty.count, 0);
    assert!(empty.buckets.is_empty());
}

#[test]
fn quantile_extremes_return_exact_min_and_max() {
    let h = snapshot_of(&[0.031, 7.0, 7.1, 900.0, 3.5]);
    assert_eq!(h.quantile(0.0), Some(0.031));
    assert_eq!(h.quantile(1.0), Some(900.0));
    // Out-of-range q clamps rather than panicking or extrapolating.
    assert_eq!(h.quantile(-3.0), Some(0.031));
    assert_eq!(h.quantile(42.0), Some(900.0));
}

#[test]
fn single_bucket_histogram_is_exact_at_every_quantile() {
    // All values in [4, 8) land in one bucket; min/max clamping pins
    // every quantile inside the observed range.
    let h = snapshot_of(&[4.5, 5.0, 6.0, 7.5]);
    assert_eq!(h.buckets.len(), 1);
    for q in [0.0, 0.1, 0.5, 0.9, 1.0] {
        let v = h.quantile(q).unwrap();
        assert!((4.5..=7.5).contains(&v), "q = {q} escaped [min, max]: {v}");
    }
    assert_eq!(h.quantile(0.0), Some(4.5));
    assert_eq!(h.quantile(1.0), Some(7.5));
}

#[test]
fn single_observation_is_every_quantile() {
    let h = snapshot_of(&[13.37]);
    for q in [0.0, 0.25, 0.5, 0.75, 1.0] {
        assert_eq!(h.quantile(q), Some(13.37));
    }
    assert_eq!(h.mean(), Some(13.37));
}

#[test]
fn bucket_bounds_round_trip_with_observe() {
    // Every observed value must fall inside the [lo, hi) range of the
    // bucket its observation incremented.
    let values = [1e-9, 0.001, 0.25, 0.5, 0.99, 1.0, 1.5, 2.0, 3.0, 64.0, 1e6, 1e11];
    for v in values {
        let h = snapshot_of(&[v]);
        assert_eq!(h.count, 1);
        let (i, c) = h.buckets[0];
        assert_eq!(c, 1);
        let (lo, hi) = HistogramSnapshot::bucket_bounds(i);
        assert!(lo <= v && v < hi, "{v} outside its bucket {i} = [{lo}, {hi})");
        assert!((hi - 2.0 * lo).abs() < f64::EPSILON * hi, "buckets are one octave wide");
    }
}

#[test]
fn bucket_bounds_of_adjacent_indices_tile_the_axis() {
    for i in 0..79u64 {
        let (_, hi) = HistogramSnapshot::bucket_bounds(i);
        let (next_lo, _) = HistogramSnapshot::bucket_bounds(i + 1);
        assert_eq!(hi, next_lo, "gap between buckets {i} and {}", i + 1);
    }
}

#[test]
fn extreme_values_clamp_into_edge_buckets() {
    // Values beyond the bucketed range clamp to the first/last bucket,
    // so counts are never dropped; min/max still record exact values.
    let h = snapshot_of(&[1e-300, 1e300]);
    assert_eq!(h.count, 2);
    assert_eq!(h.min, Some(1e-300));
    assert_eq!(h.max, Some(1e300));
    let indices: Vec<u64> = h.buckets.iter().map(|&(i, _)| i).collect();
    assert_eq!(indices, vec![0, 79]);
}

#[test]
fn atomic_and_mutex_histograms_agree_on_any_quiescent_stream() {
    // Differential test: a deterministic pseudo-random value stream
    // observed into both implementations yields identical snapshots.
    let atomic = AtomicHistogram::new();
    let mutex = MutexHistogram::new();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for _ in 0..10_000 {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let v = (state >> 11) as f64 / (1u64 << 53) as f64 * 1e4 + 1e-6;
        atomic.observe(v);
        mutex.observe(v);
    }
    let a = atomic.snapshot();
    let m = mutex.snapshot();
    assert_eq!(a.count, m.count);
    assert_eq!(a.min, m.min);
    assert_eq!(a.max, m.max);
    assert_eq!(a.buckets, m.buckets);
    assert!((a.sum - m.sum).abs() < 1e-6 * m.sum.abs().max(1.0));
    for q in [0.0, 0.01, 0.1, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(a.quantile(q), m.quantile(q), "quantile {q} diverged");
    }
}

#[test]
fn merged_per_thread_snapshots_match_one_shared_atomic_histogram() {
    // Eight threads observe disjoint value ranges into (a) one shared
    // atomic histogram and (b) a private mutex histogram each. Merging
    // the per-thread snapshots must reproduce the shared histogram.
    const THREADS: usize = 8;
    const PER_THREAD: usize = 1_000;
    let shared = AtomicHistogram::new();
    let merged = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let shared = &shared;
                s.spawn(move || {
                    let local = MutexHistogram::new();
                    for i in 0..PER_THREAD {
                        let v = (t * PER_THREAD + i + 1) as f64 * 0.01;
                        shared.observe(v);
                        local.observe(v);
                    }
                    local.snapshot()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("observer thread"))
            .fold(HistogramSnapshot::empty(), |acc, s| acc.merge(&s))
    });
    let a = shared.snapshot();
    assert_eq!(a.count, (THREADS * PER_THREAD) as u64);
    assert_eq!(a.count, merged.count);
    assert_eq!(a.min, merged.min);
    assert_eq!(a.max, merged.max);
    assert_eq!(a.buckets, merged.buckets);
    assert!((a.sum - merged.sum).abs() < 1e-6 * merged.sum.abs().max(1.0));
}

#[test]
fn merge_is_commutative_and_has_empty_identity() {
    let a = snapshot_of(&[1.0, 2.0, 3.0]);
    let b = snapshot_of(&[0.125, 700.0]);
    assert_eq!(a.merge(&b), b.merge(&a));
    assert_eq!(a.merge(&HistogramSnapshot::empty()), a);
    assert_eq!(HistogramSnapshot::empty().merge(&b), b);
}

#[test]
fn registry_snapshots_round_trip_through_serde() {
    // BENCH JSON embeds snapshots; they must survive serialization.
    let reg = MetricsRegistry::new();
    reg.counter_add("engine.node_retries_total", 4);
    reg.gauge_set("bench.overhead_pct", 2.5);
    for v in [0.002, 0.004, 0.1] {
        reg.observe("engine.stage_seconds", v);
    }
    let snap = reg.snapshot();
    let json = serde_json::to_string(&snap).unwrap();
    let back: ftpde_obs::MetricsSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snap);
    assert_eq!(back.histogram("engine.stage_seconds").unwrap().count, 3);
}
