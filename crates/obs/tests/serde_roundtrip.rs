//! Serde round-trip guarantees for the exported observability types:
//! trace events (through JSON and the JSONL exporter) and metric
//! snapshots survive serialize → deserialize without loss.

use ftpde_obs::{
    export, ArgValue, Event, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, Phase,
};

fn sample_events() -> Vec<Event> {
    vec![
        Event::span("stage 3", "engine", 1_000, 2_500)
            .tid(2)
            .arg("stage", 3u64)
            .arg("node", 1u64)
            .arg("ok", true),
        Event::instant("node_failure", "engine", 3_141)
            .tid(1)
            .arg("lost_s", 4.5f64)
            .arg("label", "mid-op")
            .arg("delta", -7i64),
        Event::instant("query_completed", "sim", 9_999),
    ]
}

#[test]
fn events_round_trip_through_json() {
    for ev in sample_events() {
        let text = serde_json::to_string(&ev).unwrap();
        let back: Event = serde_json::from_str(&text).unwrap();
        assert_eq!(back, ev);
    }
}

#[test]
fn events_round_trip_through_the_jsonl_exporter() {
    let events = sample_events();
    let text = export::to_jsonl(&events);
    assert_eq!(text.lines().count(), events.len());
    let back = export::from_jsonl(&text).unwrap();
    assert_eq!(back, events);
    // Every arg value variant survived.
    let failure = &back[1];
    assert_eq!(failure.phase, Phase::Instant);
    assert_eq!(failure.get_arg("lost_s"), Some(&ArgValue::F64(4.5)));
    assert_eq!(failure.get_arg("label"), Some(&ArgValue::Str("mid-op".into())));
    assert_eq!(failure.get_arg("delta"), Some(&ArgValue::I64(-7)));
    assert_eq!(back[0].get_arg("ok"), Some(&ArgValue::Bool(true)));
    assert_eq!(back[0].get_arg("stage"), Some(&ArgValue::U64(3)));
}

#[test]
fn metrics_snapshot_round_trips_through_json() {
    let reg = MetricsRegistry::new();
    reg.counter_add("search.memo_hits", 42);
    reg.counter_add("engine.node_retries", 3);
    reg.gauge_set("sim.overhead_pct", 12.5);
    for v in [0.25, 1.0, 3.0, 250.0] {
        reg.observe("engine.stage_seconds", v);
    }
    let snap = reg.snapshot();

    let text = serde_json::to_string(&snap).unwrap();
    let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
    assert_eq!(back, snap);
    assert_eq!(back.counter("search.memo_hits"), 42);
    assert_eq!(back.gauge("sim.overhead_pct"), Some(12.5));
    let h = back.histogram("engine.stage_seconds").unwrap();
    assert_eq!(h.count, 4);
    assert_eq!(h.mean(), snap.histogram("engine.stage_seconds").unwrap().mean());
}

#[test]
fn registry_snapshots_are_always_json_safe() {
    let reg = MetricsRegistry::new();
    reg.observe("h", 1.0);
    let snap = reg.snapshot();
    let (_, h) = &snap.histograms[0];
    assert!(h.min.unwrap().is_finite() && h.max.unwrap().is_finite());
    let back: MetricsSnapshot =
        serde_json::from_str(&serde_json::to_string(&snap).unwrap()).unwrap();
    assert_eq!(back, snap);
}

#[test]
fn empty_histogram_snapshot_round_trips_through_json() {
    // A never-observed histogram used to carry ±inf sentinels that became
    // `null` under JSON and failed to deserialize; min/max are now
    // `Option<f64>` so the empty state survives the round trip.
    let empty = HistogramSnapshot::empty();
    assert_eq!(empty.mean(), None);
    assert_eq!(empty.quantile(0.5), None);
    let text = serde_json::to_string(&empty).unwrap();
    let back: HistogramSnapshot = serde_json::from_str(&text).unwrap();
    assert_eq!(back, empty);
    assert_eq!(back.min, None);
    assert_eq!(back.max, None);
}
