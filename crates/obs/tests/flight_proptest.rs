//! Property tests for flight-recorder anomaly dumps.
//!
//! The contract under test is the acceptance criterion of the telemetry
//! plane: *any* anomaly dump — whatever mix of ordinary events, anomaly
//! instants and over-budget spans preceded it — is a JSONL file that
//! replays cleanly through the same parser `ftpde check` / `ftpde obs`
//! use ([`ftpde_obs::export::from_jsonl`]), reproduces the ring window
//! exactly, and preserves per-track event order.

use proptest::collection;
use proptest::prelude::*;

use ftpde_obs::export::from_jsonl;
use ftpde_obs::flight::{FlightRecorder, DUMP_TRIGGERS};
use ftpde_obs::{Event, Phase, Recorder};

/// Names a generated event can take: indexes 0–2 are the anomaly
/// triggers, the rest are ordinary engine-shaped events.
const NAMES: [&str; 7] = [
    "segment_corrupt",
    "input_rewind",
    "query_restart",
    "stage 3",
    "attempt",
    "materialize",
    "stage_skipped",
];

const BUDGET_US: u64 = 1000;

/// Builds the `i`-th generated event from its drawn parameters.
fn build(i: usize, name_idx: usize, tid: u32, dur_us: u64, span: bool) -> Event {
    let name = NAMES[name_idx % NAMES.len()];
    let ts = i as u64 * 10;
    if span {
        Event::span(name, "engine", ts, dur_us).tid(tid).arg("seq", i)
    } else {
        Event::instant(name, "engine", ts).tid(tid).arg("seq", i)
    }
}

/// Whether the event fires a dump under the recorder's trigger rules
/// (mirrors `FlightRecorder::trigger_of` so the test predicts dumps
/// independently of the implementation).
fn triggers(e: &Event) -> bool {
    DUMP_TRIGGERS.contains(&e.name.as_str()) || (e.phase == Phase::Span && e.dur_us > BUDGET_US)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every dump a random event sequence produces replays losslessly
    /// through the JSONL parser and equals the predicted ring window;
    /// per-track order inside the dump matches the recorded order.
    #[test]
    fn dumps_replay_cleanly_and_preserve_track_order(
        capacity in 1usize..12,
        drawn in collection::vec((0usize..NAMES.len(), 0u32..4, 0u64..2000, any::<bool>()), 1..40),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "ftpde_flight_prop_{}_{}",
            std::process::id(),
            capacity * 1000 + drawn.len(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let fr = FlightRecorder::new(capacity).with_dump_dir(&dir);
        fr.set_latency_budget_us(BUDGET_US);

        let events: Vec<Event> = drawn
            .iter()
            .enumerate()
            .map(|(i, &(n, t, d, s))| build(i, n, t, d, s))
            .collect();

        let mut expected_dumps: Vec<Vec<Event>> = Vec::new();
        for (i, e) in events.iter().enumerate() {
            fr.record(e.clone());
            if triggers(e) {
                // The dump window is the last `capacity` events up to and
                // including the trigger.
                let upto = &events[..=i];
                let start = upto.len().saturating_sub(capacity);
                expected_dumps.push(upto[start..].to_vec());
            }
        }
        prop_assert_eq!(fr.dump_count(), expected_dumps.len() as u64);
        prop_assert_eq!(fr.dump_write_errors(), 0);

        // Dump files are sequence-numbered; read them back in order.
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .map(|rd| rd.filter_map(Result::ok).map(|e| e.path()).collect())
            .unwrap_or_default();
        files.sort();
        prop_assert_eq!(files.len(), expected_dumps.len());

        for (path, expected) in files.iter().zip(&expected_dumps) {
            let text = std::fs::read_to_string(path).unwrap();
            // Parses cleanly through the parser `ftpde check` replays with.
            let replayed = from_jsonl(&text).unwrap();
            // Lossless: the exact predicted ring window, in ticket order.
            prop_assert_eq!(&replayed, expected);
            // Per-track order: the dump's (pid, tid) subsequences appear
            // in recorded order (ticket order implies it; assert it
            // end-to-end through the file round-trip).
            for track in replayed.iter().map(|e| (e.pid, e.tid)).collect::<std::collections::BTreeSet<_>>() {
                let dumped: Vec<&Event> =
                    replayed.iter().filter(|e| (e.pid, e.tid) == track).collect();
                let recorded: Vec<&Event> =
                    events.iter().filter(|e| (e.pid, e.tid) == track).collect();
                let mut cursor = 0usize;
                for d in &dumped {
                    let found = recorded[cursor..].iter().position(|r| r == d);
                    prop_assert!(found.is_some(), "track {track:?} order broken");
                    cursor += found.unwrap() + 1;
                }
            }
        }

        let _ = std::fs::remove_dir_all(&dir);
    }
}
