//! SARIF 2.1.0 export of diagnostic report sets.
//!
//! [SARIF] (Static Analysis Results Interchange Format) is the
//! interchange schema code-scanning UIs ingest — one `run` carrying a
//! `tool` (the driver plus one *rule* per FT code, straight from the
//! [`crate::codes`] registry) and one `result` per diagnostic. The CLI
//! exposes this as `ftpde lint --source --format sarif`, and CI uploads
//! the document as a scan artifact.
//!
//! The document is built with the vendored [`serde::Value`] tree — the
//! same dependency-free path every other JSON rendering in this
//! workspace takes. Only the subset of SARIF that carries information
//! we actually have is emitted: rule metadata, severity level, message,
//! and a physical location (file, line, column) when the diagnostic is
//! source-located.
//!
//! [SARIF]: https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html

use serde::Value;

use crate::codes;
use crate::diag::{Code, Diagnostic, ReportSet, Severity};

/// The `$schema` URI of the emitted document.
pub const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// SARIF version the document declares.
pub const VERSION: &str = "2.1.0";

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

/// A SARIF message / description object: `{"text": …}`.
fn text(v: &str) -> Value {
    Value::Object(vec![("text".to_string(), s(v))])
}

/// Maps a diagnostic severity onto the SARIF result level.
fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Error => "error",
        Severity::Warn => "warning",
        Severity::Lint => "note",
    }
}

/// One `reportingDescriptor` (rule) from the registry.
fn rule(code: Code) -> Value {
    let info = codes::info(code);
    Value::Object(vec![
        ("id".to_string(), s(code.as_str())),
        ("shortDescription".to_string(), text(info.summary)),
        ("fullDescription".to_string(), text(info.explanation)),
        (
            "defaultConfiguration".to_string(),
            Value::Object(vec![("level".to_string(), s(level(info.severity)))]),
        ),
    ])
}

/// One SARIF `result` for a diagnostic. Diagnostics without a source
/// file (plan/trace findings routed through the same report set) fall
/// back to the report subject as the artifact URI.
fn result(subject: &str, d: &Diagnostic) -> Value {
    let mut fields = vec![
        ("ruleId".to_string(), s(d.code.as_str())),
        ("level".to_string(), s(level(d.severity))),
        ("message".to_string(), text(&d.message)),
    ];
    let uri = d.file.as_deref().unwrap_or(subject);
    let mut region = Vec::new();
    if let Some(line) = d.line {
        region.push(("startLine".to_string(), Value::UInt(u64::from(line))));
    }
    if let Some(col) = d.column {
        region.push(("startColumn".to_string(), Value::UInt(u64::from(col))));
    }
    let mut physical =
        vec![("artifactLocation".to_string(), Value::Object(vec![("uri".to_string(), s(uri))]))];
    if !region.is_empty() {
        physical.push(("region".to_string(), Value::Object(region)));
    }
    fields.push((
        "locations".to_string(),
        Value::Array(vec![Value::Object(vec![(
            "physicalLocation".to_string(),
            Value::Object(physical),
        )])]),
    ));
    Value::Object(fields)
}

/// Builds the SARIF 2.1.0 document for a report set as a value tree.
pub fn to_sarif(set: &ReportSet) -> Value {
    // Only rules that actually fired are listed — SARIF viewers render
    // the full rule table, and 20+ unfired entries is noise.
    let mut fired: Vec<Code> =
        set.reports.iter().flat_map(|r| r.diagnostics.iter().map(|d| d.code)).collect();
    fired.sort_unstable();
    fired.dedup();
    let rules = Value::Array(fired.into_iter().map(rule).collect());

    let results: Vec<Value> = set
        .reports
        .iter()
        .flat_map(|r| r.diagnostics.iter().map(|d| result(&r.subject, d)))
        .collect();

    let driver = Value::Object(vec![
        ("name".to_string(), s("ftpde-lint")),
        ("informationUri".to_string(), s("https://github.com/ftpde/ftpde")),
        ("rules".to_string(), rules),
    ]);
    let run = Value::Object(vec![
        ("tool".to_string(), Value::Object(vec![("driver".to_string(), driver)])),
        ("results".to_string(), Value::Array(results)),
    ]);
    Value::Object(vec![
        ("$schema".to_string(), s(SCHEMA)),
        ("version".to_string(), s(VERSION)),
        ("runs".to_string(), Value::Array(vec![run])),
    ])
}

/// The SARIF document as pretty-printed JSON.
pub fn to_sarif_string(set: &ReportSet) -> String {
    serde_json::to_string_pretty(&to_sarif(set)).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Report;

    fn sample() -> ReportSet {
        let mut r = Report::new("crates/store/src/disk.rs");
        r.push(
            Diagnostic::new(Code::FT211, Severity::Error, "blocking `fs::write` under `inner`")
                .at_line("crates/store/src/disk.rs", 42)
                .at_col(7),
        );
        r.push(Diagnostic::new(Code::FT204, Severity::Lint, "`unwrap()` in library code"));
        ReportSet::new(vec![r])
    }

    #[test]
    fn document_shape_and_levels() {
        let doc = to_sarif(&sample());
        assert_eq!(doc.get("version").and_then(Value::as_str), Some(VERSION));
        let runs = doc.get("runs").and_then(Value::as_array).unwrap();
        assert_eq!(runs.len(), 1);
        let results = runs[0].get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("ruleId").and_then(Value::as_str), Some("FT211"));
        assert_eq!(results[0].get("level").and_then(Value::as_str), Some("error"));
        assert_eq!(results[1].get("level").and_then(Value::as_str), Some("note"));
    }

    #[test]
    fn located_results_carry_line_and_column() {
        let doc = to_sarif_string(&sample());
        assert!(doc.contains("\"startLine\": 42"), "{doc}");
        assert!(doc.contains("\"startColumn\": 7"), "{doc}");
        assert!(doc.contains(SCHEMA), "{doc}");
    }

    #[test]
    fn only_fired_rules_are_listed() {
        let doc = to_sarif_string(&sample());
        assert!(doc.contains("\"FT211\""), "{doc}");
        assert!(!doc.contains("\"FT210\""), "unfired rules must be omitted: {doc}");
    }
}
