//! The unified diagnostic registry: every coded check across the three
//! diagnostic families — plan lints (`FT0xx`), trace conformance
//! (`FT1xx`) and source discipline (`FT2xx`) — described in one table.
//!
//! Each entry carries the code, its *default* severity (passes may
//! escalate or soften individual findings), a one-line summary and a
//! long-form explanation in the spirit of `rustc --explain`. The table
//! is the single source of truth consumed by:
//!
//! * [`Code::description`](crate::diag::Code::description) — the
//!   one-liners shown in rendered reports;
//! * the `ftpde explain FT###` CLI subcommand — the long explanations;
//! * [`ft2xx_markdown_table`] — the FT2xx table embedded in `DESIGN.md`
//!   §14, regenerated verbatim by a test so the docs cannot drift.

use crate::diag::{Code, Severity};

/// One registry entry: everything the tooling knows about a code.
#[derive(Debug, Clone, Copy)]
pub struct CodeInfo {
    /// The stable code.
    pub code: Code,
    /// Default severity of findings with this code. Individual passes
    /// may deviate for specific findings (e.g. hygiene checks demoting
    /// to `Lint` when a value is merely suspicious).
    pub severity: Severity,
    /// One-line summary, shown in report renderings and tables.
    pub summary: &'static str,
    /// Long-form explanation: what the check asserts, why it matters
    /// for the recovery contract, and how to fix or suppress a finding.
    pub explanation: &'static str,
}

/// The full registry, ascending by code. [`Code::ALL`] indexes into it.
pub const REGISTRY: &[CodeInfo] = &[
    CodeInfo {
        code: Code::FT001,
        severity: Severity::Error,
        summary: "DAG structural integrity (shape, ranges, acyclicity)",
        explanation: "The serialized plan must be a well-formed DAG: cost tables sized to \
                      the operator count, every edge endpoint in range, edges listed in \
                      topological order (which implies acyclicity), and the inputs/consumers \
                      adjacency lists exact inverses of each other. Everything downstream — \
                      collapse, costing, search — indexes unchecked into these tables, so a \
                      malformed DAG invalidates every later result.",
    },
    CodeInfo {
        code: Code::FT002,
        severity: Severity::Error,
        summary: "plan is a single weakly-connected component",
        explanation: "A query plan with disconnected islands cannot have come from one query: \
                      some operator's output never reaches a sink, or a sink consumes nothing. \
                      The §3.3 collapse and the Eq. 5-7 cost terms both assume one connected \
                      data flow from sources to sinks.",
    },
    CodeInfo {
        code: Code::FT003,
        severity: Severity::Error,
        summary: "operator costs are finite and non-negative",
        explanation: "`tr(o)` (runtime) and `tm(o)` (materialization time) feed every cost \
                      sum in the paper; a NaN, infinity or negative value silently poisons \
                      dominant-path maxima and the Eq. 8 estimate. The linter rejects them \
                      at the source instead.",
    },
    CodeInfo {
        code: Code::FT004,
        severity: Severity::Error,
        summary: "materialization config respects operator bindings",
        explanation: "Operators can be *bound* (forced-materialize or forced-pipeline, e.g. \
                      blocking operators that always spill). A configuration that flips a \
                      bound operator explores a point outside the legal search space, so any \
                      cost comparison involving it is meaningless.",
    },
    CodeInfo {
        code: Code::FT005,
        severity: Severity::Error,
        summary: "collapsed plan partitions the operator DAG (§3.3)",
        explanation: "Every plan operator must belong to at least one collapsed group; an \
                      operator in several groups must be a shared non-materialized prefix; \
                      group boundaries must materialize or be sinks. This is the §3.3 \
                      partition property that makes per-group cost accounting (and the \
                      recovery contract's 'rewind to the producing stage') well defined.",
    },
    CodeInfo {
        code: Code::FT006,
        severity: Severity::Error,
        summary: "collapsed costs conserve plan costs modulo CONST_pipe (Eq. 1)",
        explanation: "The collapsed group's `tr(c)`/`tm(c)` must equal its dominant member \
                      path's summed costs up to the pipelining constant. If collapse gains \
                      or loses cost, the optimizer compares configurations against a model \
                      that no longer describes the plan it will execute.",
    },
    CodeInfo {
        code: Code::FT007,
        severity: Severity::Error,
        summary: "success probabilities in [0,1], attempts non-negative (Eq. 5-7)",
        explanation: "φ (single-attempt success), γ and η are probabilities and the expected \
                      attempt count `a(c)` is non-negative by construction; values outside \
                      their domain mean the MTBF/MTTR inputs or the closed forms were \
                      mis-evaluated, and the resulting estimate is not a cost.",
    },
    CodeInfo {
        code: Code::FT008,
        severity: Severity::Error,
        summary: "dominant path bounds every execution path (§3.4)",
        explanation: "The §3.4 estimate prices only the dominant (most expensive) path. If \
                      some source→sink path costs more than the reported dominant cost, the \
                      estimate undercounts and the cost-based choice between configurations \
                      is unsound.",
    },
    CodeInfo {
        code: Code::FT009,
        severity: Severity::Error,
        summary: "failure penalty is monotone in 1/MTBF and non-negative",
        explanation: "As failures become more frequent (1/MTBF grows) the estimated runtime \
                      under failures must not decrease, and it can never undercut the \
                      failure-free runtime. A violation means the Eq. 5-7 terms interact \
                      incorrectly for this plan shape.",
    },
    CodeInfo {
        code: Code::FT010,
        severity: Severity::Lint,
        summary: "plan hygiene (zero costs, duplicate names, enumerability)",
        explanation: "Non-fatal oddities worth a look: zero-cost operators (often a \
                      placeholder that should be bound), duplicate operator names (confusing \
                      reports), and free-operator counts beyond exhaustive enumerability \
                      (the oracle cannot cross-check the search).",
    },
    CodeInfo {
        code: Code::FT101,
        severity: Severity::Error,
        summary: "trace well-formedness (timestamps, durations, single terminal)",
        explanation: "A recorded trace must parse event by event, with sane (non-negative, \
                      in-range) timestamps and durations, at most one terminal event \
                      (`query_completed` / `query_aborted`) and nothing after it. Conformance \
                      replay builds on these basics; a torn trace is reported here rather \
                      than as a bogus contract violation.",
    },
    CodeInfo {
        code: Code::FT102,
        severity: Severity::Error,
        summary: "span/track discipline (no overlap, attempts nest in stages)",
        explanation: "Spans on one `(pid, tid)` track must nest or be disjoint — partial \
                      overlap means the recorder was driven inconsistently — and a worker's \
                      `attempt` span must fall inside its stage's span interval.",
    },
    CodeInfo {
        code: Code::FT103,
        severity: Severity::Error,
        summary: "stage identity and completeness against the collapsed plan",
        explanation: "Every traced stage must map to a stage of the collapsed plan the trace \
                      claims to execute, and a completed query must have executed (or \
                      legitimately skipped) every stage. Missing or unknown stages mean the \
                      trace and the plan disagree about what ran.",
    },
    CodeInfo {
        code: Code::FT104,
        severity: Severity::Error,
        summary: "stage ordering respects collapsed-plan dependencies",
        explanation: "No stage may complete before its collapsed-plan producers completed \
                      (or were skipped) within the same attempt: data cannot flow backwards. \
                      A violation usually indicates mislabeled stage ids or a scheduler bug.",
    },
    CodeInfo {
        code: Code::FT105,
        severity: Severity::Error,
        summary: "re-execution justified by restart, rewind or corruption (§2.2)",
        explanation: "The §2.2 recovery contract: a stage runs again only after a query \
                      restart, an `input_rewind` naming it, or a `segment_corrupt` demoting \
                      its output. Unjustified re-execution means work (and cost) the model \
                      never accounted for.",
    },
    CodeInfo {
        code: Code::FT106,
        severity: Severity::Error,
        summary: "skips only for materialized non-sink stages with a prior put",
        explanation: "A stage may be skipped on retry only if the configuration materializes \
                      it, it is not a sink, and a prior materialization (or pre-seeded store \
                      state surviving the restart window) backs the skip. Skipping anything \
                      else silently drops output.",
    },
    CodeInfo {
        code: Code::FT107,
        severity: Severity::Error,
        summary: "store lifecycle (puts, gets, corruption rewinds match config)",
        explanation: "Materializations must match the configuration (only config-materializing \
                      operators put), every cross-stage input must be available when its \
                      consumer starts, and a detected corruption must be followed by a \
                      rewind of the producing stage.",
    },
    CodeInfo {
        code: Code::FT108,
        severity: Severity::Error,
        summary: "observed stage timings conserve the collapsed cost model (Eq. 1)",
        explanation: "Observed per-stage wall-clock must agree with the collapsed cost \
                      accounting (attempt sums, Eq. 1 conservation) within tolerance; a \
                      mismatch means the trace and the model describe different executions.",
    },
    CodeInfo {
        code: Code::FT201,
        severity: Severity::Error,
        summary: "sync primitive outside a `sync` shim (invisible to loom/TSan)",
        explanation: "All synchronization (`std::sync`, `std::thread`, `parking_lot`, \
                      `loom`) in library code must route through a crate's `sync` shim \
                      module, which compiles to std/parking_lot normally and to the loom \
                      model under `--cfg loom`. A primitive used directly is invisible to \
                      the loom and TSan CI jobs, so the race models verify a protocol the \
                      production build does not actually run. Fix: import the primitive \
                      from the crate's `sync` (loom-modeled) or `sync::plain` \
                      (std-in-all-builds, documented as outside the modeled protocol) \
                      module. Suppress only with `// ftpde-allow(FT201: reason)` when the \
                      use is provably outside any concurrent protocol.",
    },
    CodeInfo {
        code: Code::FT202,
        severity: Severity::Error,
        summary: "wall-clock nondeterminism outside shims and bench/CLI code",
        explanation: "`Instant::now` / `SystemTime` in library code makes re-execution \
                      nondeterministic: the paper's recovery contract (§2.2) and every \
                      Eq. 5-7 cost term assume an operator re-executes identically after a \
                      failure, and the planned deterministic whole-system simulator must be \
                      able to virtualize time. Fix: call `sync::clock::now()` / \
                      `sync::clock::elapsed()` — the virtual-time seam — instead. Bench \
                      harnesses, CLI binaries, examples and tests are exempt (they *measure* \
                      wall time by design).",
    },
    CodeInfo {
        code: Code::FT203,
        severity: Severity::Warn,
        summary: "HashMap/HashSet iteration in optimizer/core plan paths",
        explanation: "`std::collections::HashMap`/`HashSet` iterate in randomized order per \
                      process. In the optimizer and core plan/cost paths that order can \
                      reach plan output (stage numbering, tie-breaking, report ordering), \
                      breaking byte-identical re-execution. Fix: use a `BTreeMap`/`BTreeSet`, \
                      a `Vec` indexed by dense ids, or sort before iterating; suppress with \
                      `// ftpde-allow(FT203: reason)` when the container is keyed lookups \
                      only and never iterated.",
    },
    CodeInfo {
        code: Code::FT204,
        severity: Severity::Lint,
        summary: "unwrap/expect/panic! in library code",
        explanation: "A panic in library code tears down a worker thread mid-stage — the \
                      engine then observes a failure that no failure injector scheduled, \
                      which skews recovery statistics and can poison shared state. Library \
                      crates should return `Result` and let the coordinator decide. This is \
                      a hygiene lint (never fails the gate): the count is tracked so it \
                      ratchets down over time. Tests, benches, binaries and examples are \
                      exempt.",
    },
    CodeInfo {
        code: Code::FT205,
        severity: Severity::Error,
        summary: "rename on the store commit path without a paired fsync",
        explanation: "The durable store's commit discipline is write-temp → `sync_all` → \
                      rename → directory fsync: a rename that is not paired with an fsync \
                      in the same function can commit a segment whose bytes are still in \
                      the page cache, so a crash yields a manifest entry pointing at a torn \
                      file. Any function in `crates/store` that renames must also \
                      `sync_all`/`sync_data`.",
    },
    CodeInfo {
        code: Code::FT206,
        severity: Severity::Error,
        summary: "`unsafe` outside the workspace allowlist",
        explanation: "The workspace denies `unsafe_code` via `[workspace.lints]`; this \
                      source-level check backstops it across *all* scanned files (including \
                      build scripts and future crates that might forget the lint table) and \
                      pins the sanctioned exceptions in one allowlist inside the analyzer. \
                      The allowlist is currently empty.",
    },
    CodeInfo {
        code: Code::FT207,
        severity: Severity::Error,
        summary: "unused or malformed `ftpde-allow` suppression",
        explanation: "`// ftpde-allow(FT2xx: reason)` is the sanctioned escape hatch: it \
                      suppresses findings of that code on the same or the next line and \
                      must carry a non-empty reason. A suppression that matches nothing is \
                      rot — the violation it excused was fixed or moved — and a malformed \
                      one silently suppresses nothing; both are errors so the escape \
                      hatches stay exactly as numerous as the exceptions they justify.",
    },
    CodeInfo {
        code: Code::FT210,
        severity: Severity::Error,
        summary: "lock-order cycle across the workspace (potential deadlock)",
        explanation: "The analyzer builds a workspace-wide lock-order graph: an edge A → B \
                      is recorded whenever some function acquires shim lock B (directly or \
                      through the call graph) while already holding shim lock A. A cycle in \
                      that graph means two locks are taken in both orders on different code \
                      paths — the classic two-thread deadlock, which no amount of testing \
                      reliably reproduces. Every acquisition routes through the `sync` shims \
                      (FT201), so the graph covers the whole workspace. Fix by making one \
                      order canonical (acquire in a fixed global order, or narrow one \
                      critical section until it no longer nests). Inspect the graph with \
                      `ftpde lint --source --emit-lock-graph <dir>`.",
    },
    CodeInfo {
        code: Code::FT211,
        severity: Severity::Error,
        summary: "blocking I/O while a shim lock guard is live",
        explanation: "A file or socket operation (fsync, open, read, rename, remove, \
                      `TcpStream`/`TcpListener`, `std::process`, sleeps) executed while a \
                      shim `MutexGuard` is live stalls every thread that wants that lock for \
                      the full device latency — milliseconds per fsync, unbounded for \
                      sockets. Under N concurrent queries sharing one store backend this \
                      serializes the fleet on a single disk flush. Fix: stage the I/O \
                      outside the critical section (build bytes before locking, write after \
                      unlocking) and keep only the in-memory state flip under the lock. If \
                      the commit protocol genuinely requires the lock across the I/O (e.g. \
                      the manifest rewrite that publishes the state it serializes), carry an \
                      audited `// ftpde-allow(FT211: reason)`.",
    },
    CodeInfo {
        code: Code::FT212,
        severity: Severity::Error,
        summary: "channel send/recv or thread join under a shim lock",
        explanation: "Blocking on another thread's progress — `JoinHandle::join`, a channel \
                      `send`/`recv` — while holding a shim lock inverts the lock hierarchy: \
                      the joined/peer thread may need exactly that lock to make progress, \
                      which is a deadlock that depends on scheduling and load. Even when the \
                      peer never takes the lock, the critical section now lasts as long as \
                      an arbitrary other thread's work. Fix: drop the guard before joining \
                      or communicating (collect what you need under the lock, release, then \
                      block), or restructure so the channel endpoint lives outside the \
                      locked state.",
    },
    CodeInfo {
        code: Code::FT213,
        severity: Severity::Error,
        summary: "re-entrant acquisition of the same shim lock",
        explanation: "The shim mutexes (parking_lot in production builds) are not \
                      re-entrant: locking a mutex while the same thread already holds it \
                      deadlocks immediately. The analyzer tracks which guard is live at each \
                      statement and follows calls through the workspace call graph, so it \
                      catches the indirect form too — a helper that locks `self.inner` \
                      called from a method that already holds `self.inner`. Fix: pass the \
                      live guard (or `&mut` of the guarded data) down to the helper instead \
                      of re-locking, or split the helper into a locked wrapper plus a \
                      lock-free core.",
    },
    CodeInfo {
        code: Code::FT214,
        severity: Severity::Error,
        summary: "guard held across a call into the obs global/flight hot paths",
        explanation: "`obs::global()`, the metrics registry and the flight recorder have \
                      their own internal synchronization. Calling into them while holding an \
                      unrelated shim lock extends the critical section by the observability \
                      plane's cost and creates cross-crate lock edges that per-crate \
                      reasoning (and the loom models, which run one crate at a time) cannot \
                      see. Fix: record metrics after dropping the guard — compute the values \
                      inside the critical section, emit them outside. Pre-resolved \
                      lock-free handles (`Counter`, `HistogramHandle`) are cheap, but their \
                      first-use resolution still locks the registry, so the discipline is \
                      uniform: no obs calls under a store/engine lock.",
    },
    CodeInfo {
        code: Code::FT301,
        severity: Severity::Error,
        summary: "nondeterministic replay: same seed, different canonical trace",
        explanation: "The simulation harness runs every seeded scenario twice and compares \
                      the canonical projections of the two traces (per-track event order, \
                      sequence-index timestamps, wall-clock args stripped). Any byte \
                      difference means something outside the seed influenced execution — \
                      unshimmed randomness, hash-order iteration reaching output, a racy \
                      event emitted on a deterministic track — and every property the \
                      harness checks becomes unreproducible. Minimize with `ftpde sim \
                      --seed N --shrink` and fix the nondeterminism at its source; never \
                      quarantine an FT301 without a tracking note in the bug base.",
    },
    CodeInfo {
        code: Code::FT302,
        severity: Severity::Error,
        summary: "result divergence: faulted run disagrees with failure-free run",
        explanation: "Fault tolerance means failures may cost time but never answers: the \
                      harness executes each workload once without faults and once with the \
                      seeded schedule, then compares canonicalized result rows. A \
                      divergence means recovery lost, duplicated or corrupted data — e.g. \
                      a consumer read a damaged segment that was never demoted, or a \
                      rewind skipped a producer. This is the oracle that catches 'silently \
                      wrong answers', the worst failure class a fault-tolerant engine can \
                      have; FT1xx conformance alone cannot see it because the trace of a \
                      wrong-answer run can be perfectly contract-shaped.",
    },
    CodeInfo {
        code: Code::FT303,
        severity: Severity::Error,
        summary: "panic during simulated execution",
        explanation: "The engine must treat every injected fault — kills, torn or corrupt \
                      segments, lost writes, stragglers — as a recoverable condition: \
                      demote, rewind, redeploy or restart, but never unwind. The harness \
                      wraps each simulated run in `catch_unwind`; a caught panic (or a \
                      poisoned run that could not finish) is reported with the panic \
                      payload in the message. Shrink the seed to find the minimal fault \
                      sequence that trips it; the fix belongs in the engine or store, not \
                      in the harness.",
    },
    CodeInfo {
        code: Code::FT304,
        severity: Severity::Warn,
        summary: "scheduled faults never fired (schedule outran the run)",
        explanation: "A fault schedule is derived from the seed before the run starts, so \
                      it can name coordinates the execution never reaches — a stage that \
                      was skipped, a read ordinal past the last get, a write the \
                      configuration never performs. Unfired faults are reported as a \
                      warning: the run is still valid evidence, but coverage is lower \
                      than the schedule suggests, and a harness change that silently \
                      stops firing most faults would otherwise look like a sudden drop \
                      in found bugs. The shrinker also uses this signal: an event that \
                      did not fire is always safe to drop.",
    },
];

/// Looks up the registry entry for `code`. Every code has one; the
/// registry test enforces the bijection.
pub fn info(code: Code) -> &'static CodeInfo {
    REGISTRY
        .iter()
        .find(|ci| ci.code == code)
        .expect("every Code variant has a registry entry (enforced by tests)")
}

/// Parses `"FT105"` (case-insensitive) into a [`Code`].
pub fn parse(name: &str) -> Option<Code> {
    let name = name.trim();
    Code::ALL.iter().copied().find(|c| c.as_str().eq_ignore_ascii_case(name))
}

/// Renders the long-form explanation of one code, `rustc --explain`
/// style: header line, then the explanation re-wrapped to ~78 columns.
pub fn explain(code: Code) -> String {
    let ci = info(code);
    let mut out = format!("{} [{}]: {}\n\n", ci.code, ci.severity, ci.summary);
    let mut col = 0usize;
    for word in ci.explanation.split_whitespace() {
        if col > 0 && col + 1 + word.len() > 78 {
            out.push('\n');
            col = 0;
        } else if col > 0 {
            out.push(' ');
            col += 1;
        }
        out.push_str(word);
        col += word.len();
    }
    out.push('\n');
    out
}

/// The FT20x (source-discipline) rows as a Markdown table — the exact
/// text embedded in `DESIGN.md` §14 between the `FT2XX-TABLE` markers.
/// A test regenerates the table and diffs it against the docs, so the
/// table in the book cannot drift from the registry.
pub fn ft2xx_markdown_table() -> String {
    markdown_table("FT20")
}

/// The FT21x (concurrency-discipline) rows as a Markdown table — the
/// exact text embedded in `DESIGN.md` §16 between the `FT21X-TABLE`
/// markers, drift-checked the same way as the §14 table.
pub fn ft21x_markdown_table() -> String {
    markdown_table("FT21")
}

fn markdown_table(prefix: &str) -> String {
    let mut out = String::from("| code | default severity | checks |\n|---|---|---|\n");
    for ci in REGISTRY.iter().filter(|ci| ci.code.as_str().starts_with(prefix)) {
        out.push_str(&format!("| {} | {} | {} |\n", ci.code, ci.severity, ci.summary));
    }
    out
}

/// The whole registry as a severity-sorted text table (most severe
/// first, ascending code within a severity) — what `ftpde explain
/// --list` prints.
pub fn registry_table() -> String {
    let mut rows: Vec<&CodeInfo> = REGISTRY.iter().collect();
    rows.sort_by_key(|ci| (std::cmp::Reverse(ci.severity), ci.code.as_str()));
    let mut out = String::from("code   severity  checks\n-----  --------  ------\n");
    for ci in rows {
        out.push_str(&format!("{:<5}  {:<8}  {}\n", ci.code.as_str(), ci.severity, ci.summary));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_a_bijection_over_all_codes() {
        assert_eq!(REGISTRY.len(), Code::ALL.len());
        for (i, code) in Code::ALL.iter().enumerate() {
            assert_eq!(REGISTRY[i].code, *code, "registry sorted in Code::ALL order");
            assert!(!info(*code).summary.is_empty());
            assert!(info(*code).explanation.len() > 80, "{code}: explanation too thin");
            let text = explain(*code);
            assert!(
                text.lines().all(|l| l.len() <= 79),
                "{code}: over-long explain line in:\n{text}"
            );
        }
    }

    #[test]
    fn parse_round_trips_and_rejects_unknowns() {
        for code in Code::ALL {
            assert_eq!(parse(code.as_str()), Some(*code));
            assert_eq!(parse(&code.as_str().to_lowercase()), Some(*code));
        }
        assert_eq!(parse("FT999"), None);
        assert_eq!(parse(""), None);
        assert_eq!(parse("ft20"), None);
    }

    #[test]
    fn explain_wraps_and_names_the_code() {
        let text = explain(Code::FT201);
        assert!(text.starts_with("FT201 [error]:"));
        assert!(text.lines().all(|l| l.len() <= 79), "over-long line in:\n{text}");
        assert!(text.contains("loom"));
    }

    #[test]
    fn ft2xx_table_lists_exactly_the_source_codes() {
        let table = ft2xx_markdown_table();
        for code in ["FT201", "FT202", "FT203", "FT204", "FT205", "FT206", "FT207"] {
            assert!(table.contains(code), "missing {code}");
        }
        assert!(!table.contains("FT105"));
        assert!(!table.contains("FT210"), "FT21x has its own table (§16)");
        assert_eq!(table.lines().count(), 2 + 7);
    }

    #[test]
    fn ft21x_table_lists_exactly_the_concurrency_codes() {
        let table = ft21x_markdown_table();
        for code in ["FT210", "FT211", "FT212", "FT213", "FT214"] {
            assert!(table.contains(code), "missing {code}");
        }
        assert!(!table.contains("FT201"));
        assert_eq!(table.lines().count(), 2 + 5);
    }

    #[test]
    fn registry_table_is_severity_sorted_and_complete() {
        let table = registry_table();
        for code in Code::ALL {
            assert!(table.contains(code.as_str()), "missing {code}");
        }
        // Most severe first: the first data row is an error, and no
        // error row appears after the first non-error row.
        let rows: Vec<&str> = table.lines().skip(2).collect();
        assert_eq!(rows.len(), Code::ALL.len());
        let first_non_error =
            rows.iter().position(|r| !r.contains("error")).expect("lint rows exist");
        assert!(rows[first_non_error..].iter().all(|r| !r.contains("  error  ")), "{table}");
    }
}
