//! The plan linter: diagnostic passes over [`PlanDag`]s and fault-tolerant
//! plans `[P, M_P]`.
//!
//! [`PlanValidator::validate_plan`] runs the structural and hygiene passes;
//! [`PlanValidator::validate_ft_plan`] additionally verifies the collapsed
//! plan (§3.3) and the cost model (§3.5) under a concrete materialization
//! configuration. Passes are ordered so that later passes can rely on the
//! invariants earlier passes established: if the raw DAG tables are broken
//! (FT001), the semantic passes — which use the panicking typed accessors —
//! are skipped entirely.
//!
//! The FT001 pass deliberately does *not* trust [`PlanDag`]'s API: plans
//! can enter the system through serde (`ftpde lint --plan broken.json`),
//! and the derived `Deserialize` impl performs no cross-field validation.
//! The pass therefore re-serializes the plan to a `serde_json::Value` and
//! inspects the raw `ops`/`inputs`/`consumers` tables directly.

use ftpde_core::collapse::CollapsedPlan;
use ftpde_core::config::MatConfig;
use ftpde_core::cost::{estimate_ft_plan, path_cost, CostParams};
use ftpde_core::dag::PlanDag;
use ftpde_core::operator::{Binding, OpId};
use ftpde_core::paths::for_each_path;

use crate::diag::{Code, Diagnostic, Report, Severity};

/// Absolute tolerance for cost-conservation comparisons.
const EPS: f64 = 1e-9;

/// MTBF scale ladder used by the FT009 monotonicity pass: the estimate is
/// evaluated at `mtbf_cost × factor` for each factor, descending, and must
/// never decrease as the cluster gets less reliable.
const MTBF_LADDER: [f64; 5] = [4.0, 2.0, 1.0, 0.5, 0.25];

/// Runs diagnostic passes over plans and fault-tolerant plans.
#[derive(Debug, Clone, Copy)]
pub struct PlanValidator {
    params: CostParams,
}

impl PlanValidator {
    /// A validator using `params` for the cost-model passes.
    pub fn new(params: CostParams) -> Self {
        PlanValidator { params }
    }

    /// The cost parameters the validator was built with.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Lints a bare plan: structural integrity (FT001), connectedness
    /// (FT002), cost domain (FT003) and hygiene (FT010).
    pub fn validate_plan(&self, subject: &str, plan: &PlanDag) -> Report {
        let mut report = Report::new(subject);
        self.params_pass(&mut report);
        if structure_pass(plan, &mut report) {
            connectedness_pass(plan, &mut report);
            costs_pass(plan, &mut report);
            hygiene_pass(plan, &mut report);
        }
        report
    }

    /// Lints a fault-tolerant plan `[plan, config]`: all bare-plan passes
    /// plus binding consistency (FT004), the collapsed-plan partition
    /// (FT005), cost conservation (FT006) and the cost-model sanity passes
    /// (FT007–FT009).
    pub fn validate_ft_plan(&self, subject: &str, plan: &PlanDag, config: &MatConfig) -> Report {
        let mut report = self.validate_plan(subject, plan);
        if !report.is_clean() {
            // Structural or cost errors: the collapse passes would panic or
            // produce garbage diagnostics on top of the real problem.
            return report;
        }
        if !binding_pass(plan, config, &mut report) {
            return report;
        }
        let collapsed = CollapsedPlan::collapse(plan, config, self.params.pipe_const);
        partition_pass(plan, config, &collapsed, &mut report);
        conservation_pass(plan, config, &collapsed, self.params.pipe_const, &mut report);
        probability_pass(&collapsed, &self.params, &mut report);
        dominance_pass(plan, config, &self.params, &mut report);
        monotonicity_pass(plan, config, &self.params, &mut report);
        report
    }

    /// Lints an externally-supplied collapsed plan (e.g. one deserialized
    /// from a trace artifact) against `[plan, config]`: the partition
    /// (FT005), cost-conservation (FT006) and probability (FT007) passes.
    ///
    /// [`PlanValidator::validate_ft_plan`] runs the same passes on a
    /// freshly-collapsed plan — use this entry point when the collapsed
    /// plan itself is the artifact under suspicion. `plan` and `config`
    /// must already be clean (run [`PlanValidator::validate_ft_plan`]
    /// first), or the passes may panic on out-of-range ids.
    pub fn validate_collapsed(
        &self,
        subject: &str,
        plan: &PlanDag,
        config: &MatConfig,
        collapsed: &CollapsedPlan,
    ) -> Report {
        let mut report = Report::new(subject);
        partition_pass(plan, config, collapsed, &mut report);
        conservation_pass(plan, config, collapsed, self.params.pipe_const, &mut report);
        probability_pass(collapsed, &self.params, &mut report);
        report
    }
}

/// FT007 (parameter half): the cost parameters themselves must be in
/// domain, or every probability derived from them is meaningless.
impl PlanValidator {
    fn params_pass(&self, report: &mut Report) {
        if let Err(e) = self.params.validate() {
            report.push(Diagnostic::new(
                Code::FT007,
                Severity::Error,
                format!("cost parameters out of domain: {e}"),
            ));
        }
    }
}

/// FT001: raw structural integrity of the serialized DAG tables.
///
/// Returns `true` iff the plan is structurally sound enough for the typed
/// accessors (and therefore the remaining passes) to be used safely.
fn structure_pass(plan: &PlanDag, report: &mut Report) -> bool {
    let err = |report: &mut Report, msg: String| {
        report.push(Diagnostic::new(Code::FT001, Severity::Error, msg));
    };

    let value = match serde_json::to_value(plan) {
        Ok(v) => v,
        Err(e) => {
            err(report, format!("plan does not serialize: {e}"));
            return false;
        }
    };
    let (Some(ops), Some(inputs), Some(consumers)) = (
        value.get("ops").and_then(serde_json::Value::as_array),
        value.get("inputs").and_then(serde_json::Value::as_array),
        value.get("consumers").and_then(serde_json::Value::as_array),
    ) else {
        err(report, "serialized plan is missing the ops/inputs/consumers tables".to_string());
        return false;
    };

    let n = ops.len();
    let mut ok = true;
    if n == 0 {
        err(report, "plan contains no operators".to_string());
        ok = false;
    }
    if inputs.len() != n || consumers.len() != n {
        err(
            report,
            format!(
                "table shapes disagree: {n} operator(s) but {} input row(s) and {} consumer \
                 row(s)",
                inputs.len(),
                consumers.len()
            ),
        );
        ok = false;
    }

    // Edge scan. Input edges must point strictly backwards (the builder's
    // topological-order invariant, which is what makes cycles
    // unrepresentable); consumer edges strictly forwards.
    let mut edge_scan = |rows: &[serde_json::Value], table: &str, backwards: bool| {
        for (i, row) in rows.iter().enumerate() {
            let Some(row) = row.as_array() else {
                err(report, format!("{table} row of operator {i} is not an array"));
                ok = false;
                continue;
            };
            let mut seen: Vec<u64> = Vec::with_capacity(row.len());
            for e in row {
                let Some(e) = e.as_u64() else {
                    err(report, format!("{table} edge of operator {i} is not an operator id"));
                    ok = false;
                    continue;
                };
                if e >= n as u64 {
                    err(report, format!("{table} edge of operator {i} references operator {e}, out of range for {n} operator(s)"));
                    ok = false;
                } else if e == i as u64 {
                    err(report, format!("operator {i} is its own {table} (self-loop)"));
                    ok = false;
                } else if backwards == (e > i as u64) {
                    err(
                        report,
                        format!(
                            "{table} edge {i} -> {e} violates topological id order (cycle or \
                             corrupted tables)"
                        ),
                    );
                    ok = false;
                }
                if seen.contains(&e) {
                    err(report, format!("duplicate {table} edge {e} on operator {i}"));
                    ok = false;
                }
                seen.push(e);
            }
        }
    };
    edge_scan(inputs, "input", true);
    edge_scan(consumers, "consumer", false);

    // Inverse check: inputs and consumers must describe the same edge set.
    // Only meaningful once shapes and ranges are valid.
    if ok {
        for (i, row) in inputs.iter().enumerate() {
            for e in row.as_array().into_iter().flatten() {
                let u = e.as_u64().expect("validated above") as usize;
                let back = consumers[u]
                    .as_array()
                    .is_some_and(|c| c.iter().any(|x| x.as_u64() == Some(i as u64)));
                if !back {
                    err(
                        report,
                        format!("edge {u} -> {i} present in inputs but missing from consumers"),
                    );
                    ok = false;
                }
            }
        }
        for (u, row) in consumers.iter().enumerate() {
            for e in row.as_array().into_iter().flatten() {
                let i = e.as_u64().expect("validated above") as usize;
                let fwd = inputs[i]
                    .as_array()
                    .is_some_and(|inp| inp.iter().any(|x| x.as_u64() == Some(u as u64)));
                if !fwd {
                    err(
                        report,
                        format!("edge {u} -> {i} present in consumers but missing from inputs"),
                    );
                    ok = false;
                }
            }
        }
    }
    ok
}

/// FT002: the plan should be one weakly-connected component — disconnected
/// islands usually mean a plan was stitched together incorrectly.
fn connectedness_pass(plan: &PlanDag, report: &mut Report) {
    let n = plan.len();
    let mut seen = vec![false; n];
    let mut stack = vec![OpId(0)];
    seen[0] = true;
    let mut reached = 1usize;
    while let Some(v) = stack.pop() {
        for &u in plan.inputs(v).iter().chain(plan.consumers(v)) {
            if !seen[u.index()] {
                seen[u.index()] = true;
                reached += 1;
                stack.push(u);
            }
        }
    }
    if reached < n {
        report.push(Diagnostic::new(
            Code::FT002,
            Severity::Warn,
            format!(
                "plan is not weakly connected: only {reached} of {n} operator(s) reachable from \
                 operator 0"
            ),
        ));
    }
}

/// FT003: every `tr(o)` and `tm(o)` finite and non-negative. The builder
/// enforces this, serde does not.
fn costs_pass(plan: &PlanDag, report: &mut Report) {
    for (id, op) in plan.iter() {
        for (what, value) in [("tr", op.run_cost), ("tm", op.mat_cost)] {
            if !(value.is_finite() && value >= 0.0) {
                report.push(
                    Diagnostic::new(
                        Code::FT003,
                        Severity::Error,
                        format!("{what}({}) = {value} is not a finite non-negative cost", op.name),
                    )
                    .at_op(id.0),
                );
            }
        }
    }
}

/// FT010: hygiene — findings that do not invalidate the plan but usually
/// indicate an estimation or modelling mistake.
fn hygiene_pass(plan: &PlanDag, report: &mut Report) {
    for (id, op) in plan.iter() {
        if op.run_cost == 0.0 && op.mat_cost == 0.0 {
            report.push(
                Diagnostic::new(
                    Code::FT010,
                    Severity::Lint,
                    format!("operator '{}' has zero runtime and materialization cost", op.name),
                )
                .at_op(id.0),
            );
        }
    }
    let mut names: Vec<&str> = plan.iter().map(|(_, op)| op.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    if names.len() < plan.len() {
        report.push(Diagnostic::new(
            Code::FT010,
            Severity::Lint,
            format!(
                "{} operator(s) share a name with another operator; by-name lookups are \
                 ambiguous",
                plan.len() - names.len()
            ),
        ));
    }
    let free = plan.free_count();
    if free > 63 {
        report.push(Diagnostic::new(
            Code::FT010,
            Severity::Warn,
            format!(
                "{free} free operators: the 2^{free} configuration space cannot be enumerated \
                 exhaustively; pruning rules 1/2 are mandatory"
            ),
        ));
    }
}

/// FT004: `config` must cover the plan and respect bound operators.
/// Returns `true` iff the collapse passes can run.
fn binding_pass(plan: &PlanDag, config: &MatConfig, report: &mut Report) -> bool {
    if config.len() != plan.len() {
        report.push(Diagnostic::new(
            Code::FT004,
            Severity::Error,
            format!(
                "configuration covers {} operator(s) but the plan has {}",
                config.len(),
                plan.len()
            ),
        ));
        return false;
    }
    let mut ok = true;
    for (id, op) in plan.iter() {
        let violated = match op.binding {
            Binding::AlwaysMaterialized => !config.materializes(id),
            Binding::NonMaterializable => config.materializes(id),
            Binding::Free => false,
        };
        if violated {
            report.push(
                Diagnostic::new(
                    Code::FT004,
                    Severity::Error,
                    format!(
                        "operator '{}' is bound {:?} but the configuration sets m(o) = {}",
                        op.name,
                        op.binding,
                        u8::from(config.materializes(id))
                    ),
                )
                .at_op(id.0),
            );
            ok = false;
        }
    }
    ok
}

/// FT005: the collapsed plan must partition the operator DAG (§3.3) —
/// every operator in at least one group, in more than one only if it does
/// not materialize (shared re-execution prefix), every group rooted at a
/// materializing operator or sink.
fn partition_pass(
    plan: &PlanDag,
    config: &MatConfig,
    collapsed: &CollapsedPlan,
    report: &mut Report,
) {
    let mut membership = vec![0u32; plan.len()];
    for (cid, c) in collapsed.iter() {
        if !c.members.contains(&c.root) {
            report.push(
                Diagnostic::new(
                    Code::FT005,
                    Severity::Error,
                    format!("collapsed operator does not contain its own root {}", c.root.0),
                )
                .at_stage(cid.0),
            );
        }
        if config.materializes(c.root) || plan.consumers(c.root).is_empty() {
            // Root is a legal collapse boundary.
        } else {
            report.push(
                Diagnostic::new(
                    Code::FT005,
                    Severity::Error,
                    format!(
                        "root '{}' neither materializes nor is a sink — not a collapse boundary",
                        plan.op(c.root).name
                    ),
                )
                .at_stage(cid.0),
            );
        }
        for &m in &c.members {
            membership[m.index()] += 1;
            if m != c.root && config.materializes(m) {
                report.push(
                    Diagnostic::new(
                        Code::FT005,
                        Severity::Error,
                        format!(
                            "materializing operator '{}' was collapsed into a group it does not \
                             root",
                            plan.op(m).name
                        ),
                    )
                    .at_op(m.0)
                    .at_stage(cid.0),
                );
            }
        }
    }
    for (id, op) in plan.iter() {
        match membership[id.index()] {
            0 => report.push(
                Diagnostic::new(
                    Code::FT005,
                    Severity::Error,
                    format!("operator '{}' belongs to no collapsed operator", op.name),
                )
                .at_op(id.0),
            ),
            1 => {}
            k => {
                // Multi-membership is legal exactly for non-materialized
                // operators whose output fans out to several groups.
                if config.materializes(id) {
                    report.push(
                        Diagnostic::new(
                            Code::FT005,
                            Severity::Error,
                            format!(
                                "materializing operator '{}' belongs to {k} collapsed operators; \
                                 a materialized result never needs re-execution",
                                op.name
                            ),
                        )
                        .at_op(id.0),
                    );
                }
            }
        }
    }
}

/// FT006: `tr(c)`/`tm(c)` of every collapsed operator conserve the plan's
/// operator costs modulo `CONST_pipe` (Eq. 1): the stored dominant path
/// must be a real path of group members ending at the root, its `tr` sum
/// (scaled iff it has ≥ 2 operators) must equal `tr(c)`, no other path
/// through the group may be more expensive, and `tm(c)` must equal the
/// root's `tm` (or zero for a non-materializing sink).
fn conservation_pass(
    plan: &PlanDag,
    config: &MatConfig,
    collapsed: &CollapsedPlan,
    pipe_const: f64,
    report: &mut Report,
) {
    for (cid, c) in collapsed.iter() {
        // (a) the stored dominant path is a real member path ending at root.
        let mut path_ok = c.dominant_path.last() == Some(&c.root);
        for pair in c.dominant_path.windows(2) {
            if !plan.inputs(pair[1]).contains(&pair[0]) {
                path_ok = false;
            }
        }
        if !path_ok || c.dominant_path.iter().any(|m| !c.members.contains(m)) {
            report.push(
                Diagnostic::new(
                    Code::FT006,
                    Severity::Error,
                    format!(
                        "stored dominant path {:?} is not a member path ending at the root",
                        c.dominant_path.iter().map(|o| o.0).collect::<Vec<_>>()
                    ),
                )
                .at_stage(cid.0),
            );
            continue;
        }

        // (b) Eq. 1: tr(c) = Σ tr(o) over dom(c), × CONST_pipe iff ≥ 2 ops.
        let raw: f64 = c.dominant_path.iter().map(|&o| plan.op(o).run_cost).sum();
        let expected = if c.dominant_path.len() >= 2 { raw * pipe_const } else { raw };
        if (c.run_cost - expected).abs() > EPS {
            report.push(
                Diagnostic::new(
                    Code::FT006,
                    Severity::Error,
                    format!(
                        "tr(c) = {} but the dominant path sums to {expected} (Eq. 1, CONST_pipe \
                         = {pipe_const})",
                        c.run_cost
                    ),
                )
                .at_stage(cid.0),
            );
        }

        // (c) maximality: recompute the longest tr-weighted member path.
        let mut best = std::collections::HashMap::new();
        for &v in &c.members {
            let best_in =
                plan.inputs(v).iter().filter_map(|u| best.get(u).copied()).fold(0.0f64, f64::max);
            best.insert(v, best_in + plan.op(v).run_cost);
        }
        if (best[&c.root] - raw).abs() > EPS {
            report.push(
                Diagnostic::new(
                    Code::FT006,
                    Severity::Error,
                    format!(
                        "dominant path sums to {raw} but a member path of cost {} exists",
                        best[&c.root]
                    ),
                )
                .at_stage(cid.0),
            );
        }

        // (d) tm(c) = tm(root), or 0 for a non-materializing sink.
        let expected_tm = if config.materializes(c.root) { plan.op(c.root).mat_cost } else { 0.0 };
        if (c.mat_cost - expected_tm).abs() > EPS {
            report.push(
                Diagnostic::new(
                    Code::FT006,
                    Severity::Error,
                    format!(
                        "tm(c) = {} but the root's materialization cost is {expected_tm}",
                        c.mat_cost
                    ),
                )
                .at_stage(cid.0),
            );
        }
    }
}

/// FT007: the failure model's probabilities must be probabilities —
/// `γ(c), η(c) ∈ [0, 1]`, `γ + η = 1`, `a(c) ≥ 0` (Eq. 5–7). Diverging
/// attempts (`t(c) ≫ MTBF`) are legal but almost certainly a modelling
/// accident, so they warn.
fn probability_pass(collapsed: &CollapsedPlan, params: &CostParams, report: &mut Report) {
    for (cid, c) in collapsed.iter() {
        let t = c.total_cost();
        let gamma = params.success_probability(t);
        let eta = params.failure_probability(t);
        if !(0.0..=1.0).contains(&gamma) || !(0.0..=1.0).contains(&eta) {
            report.push(
                Diagnostic::new(
                    Code::FT007,
                    Severity::Error,
                    format!("γ = {gamma}, η = {eta} for t(c) = {t} fall outside [0, 1]"),
                )
                .at_stage(cid.0),
            );
        } else if (gamma + eta - 1.0).abs() > EPS {
            report.push(
                Diagnostic::new(
                    Code::FT007,
                    Severity::Error,
                    format!("γ + η = {} ≠ 1 for t(c) = {t}", gamma + eta),
                )
                .at_stage(cid.0),
            );
        }
        let a = params.attempts(t);
        if a.is_nan() || a < 0.0 {
            report.push(
                Diagnostic::new(
                    Code::FT007,
                    Severity::Error,
                    format!("a(c) = {a} for t(c) = {t} is not a non-negative attempt count"),
                )
                .at_stage(cid.0),
            );
        } else if a.is_infinite() {
            report.push(
                Diagnostic::new(
                    Code::FT007,
                    Severity::Warn,
                    format!(
                        "t(c) = {t} with MTBF_cost = {} can never reach the success target: \
                         attempts diverge; materialize inside this stage",
                        params.mtbf_cost
                    ),
                )
                .at_stage(cid.0),
            );
        }
    }
}

/// FT008: the production estimate's dominant path must bound every
/// source→sink path cost of the collapsed plan, and be attained by one.
fn dominance_pass(plan: &PlanDag, config: &MatConfig, params: &CostParams, report: &mut Report) {
    let est = estimate_ft_plan(plan, config, params);
    let mut max_seen = f64::NEG_INFINITY;
    let mut violations = 0u32;
    for_each_path::<()>(&est.collapsed, |path| {
        let t = path_cost(&est.collapsed, path, params);
        max_seen = max_seen.max(t);
        if t > est.dominant_cost + EPS {
            violations += 1;
        }
        std::ops::ControlFlow::Continue(())
    });
    if violations > 0 {
        report.push(Diagnostic::new(
            Code::FT008,
            Severity::Error,
            format!(
                "{violations} execution path(s) cost more than the dominant path's {} (max seen \
                 {max_seen})",
                est.dominant_cost
            ),
        ));
    } else if (max_seen - est.dominant_cost).abs() > EPS {
        report.push(Diagnostic::new(
            Code::FT008,
            Severity::Error,
            format!(
                "dominant cost {} is not attained by any execution path (max path cost \
                 {max_seen})",
                est.dominant_cost
            ),
        ));
    }
}

/// FT009: shrinking the MTBF (a less reliable cluster) must never shrink
/// the estimate, and the estimate must never undercut the failure-free
/// runtime of its own dominant path.
fn monotonicity_pass(plan: &PlanDag, config: &MatConfig, params: &CostParams, report: &mut Report) {
    let mut prev: Option<(f64, f64)> = None; // (mtbf, dominant_cost)
    for factor in MTBF_LADDER {
        let scaled = CostParams { mtbf_cost: params.mtbf_cost * factor, ..*params };
        let est = estimate_ft_plan(plan, config, &scaled);
        if est.dominant_cost + EPS < est.dominant_runtime {
            report.push(Diagnostic::new(
                Code::FT009,
                Severity::Error,
                format!(
                    "negative failure penalty at MTBF_cost = {}: estimate {} undercuts the \
                     failure-free runtime {}",
                    scaled.mtbf_cost, est.dominant_cost, est.dominant_runtime
                ),
            ));
        }
        if let Some((prev_mtbf, prev_cost)) = prev {
            if est.dominant_cost + EPS < prev_cost {
                report.push(Diagnostic::new(
                    Code::FT009,
                    Severity::Error,
                    format!(
                        "estimate fell from {prev_cost} to {} as MTBF_cost shrank from \
                         {prev_mtbf} to {} — the failure penalty must be monotone in 1/MTBF",
                        est.dominant_cost, scaled.mtbf_cost
                    ),
                ));
            }
        }
        prev = Some((scaled.mtbf_cost, est.dominant_cost));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpde_core::dag::figure2_plan;

    fn validator() -> PlanValidator {
        PlanValidator::new(CostParams::new(60.0, 0.0))
    }

    fn figure3_config(plan: &PlanDag) -> MatConfig {
        MatConfig::from_materialized_free_ops(plan, &[OpId(2), OpId(4), OpId(5), OpId(6)]).unwrap()
    }

    #[test]
    fn figure2_plan_is_clean() {
        let plan = figure2_plan();
        let report = validator().validate_plan("figure2", &plan);
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.diagnostics.is_empty(), "{}", report.render());
    }

    #[test]
    fn figure3_ft_plan_is_clean_for_every_config() {
        let plan = figure2_plan();
        let v = validator();
        for config in MatConfig::enumerate(&plan) {
            let report = v.validate_ft_plan("figure2", &plan, &config);
            assert!(report.diagnostics.is_empty(), "{}", report.render());
        }
    }

    #[test]
    fn corrupted_tables_trip_ft001() {
        // Deserialize a plan whose consumer table drops an edge and whose
        // input table contains a forward (cyclic) edge.
        let json = r#"{
            "ops": [
                {"name": "a", "run_cost": 1.0, "mat_cost": 0.1, "binding": "Free"},
                {"name": "b", "run_cost": 1.0, "mat_cost": 0.1, "binding": "Free"}
            ],
            "inputs": [[1], []],
            "consumers": [[], []]
        }"#;
        let plan: PlanDag = serde_json::from_str(json).unwrap();
        let report = validator().validate_plan("corrupted", &plan);
        assert!(!report.is_clean());
        assert!(report.diagnostics.iter().all(|d| d.code == Code::FT001));
        assert!(report.render().contains("violates topological id order"));
    }

    #[test]
    fn mismatched_table_shapes_trip_ft001_without_panicking() {
        let json = r#"{
            "ops": [{"name": "a", "run_cost": 1.0, "mat_cost": 0.1, "binding": "Free"}],
            "inputs": [],
            "consumers": [[]]
        }"#;
        let plan: PlanDag = serde_json::from_str(json).unwrap();
        let report = validator().validate_plan("short tables", &plan);
        assert!(!report.is_clean());
        assert!(report.render().contains("table shapes disagree"));
    }

    #[test]
    fn missing_inverse_edge_trips_ft001() {
        let json = r#"{
            "ops": [
                {"name": "a", "run_cost": 1.0, "mat_cost": 0.1, "binding": "Free"},
                {"name": "b", "run_cost": 1.0, "mat_cost": 0.1, "binding": "Free"}
            ],
            "inputs": [[], [0]],
            "consumers": [[], []]
        }"#;
        let plan: PlanDag = serde_json::from_str(json).unwrap();
        let report = validator().validate_plan("missing inverse", &plan);
        assert!(report.render().contains("missing from consumers"));
    }

    #[test]
    fn disconnected_plan_warns_ft002() {
        let mut b = PlanDag::builder();
        b.free("island a", 1.0, 0.1, &[]).unwrap();
        b.free("island b", 1.0, 0.1, &[]).unwrap();
        let plan = b.build().unwrap();
        let report = validator().validate_plan("islands", &plan);
        assert!(report.is_clean(), "disconnection is a warning, not an error");
        assert_eq!(report.count(Severity::Warn), 1);
        assert_eq!(report.diagnostics[0].code, Code::FT002);
    }

    #[test]
    fn nan_cost_smuggled_through_serde_trips_ft003() {
        let mut plan = figure2_plan();
        plan.op_mut(OpId(3)).run_cost = -2.5;
        let report = validator().validate_plan("negative tr", &plan);
        assert!(!report.is_clean());
        let d = report.diagnostics.iter().find(|d| d.code == Code::FT003).unwrap();
        assert_eq!(d.op, Some(3));
    }

    #[test]
    fn binding_violation_trips_ft004() {
        let mut plan = figure2_plan();
        let config = figure3_config(&plan);
        // Re-bind an operator the config materializes.
        plan.set_binding(OpId(2), Binding::NonMaterializable);
        let report = validator().validate_ft_plan("rebound", &plan, &config);
        assert!(!report.is_clean());
        assert!(report.diagnostics.iter().any(|d| d.code == Code::FT004 && d.op == Some(2)));
    }

    #[test]
    fn config_length_mismatch_trips_ft004() {
        let plan = figure2_plan();
        let mut b = PlanDag::builder();
        b.free("tiny", 1.0, 0.1, &[]).unwrap();
        let tiny = b.build().unwrap();
        let config = MatConfig::none(&tiny);
        let report = validator().validate_ft_plan("wrong shape", &plan, &config);
        assert!(report.diagnostics.iter().any(|d| d.code == Code::FT004));
    }

    #[test]
    fn zero_cost_and_duplicate_names_lint_ft010() {
        let mut b = PlanDag::builder();
        let a = b.free("dup", 0.0, 0.0, &[]).unwrap();
        b.free("dup", 1.0, 0.1, &[a]).unwrap();
        let plan = b.build().unwrap();
        let report = validator().validate_plan("hygiene", &plan);
        assert!(report.is_clean(), "hygiene findings are lints");
        assert_eq!(report.count(Severity::Lint), 2);
        assert!(report.diagnostics.iter().all(|d| d.code == Code::FT010));
    }

    #[test]
    fn diverging_attempts_warn_ft007() {
        // A stage whose runtime dwarfs the MTBF can never hit S = 0.95.
        let mut b = PlanDag::builder();
        b.free("monster", 1e9, 0.1, &[]).unwrap();
        let plan = b.build().unwrap();
        let config = MatConfig::none(&plan);
        let report = PlanValidator::new(CostParams::new(10.0, 1.0))
            .validate_ft_plan("monster", &plan, &config);
        assert!(report.is_clean(), "{}", report.render());
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::FT007 && d.severity == Severity::Warn));

        // With MTTR = 0 the same plan's estimate degenerates to NaN
        // (`a(c) · MTTR = ∞ · 0`), which the FT009 pass must flag as an
        // error rather than letting a garbage estimate through.
        let report = PlanValidator::new(CostParams::new(10.0, 0.0))
            .validate_ft_plan("monster", &plan, &config);
        assert!(!report.is_clean());
        assert!(report.diagnostics.iter().any(|d| d.code == Code::FT009));
    }

    #[test]
    fn invalid_params_trip_ft007() {
        let plan = figure2_plan();
        let report =
            PlanValidator::new(CostParams::new(-1.0, 0.0)).validate_plan("bad params", &plan);
        assert!(!report.is_clean());
        assert_eq!(report.diagnostics[0].code, Code::FT007);
    }

    use serde_json::Value;

    /// Mutable lookup into a serialized object (the vendored `Value` has
    /// no `IndexMut`).
    fn field_mut<'a>(v: &'a mut Value, key: &str) -> &'a mut Value {
        match v {
            Value::Object(entries) => {
                entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v).unwrap()
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    /// Mutable access to `ops[0].<field>` of a serialized collapsed plan.
    fn first_op_field<'a>(v: &'a mut Value, key: &str) -> &'a mut Value {
        match field_mut(v, "ops") {
            Value::Array(ops) => field_mut(&mut ops[0], key),
            other => panic!("expected ops array, got {other:?}"),
        }
    }

    /// Serializes the real Figure 3 collapse, lets `mutate` corrupt the
    /// JSON, and returns the linted report of the damaged artifact.
    fn lint_corrupted_collapse(mutate: impl Fn(&mut Value)) -> Report {
        let plan = figure2_plan();
        let config = figure3_config(&plan);
        let collapsed = CollapsedPlan::collapse(&plan, &config, 1.0);
        let mut value = serde_json::to_value(&collapsed).unwrap();
        mutate(&mut value);
        let corrupted: CollapsedPlan = serde_json::from_value(&value).unwrap();
        validator().validate_collapsed("corrupted collapse", &plan, &config, &corrupted)
    }

    #[test]
    fn pristine_collapse_passes_validate_collapsed() {
        let report = lint_corrupted_collapse(|_| {});
        assert!(report.diagnostics.is_empty(), "{}", report.render());
    }

    #[test]
    fn dropped_member_trips_ft005() {
        // Remove operator 0 (scan R) from the first group: it then belongs
        // to no collapsed operator.
        let report = lint_corrupted_collapse(|v| {
            let Value::Array(members) = first_op_field(v, "members") else {
                panic!("members is an array")
            };
            members.retain(|m| m.as_u64() != Some(0));
        });
        assert!(!report.is_clean());
        assert!(
            report.diagnostics.iter().any(|d| d.code == Code::FT005 && d.op == Some(0)),
            "{}",
            report.render()
        );
    }

    #[test]
    fn tampered_run_cost_trips_ft006() {
        let report = lint_corrupted_collapse(|v| {
            *first_op_field(v, "run_cost") = Value::Float(99.0);
        });
        assert!(!report.is_clean());
        let d = report.diagnostics.iter().find(|d| d.code == Code::FT006).unwrap();
        assert_eq!(d.stage, Some(0));
        assert!(d.message.contains("Eq. 1"));
    }

    #[test]
    fn tampered_dominant_path_trips_ft006() {
        // Swap the dominant path of group 0 to the cheaper scan-R branch;
        // the maximality re-check must notice the more expensive path.
        let report = lint_corrupted_collapse(|v| {
            *first_op_field(v, "dominant_path") =
                Value::Array(vec![Value::UInt(0), Value::UInt(2)]);
            *first_op_field(v, "run_cost") = Value::Float(3.0); // 1.0 + 2.0
        });
        assert!(!report.is_clean());
        assert!(report.render().contains("a member path of cost"));
    }

    #[test]
    fn tampered_mat_cost_trips_ft006() {
        let report = lint_corrupted_collapse(|v| {
            *first_op_field(v, "mat_cost") = Value::Float(0.0);
        });
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == Code::FT006 && d.message.contains("materialization cost")));
    }

    #[test]
    fn tpch_style_bound_plan_is_clean() {
        // Mixed bindings: the validator accepts always-materialized and
        // non-materializable operators with a conforming config.
        let mut b = PlanDag::builder();
        let s = b.free("scan", 5.0, 2.0, &[]).unwrap();
        let r = b.bound_materialized("repartition", 1.0, 0.5, &[s]).unwrap();
        let j = b.free("join", 4.0, 1.0, &[r]).unwrap();
        b.bound_pipelined("project", 0.5, 0.1, &[j]).unwrap();
        let plan = b.build().unwrap();
        let v = validator();
        for config in MatConfig::enumerate(&plan) {
            let report = v.validate_ft_plan("mixed", &plan, &config);
            assert!(report.diagnostics.is_empty(), "{}", report.render());
        }
    }
}
