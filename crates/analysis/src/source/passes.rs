//! The FT2xx source-discipline passes.
//!
//! Each pass walks the token stream of one file (see
//! [`super::tokens`]) and emits candidate findings; the driver then
//! applies `// ftpde-allow(FT2xx: reason)` suppressions and reports any
//! suppression that is malformed or matched nothing (FT207). Passes are
//! scoped by [`FileClass`] — the discipline a file owes depends on what
//! kind of code it is (library, shim, bench harness, binary, test).

use crate::diag::{Code, Diagnostic, Report};
use crate::source::tokens::{Comment, Tok, Tokenized};
use crate::source::FileClass;

/// Paths (workspace-relative) allowed to contain `unsafe`. Deliberately
/// empty: the workspace denies `unsafe_code` and this pins it — adding
/// an entry here is a reviewed, visible event.
pub const UNSAFE_ALLOWLIST: &[&str] = &[];

/// Lints one tokenized file. `rel_path` uses forward slashes and is
/// workspace-relative (it scopes the store/core/optimizer passes).
pub fn lint_tokens(rel_path: &str, class: FileClass, tz: &Tokenized) -> Report {
    collect(rel_path, class, tz).finish()
}

/// The per-file passes plus parsed suppressions, held open so the
/// cross-file concurrency analysis ([`super::locks`]) can push its
/// findings through the same `ftpde-allow` machinery before
/// [`FileLint::finish`] settles the report.
pub struct FileLint {
    rel_path: String,
    allows: Vec<Allow>,
    findings: Vec<Diagnostic>,
    report: Report,
}

impl FileLint {
    /// Adds a candidate finding; suppressions apply at [`Self::finish`].
    pub fn push_finding(&mut self, d: Diagnostic) {
        self.findings.push(d);
    }

    /// Applies suppressions and reports unused ones (FT207).
    pub fn finish(self) -> Report {
        let Self { rel_path, mut allows, findings, mut report } = self;
        // An allow matches findings of its code on the same line or the
        // line below it. FT207 itself is not suppressible.
        for d in findings {
            let line = d.line.unwrap_or(0);
            let suppressed = allows.iter_mut().any(|a| {
                a.malformed.is_none()
                    && a.code == Some(d.code)
                    && (a.line == line || a.line + 1 == line)
                    && {
                        a.used = true;
                        true
                    }
            });
            if !suppressed {
                report.push(d);
            }
        }

        // FT207: well-formed suppressions that matched nothing are rot.
        for a in &allows {
            if a.malformed.is_none() && !a.used {
                report.push(
                    Diagnostic::new(
                        Code::FT207,
                        Code::FT207.default_severity(),
                        format!(
                            "unused suppression `ftpde-allow({}: …)` — the violation it \
                             excused is gone; delete the comment",
                            a.code.map_or("?", Code::as_str),
                        ),
                    )
                    .at_line(&rel_path, a.line),
                );
            }
        }
        report
    }
}

/// Runs the single-file passes (FT201-FT206) and parses suppressions,
/// without settling them — see [`FileLint`].
pub fn collect(rel_path: &str, class: FileClass, tz: &Tokenized) -> FileLint {
    let mut report = Report::new(rel_path);
    let toks = &tz.toks[..];
    let test_ranges = test_line_ranges(toks);
    let in_test = |line: u32| test_ranges.iter().any(|&(a, b)| (a..=b).contains(&line));

    let allows = parse_allows(&tz.comments);
    for a in &allows {
        if let Some(msg) = &a.malformed {
            report.push(
                Diagnostic::new(Code::FT207, Code::FT207.default_severity(), msg.clone())
                    .at_line(rel_path, a.line),
            );
        }
    }

    let mut findings: Vec<Diagnostic> = Vec::new();
    let mut push = |code: Code, line: u32, message: String| {
        findings
            .push(Diagnostic::new(code, code.default_severity(), message).at_line(rel_path, line));
    };

    // FT201/FT202/FT203/FT204/FT206 are single-token-window scans.
    let mut last: Option<(Code, u32)> = None; // per-line dedup of path matches
    for i in 0..toks.len() {
        let line = toks[i].line();
        let mut hit = |code: Code, msg: String| {
            if last != Some((code, line)) {
                last = Some((code, line));
                push(code, line, msg);
            }
        };

        // FT206: `unsafe` anywhere, modulo the allowlist. Applies to all
        // classes — tests don't get to be unsound either.
        if toks[i].is_ident("unsafe") && !UNSAFE_ALLOWLIST.contains(&rel_path) {
            hit(Code::FT206, "`unsafe` outside the workspace allowlist".into());
            continue;
        }

        if in_test(line) {
            continue;
        }

        // FT201: sync primitives outside a shim. Library and bench code;
        // shims are the sanctioned home, binaries are single-threaded
        // driver code, tests exercise whatever they like.
        if matches!(class, FileClass::Lib | FileClass::Bench) {
            if path_at(toks, i, &["std", "sync"]) {
                hit(
                    Code::FT201,
                    "direct `std::sync` outside a sync shim module — route through \
                     `crate::sync` (loom-modeled) or `crate::sync::plain`"
                        .into(),
                );
            } else if path_at(toks, i, &["std", "thread"]) {
                hit(
                    Code::FT201,
                    "direct `std::thread` outside a sync shim module — route through \
                     `crate::sync::plain::thread`"
                        .into(),
                );
            } else if path_head(toks, i, "parking_lot") {
                hit(
                    Code::FT201,
                    "direct `parking_lot` outside a sync shim module — route through \
                     `crate::sync` (loom-modeled) or `crate::sync::plain`"
                        .into(),
                );
            } else if path_head(toks, i, "loom") {
                hit(
                    Code::FT201,
                    "direct `loom` outside a sync shim module — the shim owns the \
                     `--cfg loom` switch"
                        .into(),
                );
            }
        }

        // FT202: wall-clock reads in library code.
        if class == FileClass::Lib {
            if path_at(toks, i, &["Instant", "now"]) {
                hit(
                    Code::FT202,
                    "`Instant::now()` in library code — call `sync::clock::now()`, the \
                     virtual-time seam"
                        .into(),
                );
            } else if toks[i].is_ident("SystemTime") {
                hit(
                    Code::FT202,
                    "`SystemTime` in library code — wall-clock state breaks deterministic \
                     re-execution; use `sync::clock`"
                        .into(),
                );
            }
        }

        // FT203: hash containers in the plan/cost paths of core and the
        // optimizer, where iteration order can reach plan output.
        if class == FileClass::Lib
            && (rel_path.starts_with("crates/core/") || rel_path.starts_with("crates/optimizer/"))
            && (toks[i].is_ident("HashMap") || toks[i].is_ident("HashSet"))
        {
            let name = toks[i].ident().unwrap_or_default();
            hit(
                Code::FT203,
                format!(
                    "`{name}` in a plan/cost path — iteration order is randomized per \
                     process; use BTree{}, a dense-id Vec, or sort before iterating",
                    &name[4..]
                ),
            );
        }

        // FT204: panicking calls in library code (hygiene ratchet).
        if class == FileClass::Lib {
            if toks[i].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
            {
                let what = toks[i + 1].ident().unwrap_or_default();
                hit(Code::FT204, format!("`.{what}(…)` in library code can panic a worker"));
            } else if toks[i].is_ident("panic") && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            {
                hit(Code::FT204, "`panic!` in library code tears down a worker thread".into());
            }
        }
    }

    // FT205: fsync pairing on the store commit path — any function that
    // renames must fsync in the same function.
    if class == FileClass::Lib && rel_path.starts_with("crates/store/") {
        for f in fn_ranges(toks) {
            if in_test(f.line) {
                continue;
            }
            let body = &toks[f.start..f.end];
            let has_rename = body.iter().any(|t| t.ident() == Some("rename"));
            let has_sync = body
                .iter()
                .any(|t| t.ident() == Some("sync_all") || t.ident() == Some("sync_data"));
            if has_rename && !has_sync {
                push(
                    Code::FT205,
                    f.line,
                    format!(
                        "fn `{}` renames without `sync_all`/`sync_data` in the same \
                         function — a crash can commit a torn file",
                        f.name
                    ),
                );
            }
        }
    }

    FileLint { rel_path: rel_path.to_string(), allows, findings, report }
}

/// Matches `seg0 :: seg1` starting at token `i`.
fn path_at(toks: &[Tok], i: usize, segs: &[&str; 2]) -> bool {
    toks[i].is_ident(segs[0])
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident(segs[1]))
}

/// Matches `name ::` starting at token `i` — a crate-path use of `name`
/// (a bare mention, e.g. inside `#[cfg(loom)]`, does not match).
fn path_head(toks: &[Tok], i: usize, name: &str) -> bool {
    toks[i].is_ident(name)
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
}

/// A parsed `// ftpde-allow(FT2xx: reason)` suppression comment.
#[derive(Debug)]
struct Allow {
    line: u32,
    code: Option<Code>,
    /// `Some(message)` when the comment is recognizably an allow but
    /// does not parse (unknown code, missing reason, bad shape).
    malformed: Option<String>,
    used: bool,
}

/// Extracts suppressions from the comment list. A suppression must be
/// the comment's entire content (`// ftpde-allow(FT2xx: reason)`) — a
/// doc comment that merely *mentions* the syntax is prose, not an
/// allow. A comment that leads with `ftpde-allow` but does not parse is
/// an FT207 finding: there is no silent middle ground.
fn parse_allows(comments: &[Comment]) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in comments {
        // Strip the `//` / `/*` / doc-comment introducer.
        let body = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        if !body.starts_with("ftpde-allow") {
            continue;
        }
        let rest = &body["ftpde-allow".len()..];
        let parsed = (|| -> Result<Code, String> {
            let inner = rest
                .strip_prefix('(')
                .ok_or("expected `ftpde-allow(FT2xx: reason)`")?
                .split_once(')')
                .ok_or("missing closing `)`")?
                .0;
            let (code, reason) =
                inner.split_once(':').ok_or("missing `:` between code and reason")?;
            let code = crate::codes::parse(code)
                .ok_or_else(|| format!("unknown code {:?}", code.trim()))?;
            if reason.trim().is_empty() {
                return Err("empty reason".into());
            }
            if code == Code::FT207 {
                return Err("FT207 (suppression hygiene) cannot itself be suppressed".into());
            }
            Ok(code)
        })();
        match parsed {
            Ok(code) => {
                out.push(Allow { line: c.line, code: Some(code), malformed: None, used: false });
            }
            Err(why) => out.push(Allow {
                line: c.line,
                code: None,
                malformed: Some(format!("malformed `ftpde-allow` suppression: {why}")),
                used: false,
            }),
        }
    }
    out
}

/// Line ranges covered by `#[test]` / `#[cfg(test)]`-style items: any
/// attribute run containing the bare ident `test` exempts the item it
/// decorates (attribute lines through the end of the item's `{…}` block
/// or its terminating `;`).
pub(crate) fn test_line_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // An outer attribute: `#` `[` … `]` (skip inner `#![…]`).
        if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let attr_start_line = toks[i].line();
        let mut is_test = false;
        // Walk the run of consecutive attributes.
        while toks.get(i).is_some_and(|t| t.is_punct('#'))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
        {
            let mut depth = 0usize;
            i += 1; // at `[`
            loop {
                let Some(t) = toks.get(i) else { return ranges };
                if t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                } else if t.is_ident("test") {
                    is_test = true;
                }
                i += 1;
            }
        }
        if !is_test {
            continue;
        }
        // Find the decorated item's extent: a `;` before any brace ends
        // it; otherwise the matching `}` of its first `{` does.
        let mut depth = 0usize;
        let mut end_line = attr_start_line;
        while let Some(t) = toks.get(i) {
            end_line = t.line();
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    i += 1;
                    break;
                }
            } else if t.is_punct(';') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        ranges.push((attr_start_line, end_line));
    }
    ranges
}

/// One `fn` item: its name, declaration line, and body token range.
struct FnRange {
    name: String,
    line: u32,
    start: usize,
    end: usize,
}

/// Finds every `fn` body (including nested ones — each is checked
/// independently). Trait-method declarations without bodies are skipped.
fn fn_ranges(toks: &[Tok]) -> Vec<FnRange> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(Tok::ident) else { continue };
        // Scan to the body's `{` — a `;` first means a bodyless decl.
        let mut j = i + 2;
        let start = loop {
            match toks.get(j) {
                None => break None,
                Some(t) if t.is_punct('{') => break Some(j),
                Some(t) if t.is_punct(';') => break None,
                Some(_) => j += 1,
            }
        };
        let Some(start) = start else { continue };
        let mut depth = 0usize;
        let mut j = start;
        let end = loop {
            match toks.get(j) {
                None => break j,
                Some(t) => {
                    if t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break j + 1;
                        }
                    }
                    j += 1;
                }
            }
        };
        out.push(FnRange { name: name.to_string(), line: toks[i].line(), start, end });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use crate::source::tokens::tokenize;

    fn lint(class: FileClass, src: &str) -> Report {
        lint_tokens("crates/demo/src/lib.rs", class, &tokenize(src))
    }

    fn codes(r: &Report) -> Vec<Code> {
        r.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn ft201_fires_in_lib_not_in_shim_or_test() {
        let src = "use std::sync::Mutex;";
        assert_eq!(codes(&lint(FileClass::Lib, src)), vec![Code::FT201]);
        assert_eq!(codes(&lint(FileClass::Shim, src)), vec![]);
        assert_eq!(codes(&lint(FileClass::Test, src)), vec![]);
        let test_block = "#[cfg(test)]\nmod tests { use std::sync::Mutex; }";
        assert_eq!(codes(&lint(FileClass::Lib, test_block)), vec![]);
    }

    #[test]
    fn ft201_catches_thread_parking_lot_and_loom_paths() {
        for src in ["std::thread::spawn(f);", "use parking_lot::RwLock;", "loom::model(|| {});"] {
            assert_eq!(codes(&lint(FileClass::Lib, src)), vec![Code::FT201], "{src}");
        }
        // A cfg mention of loom is not a path use.
        assert_eq!(codes(&lint(FileClass::Lib, "#[cfg(not(loom))]\nfn f() {}")), vec![]);
    }

    #[test]
    fn ft202_fires_on_wall_clock_outside_bench() {
        let src = "let t0 = Instant::now();";
        assert_eq!(codes(&lint(FileClass::Lib, src)), vec![Code::FT202]);
        assert_eq!(codes(&lint(FileClass::Bench, src)), vec![]);
        assert_eq!(codes(&lint(FileClass::Bin, src)), vec![]);
        assert_eq!(
            codes(&lint(FileClass::Lib, "let t = SystemTime::UNIX_EPOCH;")),
            vec![Code::FT202]
        );
    }

    #[test]
    fn ft203_scoped_to_core_and_optimizer() {
        let src = "use std::collections::HashMap;";
        let r = lint_tokens("crates/core/src/collapse.rs", FileClass::Lib, &tokenize(src));
        assert_eq!(codes(&r), vec![Code::FT203]);
        assert_eq!(r.diagnostics[0].severity, Severity::Warn);
        // Same text in the engine is fine (std HashMap is not FT201).
        let r = lint_tokens("crates/engine/src/plan.rs", FileClass::Lib, &tokenize(src));
        assert_eq!(codes(&r), vec![]);
    }

    #[test]
    fn ft204_is_a_lint_and_skips_tests() {
        let src = "fn f() {\n  x.unwrap();\n  y.expect(\"msg\");\n  panic!(\"boom\");\n}\n\
                   #[test]\nfn t() { z.unwrap(); }";
        let r = lint(FileClass::Lib, src);
        assert_eq!(codes(&r), vec![Code::FT204, Code::FT204, Code::FT204]);
        assert!(r.diagnostics.iter().all(|d| d.severity == Severity::Lint));
        assert!(r.is_clean(), "FT204 must never gate");
        // Findings dedup per (code, line): two unwraps on one line are
        // one diagnostic.
        let r = lint(FileClass::Lib, "fn f() { a.unwrap(); b.unwrap(); }");
        assert_eq!(codes(&r), vec![Code::FT204]);
    }

    #[test]
    fn ft205_requires_fsync_next_to_rename() {
        let bad = "fn commit(&self) { fs::rename(a, b); }";
        let good = "fn commit(&self) { f.sync_all(); fs::rename(a, b); }";
        let r = lint_tokens("crates/store/src/disk.rs", FileClass::Lib, &tokenize(bad));
        assert_eq!(codes(&r), vec![Code::FT205]);
        let r = lint_tokens("crates/store/src/disk.rs", FileClass::Lib, &tokenize(good));
        assert_eq!(codes(&r), vec![]);
        // Outside the store crate the pass is silent.
        let r = lint_tokens("crates/obs/src/flight.rs", FileClass::Lib, &tokenize(bad));
        assert_eq!(codes(&r), vec![]);
    }

    #[test]
    fn ft206_flags_unsafe_everywhere() {
        let src = "unsafe { *p }";
        assert_eq!(codes(&lint(FileClass::Lib, src)), vec![Code::FT206]);
        assert_eq!(codes(&lint(FileClass::Test, src)), vec![Code::FT206]);
    }

    #[test]
    fn allow_suppresses_same_and_next_line_only() {
        let same = "use std::sync::Mutex; // ftpde-allow(FT201: justified here)";
        assert_eq!(codes(&lint(FileClass::Lib, same)), vec![]);
        let above = "// ftpde-allow(FT201: justified here)\nuse std::sync::Mutex;";
        assert_eq!(codes(&lint(FileClass::Lib, above)), vec![]);
        let far = "// ftpde-allow(FT201: too far away)\n\nuse std::sync::Mutex;";
        let r = lint(FileClass::Lib, far);
        // The violation survives and the allow is reported unused.
        assert_eq!(codes(&r), vec![Code::FT201, Code::FT207]);
    }

    #[test]
    fn ft207_flags_unused_and_malformed_allows() {
        let unused = "// ftpde-allow(FT202: nothing here is a clock)\nfn f() {}";
        assert_eq!(codes(&lint(FileClass::Lib, unused)), vec![Code::FT207]);
        for bad in [
            "// ftpde-allow(FT999: unknown code)\nfn f() {}",
            "// ftpde-allow(FT201)\nuse std::sync::Mutex;",
            "// ftpde-allow(FT201: )\nuse std::sync::Mutex;",
            "// ftpde-allow FT201: no parens\nfn f() {}",
        ] {
            let r = lint(FileClass::Lib, bad);
            assert!(codes(&r).contains(&Code::FT207), "{bad}: {:?}", codes(&r));
        }
    }

    #[test]
    fn wrong_code_allow_does_not_suppress() {
        let src = "// ftpde-allow(FT202: wrong code)\nuse std::sync::Mutex;";
        let r = lint(FileClass::Lib, src);
        assert_eq!(codes(&r), vec![Code::FT201, Code::FT207]);
    }

    #[test]
    fn mentions_in_comments_and_strings_do_not_fire() {
        let src = "// std::sync::Mutex and Instant::now() discussed here\n\
                   const DOC: &str = \"std::thread::spawn\";\nfn f() {}";
        assert_eq!(codes(&lint(FileClass::Lib, src)), vec![]);
    }
}
