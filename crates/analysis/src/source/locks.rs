//! Lock-site dataflow and the FT21x concurrency-discipline passes.
//!
//! PR 8 made every lock acquisition route through the three-face sync
//! shims (`engine::sync` / `store::sync` / `obs::sync`), which turns
//! `.lock()` in library code into a reliable chokepoint: any
//! `field.lock()` call *is* a shim-mutex acquisition. This module
//! exploits that to run a guard-liveness dataflow over each library
//! function and, with the conservative call graph
//! ([`super::callgraph`]), a workspace-wide lock-order analysis:
//!
//! * **FT213** — re-entrant acquisition of a lock already held
//!   (directly, or through a resolved call chain). The shims wrap
//!   `parking_lot`, which self-deadlocks on re-entry.
//! * **FT211** — blocking I/O (`fs::*`, `File::open`, fsync,
//!   `TcpStream`/`TcpListener`, `std::process`, `thread::sleep`) while
//!   a guard is live.
//! * **FT212** — channel `send`/`recv` or `JoinHandle::join` while a
//!   guard is live: the peer may need the same lock to make progress.
//! * **FT214** — a call into the observability plane (`obs::global()`
//!   or anything that transitively reaches it) while a guard is live;
//!   the metrics registry takes its own locks on first use.
//! * **FT210** — a cycle in the workspace lock-order graph (lock A
//!   held while acquiring B somewhere, B held while acquiring A
//!   elsewhere): a potential deadlock no single function exhibits.
//!
//! **Lock identity** is `file::field` — the receiver field name of the
//! `.lock()` call, qualified by the file that owns it (`self.inner`
//! and `store.inner` in one file are the same lock; `inner` in two
//! files are different locks). Receivers that are not a plain field
//! (`stdout().lock()`) are not tracked.
//!
//! **Guard liveness** mirrors the workspace idiom rather than full
//! Rust temporaries semantics: `let g = x.lock();` is live until its
//! enclosing brace scope closes or `drop(g)`; any other `.lock()` use
//! is a temporary, dead at the end of the statement (`;`, or the `{`
//! opening a block — so `if x.lock().ok() { … }` holds nothing inside
//! the block). `let _ = x.lock();` drops immediately and is treated as
//! a temporary. The full caveat list lives in DESIGN §16.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::{Code, Diagnostic};
use crate::source::callgraph::{self, CallGraph};
use crate::source::items::{self, FnItem};
use crate::source::tokens::Tok;

/// One FT21x finding, attributed to a file by the caller's index so it
/// can flow through that file's suppression machinery.
#[derive(Debug)]
pub struct Finding {
    /// Caller's index for the file the diagnostic belongs to.
    pub file: usize,
    pub diag: Diagnostic,
}

/// Result of the cross-file concurrency analysis.
#[derive(Debug, Default)]
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub graph: LockGraph,
}

/// The workspace lock-order graph: a deduplicated edge `A -> B` means
/// some function acquires `B` (directly or through resolved calls)
/// while holding `A`, witnessed at the recorded site.
#[derive(Debug, Clone, Default)]
pub struct LockGraph {
    /// Deduplicated, deterministically ordered edges.
    pub edges: Vec<LockEdge>,
}

/// One lock-order edge with its first witness site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, serde::Serialize)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    /// Workspace-relative file of the witnessing acquisition/call.
    pub file: String,
    pub line: u32,
}

impl LockGraph {
    /// All lock identities appearing in any edge, sorted.
    pub fn nodes(&self) -> Vec<&str> {
        let mut set = BTreeSet::new();
        for e in &self.edges {
            set.insert(e.from.as_str());
            set.insert(e.to.as_str());
        }
        set.into_iter().collect()
    }

    /// Graphviz DOT rendering, one edge per witnessed ordering.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph lock_order {\n  rankdir=LR;\n");
        for n in self.nodes() {
            let _ = writeln!(out, "  \"{n}\";");
        }
        for e in &self.edges {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{}:{}\"];",
                e.from, e.to, e.file, e.line
            );
        }
        out.push_str("}\n");
        out
    }

    /// JSON rendering: `{"nodes": […], "edges": [{from,to,file,line}]}`.
    pub fn to_json(&self) -> String {
        use serde::Value;
        let nodes =
            Value::Array(self.nodes().into_iter().map(|n| Value::Str(n.to_string())).collect());
        let edges = serde_json::to_value(&self.edges).unwrap_or(Value::Null);
        let v = Value::Object(vec![("nodes".to_string(), nodes), ("edges".to_string(), edges)]);
        serde_json::to_string_pretty(&v).unwrap_or_default()
    }

    /// Strongly-connected components with more than one lock — each is
    /// a potential-deadlock cycle. Components and their members are
    /// deterministically ordered.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let nodes: Vec<&str> = self.nodes();
        let reach = |from: &str| -> BTreeSet<&str> {
            let mut seen = BTreeSet::new();
            let mut stack = vec![from];
            while let Some(n) = stack.pop() {
                for e in self.edges.iter().filter(|e| e.from == n) {
                    if seen.insert(e.to.as_str()) {
                        stack.push(e.to.as_str());
                    }
                }
            }
            seen
        };
        let reachable: BTreeMap<&str, BTreeSet<&str>> =
            nodes.iter().map(|&n| (n, reach(n))).collect();
        let mut assigned: BTreeSet<&str> = BTreeSet::new();
        let mut out = Vec::new();
        for &n in &nodes {
            if assigned.contains(n) || !reachable[n].contains(n) {
                assigned.insert(n);
                continue;
            }
            let scc: Vec<&str> = nodes
                .iter()
                .copied()
                .filter(|&m| reachable[n].contains(m) && reachable[m].contains(n))
                .collect();
            assigned.extend(scc.iter().copied());
            out.push(scc.into_iter().map(String::from).collect());
        }
        out
    }
}

/// Per-function facts, first computed from the body alone and then
/// closed over resolved calls to a fixpoint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Facts {
    /// Lock identities this fn may acquire.
    acquires: BTreeSet<String>,
    /// May perform blocking I/O.
    blocking: bool,
    /// May block on a channel or thread join.
    chan: bool,
    /// May reach the observability plane (`obs::global()`).
    obs: bool,
}

/// A live lock guard during the walk of one function body.
struct Guard {
    lock: String,
    name: Option<String>,
    /// Brace depth at acquisition; a scoped guard dies when the walk
    /// returns to a shallower depth.
    depth: i32,
    /// `true` for `let g = x.lock();` (scope-lived); `false` for a
    /// temporary that dies at the statement boundary.
    scoped: bool,
    line: u32,
}

/// Runs the FT21x analysis over `(file index, rel path, tokens)` of
/// every **library** file (shims, binaries, tests and benches are out
/// of scope — see [`super::FileClass`]).
pub fn analyze(files: &[(usize, &str, &[Tok])]) -> Analysis {
    // Extract fns, dropping any declared inside `#[test]`-marked items.
    let extracted: Vec<(usize, &[Tok], Vec<FnItem>)> = files
        .iter()
        .map(|&(file, _, toks)| {
            let tests = crate::source::passes::test_line_ranges(toks);
            let fns = items::extract(toks)
                .into_iter()
                .filter(|f| !tests.iter().any(|&(a, b)| (a..=b).contains(&f.line)))
                .collect();
            (file, toks, fns)
        })
        .collect();
    let graph = callgraph::build(&extracted);

    // Position of each graph fn in `files` (for rel-path lookup).
    let file_pos: BTreeMap<usize, usize> =
        files.iter().enumerate().map(|(pos, &(file, _, _))| (file, pos)).collect();

    // Direct facts per fn, then close over calls to a fixpoint.
    let mut facts: Vec<Facts> =
        (0..graph.fns.len()).map(|id| direct_facts(&graph, id, files, &file_pos)).collect();
    loop {
        let mut changed = false;
        for caller in 0..graph.fns.len() {
            for site in graph.calls[caller].clone() {
                let callee = facts[site.callee].clone();
                let f = &mut facts[caller];
                let before = f.clone();
                f.acquires.extend(callee.acquires.iter().cloned());
                f.blocking |= callee.blocking;
                f.chan |= callee.chan;
                f.obs |= callee.obs;
                changed |= *f != before;
            }
        }
        if !changed {
            break;
        }
    }

    let mut analysis = Analysis::default();
    let mut edge_witness: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    let mut seen: BTreeSet<(usize, Code, u32)> = BTreeSet::new();
    for id in 0..graph.fns.len() {
        walk_fn(&graph, id, files, &file_pos, &facts, &mut analysis, &mut edge_witness, &mut seen);
    }

    analysis.graph = LockGraph {
        edges: edge_witness
            .into_iter()
            .map(|((from, to), (file, line))| LockEdge { from, to, file, line })
            .collect(),
    };

    // FT210: every lock-order cycle, reported once at the witness site
    // of its lexicographically first internal edge.
    for cycle in analysis.graph.cycles() {
        let members: BTreeSet<&str> = cycle.iter().map(String::as_str).collect();
        let Some(edge) = analysis
            .graph
            .edges
            .iter()
            .find(|e| members.contains(e.from.as_str()) && members.contains(e.to.as_str()))
        else {
            continue;
        };
        let file = files.iter().find(|(_, rel, _)| *rel == edge.file).map_or(0, |&(f, _, _)| f);
        let path = cycle.join(" -> ");
        analysis.findings.push(Finding {
            file,
            diag: Diagnostic::new(
                Code::FT210,
                Code::FT210.default_severity(),
                format!(
                    "lock-order cycle {path} -> {}: this site orders `{}` before `{}` while \
                     another path orders them oppositely — a potential deadlock; acquire in \
                     one global order or collapse the critical sections",
                    cycle[0], edge.from, edge.to
                ),
            )
            .at_line(&edge.file, edge.line),
        });
    }
    analysis
}

/// Facts visible in `id`'s own body, before call closure.
fn direct_facts(
    graph: &CallGraph,
    id: usize,
    files: &[(usize, &str, &[Tok])],
    file_pos: &BTreeMap<usize, usize>,
) -> Facts {
    let pos = file_pos[&graph.fns[id].file];
    let (_, rel, toks) = files[pos];
    let fns = fns_of_file(graph, graph.fns[id].file);
    let me = in_file_index(graph, id);
    let mut f = Facts::default();
    for i in items::own_body(&fns, me) {
        if let Some(field) = lock_acquire_at(toks, i) {
            f.acquires.insert(format!("{rel}::{field}"));
        }
        f.blocking |= blocking_at(toks, i).is_some();
        f.chan |= chan_at(toks, i).is_some();
        f.obs |= obs_at(toks, i);
    }
    f
}

/// Walks one function body tracking live guards; emits FT211-FT214
/// findings and lock-order edges.
#[allow(clippy::too_many_arguments)]
fn walk_fn(
    graph: &CallGraph,
    id: usize,
    files: &[(usize, &str, &[Tok])],
    file_pos: &BTreeMap<usize, usize>,
    facts: &[Facts],
    analysis: &mut Analysis,
    edge_witness: &mut BTreeMap<(String, String), (String, u32)>,
    seen: &mut BTreeSet<(usize, Code, u32)>,
) {
    let pos = file_pos[&graph.fns[id].file];
    let (file, rel, toks) = files[pos];
    let fns = fns_of_file(graph, graph.fns[id].file);
    let me = in_file_index(graph, id);
    let calls: BTreeMap<usize, Vec<usize>> = {
        let mut m: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for s in &graph.calls[id] {
            m.entry(s.tok).or_default().push(s.callee);
        }
        m
    };

    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let emit = |analysis: &mut Analysis,
                seen: &mut BTreeSet<(usize, Code, u32)>,
                code: Code,
                line: u32,
                col: u32,
                msg: String| {
        if seen.insert((file, code, line)) {
            analysis.findings.push(Finding {
                file,
                diag: Diagnostic::new(code, code.default_severity(), msg)
                    .at_line(rel, line)
                    .at_col(col),
            });
        }
    };

    for i in items::own_body(&fns, me) {
        let t = &toks[i];
        let (line, col) = (t.line(), t.col());
        match t.punct() {
            Some('{') => {
                guards.retain(|g| g.scoped);
                depth += 1;
                continue;
            }
            Some('}') => {
                depth -= 1;
                guards.retain(|g| g.scoped && g.depth <= depth);
                continue;
            }
            Some(';') => {
                guards.retain(|g| g.scoped);
                continue;
            }
            _ => {}
        }

        // `drop(g)` ends a named guard early.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            if let Some(victim) = toks.get(i + 2).and_then(Tok::ident) {
                guards.retain(|g| g.name.as_deref() != Some(victim));
                continue;
            }
        }

        if let Some(field) = lock_acquire_at(toks, i) {
            let lock = format!("{rel}::{field}");
            for g in &guards {
                if g.lock == lock {
                    emit(
                        analysis,
                        seen,
                        Code::FT213,
                        line,
                        col,
                        format!(
                            "re-entrant acquisition of `{lock}` — the guard from line {} is \
                             still live, and the shim mutexes (parking_lot) self-deadlock on \
                             re-entry",
                            g.line
                        ),
                    );
                } else {
                    edge_witness
                        .entry((g.lock.clone(), lock.clone()))
                        .or_insert_with(|| (rel.to_string(), line));
                }
            }
            let (scoped, name) = guard_binding(toks, i);
            guards.push(Guard { lock, name, depth, scoped, line });
            continue;
        }

        let held = guards.last();
        if let Some(g) = held {
            if let Some(op) = blocking_at(toks, i) {
                emit(
                    analysis,
                    seen,
                    Code::FT211,
                    line,
                    col,
                    format!(
                        "blocking {op} while `{}` is held (guard since line {}) — move the \
                         I/O out of the critical section",
                        g.lock, g.line
                    ),
                );
            } else if let Some(op) = chan_at(toks, i) {
                emit(
                    analysis,
                    seen,
                    Code::FT212,
                    line,
                    col,
                    format!(
                        "{op} while `{}` is held (guard since line {}) — the peer may need \
                         this lock to make progress",
                        g.lock, g.line
                    ),
                );
            } else if obs_at(toks, i) {
                emit(
                    analysis,
                    seen,
                    Code::FT214,
                    line,
                    col,
                    format!(
                        "`obs::global()` reached while `{}` is held (guard since line {}) — \
                         record metrics after releasing the guard",
                        g.lock, g.line
                    ),
                );
            }
        }

        if let Some(callees) = calls.get(&i) {
            for &callee in callees {
                let cf = &facts[callee];
                let qual = &graph.fns[callee].item.qual;
                for l2 in &cf.acquires {
                    let mut reentrant = false;
                    for g in &guards {
                        if g.lock == *l2 {
                            reentrant = true;
                            emit(
                                analysis,
                                seen,
                                Code::FT213,
                                line,
                                col,
                                format!(
                                    "call to `{qual}` re-acquires `{l2}` held since line {} \
                                     — the shim mutexes self-deadlock on re-entry",
                                    g.line
                                ),
                            );
                        }
                    }
                    if !reentrant {
                        for g in &guards {
                            edge_witness
                                .entry((g.lock.clone(), l2.clone()))
                                .or_insert_with(|| (rel.to_string(), line));
                        }
                    }
                }
                if let Some(g) = guards.last() {
                    if cf.blocking {
                        emit(
                            analysis,
                            seen,
                            Code::FT211,
                            line,
                            col,
                            format!(
                                "call to `{qual}` performs blocking I/O while `{}` is held \
                                 (guard since line {}) — hoist the I/O out of the critical \
                                 section",
                                g.lock, g.line
                            ),
                        );
                    }
                    if cf.chan {
                        emit(
                            analysis,
                            seen,
                            Code::FT212,
                            line,
                            col,
                            format!(
                                "call to `{qual}` blocks on a channel or join while `{}` is \
                                 held (guard since line {})",
                                g.lock, g.line
                            ),
                        );
                    }
                    if cf.obs {
                        emit(
                            analysis,
                            seen,
                            Code::FT214,
                            line,
                            col,
                            format!(
                                "call to `{qual}` reaches `obs::global()` while `{}` is held \
                                 (guard since line {}) — record metrics after releasing the \
                                 guard",
                                g.lock, g.line
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// The fns of one file, in graph order (contiguous by construction).
fn fns_of_file(graph: &CallGraph, file: usize) -> Vec<FnItem> {
    graph.fns.iter().filter(|f| f.file == file).map(|f| f.item.clone()).collect()
}

/// Position of graph fn `id` within its own file's fn list.
fn in_file_index(graph: &CallGraph, id: usize) -> usize {
    let file = graph.fns[id].file;
    graph.fns[..id].iter().filter(|f| f.file == file).count()
}

/// `Some(field)` when token `i` is the `lock` of `field . lock ( )`.
fn lock_acquire_at(toks: &[Tok], i: usize) -> Option<&str> {
    if !(toks[i].is_ident("lock")
        && i >= 2
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(')')))
    {
        return None;
    }
    toks[i - 2].ident()
}

/// Classifies the binding of the acquisition at token `i` (the `lock`
/// ident): `(scoped, name)`. Scope-lived iff the statement begins with
/// `let` and the `.lock()` call is the statement's final expression
/// (its `)` is immediately followed by `;`); `let _ = …` drops at once.
fn guard_binding(toks: &[Tok], i: usize) -> (bool, Option<String>) {
    if !toks.get(i + 3).is_some_and(|t| t.is_punct(';')) {
        return (false, None);
    }
    // Scan back to the statement boundary.
    let mut j = i;
    while j > 0 {
        let t = &toks[j - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        j -= 1;
    }
    if !toks.get(j).is_some_and(|t| t.is_ident("let")) {
        return (false, None);
    }
    let mut k = j + 1;
    if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
        k += 1;
    }
    match toks.get(k).and_then(Tok::ident) {
        Some("_") | None => (false, None),
        Some(name) => (true, Some(name.to_string())),
    }
}

/// File-system / process / sleep operations that block the calling
/// thread, as `(leading path segment, member)` pairs.
const BLOCKING_PATHS: &[(&str, &str)] = &[
    ("fs", "rename"),
    ("fs", "remove_file"),
    ("fs", "remove_dir_all"),
    ("fs", "create_dir_all"),
    ("fs", "write"),
    ("fs", "read"),
    ("fs", "read_to_string"),
    ("fs", "read_dir"),
    ("fs", "copy"),
    ("File", "open"),
    ("File", "create"),
    ("TcpStream", "connect"),
    ("TcpListener", "bind"),
    ("UdpSocket", "bind"),
    ("Command", "new"),
    ("std", "process"),
    ("thread", "sleep"),
];

/// `Some(description)` when token `i` is a blocking operation.
fn blocking_at(toks: &[Tok], i: usize) -> Option<String> {
    let name = toks[i].ident()?;
    // `handle.sync_all()` / `.sync_data()` — an fsync.
    if (name == "sync_all" || name == "sync_data")
        && i >= 1
        && toks[i - 1].is_punct('.')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
    {
        return Some(format!("`.{name}()` (fsync)"));
    }
    // `seg::member` path operations.
    if i >= 3 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
        let seg = toks[i - 3].ident().unwrap_or_default();
        if BLOCKING_PATHS.iter().any(|&(s, m)| s == seg && m == name) {
            return Some(format!("`{seg}::{name}`"));
        }
    }
    None
}

/// `Some(description)` when token `i` blocks on a channel or a join.
fn chan_at(toks: &[Tok], i: usize) -> Option<String> {
    let name = toks[i].ident()?;
    if i == 0 || !toks[i - 1].is_punct('.') {
        return None;
    }
    let open = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
    match name {
        // Zero-arg `.join()` — `Path::join(part)` takes an argument.
        "join" if open && toks.get(i + 2).is_some_and(|t| t.is_punct(')')) => {
            Some("`.join()` on a thread handle".to_string())
        }
        "recv" | "recv_timeout" if open => Some(format!("channel `.{name}(…)`")),
        "send" if open => Some("channel `.send(…)`".to_string()),
        _ => None,
    }
}

/// `true` when token `i` is the `global` of `…::global(…)` — the
/// observability-plane entry point.
fn obs_at(toks: &[Tok], i: usize) -> bool {
    toks[i].is_ident("global")
        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        && i >= 2
        && toks[i - 1].is_punct(':')
        && toks[i - 2].is_punct(':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::tokens::tokenize;

    /// Analyzes in-memory `(path, src)` pairs and returns (code, line)
    /// pairs across all findings, plus the graph.
    fn run(files: &[(&str, &str)]) -> (Vec<(Code, u32)>, LockGraph) {
        let tzs: Vec<_> = files.iter().map(|(_, s)| tokenize(s)).collect();
        let view: Vec<(usize, &str, &[Tok])> = files
            .iter()
            .enumerate()
            .map(|(i, (rel, _))| (i, *rel, tzs[i].toks.as_slice()))
            .collect();
        let a = analyze(&view);
        let mut hits: Vec<(Code, u32)> =
            a.findings.iter().map(|f| (f.diag.code, f.diag.line.unwrap_or(0))).collect();
        hits.sort();
        (hits, a.graph)
    }

    #[test]
    fn blocking_io_under_named_guard_is_ft211() {
        let src = "impl S {\n\
                   fn f(&self) {\n\
                   let g = self.inner.lock();\n\
                   fs::rename(a, b);\n\
                   }\n}";
        let (hits, _) = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(hits, vec![(Code::FT211, 4)]);
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "impl S {\n\
                   fn f(&self) {\n\
                   self.inner.lock().push(1);\n\
                   fs::rename(a, b);\n\
                   }\n}";
        let (hits, _) = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(hits, vec![]);
    }

    #[test]
    fn condition_guard_does_not_leak_into_the_block() {
        // `if x.lock().is_some() { … }` — the temporary dies at `{`.
        let src = "impl S {\n\
                   fn f(&self) {\n\
                   if self.inner.lock().is_some() {\n\
                   fs::rename(a, b);\n\
                   }\n}\n}";
        let (hits, _) = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(hits, vec![]);
    }

    #[test]
    fn drop_ends_the_guard_early() {
        let src = "impl S {\n\
                   fn f(&self) {\n\
                   let g = self.inner.lock();\n\
                   drop(g);\n\
                   fs::rename(a, b);\n\
                   }\n}";
        let (hits, _) = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(hits, vec![]);
    }

    #[test]
    fn transitive_blocking_via_self_call_is_ft211() {
        let src = "impl S {\n\
                   fn f(&self) {\n\
                   let g = self.inner.lock();\n\
                   self.commit();\n\
                   }\n\
                   fn commit(&self) { f.sync_all(); }\n}";
        let (hits, _) = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(hits, vec![(Code::FT211, 4)]);
    }

    #[test]
    fn channel_and_join_under_guard_are_ft212() {
        let src = "fn f(rx: X, h: Y, inner: L) {\n\
                   let g = inner.lock();\n\
                   rx.recv();\n\
                   h.join();\n\
                   }\n\
                   fn ok(p: P) { let q = p.join(\"x\"); }";
        let (hits, _) = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(hits, vec![(Code::FT212, 3), (Code::FT212, 4)]);
    }

    #[test]
    fn reentrant_same_lock_is_ft213_direct_and_via_call() {
        let direct = "impl S {\n\
                      fn f(&self) {\n\
                      let g = self.inner.lock();\n\
                      let h = self.inner.lock();\n\
                      }\n}";
        let (hits, _) = run(&[("crates/x/src/lib.rs", direct)]);
        assert_eq!(hits, vec![(Code::FT213, 4)]);

        let via_call = "impl S {\n\
                        fn f(&self) {\n\
                        let g = self.inner.lock();\n\
                        self.len();\n\
                        }\n\
                        fn len(&self) { let n = self.inner.lock(); }\n}";
        let (hits, _) = run(&[("crates/x/src/lib.rs", via_call)]);
        assert_eq!(hits, vec![(Code::FT213, 4)]);
    }

    #[test]
    fn obs_global_under_guard_is_ft214_direct_and_transitive() {
        let files = [
            (
                "crates/x/src/disk.rs",
                "impl S {\n\
                 fn f(&self) {\n\
                 let g = self.inner.lock();\n\
                 stats::record_put(1);\n\
                 }\n}",
            ),
            ("crates/x/src/stats.rs", "pub fn record_put(n: u64) { ftpde_obs::global().put(n); }"),
        ];
        let (hits, _) = run(&files);
        assert_eq!(hits, vec![(Code::FT214, 4)]);
    }

    #[test]
    fn opposite_order_acquisitions_are_a_ft210_cycle() {
        let files = [(
            "crates/x/src/lib.rs",
            "fn ab(a: L, b: L) { let g = a.lock(); let h = b.lock(); }\n\
             fn ba(a: L, b: L) { let h = b.lock(); let g = a.lock(); }",
        )];
        let (hits, graph) = run(&files);
        assert_eq!(hits, vec![(Code::FT210, 1)]);
        assert_eq!(graph.edges.len(), 2);
        assert_eq!(graph.cycles().len(), 1);
        let dot = graph.to_dot();
        assert!(dot.contains("\"crates/x/src/lib.rs::a\" -> \"crates/x/src/lib.rs::b\""), "{dot}");
        let json: serde::Value = serde_json::from_str(&graph.to_json()).unwrap();
        assert_eq!(json.get("edges").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn consistent_order_is_clean_and_still_graphed() {
        let files = [(
            "crates/x/src/lib.rs",
            "fn one(a: L, b: L) { let g = a.lock(); let h = b.lock(); }\n\
             fn two(a: L, b: L) { let g = a.lock(); let h = b.lock(); }",
        )];
        let (hits, graph) = run(&files);
        assert_eq!(hits, vec![]);
        assert_eq!(graph.edges.len(), 1);
        assert!(graph.cycles().is_empty());
    }

    #[test]
    fn test_items_are_exempt() {
        let src = "#[test]\nfn t() { let g = inner.lock(); fs::rename(a, b); }";
        let (hits, _) = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(hits, vec![]);
    }
}
