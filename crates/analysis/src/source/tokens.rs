//! A dependency-free, comment/string-aware Rust tokenizer.
//!
//! The source-discipline passes need far less than a parser: they match
//! short token sequences (`std :: sync`, `Instant :: now`, `.unwrap(`)
//! and track brace depth for item extents. What they absolutely must
//! not do is fire on text inside comments, doc comments or string
//! literals — `grep` does, which is why the repo's discipline was only
//! ever spot-checked by hand. This tokenizer handles the full Rust
//! lexical surface that matters for that guarantee:
//!
//! * line (`//`, `///`, `//!`) and nested block (`/* /* */ */`) comments,
//!   kept separately (suppression comments are parsed out of them);
//! * string, raw-string (`r#"…"#`, any `#` count), byte-string, char and
//!   byte-char literals, with escapes;
//! * lifetimes vs char literals (`'a` vs `'a'`);
//! * raw identifiers (`r#fn`), numeric literals (including `0x…`, float
//!   exponents, and `0..n` ranges), and single-char punctuation.
//!
//! Output is a flat token stream plus a comment list; tokens carry
//! 1-based line and column numbers (comments carry only lines).

/// One lexical token. Literal payloads are not kept — the passes only
/// need to know *that* a literal occupies the position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (raw identifiers lose their `r#`).
    Ident { text: String, line: u32, col: u32 },
    /// A single punctuation character (`::` is two `:` tokens).
    Punct { ch: char, line: u32, col: u32 },
    /// A string/char/byte/numeric literal.
    Lit { line: u32, col: u32 },
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime { line: u32, col: u32 },
}

impl Tok {
    /// The 1-based line the token starts on.
    pub fn line(&self) -> u32 {
        match self {
            Tok::Ident { line, .. }
            | Tok::Punct { line, .. }
            | Tok::Lit { line, .. }
            | Tok::Lifetime { line, .. } => *line,
        }
    }

    /// The 1-based column (in chars) the token starts at.
    pub fn col(&self) -> u32 {
        match self {
            Tok::Ident { col, .. }
            | Tok::Punct { col, .. }
            | Tok::Lit { col, .. }
            | Tok::Lifetime { col, .. } => *col,
        }
    }

    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident { text, .. } => Some(text),
            _ => None,
        }
    }

    /// The punctuation character, if this token is punctuation.
    pub fn punct(&self) -> Option<char> {
        match self {
            Tok::Punct { ch, .. } => Some(*ch),
            _ => None,
        }
    }

    /// `true` iff the token is the identifier `text`.
    pub fn is_ident(&self, text: &str) -> bool {
        self.ident() == Some(text)
    }

    /// `true` iff the token is the punctuation `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.punct() == Some(ch)
    }
}

/// One comment (line or block), with its text and start line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text including the `//` / `/*` introducer.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// A tokenized source file.
#[derive(Debug, Clone, Default)]
pub struct Tokenized {
    /// Code tokens, in source order.
    pub toks: Vec<Tok>,
    /// Comments, in source order.
    pub comments: Vec<Comment>,
}

/// Tokenizes Rust source. Lexically invalid input (unterminated string,
/// stray byte) never panics: the cursor always advances, and garbage
/// degrades to punctuation tokens.
pub fn tokenize(src: &str) -> Tokenized {
    Lexer { chars: src.chars().collect(), pos: 0, line: 1, col: 1, out: Tokenized::default() }.run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Tokenized,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, tracking line numbers and 1-based columns.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Tokenized {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string_lit(line, col),
                'r' | 'b' if self.raw_or_byte_lit(line, col) => {}
                '\'' => self.char_or_lifetime(line, col),
                _ if c.is_ascii_digit() => self.number(line, col),
                _ if c == '_' || c.is_alphanumeric() => self.ident(line, col),
                _ => {
                    self.bump();
                    self.out.toks.push(Tok::Punct { ch: c, line, col });
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { text, line });
    }

    /// Consumes a `"…"` literal (escape-aware).
    fn string_lit(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.out.toks.push(Tok::Lit { line, col });
    }

    /// Handles the `r`/`b` prefix family: `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`, `b'x'`, and raw identifiers `r#ident`. Returns `true`
    /// if it consumed a token; `false` to fall through to `ident()`.
    fn raw_or_byte_lit(&mut self, line: u32, col: u32) -> bool {
        let is_raw_opener = |lex: &Self, at: usize| {
            // `at` points just past an `r`: zero or more `#`s then `"`.
            let mut hashes = 0usize;
            while lex.peek(at + hashes) == Some('#') {
                hashes += 1;
            }
            (lex.peek(at + hashes) == Some('"')).then_some(hashes)
        };
        match (self.peek(0), self.peek(1)) {
            (Some('r'), _) if is_raw_opener(self, 1).is_some() => {
                let hashes = is_raw_opener(self, 1).unwrap_or(0);
                for _ in 0..2 + hashes {
                    self.bump(); // r, #*, "
                }
                self.raw_string_body(hashes);
                self.out.toks.push(Tok::Lit { line, col });
                true
            }
            (Some('r'), Some('#'))
                if self.peek(2).is_some_and(|c| c == '_' || c.is_alphanumeric()) =>
            {
                // r#ident — drop the prefix, lex the rest as an ident.
                self.bump();
                self.bump();
                self.ident(line, col);
                true
            }
            (Some('b'), Some('r')) if is_raw_opener(self, 2).is_some() => {
                let hashes = is_raw_opener(self, 2).unwrap_or(0);
                for _ in 0..3 + hashes {
                    self.bump(); // b, r, #*, "
                }
                self.raw_string_body(hashes);
                self.out.toks.push(Tok::Lit { line, col });
                true
            }
            (Some('b'), Some('"')) => {
                self.bump(); // b — string_lit consumes the quotes.
                self.string_lit(line, col);
                true
            }
            (Some('b'), Some('\'')) => {
                self.bump(); // b
                self.char_body();
                self.out.toks.push(Tok::Lit { line, col });
                true
            }
            _ => false,
        }
    }

    /// Body of a raw string already past its opening quote: ends at
    /// `"` followed by `hashes` `#`s. Raw strings have no escapes.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' && (0..hashes).all(|i| self.peek(i) == Some('#')) {
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    /// `'a` (lifetime) vs `'a'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        let is_lifetime = match (self.peek(1), self.peek(2)) {
            // 'x' / '\…' are char literals; '_, 'a followed by anything
            // but a closing quote is a lifetime.
            (Some('\\'), _) => false,
            (Some(c), Some('\'')) if c != '\'' => false,
            (Some(c), _) if c == '_' || c.is_alphabetic() => true,
            _ => false,
        };
        if is_lifetime {
            self.bump(); // '
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    self.bump();
                } else {
                    break;
                }
            }
            self.out.toks.push(Tok::Lifetime { line, col });
        } else {
            self.char_body();
            self.out.toks.push(Tok::Lit { line, col });
        }
    }

    /// Consumes a char literal, cursor on its opening quote.
    fn char_body(&mut self) {
        self.bump(); // opening '
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.bump();
                // Exponent sign: 1e-3, 2.5E+7.
                if (c == 'e' || c == 'E') && matches!(self.peek(0), Some('+' | '-')) {
                    self.bump();
                }
            } else if c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                // Decimal point — but not the `..` of a range.
                self.bump();
            } else {
                break;
            }
        }
        self.out.toks.push(Tok::Lit { line, col });
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.out.toks.push(Tok::Ident { text, line, col });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src).toks.iter().filter_map(|t| t.ident().map(String::from)).collect()
    }

    #[test]
    fn comments_and_strings_hide_code_text() {
        let src = r##"
            // std::sync::Mutex in a comment
            /* Instant::now() in a block /* nested */ still comment */
            let s = "std::sync::Mutex::new()";
            let r = r#"Instant::now()"#;
            fn real() {}
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Mutex".to_string()), "{ids:?}");
        assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
        assert!(ids.contains(&"real".to_string()));
        let t = tokenize(src);
        assert_eq!(t.comments.len(), 2);
        assert!(t.comments[0].text.contains("std::sync::Mutex"));
        assert!(t.comments[1].text.contains("nested"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let t = tokenize("fn f<'a>(x: &'a str) -> &'static str { 'q' ; '\\n' }");
        let lifetimes = t.toks.iter().filter(|t| matches!(t, Tok::Lifetime { .. })).count();
        let lits = t.toks.iter().filter(|t| matches!(t, Tok::Lit { .. })).count();
        assert_eq!(lifetimes, 3, "{:?}", t.toks);
        assert_eq!(lits, 2, "{:?}", t.toks);
    }

    #[test]
    fn raw_and_byte_literals_consume_fully() {
        let t = tokenize(r###"let a = br#"x " y"#; let b = b"z"; let c = b'q'; let d = r#raw;"###);
        let ids = idents(r###"let a = br#"x " y"#; let b = b"z"; let c = b'q'; let d = r#raw;"###);
        assert!(ids.contains(&"raw".to_string()), "{ids:?}");
        // No stray tokens from inside the raw string.
        assert!(!ids.contains(&"x".to_string()));
        assert_eq!(t.toks.iter().filter(|t| matches!(t, Tok::Lit { .. })).count(), 3);
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let t = tokenize("a\nb\n  c");
        let lines: Vec<u32> = t.toks.iter().map(Tok::line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn columns_are_one_based_and_reset_per_line() {
        let t = tokenize("a bb  c\n  let s = \"x\";");
        let pos: Vec<(u32, u32)> = t.toks.iter().map(|t| (t.line(), t.col())).collect();
        // a@1:1  bb@1:3  c@1:7  let@2:3  s@2:7  =@2:9  "x"@2:11  ;@2:14
        assert_eq!(
            pos,
            vec![(1, 1), (1, 3), (1, 7), (2, 3), (2, 7), (2, 9), (2, 11), (2, 14)],
            "{:?}",
            t.toks
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let t = tokenize("for i in 0..10 { x[i] = 1.5e-3; }");
        let dots = t.toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "{:?}", t.toks);
        assert_eq!(t.toks.iter().filter(|t| matches!(t, Tok::Lit { .. })).count(), 3);
    }

    #[test]
    fn unterminated_string_terminates_lexing() {
        let t = tokenize("let s = \"never closed");
        assert!(t.toks.iter().any(|t| matches!(t, Tok::Lit { .. })));
    }

    #[test]
    fn double_colon_is_two_colons() {
        let t = tokenize("std::sync::Mutex");
        let pattern: Vec<String> = t
            .toks
            .iter()
            .map(|t| match t {
                Tok::Ident { text, .. } => text.clone(),
                Tok::Punct { ch, .. } => ch.to_string(),
                _ => "?".into(),
            })
            .collect();
        assert_eq!(pattern, vec!["std", ":", ":", "sync", ":", ":", "Mutex"]);
    }
}
