//! Source-discipline analyzer: FT2xx lints over the workspace's Rust
//! sources.
//!
//! The plan linter (`FT0xx`) checks what the optimizer *produces* and
//! the conformance checker (`FT1xx`) checks what the engine *did*; this
//! module closes the triangle by checking what the code *is*. The
//! paper's recovery contract (§2.2) and every cost term in Eq. 5-7
//! assume operators re-execute deterministically after a failure — and
//! the loom/TSan CI jobs only verify synchronization that actually
//! routes through the `sync` shim modules. Neither assumption is worth
//! much if any file can call `Instant::now()` or grab a
//! `std::sync::Mutex` directly, so this analyzer makes the discipline
//! *static*: a dependency-free, comment/string-aware tokenizer
//! ([`tokens`]) feeds coded passes ([`passes`], `FT201`…`FT207`) that
//! run over every source file in the workspace. The sanctioned escape
//! hatch is an inline `// ftpde-allow(FT2xx: reason)` comment, itself
//! audited: a suppression that is malformed or matches nothing is an
//! error (FT207).
//!
//! `ftpde lint --source` is the CLI face and CI gate; see `DESIGN.md`
//! §14 for the full code table (generated from [`crate::codes`]).

pub mod callgraph;
pub mod items;
pub mod locks;
pub mod passes;
pub mod tokens;

use std::path::Path;

use crate::diag::{Code, Diagnostic, Report, ReportSet, Severity};
pub use locks::LockGraph;

/// What kind of code a file is — which discipline it owes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code: the full discipline (FT201-FT206).
    Lib,
    /// A `sync` shim module: the sanctioned home of raw primitives and
    /// the clock seam; exempt from FT201/FT202.
    Shim,
    /// Benchmark-harness code (`crates/bench`): measures wall time by
    /// design, so exempt from FT202 but not from FT201.
    Bench,
    /// Binary/CLI/build-script code: single-threaded driver code that
    /// legitimately sleeps, probes and panics; FT206/FT207 only.
    Bin,
    /// Test, example or bench-target code: FT206/FT207 only.
    Test,
}

/// Directory names never descended into during discovery. `fixtures`
/// holds deliberately-offending snippets for the analyzer's own tests.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Classifies a workspace-relative path (forward slashes). Returns
/// `None` for files the scan skips entirely.
pub fn classify(rel_path: &str) -> Option<FileClass> {
    if !rel_path.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel_path.split('/').collect();
    let file = parts.last().copied().unwrap_or_default();
    if parts.iter().any(|p| SKIP_DIRS.contains(p)) {
        return None;
    }
    if file == "sync.rs" || parts.iter().rev().skip(1).any(|&p| p == "sync") {
        return Some(FileClass::Shim);
    }
    if parts.iter().any(|&p| p == "tests" || p == "examples" || p == "benches") {
        return Some(FileClass::Test);
    }
    if parts.contains(&"bin") || file == "main.rs" || file == "build.rs" {
        return Some(FileClass::Bin);
    }
    if rel_path.starts_with("crates/bench/") {
        return Some(FileClass::Bench);
    }
    Some(FileClass::Lib)
}

/// Lints one file's source text under an explicit classification —
/// the pure core used by both the workspace scan and the fixture tests.
pub fn lint_str(rel_path: &str, class: FileClass, src: &str) -> Report {
    passes::lint_tokens(rel_path, class, &tokens::tokenize(src))
}

/// One in-memory source file fed to [`lint_sources`].
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    pub class: FileClass,
    pub text: String,
}

/// The result of a whole-workspace scan.
#[derive(Debug, Clone)]
pub struct SourceScan {
    /// Per-file reports, only for files with findings; subjects are
    /// workspace-relative paths, deterministically ordered.
    pub set: ReportSet,
    /// Total files tokenized and linted (clean files included).
    pub files_scanned: usize,
    /// The workspace lock-order graph observed by the FT21x analysis
    /// (see [`locks`]); empty when no ordered acquisitions exist.
    pub lock_graph: LockGraph,
}

impl SourceScan {
    /// `true` iff no Error-severity finding anywhere.
    pub fn is_clean(&self) -> bool {
        self.set.is_clean()
    }

    /// Renders the scan: per-code rollup first, then every Warn/Error
    /// finding in full. Lint-severity findings (the FT204 hygiene
    /// ratchet) are summarized per code rather than listed — they never
    /// gate, and hundreds of lines would bury the findings that do.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut per_code: std::collections::BTreeMap<&str, (usize, Severity)> = Default::default();
        for r in &self.set.reports {
            for d in &r.diagnostics {
                let e = per_code.entry(d.code.as_str()).or_insert((0, d.severity));
                e.0 += 1;
                e.1 = e.1.max(d.severity);
            }
        }
        let _ = writeln!(
            out,
            "source lint: {} file(s) scanned, {} error(s), {} warning(s), {} lint(s)",
            self.files_scanned,
            self.set.count(Severity::Error),
            self.set.count(Severity::Warn),
            self.set.count(Severity::Lint)
        );
        for (code, (n, worst)) in &per_code {
            let _ = writeln!(out, "  {code} [{worst}]: {n} finding(s)");
        }
        for r in &self.set.reports {
            for d in &r.diagnostics {
                if d.severity > Severity::Lint {
                    let _ = writeln!(out, "{d}");
                }
            }
        }
        out
    }
}

/// Walks `root` (a workspace checkout) and lints every discovered
/// source file.
///
/// # Errors
/// Only real I/O failures while walking or reading; an unreadable
/// individual entry is an error, not a silent skip — a gate that
/// cannot see a file must not report clean.
pub fn lint_workspace(root: &Path) -> std::io::Result<SourceScan> {
    let mut files = Vec::new();
    discover(root, root, &mut files)?;
    // Deterministic report order regardless of directory-entry order.
    files.sort();
    let mut sources = Vec::new();
    for rel in &files {
        let Some(class) = classify(rel) else { continue };
        let text = std::fs::read_to_string(root.join(rel))?;
        sources.push(SourceFile { rel: rel.clone(), class, text });
    }
    let mut scan = lint_sources(&sources);
    apply_ft204_ratchet(root, &mut scan);
    Ok(scan)
}

/// Lints a set of in-memory files as one unit: the per-file passes
/// plus the cross-file FT21x concurrency analysis over the library
/// subset. This is the pure core of [`lint_workspace`], also used by
/// the fixture tests.
pub fn lint_sources(files: &[SourceFile]) -> SourceScan {
    let tokenized: Vec<tokens::Tokenized> =
        files.iter().map(|f| tokens::tokenize(&f.text)).collect();
    let mut lints: Vec<passes::FileLint> =
        files.iter().zip(&tokenized).map(|(f, tz)| passes::collect(&f.rel, f.class, tz)).collect();

    let lib: Vec<(usize, &str, &[tokens::Tok])> = files
        .iter()
        .enumerate()
        .filter(|(_, f)| f.class == FileClass::Lib)
        .map(|(i, f)| (i, f.rel.as_str(), tokenized[i].toks.as_slice()))
        .collect();
    let analysis = locks::analyze(&lib);
    for finding in analysis.findings {
        lints[finding.file].push_finding(finding.diag);
    }

    let mut reports: Vec<Report> = lints
        .into_iter()
        .map(passes::FileLint::finish)
        .filter(|r| !r.diagnostics.is_empty())
        .collect();
    reports.sort_by(|a, b| a.subject.cmp(&b.subject));
    SourceScan {
        set: ReportSet::new(reports),
        files_scanned: files.len(),
        lock_graph: analysis.graph,
    }
}

/// The FT204 hygiene ratchet: when the workspace commits a baseline
/// count (`tests/ft204_baseline.txt`), a scan whose FT204 count
/// *exceeds* it gets a synthetic Error report. Decreases never block —
/// they are the point — and a missing baseline file disables the
/// ratchet (scratch workspaces in tests have none).
fn apply_ft204_ratchet(root: &Path, scan: &mut SourceScan) {
    let path = root.join("tests").join("ft204_baseline.txt");
    let Ok(text) = std::fs::read_to_string(&path) else { return };
    let Some(baseline) = text.split_whitespace().next().and_then(|w| w.parse::<usize>().ok())
    else {
        return;
    };
    let count = scan
        .set
        .reports
        .iter()
        .flat_map(|r| &r.diagnostics)
        .filter(|d| d.code == Code::FT204)
        .count();
    if count > baseline {
        let mut report = Report::new("tests/ft204_baseline.txt");
        report.push(Diagnostic::new(
            Code::FT204,
            Severity::Error,
            format!(
                "panic-hygiene ratchet: {count} FT204 finding(s), committed baseline is \
                 {baseline} — fix the new `.unwrap()`/`.expect()`/`panic!` sites (or lower \
                 the baseline after cleaning up; it must never increase)"
            ),
        ));
        scan.set.reports.push(report);
    }
}

/// Recursively collects workspace-relative `.rs` paths under `dir`,
/// skipping [`SKIP_DIRS`].
fn discover(root: &Path, dir: &Path, out: &mut Vec<String>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                discover(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel_to_slash(rel));
            }
        }
    }
    Ok(())
}

/// Renders a relative path with forward slashes on every platform.
fn rel_to_slash(rel: &Path) -> String {
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_workspace_shapes() {
        use FileClass::*;
        for (path, want) in [
            ("crates/engine/src/coordinator.rs", Some(Lib)),
            ("crates/engine/src/sync.rs", Some(Shim)),
            ("crates/store/src/sync.rs", Some(Shim)),
            ("crates/core/src/sync.rs", Some(Shim)),
            ("crates/obs/src/sync/clock.rs", Some(Shim)),
            ("crates/bench/src/suite.rs", Some(Bench)),
            ("crates/bench/benches/store_micro.rs", Some(Test)),
            ("crates/engine/tests/loom.rs", Some(Test)),
            ("examples/conformance.rs", Some(Test)),
            ("src/bin/ftpde.rs", Some(Bin)),
            ("src/lib.rs", Some(Lib)),
            ("build.rs", Some(Bin)),
            ("tests/end_to_end.rs", Some(Test)),
            ("vendor/loom/src/lib.rs", None),
            ("target/debug/build/foo.rs", None),
            ("crates/analysis/tests/fixtures/ft201.rs", None),
            ("README.md", None),
        ] {
            assert_eq!(classify(path), want, "{path}");
        }
    }

    #[test]
    fn scan_renders_rollup_and_gates_on_errors() {
        let mut bad = Report::new("crates/x/src/lib.rs");
        bad.push(
            Diagnostic::new(Code::FT201, Severity::Error, "std::sync outside shim")
                .at_line("crates/x/src/lib.rs", 3),
        );
        let scan = SourceScan {
            set: ReportSet::new(vec![bad]),
            files_scanned: 10,
            lock_graph: LockGraph::default(),
        };
        assert!(!scan.is_clean());
        let text = scan.render();
        assert!(text.contains("10 file(s) scanned"), "{text}");
        assert!(text.contains("FT201 [error]: 1 finding(s)"), "{text}");
        assert!(text.contains("crates/x/src/lib.rs:3"), "{text}");
    }
}
