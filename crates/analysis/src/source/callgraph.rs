//! A conservative, workspace-wide call graph over library sources.
//!
//! Name resolution is a heuristic — there is no type information — so
//! it resolves only the call shapes that can be answered from names
//! alone, and leaves everything else *unresolved* rather than guessed:
//!
//! * `self.m(…)` — methods on `self` resolve to same-file fns named
//!   `m`. The workspace keeps each type's impl in the type's own file,
//!   which is what makes this precise in practice.
//! * `x.m(…)` for any other receiver — **unresolved**. Without types,
//!   `entry.verify(…)` vs `cache.get(…)` cannot be told apart safely.
//! * `Type::m(…)` / `path::m(…)` — resolves to the unique fn whose
//!   qualified name is `Type::m`; failing that, a *lowercase* segment
//!   (module path) falls back to the unique fn named `m` anywhere in
//!   the workspace (this is what resolves `stats::record_put(…)`
//!   across files). An uppercase segment with no qual match is a
//!   foreign type's associated fn (`File::open`), and a known std
//!   module segment (`mem::take`) is foreign too — both **unresolved**.
//! * `m(…)` bare — same-file fns named `m` first, else the unique
//!   workspace fn named `m`.
//!
//! Unresolved calls mean the analysis can *miss* facts (unsound, by
//! design); it never invents an edge that no rule supports. The
//! soundness trade-offs are documented in DESIGN §16.

use std::collections::BTreeMap;

use crate::source::items::{self, FnItem};
use crate::source::tokens::Tok;

/// One function in the graph, tagged with the index of the file (in
/// the caller-supplied file list) that declares it.
#[derive(Debug)]
pub struct FnNode {
    /// Caller's file index.
    pub file: usize,
    /// The extracted item (name, qualification, body extent).
    pub item: FnItem,
}

/// A resolved call site inside some function's body.
#[derive(Debug, Clone, Copy)]
pub struct CallSite {
    /// Index of the callee in [`CallGraph::fns`].
    pub callee: usize,
    /// Token index of the callee name (in the caller's file).
    pub tok: usize,
    /// 1-based location of the callee name.
    pub line: u32,
    pub col: u32,
}

/// The workspace call graph: a flat fn list plus resolved call sites
/// per function, in body-token order.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnNode>,
    pub calls: Vec<Vec<CallSite>>,
}

/// Identifiers that look like calls (`ident (`) but are control flow
/// or bindings, never function names.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "else", "move", "async",
    "await", "break", "continue",
];

/// Lowercase path segments that name `std`/`core` modules. A call
/// through one of these is foreign even though the segment looks
/// module-like — `mem::take(…)` must not resolve to a workspace fn
/// that happens to be named `take`.
const STD_SEGMENTS: &[&str] = &[
    "std",
    "core",
    "alloc",
    "mem",
    "ptr",
    "fmt",
    "fs",
    "io",
    "cmp",
    "iter",
    "slice",
    "str",
    "array",
    "vec",
    "env",
    "process",
    "thread",
    "time",
    "mpsc",
    "atomic",
    "collections",
    "path",
    "ffi",
    "net",
    "ops",
    "hint",
];

/// Builds the graph over `(file index, tokens, fns)` triples — one per
/// analyzed file, with `fns` as extracted by [`items::extract`].
pub fn build(files: &[(usize, &[Tok], Vec<FnItem>)]) -> CallGraph {
    let mut graph = CallGraph::default();
    // (file position in `files`, fn position in that file) → graph id.
    let mut ids: Vec<Vec<usize>> = Vec::with_capacity(files.len());
    // Bare name → graph ids; qualified name → graph ids.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_qual: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (file, _, fns) in files {
        let mut file_ids = Vec::with_capacity(fns.len());
        for f in fns {
            let id = graph.fns.len();
            graph.fns.push(FnNode { file: *file, item: f.clone() });
            by_name.entry(&f.name).or_default().push(id);
            by_qual.entry(&f.qual).or_default().push(id);
            file_ids.push(id);
        }
        ids.push(file_ids);
    }

    graph.calls = vec![Vec::new(); graph.fns.len()];
    for (fi, (_, toks, fns)) in files.iter().enumerate() {
        for (fj, _) in fns.iter().enumerate() {
            let caller = ids[fi][fj];
            for i in items::own_body(fns, fj) {
                let Some(name) = toks[i].ident() else { continue };
                if !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                    continue;
                }
                if NOT_CALLS.contains(&name) {
                    continue;
                }
                let callees = resolve(name, toks, i, &ids[fi], &graph, &by_name, &by_qual);
                for callee in callees {
                    graph.calls[caller].push(CallSite {
                        callee,
                        tok: i,
                        line: toks[i].line(),
                        col: toks[i].col(),
                    });
                }
            }
        }
    }
    graph
}

/// Resolves the call at token `i` (an ident followed by `(`) to zero
/// or more callee graph ids, per the module-level rules.
fn resolve(
    name: &str,
    toks: &[Tok],
    i: usize,
    same_file: &[usize],
    graph: &CallGraph,
    by_name: &BTreeMap<&str, Vec<usize>>,
    by_qual: &BTreeMap<&str, Vec<usize>>,
) -> Vec<usize> {
    let prev = i.checked_sub(1).and_then(|j| toks.get(j));
    let in_file = |ids: &BTreeMap<&str, Vec<usize>>, key: &str| -> Vec<usize> {
        ids.get(key).map_or_else(Vec::new, |v| {
            v.iter().copied().filter(|id| same_file.contains(id)).collect()
        })
    };
    match prev.and_then(Tok::punct) {
        // `recv . m (` — a method call. Only `self.m(…)` resolves.
        Some('.') => {
            if i >= 2 && toks[i - 2].is_ident("self") {
                in_file(by_name, name)
            } else {
                Vec::new()
            }
        }
        // `seg :: m (` — a path call. Exact `Seg::m` qual match first.
        // The unique-name fallback applies only to module-like
        // (lowercase) segments such as `stats::record_put`: an
        // uppercase segment names a *type*, and when `Type::m` has no
        // qual match the type is foreign (`File::open`), so a
        // same-named workspace fn would be a different function.
        Some(':') if i >= 3 && toks[i - 2].is_punct(':') => {
            let seg = toks[i - 3].ident().unwrap_or_default();
            let qual = format!("{seg}::{name}");
            if let Some(ids) = by_qual.get(qual.as_str()) {
                return ids.clone();
            }
            if seg.chars().next().is_some_and(char::is_lowercase) && !STD_SEGMENTS.contains(&seg) {
                unique(by_name, name)
            } else {
                Vec::new()
            }
        }
        // `m (` bare: same-file first, else unique workspace match.
        // A `fn m(` declaration name is not a call (own_body yields the
        // body only, but stay defensive for nested-closure edges).
        _ => {
            if prev.is_some_and(|t| t.is_ident("fn")) {
                return Vec::new();
            }
            let local = in_file(by_name, name);
            if local.is_empty() {
                unique(by_name, name)
            } else {
                local
            }
        }
    }
    .into_iter()
    .filter(|&id| id < graph.fns.len())
    .collect()
}

/// The singleton id list for `name`, or empty when the name is absent
/// or ambiguous across the workspace.
fn unique(by_name: &BTreeMap<&str, Vec<usize>>, name: &str) -> Vec<usize> {
    match by_name.get(name) {
        Some(ids) if ids.len() == 1 => ids.clone(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::tokens::tokenize;

    /// Builds a graph over in-memory `(path, src)` files and returns
    /// caller-qual → callee-qual edge pairs.
    fn edges(files: &[&str]) -> Vec<(String, String)> {
        let tzs: Vec<_> = files.iter().map(|s| tokenize(s)).collect();
        let triples: Vec<(usize, &[Tok], Vec<FnItem>)> = tzs
            .iter()
            .enumerate()
            .map(|(i, tz)| (i, tz.toks.as_slice(), items::extract(&tz.toks)))
            .collect();
        let g = build(&triples);
        let mut out = Vec::new();
        for (caller, sites) in g.calls.iter().enumerate() {
            for s in sites {
                out.push((g.fns[caller].item.qual.clone(), g.fns[s.callee].item.qual.clone()));
            }
        }
        out
    }

    #[test]
    fn self_methods_resolve_same_file_only() {
        let e = edges(&[
            "impl A { fn outer(&self) { self.inner(); } fn inner(&self) {} }",
            "impl B { fn inner(&self) {} }",
        ]);
        assert_eq!(e, vec![("A::outer".into(), "A::inner".into())]);
    }

    #[test]
    fn non_self_method_calls_stay_unresolved() {
        let e = edges(&["impl A { fn f(&self, x: &B) { x.g(); } fn g(&self) {} }"]);
        assert_eq!(e, vec![]);
    }

    #[test]
    fn path_calls_resolve_by_qual_then_unique_name() {
        let e = edges(&[
            "impl Disk { fn put(&self) { stats::record_put(1); Disk::reopen(); } \
             fn reopen() {} }",
            "pub fn record_put(n: u64) {}",
        ]);
        assert!(e.contains(&("Disk::put".into(), "record_put".into())), "{e:?}");
        assert!(e.contains(&("Disk::put".into(), "Disk::reopen".into())), "{e:?}");
    }

    #[test]
    fn std_module_paths_do_not_steal_workspace_names() {
        // `mem::take` is std — it must NOT resolve to the workspace's
        // only fn named `take`.
        let e = edges(&[
            "fn clear(v: &mut Vec<u32>) { let _ = std::mem::take(v); }",
            "impl Ring { fn take(&self) -> Vec<u32> { Vec::new() } }",
        ]);
        assert_eq!(e, vec![]);
    }

    #[test]
    fn foreign_type_paths_do_not_steal_workspace_names() {
        // `File::open` is std — it must NOT resolve to the workspace's
        // only fn named `open` (a different function on another type).
        let e = edges(&[
            "fn read_file(p: &Path) { File::open(p); }",
            "impl Disk { fn open(dir: &Path) -> Disk { Disk } }",
        ]);
        assert_eq!(e, vec![]);
    }

    #[test]
    fn ambiguous_workspace_names_do_not_resolve() {
        let e = edges(&[
            "fn caller() { helper(); }",
            "pub fn helper() {}",
            "pub fn helper() {}", // second declaration → ambiguous
        ]);
        assert_eq!(e, vec![]);
    }

    #[test]
    fn bare_local_calls_beat_workspace_names() {
        let e = edges(&["fn caller() { helper(); } fn helper() {}", "pub fn helper() {}"]);
        assert_eq!(e, vec![("caller".into(), "helper".into())]);
    }

    #[test]
    fn control_flow_keywords_are_not_calls() {
        let e = edges(&["fn f(x: bool) { if (x) { g(); } while (x) {} } fn g() {}"]);
        assert_eq!(e, vec![("f".into(), "g".into())]);
    }
}
