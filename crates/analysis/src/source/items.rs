//! Item extraction: `fn` bodies and their enclosing `impl` types.
//!
//! The concurrency passes ([`super::locks`]) reason per function: which
//! locks a function acquires, what it calls, what it does while a guard
//! is live. This module turns the flat token stream of one file into
//! that function inventory. It is *not* a parser — it brace-matches
//! `fn` bodies and `impl` blocks and records, for each function, an
//! `impl`-qualified name (`DiskBackend::get`) that the call-graph
//! resolver uses to disambiguate `Type::method(…)` call paths.
//!
//! Known simplifications (shared with the rest of the analyzer and
//! documented in DESIGN §16): macros are opaque, `trait` default bodies
//! qualify under the trait's name, and a nested `fn` is extracted as
//! its own item — [`own_body`] lets a caller walk a function's tokens
//! *without* descending into nested `fn` bodies, which do not execute
//! when the outer function runs.

use crate::source::tokens::Tok;

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Unqualified function name.
    pub name: String,
    /// `Type::name` when declared inside `impl Type` (or
    /// `impl Trait for Type`); `name` for free functions.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Body token range `[start, end)` — `start` indexes the opening
    /// `{`, `end` is one past the matching `}`.
    pub start: usize,
    pub end: usize,
}

/// Extracts every `fn` with a body (bodyless trait declarations are
/// skipped), in source order.
pub fn extract(toks: &[Tok]) -> Vec<FnItem> {
    let impls = impl_ranges(toks);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name) = toks.get(i + 1).and_then(Tok::ident) else { continue };
        // Scan to the body's `{`; a `;` first means a bodyless decl.
        // Skip `<…>` generics and `(…)` params so a default argument or
        // where-clause brace cannot fool the scan.
        let mut j = i + 2;
        let (mut angle, mut paren) = (0i32, 0i32);
        let start = loop {
            match toks.get(j) {
                None => break None,
                Some(t) if t.is_punct('<') => angle += 1,
                Some(t) if t.is_punct('>') => angle -= 1,
                Some(t) if t.is_punct('(') => paren += 1,
                Some(t) if t.is_punct(')') => paren -= 1,
                Some(t) if t.is_punct('{') && angle <= 0 && paren == 0 => break Some(j),
                Some(t) if t.is_punct(';') && paren == 0 => break None,
                Some(_) => {}
            }
            j += 1;
        };
        let Some(start) = start else { continue };
        let end = match_brace(toks, start);
        let line = toks[i].line();
        let qual = impls
            .iter()
            .find(|im| im.start < start && end <= im.end)
            .map_or_else(|| name.to_string(), |im| format!("{}::{name}", im.ty));
        out.push(FnItem { name: name.to_string(), qual, line, start, end });
    }
    out
}

/// Walks the body tokens of `fns[idx]`, skipping the bodies of any
/// `fn` items nested inside it.
pub fn own_body(fns: &[FnItem], idx: usize) -> impl Iterator<Item = usize> + '_ {
    let me = &fns[idx];
    let nested: Vec<(usize, usize)> = fns
        .iter()
        .enumerate()
        .filter(|&(j, f)| j != idx && f.start > me.start && f.end <= me.end)
        .map(|(_, f)| (f.start, f.end))
        .collect();
    (me.start..me.end).filter(move |&i| !nested.iter().any(|&(a, b)| (a..b).contains(&i)))
}

/// An `impl` block: its self-type name and body token extent.
struct ImplRange {
    ty: String,
    start: usize,
    end: usize,
}

/// Finds `impl` blocks and the name of each one's self type: the last
/// angle-depth-0 ident of the header, restarting after a top-level
/// `for` (so `impl fmt::Display for DiskBackend` yields `DiskBackend`
/// and `impl Foo<T>` yields `Foo`), stopping at `where`.
fn impl_ranges(toks: &[Tok]) -> Vec<ImplRange> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let is_impl = toks[i].is_ident("impl");
        let is_trait = toks[i].is_ident("trait");
        if !is_impl && !is_trait {
            continue;
        }
        let mut angle = 0i32;
        // A trait's name is the ident right after `trait` (supertrait
        // bounds follow it); an impl's self type needs the full scan.
        let mut ty: Option<&str> =
            if is_trait { toks.get(i + 1).and_then(Tok::ident) } else { None };
        let mut j = i + 1;
        let start = loop {
            match toks.get(j) {
                None => break None,
                Some(t) if t.is_punct('<') => angle += 1,
                Some(t) if t.is_punct('>') => angle -= 1,
                Some(t) if t.is_punct('{') && angle <= 0 => break Some(j),
                Some(t) if t.is_punct(';') && angle <= 0 => break None,
                Some(t) if angle == 0 && t.is_ident("where") => {
                    // Type name is settled; scan on to the body brace.
                    j += 1;
                    loop {
                        match toks.get(j) {
                            None => break,
                            Some(t) if t.is_punct('{') => break,
                            Some(t) if t.is_punct(';') => break,
                            Some(_) => j += 1,
                        }
                    }
                    break toks.get(j).filter(|t| t.is_punct('{')).map(|_| j);
                }
                Some(t) if is_impl && angle == 0 && t.is_ident("for") => ty = None,
                Some(t) if is_impl && angle == 0 => {
                    if let Some(name) = t.ident() {
                        ty = Some(name);
                    }
                }
                Some(_) => {}
            }
            j += 1;
        };
        let Some(start) = start else { continue };
        let Some(ty) = ty else { continue };
        out.push(ImplRange { ty: ty.to_string(), start, end: match_brace(toks, start) });
    }
    out
}

/// Index one past the `}` matching the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    loop {
        match toks.get(j) {
            None => break j,
            Some(t) => {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break j + 1;
                    }
                }
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::tokens::tokenize;

    fn quals(src: &str) -> Vec<String> {
        let tz = tokenize(src);
        extract(&tz.toks).into_iter().map(|f| f.qual).collect()
    }

    #[test]
    fn free_and_impl_fns_are_qualified() {
        let src = "fn free() {}\n\
                   impl DiskBackend { fn get(&self) {} fn put(&mut self) {} }\n\
                   impl fmt::Display for DiskBackend { fn fmt(&self) {} }\n\
                   impl<T: Clone> Cache<T> { fn insert(&self) {} }";
        assert_eq!(
            quals(src),
            vec![
                "free",
                "DiskBackend::get",
                "DiskBackend::put",
                "DiskBackend::fmt",
                "Cache::insert"
            ]
        );
    }

    #[test]
    fn bodyless_decls_and_where_clauses() {
        let src = "trait T { fn sig(&self); fn dflt(&self) { helper() } }\n\
                   impl<K> Map<K> where K: Ord { fn len(&self) -> usize { 0 } }";
        assert_eq!(quals(src), vec!["T::dflt", "Map::len"]);
    }

    #[test]
    fn own_body_skips_nested_fns() {
        let src = "fn outer() { a(); fn inner() { b(); } c(); }";
        let tz = tokenize(src);
        let fns = extract(&tz.toks);
        assert_eq!(fns.len(), 2);
        let outer_idents: Vec<&str> =
            own_body(&fns, 0).filter_map(|i| tz.toks[i].ident()).collect();
        assert!(outer_idents.contains(&"a") && outer_idents.contains(&"c"), "{outer_idents:?}");
        assert!(!outer_idents.contains(&"b"), "{outer_idents:?}");
    }

    #[test]
    fn generics_in_signatures_do_not_break_body_detection() {
        let src = "fn max<T: PartialOrd>(a: T, b: T) -> T { if a > b { a } else { b } }";
        let fns = extract(&tokenize(src).toks);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "max");
    }
}
