//! # ftpde-analysis — static analysis for fault-tolerant plans
//!
//! This crate is the reproduction's verification layer: it re-checks, from
//! the outside, the invariants the rest of the workspace relies on.
//!
//! * [`passes::PlanValidator`] — a **plan linter** running diagnostic
//!   passes over [`PlanDag`](ftpde_core::dag::PlanDag)s and fault-tolerant
//!   plans: DAG structural integrity, cost domains, binding consistency,
//!   the collapsed-plan partition property of §3.3, and cost-model sanity
//!   (probability domains, dominant-path supremacy, failure-penalty
//!   monotonicity). Every check has a stable code (`FT001`…`FT010`,
//!   [`diag::Code`]) and a severity; reports render as text or serialize
//!   to JSON for the CI lint gate.
//! * [`oracle`] — a **pruning-soundness oracle** cross-checking
//!   [`find_best_ft_plan`](ftpde_core::search::find_best_ft_plan) against
//!   exhaustive enumeration: the rule-3 family must reproduce the optimum
//!   exactly, the heuristic rules 1/2 must never beat it and stay within a
//!   bounded slack, and the Eq. 9 path memo must never under-report
//!   dominance ([`oracle::MemoMirror`]).
//! * [`conformance`] — a **trace-conformance verifier** replaying engine
//!   and simulator observability traces against the collapsed plan and
//!   materialization configuration: span/track discipline, stage identity
//!   and ordering, the §2.2 recovery contract (re-execution only after a
//!   rewind or corruption, materialized stages skipped on retry), store
//!   lifecycle, and Eq. 1 conservation of observed timings. Findings use
//!   the `FT101`…`FT108` codes and the same report machinery; the
//!   `ftpde check` CLI subcommand is its command-line face.
//! * [`source`] — a **source-discipline analyzer** linting the
//!   workspace's own Rust sources with a dependency-free tokenizer:
//!   synchronization primitives outside the `sync` shims, wall-clock
//!   reads outside the clock seam, iteration-order hazards in plan
//!   paths, panics in library code, unsynced renames on the store
//!   commit path, and unused `ftpde-allow` suppressions
//!   (`FT201`…`FT207`). On top of the token passes sits a
//!   **concurrency-discipline analysis** (`FT210`…`FT214`): a
//!   conservative workspace call graph ([`source::callgraph`]), a
//!   lock-site dataflow ([`source::locks`]) tracking guard liveness,
//!   and a lock-order graph ([`source::LockGraph`]) with cycle
//!   detection — lock-order cycles, blocking I/O / channel ops /
//!   re-entrant acquisition / global-metrics calls under a live guard.
//!   `ftpde lint --source` is its CLI face.
//! * [`codes`] — the **unified diagnostic registry**: every FT code's
//!   default severity, summary and long-form explanation in one table,
//!   backing `ftpde explain FT###` (and `--list`) and the generated
//!   DESIGN.md code tables.
//! * [`sarif`] — **SARIF 2.1.0 export** of any report set, the
//!   interchange document code-scanning UIs ingest
//!   (`ftpde lint --source --format sarif`).
//!
//! The crate depends only on `ftpde-core` and `ftpde-obs` (plus serde):
//! it can lint any plan and audit any trace regardless of where they came
//! from — the `ftpde lint` / `ftpde check` CLI subcommands feed it the
//! built-in TPC-H plans and recorded JSONL traces.
//!
//! ## Quick example
//!
//! ```
//! use ftpde_analysis::prelude::*;
//! use ftpde_core::dag::figure2_plan;
//! use ftpde_core::prelude::*;
//!
//! let plan = figure2_plan();
//! let config = MatConfig::none(&plan);
//! let validator = PlanValidator::new(CostParams::new(60.0, 0.0));
//! let report = validator.validate_ft_plan("figure2", &plan, &config);
//! assert!(report.is_clean());
//!
//! let oracle = check_pruning_soundness(&plan, &CostParams::new(60.0, 0.0));
//! assert!(oracle.all_sound());
//! ```

pub mod codes;
pub mod conformance;
pub mod diag;
pub mod oracle;
pub mod passes;
pub mod sarif;
pub mod source;

/// Convenient glob-import of the crate's main types.
pub mod prelude {
    pub use crate::conformance::{
        check_trace, check_trace_jsonl, CheckOptions, IdSpace, StageInfo, StagePlan,
    };
    pub use crate::diag::{Code, Diagnostic, Report, ReportSet, Severity};
    pub use crate::oracle::{
        check_pruning_soundness, exhaustive_best, ExhaustiveBest, MemoMirror, OracleOutcome,
        OracleReport, RULE12_SLACK,
    };
    pub use crate::passes::PlanValidator;
    pub use crate::source::{
        classify, lint_sources, lint_str, lint_workspace, FileClass, LockGraph, SourceFile,
        SourceScan,
    };
}
