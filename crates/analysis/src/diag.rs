//! Diagnostic model of the plan linter: coded findings with a severity,
//! collected into a renderable, serializable [`Report`].
//!
//! Every check the linter performs has a stable code (`FT001`…): CI can
//! gate on severities, dashboards can trend individual codes, and the
//! diagnostic table in `DESIGN.md` §9 documents what each one asserts.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How bad a finding is. Ordering is by increasing severity.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Severity {
    /// Style/hygiene hint; never fails a build.
    #[default]
    Lint,
    /// Suspicious but not provably wrong.
    Warn,
    /// A violated invariant: the plan or the cost model is broken.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Lint => write!(f, "lint"),
            Severity::Warn => write!(f, "warn"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable identifier of one linter check. Codes order by family and
/// number (declaration order is ascending).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Code {
    /// DAG structural integrity: table shapes, edge endpoints in range,
    /// topological edge order (acyclicity), inputs/consumers inverse.
    FT001,
    /// Connectedness: the plan forms a single weakly-connected component.
    FT002,
    /// Operator costs `tr(o)` / `tm(o)` finite and non-negative.
    FT003,
    /// Binding consistency: a configuration respects bound operators.
    FT004,
    /// Collapsed-plan partition: every operator in a collapsed group,
    /// multi-membership only for shared non-materialized prefixes,
    /// boundaries materializing or sinks (§3.3).
    FT005,
    /// Cost conservation: `tr(c)`/`tm(c)` match the dominant path modulo
    /// `CONST_pipe` (Eq. 1).
    FT006,
    /// Probability domain: `φ`/`γ`/`η` in `[0, 1]`, attempts `a(c) ≥ 0`
    /// (Eq. 5–7).
    FT007,
    /// Dominant-path supremacy: the dominant cost bounds every
    /// source→sink path cost (§3.4).
    FT008,
    /// Failure-penalty monotonicity: the estimate never decreases as
    /// `1/MTBF` grows, and never undercuts the failure-free runtime.
    FT009,
    /// Plan hygiene: zero-cost operators, duplicate names, free-operator
    /// counts beyond exhaustive enumerability.
    FT010,
    /// Trace well-formedness: parseable events, sane timestamps and
    /// durations, at most one terminal (`query_completed` /
    /// `query_aborted`), nothing after the terminal.
    FT101,
    /// Span/track discipline: spans on one `(pid, tid)` track do not
    /// partially overlap; worker `attempt` spans nest inside their
    /// stage's span interval.
    FT102,
    /// Stage identity and completeness: every traced stage maps to a
    /// collapsed-plan stage, and a completed query executed (or
    /// legitimately skipped) every stage.
    FT103,
    /// Stage ordering: no stage completes before its collapsed-plan
    /// producers have completed (or been skipped) in the same attempt.
    FT104,
    /// Re-execution justification (§2.2 recovery contract): a stage runs
    /// again only after a query restart, an `input_rewind` naming it, or
    /// a `segment_corrupt` demoting its output.
    FT105,
    /// Skip legitimacy: only materializing, non-sink stages may be
    /// skipped, and a skip is backed by a prior materialization of that
    /// stage (or pre-seeded store state).
    FT106,
    /// Store lifecycle: materializations only for config-materializing
    /// operators, every cross-stage input available when its consumer
    /// starts, corruption followed by a producer rewind.
    FT107,
    /// Observed-cost conservation (Eq. 1): stage wall-clock agrees with
    /// the collapsed cost model / attempt accounting within tolerance.
    FT108,
    /// Source discipline: `std::sync`/`std::thread`/`parking_lot`/`loom`
    /// primitive outside a `sync` shim module (escapes loom/TSan
    /// coverage).
    FT201,
    /// Source discipline: wall-clock nondeterminism (`Instant::now`,
    /// `SystemTime`) outside shims and bench/CLI code.
    FT202,
    /// Source discipline: `HashMap`/`HashSet` in optimizer/core plan
    /// paths where iteration order can reach output.
    FT203,
    /// Source discipline: `unwrap`/`expect`/`panic!` in library code.
    FT204,
    /// Source discipline: fsync pairing — a rename on the store commit
    /// path without `sync_all`/`sync_data` in the same function.
    FT205,
    /// Source discipline: `unsafe` outside the workspace allowlist.
    FT206,
    /// Source discipline: unused or malformed `// ftpde-allow(...)`
    /// suppression.
    FT207,
    /// Concurrency discipline: cycle in the workspace lock-order graph
    /// (two shim locks acquired in both orders — potential deadlock).
    FT210,
    /// Concurrency discipline: blocking I/O (fsync, file or socket ops,
    /// `std::process`, sleeps) while a shim lock guard is live.
    FT211,
    /// Concurrency discipline: channel `send`/`recv` or
    /// `JoinHandle::join` while a shim lock guard is live.
    FT212,
    /// Concurrency discipline: re-entrant acquisition of the same shim
    /// lock, directly or through the call graph (parking_lot deadlocks).
    FT213,
    /// Concurrency discipline: shim lock guard held across a call into
    /// the `obs` global registry / flight-recorder hot paths.
    FT214,
    /// Simulation harness: replaying the same seed produced a different
    /// canonical trace (nondeterministic execution).
    FT301,
    /// Simulation harness: the faulted run's result diverged from the
    /// failure-free reference (recovery lost or corrupted data).
    FT302,
    /// Simulation harness: the engine panicked during a simulated run.
    FT303,
    /// Simulation harness: scheduled faults never fired (the schedule
    /// outran the run).
    FT304,
}

impl Code {
    /// Every code, ascending — the registry ([`crate::codes::REGISTRY`])
    /// is kept in the same order.
    pub const ALL: &'static [Code] = &[
        Code::FT001,
        Code::FT002,
        Code::FT003,
        Code::FT004,
        Code::FT005,
        Code::FT006,
        Code::FT007,
        Code::FT008,
        Code::FT009,
        Code::FT010,
        Code::FT101,
        Code::FT102,
        Code::FT103,
        Code::FT104,
        Code::FT105,
        Code::FT106,
        Code::FT107,
        Code::FT108,
        Code::FT201,
        Code::FT202,
        Code::FT203,
        Code::FT204,
        Code::FT205,
        Code::FT206,
        Code::FT207,
        Code::FT210,
        Code::FT211,
        Code::FT212,
        Code::FT213,
        Code::FT214,
        Code::FT301,
        Code::FT302,
        Code::FT303,
        Code::FT304,
    ];

    /// The code as it appears in reports, e.g. `"FT005"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::FT001 => "FT001",
            Code::FT002 => "FT002",
            Code::FT003 => "FT003",
            Code::FT004 => "FT004",
            Code::FT005 => "FT005",
            Code::FT006 => "FT006",
            Code::FT007 => "FT007",
            Code::FT008 => "FT008",
            Code::FT009 => "FT009",
            Code::FT010 => "FT010",
            Code::FT101 => "FT101",
            Code::FT102 => "FT102",
            Code::FT103 => "FT103",
            Code::FT104 => "FT104",
            Code::FT105 => "FT105",
            Code::FT106 => "FT106",
            Code::FT107 => "FT107",
            Code::FT108 => "FT108",
            Code::FT201 => "FT201",
            Code::FT202 => "FT202",
            Code::FT203 => "FT203",
            Code::FT204 => "FT204",
            Code::FT205 => "FT205",
            Code::FT206 => "FT206",
            Code::FT207 => "FT207",
            Code::FT210 => "FT210",
            Code::FT211 => "FT211",
            Code::FT212 => "FT212",
            Code::FT213 => "FT213",
            Code::FT214 => "FT214",
            Code::FT301 => "FT301",
            Code::FT302 => "FT302",
            Code::FT303 => "FT303",
            Code::FT304 => "FT304",
        }
    }

    /// One-line description of what the check asserts, from the unified
    /// registry ([`crate::codes`]).
    pub fn description(self) -> &'static str {
        crate::codes::info(self).summary
    }

    /// The default severity of findings with this code, from the unified
    /// registry ([`crate::codes`]). Passes may deviate per finding.
    pub fn default_severity(self) -> Severity {
        crate::codes::info(self).severity
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a coded, located, human-readable message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Which check fired.
    pub code: Code,
    /// How bad it is.
    pub severity: Severity,
    /// What went wrong, with the offending values spelled out.
    pub message: String,
    /// Plan operator the finding points at, if any.
    pub op: Option<u32>,
    /// Collapsed-operator (stage) the finding points at, if any.
    pub stage: Option<u32>,
    /// Source file the finding points at (workspace-relative), if any —
    /// used by the source-discipline passes. Serialized as `null` when
    /// absent (the vendored serde derive has no optional-key support).
    pub file: Option<String>,
    /// 1-based source line within [`Self::file`], if any.
    pub line: Option<u32>,
    /// 1-based source column within [`Self::line`], if any. Serialized
    /// as `null` when absent, like the other optional locations.
    pub column: Option<u32>,
}

impl Diagnostic {
    /// Creates a finding with no location.
    pub fn new(code: Code, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            op: None,
            stage: None,
            file: None,
            line: None,
            column: None,
        }
    }

    /// Attaches a plan operator location.
    #[must_use]
    pub fn at_op(mut self, op: u32) -> Self {
        self.op = Some(op);
        self
    }

    /// Attaches a collapsed-stage location.
    #[must_use]
    pub fn at_stage(mut self, stage: u32) -> Self {
        self.stage = Some(stage);
        self
    }

    /// Attaches a source-file location (workspace-relative path, 1-based
    /// line).
    #[must_use]
    pub fn at_line(mut self, file: impl Into<String>, line: u32) -> Self {
        self.file = Some(file.into());
        self.line = Some(line);
        self
    }

    /// Attaches a 1-based column to an already line-located finding.
    #[must_use]
    pub fn at_col(mut self, column: u32) -> Self {
        self.column = Some(column);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.code, self.severity)?;
        if let Some(op) = self.op {
            write!(f, " op {op}")?;
        }
        if let Some(stage) = self.stage {
            write!(f, " stage {stage}")?;
        }
        if let (Some(file), Some(line)) = (&self.file, self.line) {
            write!(f, " {file}:{line}")?;
            if let Some(col) = self.column {
                write!(f, ":{col}")?;
            }
        }
        write!(f, ": {}", self.message)
    }
}

/// All findings of one linted subject (a plan, or a fault-tolerant plan).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// What was linted, e.g. `"figure2"` or `"Q5 @ SF 100"`.
    pub subject: String,
    /// The findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for `subject`.
    pub fn new(subject: impl Into<String>) -> Self {
        Report { subject: subject.into(), diagnostics: Vec::new() }
    }

    /// Adds a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// `true` iff no Error-severity finding is present.
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// The most severe finding present, if any.
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Renders the report as indented text, one finding per line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let verdict = if self.diagnostics.is_empty() {
            "clean".to_string()
        } else {
            format!(
                "{} error(s), {} warning(s), {} lint(s)",
                self.count(Severity::Error),
                self.count(Severity::Warn),
                self.count(Severity::Lint)
            )
        };
        let _ = writeln!(out, "{}: {verdict}", self.subject);
        for d in &self.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
        out
    }
}

/// A batch of reports (one per linted subject) with roll-up counters —
/// the JSON artifact the CI lint gate uploads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportSet {
    /// One report per subject.
    pub reports: Vec<Report>,
}

impl ReportSet {
    /// Wraps the given reports.
    pub fn new(reports: Vec<Report>) -> Self {
        ReportSet { reports }
    }

    /// Total findings at `severity` across all reports.
    pub fn count(&self, severity: Severity) -> usize {
        self.reports.iter().map(|r| r.count(severity)).sum()
    }

    /// `true` iff no report carries an Error-severity finding.
    pub fn is_clean(&self) -> bool {
        self.reports.iter().all(Report::is_clean)
    }

    /// Renders all reports followed by a one-line roll-up.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for r in &self.reports {
            out.push_str(&r.render());
        }
        let _ = writeln!(
            out,
            "total: {} subject(s), {} error(s), {} warning(s), {} lint(s)",
            self.reports.len(),
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Lint)
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Lint < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn report_counters_and_verdict() {
        let mut r = Report::new("test");
        assert!(r.is_clean());
        assert_eq!(r.worst(), None);
        r.push(Diagnostic::new(Code::FT010, Severity::Lint, "zero-cost operator").at_op(3));
        r.push(Diagnostic::new(Code::FT003, Severity::Error, "tr(o) is NaN").at_op(1));
        assert!(!r.is_clean());
        assert_eq!(r.worst(), Some(Severity::Error));
        assert_eq!(r.count(Severity::Lint), 1);
        let text = r.render();
        assert!(text.contains("FT003 [error] op 1"));
        assert!(text.contains("1 error(s), 0 warning(s), 1 lint(s)"));
    }

    #[test]
    fn report_set_rolls_up() {
        let mut a = Report::new("a");
        a.push(Diagnostic::new(Code::FT001, Severity::Error, "broken"));
        let b = Report::new("b");
        let set = ReportSet::new(vec![a, b]);
        assert!(!set.is_clean());
        assert_eq!(set.count(Severity::Error), 1);
        assert!(set.render().contains("total: 2 subject(s), 1 error(s)"));
    }

    #[test]
    fn diagnostics_round_trip_through_serde() {
        let mut r = Report::new("rt");
        r.push(Diagnostic::new(Code::FT005, Severity::Error, "orphan").at_op(2).at_stage(1));
        let set = ReportSet::new(vec![r]);
        let json = serde_json::to_string(&set).unwrap();
        assert!(json.contains("\"FT005\""));
        let back: ReportSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, set);
    }

    #[test]
    fn codes_have_stable_names_and_descriptions() {
        for &code in Code::ALL {
            assert!(code.as_str().starts_with("FT"));
            assert!(!code.description().is_empty());
            assert_eq!(code.to_string(), code.as_str());
        }
    }

    #[test]
    fn source_located_diagnostics_render_and_round_trip() {
        let d = Diagnostic::new(Code::FT201, Severity::Error, "std::sync outside shim")
            .at_line("crates/engine/src/coordinator.rs", 21);
        let text = d.to_string();
        assert!(text.contains("FT201 [error] crates/engine/src/coordinator.rs:21:"), "{text}");
        let json = serde_json::to_string(&d).unwrap();
        let back: Diagnostic = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
        // Unlocated diagnostics serialize the keys as explicit nulls and
        // round-trip.
        let plain = Diagnostic::new(Code::FT001, Severity::Error, "m");
        let json = serde_json::to_string(&plain).unwrap();
        assert!(json.contains(r#""file":null"#), "{json}");
        assert!(json.contains(r#""column":null"#), "{json}");
        let parsed: Diagnostic = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.file, None);
        assert_eq!(parsed.column, None);
    }

    #[test]
    fn column_located_diagnostics_render_and_round_trip() {
        let d = Diagnostic::new(Code::FT211, Severity::Error, "fsync under lock")
            .at_line("crates/store/src/disk.rs", 240)
            .at_col(13);
        let text = d.to_string();
        assert!(text.contains("crates/store/src/disk.rs:240:13:"), "{text}");
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains(r#""column":13"#), "{json}");
        let back: Diagnostic = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
