//! Pruning-soundness oracle: cross-checks [`find_best_ft_plan`] against an
//! exhaustive enumeration of the materialization-configuration space.
//!
//! The paper's pruning rules have two distinct guarantees, and the oracle
//! checks each against exactly its own contract:
//!
//! * **Rule 3** (early path-enumeration stop, §4.3) and its memoized
//!   extension (Eq. 9) only abandon fault-tolerant plans that *provably*
//!   cannot beat the incumbent — the selected dominant-path cost must equal
//!   the exhaustive optimum **exactly**.
//! * **Rules 1/2** (§4.1/§4.2) bind operators from a pairwise comparison
//!   (child vs child-collapsed-into-materializing-parent) that is only
//!   guaranteed when the parent materializes; they may exclude marginally
//!   better configurations. Their contract is one-sided: the pruned result
//!   can never be *better* than the exhaustive optimum (that would mean the
//!   unpruned search missed a configuration), and in this reproduction it
//!   stays within [`RULE12_SLACK`] of it.
//!
//! [`MemoMirror`] checks the [`PathMemo`] dominance structure the same way:
//! a mirror list of every recorded entry replays [`PathMemo::dominates`]
//! by brute force, so the memo can never under-report (claim dominance
//! where no recorded entry actually dominates).

use ftpde_core::config::MatConfig;
use ftpde_core::cost::{estimate_ft_plan, CostParams};
use ftpde_core::dag::PlanDag;
use ftpde_core::prune::{PathMemo, PruneOptions};
use ftpde_core::search::find_best_ft_plan;
use serde::{Deserialize, Serialize};

/// Absolute tolerance for cost comparisons.
const EPS: f64 = 1e-9;

/// Multiplicative slack granted to the heuristic rules 1/2: the pruned
/// result must stay within 5% of the exhaustive optimum (the bound the
/// core crate's own regression tests enforce on the paper's plans).
pub const RULE12_SLACK: f64 = 1.05;

/// The exhaustive reference: the cheapest dominant-path cost over all
/// `2^n` materialization configurations of `plan`, found without pruning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExhaustiveBest {
    /// The optimal configuration (first one found at the optimal cost, in
    /// ascending bit-mask order).
    pub config: MatConfig,
    /// Its dominant-path cost `T_Pt`.
    pub dominant_cost: f64,
    /// Number of configurations enumerated (`2^n`).
    pub configs: u64,
}

/// Brute-force reference search over the full configuration space.
///
/// # Panics
/// Panics if `plan` has 64 or more free operators (not exhaustively
/// enumerable) — oracle plans are small by construction.
pub fn exhaustive_best(plan: &PlanDag, params: &CostParams) -> ExhaustiveBest {
    let mut best: Option<(MatConfig, f64)> = None;
    let mut configs = 0u64;
    for config in MatConfig::enumerate(plan) {
        configs += 1;
        let est = estimate_ft_plan(plan, &config, params);
        if best.as_ref().is_none_or(|(_, c)| est.dominant_cost < *c) {
            best = Some((config, est.dominant_cost));
        }
    }
    let (config, dominant_cost) = best.expect("at least the empty configuration exists");
    ExhaustiveBest { config, dominant_cost, configs }
}

/// Verdict of one pruning variant against the exhaustive reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleOutcome {
    /// Which rule set ran, e.g. `"rule3"` or `"rules 1+2+3+memo"`.
    pub label: String,
    /// Whether this variant's contract is exact equality (rule 3 family)
    /// or one-sided soundness with slack (rules 1/2).
    pub exact: bool,
    /// Dominant-path cost selected by the pruned search.
    pub pruned_cost: f64,
    /// Dominant-path cost of the exhaustive optimum.
    pub exhaustive_cost: f64,
    /// `true` iff the variant honoured its contract.
    pub sound: bool,
}

/// All verdicts for one plan, plus the shared exhaustive reference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleReport {
    /// The exhaustive reference the variants were compared against.
    pub reference: ExhaustiveBest,
    /// One verdict per pruning variant.
    pub outcomes: Vec<OracleOutcome>,
}

impl OracleReport {
    /// `true` iff every pruning variant honoured its contract.
    pub fn all_sound(&self) -> bool {
        self.outcomes.iter().all(|o| o.sound)
    }

    /// The first violated verdict, if any (for assertion messages).
    pub fn first_violation(&self) -> Option<&OracleOutcome> {
        self.outcomes.iter().find(|o| !o.sound)
    }
}

/// The pruning variants the oracle exercises: each rule individually, the
/// exact rule-3 family, and the full default stack.
fn variants() -> Vec<(String, PruneOptions, bool)> {
    let rule3_no_memo = PruneOptions { rule3_memo: false, ..PruneOptions::only(3) };
    let memo_only = PruneOptions { rule3_memo: true, ..PruneOptions::none() };
    vec![
        ("none".to_string(), PruneOptions::none(), true),
        ("rule1".to_string(), PruneOptions::only(1), false),
        ("rule2".to_string(), PruneOptions::only(2), false),
        ("rule3".to_string(), rule3_no_memo, true),
        ("rule3+memo".to_string(), PruneOptions::only(3), true),
        ("memo only".to_string(), memo_only, true),
        ("rules 1+2+3+memo".to_string(), PruneOptions::default(), false),
    ]
}

/// Runs every pruning variant of [`find_best_ft_plan`] over `plan` and
/// checks each selected dominant-path cost against [`exhaustive_best`].
///
/// Exact variants must reproduce the optimum to within a `1e-9` epsilon;
/// heuristic variants must never beat it and must stay within
/// [`RULE12_SLACK`].
pub fn check_pruning_soundness(plan: &PlanDag, params: &CostParams) -> OracleReport {
    let reference = exhaustive_best(plan, params);
    let outcomes = variants()
        .into_iter()
        .map(|(label, opts, exact)| {
            let (best, stats) =
                find_best_ft_plan(std::slice::from_ref(plan), params, &opts).expect("non-empty");
            let pruned_cost = best.estimate.dominant_cost;
            let never_better = pruned_cost >= reference.dominant_cost - EPS;
            let sound = if exact {
                (pruned_cost - reference.dominant_cost).abs() <= EPS
            } else {
                never_better && pruned_cost <= reference.dominant_cost * RULE12_SLACK + EPS
            };
            // The work accounting must partition regardless of variant.
            let sound = sound && stats.partition_holds();
            OracleOutcome {
                label,
                exact,
                pruned_cost,
                exhaustive_cost: reference.dominant_cost,
                sound,
            }
        })
        .collect();
    OracleReport { reference, outcomes }
}

/// A [`PathMemo`] paired with a brute-force mirror of everything recorded
/// into it, so [`PathMemo::dominates`] can be checked for under-reporting:
/// whenever the memo claims a path is dominated, some recorded entry must
/// actually dominate it pairwise (Eq. 9), which is what makes skipping the
/// cost function sound.
#[derive(Debug, Default)]
pub struct MemoMirror {
    memo: PathMemo,
    /// Every `(sorted-descending costs, total)` ever recorded.
    entries: Vec<(Vec<f64>, f64)>,
}

impl MemoMirror {
    /// An empty mirror.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a dominant path into both the memo and the mirror.
    /// `costs` are the path's `t(c)` values in any order.
    pub fn record(&mut self, costs: &[f64], total: f64) {
        self.memo.record(costs, total);
        let mut sorted = costs.to_vec();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite costs"));
        self.entries.push((sorted, total));
    }

    /// Eq. 9 by brute force: does any recorded entry with at most as many
    /// operators dominate `probe` pairwise (missing positions count as
    /// zero-cost operators)?
    pub fn reference_dominates(&self, probe_sorted_desc: &[f64]) -> bool {
        self.entries.iter().any(|(entry, _)| {
            entry.len() <= probe_sorted_desc.len()
                && probe_sorted_desc
                    .iter()
                    .enumerate()
                    .all(|(i, &p)| p >= entry.get(i).copied().unwrap_or(0.0))
        })
    }

    /// Checks one probe: if the memo claims dominance, the brute-force
    /// mirror must agree (no under-reporting — a false claim would skip
    /// costing a path that might beat the incumbent). Over-caution (memo
    /// says no, mirror says yes) is allowed: the memo keeps only the best
    /// entry per path length. Returns `false` on an unsound claim.
    pub fn claim_is_sound(&self, probe_sorted_desc: &[f64]) -> bool {
        !self.memo.dominates(probe_sorted_desc) || self.reference_dominates(probe_sorted_desc)
    }

    /// Read access to the wrapped memo.
    pub fn memo(&self) -> &PathMemo {
        &self.memo
    }

    /// Number of recorded entries (mirror side, before per-length merging).
    pub fn recorded(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpde_core::dag::figure2_plan;

    #[test]
    fn figure2_is_sound_across_the_mtbf_range() {
        let plan = figure2_plan();
        for mtbf in [4.0, 20.0, 60.0, 1000.0, 1e6] {
            let report = check_pruning_soundness(&plan, &CostParams::new(mtbf, 0.5));
            assert_eq!(report.reference.configs, 128);
            assert!(report.all_sound(), "mtbf={mtbf}: {:?}", report.first_violation());
        }
    }

    #[test]
    fn exhaustive_best_matches_unpruned_search() {
        let plan = figure2_plan();
        let params = CostParams::new(60.0, 0.5);
        let reference = exhaustive_best(&plan, &params);
        let (best, _) =
            find_best_ft_plan(std::slice::from_ref(&plan), &params, &PruneOptions::none()).unwrap();
        assert!((reference.dominant_cost - best.estimate.dominant_cost).abs() < EPS);
    }

    #[test]
    fn oracle_report_round_trips_through_serde() {
        let plan = figure2_plan();
        let report = check_pruning_soundness(&plan, &CostParams::new(60.0, 0.5));
        let back: OracleReport =
            serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn mirror_agrees_on_simple_dominance() {
        let mut m = MemoMirror::new();
        m.record(&[3.0, 1.0], 10.0);
        // A pointwise-larger path is dominated; the claim must be sound.
        assert!(m.memo().dominates(&[4.0, 2.0]));
        assert!(m.reference_dominates(&[4.0, 2.0]));
        assert!(m.claim_is_sound(&[4.0, 2.0]));
        // A pointwise-smaller path is not dominated.
        assert!(!m.memo().dominates(&[2.0, 0.5]));
        assert!(m.claim_is_sound(&[2.0, 0.5]));
        assert_eq!(m.recorded(), 1);
    }

    #[test]
    fn mirror_tolerates_over_caution_but_not_under_reporting() {
        let mut m = MemoMirror::new();
        // Two entries of the same length: the memo keeps only the cheaper
        // total, the mirror keeps both.
        m.record(&[5.0, 5.0], 20.0);
        m.record(&[1.0, 1.0], 4.0);
        // Dominated by the second entry — whatever the memo answers, the
        // claim must be sound.
        assert!(m.claim_is_sound(&[2.0, 1.5]));
        // Dominated only by the *first* (evicted or kept, depending on the
        // memo's merge policy): over-caution is fine, lying is not.
        assert!(m.claim_is_sound(&[6.0, 5.5]));
    }
}
