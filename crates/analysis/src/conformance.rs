//! Trace-conformance verification: replaying an observability trace
//! against the collapsed plan and materialization configuration it claims
//! to describe, and checking that the execution it records actually obeys
//! the paper's recovery contract.
//!
//! The engine (`ftpde-engine`) and the simulator (`ftpde-sim`) both emit
//! JSONL traces through `ftpde-obs`. This module is the *outside auditor*
//! of those traces: it never trusts the producing layer, only the event
//! stream, and re-derives from first principles what a conforming
//! execution must look like —
//!
//! * **FT101** trace well-formedness: required arguments present, floats
//!   finite, exactly one terminal (`query_completed`/`query_aborted`),
//!   nothing recorded after it.
//! * **FT102** span/track discipline: the coordinator's stage track is
//!   sequential, per-node attempt tracks do not self-overlap, and every
//!   worker `attempt` span nests inside its stage's span.
//! * **FT103** stage identity and completeness: every stage id in the
//!   trace names a collapsed-plan stage, and a completed query executed
//!   or legitimately skipped all of them.
//! * **FT104** stage ordering: no stage starts before every collapsed
//!   producer has completed (or been skipped) in the same attempt.
//! * **FT105** re-execution justification — the §2.2 recovery contract:
//!   a stage runs *again* within one attempt only after an
//!   `input_rewind`/`segment_corrupt` naming it or one of its ancestors;
//!   under a simulator trace a stage never repeats within an attempt.
//! * **FT106** skip legitimacy: only non-sink (materializing) stages may
//!   be skipped, and any skip after a coarse restart must be backed by a
//!   re-materialization in that same attempt (the restart cleared the
//!   store). First-attempt skips with no backing put are the resumed-run
//!   case and are legal.
//! * **FT107** store lifecycle: `materialize` events only for stages the
//!   configuration (or the gather/broadcast pattern) materializes, every
//!   cross-stage input covered by a put or skip when its consumer runs,
//!   and a corruption of live data followed by a rewind to its producer.
//! * **FT108** observed-cost conservation (Eq. 1): simulated stage spans
//!   last exactly the collapsed `tr + tm` when failure-free (and at
//!   least that long under failures); engine attempt time plus lost work
//!   never exceeds the stage wall-clock that contains it.
//!
//! Timestamps, not file order, drive the ordering checks: concurrent
//! layers legitimately interleave their emissions (the simulator groups
//! events per stage, engine workers race the recorder). File order is
//! used only where it is authoritative — attempt windows are delimited
//! by `query_restart` markers the single-threaded coordinator emits.

use std::collections::{HashMap, HashSet};

use ftpde_core::collapse::CollapsedPlan;
use ftpde_core::config::MatConfig;
use ftpde_core::dag::PlanDag;
use ftpde_obs::{ArgValue, Event, Phase};

use crate::diag::{Code, Diagnostic, Report, Severity};

/// Which id space the trace's `stage` arguments live in.
///
/// The engine names stages by their collapsed root's *plan operator id*
/// ([`CollapsedOp::root`](ftpde_core::collapse::CollapsedOp)); the
/// simulator names them by dense collapsed index
/// ([`CId`](ftpde_core::collapse::CId)). Same plan, two vocabularies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdSpace {
    /// `stage` args are collapsed-root operator ids (`cat: "engine"`).
    EngineRoots,
    /// `stage` args are dense collapsed indices (`cat: "sim"`).
    SimIndices,
}

/// One collapsed stage as the checker sees it, in the trace's id space.
#[derive(Debug, Clone)]
pub struct StageInfo {
    /// Stage id as it appears in trace `stage` arguments.
    pub id: u64,
    /// Producing stages (cross-stage inputs), same id space.
    pub inputs: Vec<u64>,
    /// Whether the configuration materializes this stage's root.
    pub materializes: bool,
    /// Whether the stage is a sink (no consumers).
    pub is_sink: bool,
    /// Predicted execution cost `tr(c)` in seconds.
    pub run_cost: f64,
    /// Predicted materialization cost `tm(c)` in seconds.
    pub mat_cost: f64,
}

/// The plan-side ground truth the checker verifies a trace against: the
/// collapsed stages, their dependencies, materialization flags and
/// predicted costs, keyed by the id space the trace uses.
#[derive(Debug, Clone)]
pub struct StagePlan {
    stages: Vec<StageInfo>,
    index: HashMap<u64, usize>,
}

impl StagePlan {
    /// Projects a collapsed plan into the checker's view.
    pub fn from_collapsed(pc: &CollapsedPlan, config: &MatConfig, ids: IdSpace) -> Self {
        let to_id = |cid: ftpde_core::collapse::CId| -> u64 {
            match ids {
                IdSpace::EngineRoots => u64::from(pc.op(cid).root.0),
                IdSpace::SimIndices => u64::from(cid.0),
            }
        };
        let stages: Vec<StageInfo> = pc
            .op_ids()
            .map(|cid| {
                let op = pc.op(cid);
                StageInfo {
                    id: to_id(cid),
                    inputs: pc.inputs(cid).iter().map(|&p| to_id(p)).collect(),
                    materializes: config.materializes(op.root),
                    is_sink: pc.consumers(cid).is_empty(),
                    run_cost: op.run_cost,
                    mat_cost: op.mat_cost,
                }
            })
            .collect();
        let index = stages.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        StagePlan { stages, index }
    }

    /// Collapses `plan` under `config` and projects it for an
    /// engine-produced trace (stage ids are collapsed-root operator ids).
    pub fn engine_ids(plan: &PlanDag, config: &MatConfig, pipe_const: f64) -> Self {
        Self::from_collapsed(
            &CollapsedPlan::collapse(plan, config, pipe_const),
            config,
            IdSpace::EngineRoots,
        )
    }

    /// Collapses `plan` under `config` and projects it for a
    /// simulator-produced trace (stage ids are dense collapsed indices).
    pub fn sim_ids(plan: &PlanDag, config: &MatConfig, pipe_const: f64) -> Self {
        Self::from_collapsed(
            &CollapsedPlan::collapse(plan, config, pipe_const),
            config,
            IdSpace::SimIndices,
        )
    }

    /// The stages, in collapsed (topological) order.
    pub fn stages(&self) -> &[StageInfo] {
        &self.stages
    }

    /// Looks a stage up by trace id.
    pub fn get(&self, id: u64) -> Option<&StageInfo> {
        self.index.get(&id).map(|&i| &self.stages[i])
    }

    /// Whether `anc` is `desc` or one of its (transitive) producers.
    fn is_ancestor_or_self(&self, anc: u64, desc: u64) -> bool {
        let mut seen = HashSet::new();
        let mut work = vec![desc];
        while let Some(id) = work.pop() {
            if id == anc {
                return true;
            }
            if !seen.insert(id) {
                continue;
            }
            if let Some(info) = self.get(id) {
                work.extend(info.inputs.iter().copied());
            }
        }
        false
    }
}

/// Tunables of the conformance checks.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Relative tolerance of the simulated-time Eq. 1 comparison
    /// (absolute floor `1e-3` seconds; timestamps round to microseconds).
    pub rel_tol: f64,
    /// Slack in microseconds granted to engine wall-clock containment
    /// sums (clock sampling order between threads).
    pub slack_us: u64,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions { rel_tol: 1e-3, slack_us: 5 }
    }
}

/// A stage-span execution, normalized out of an [`Event`].
#[derive(Debug, Clone, Copy)]
struct Exec {
    stage: u64,
    ts: u64,
    end: u64,
    failed: bool,
}

/// One attempt window: the events between two `query_restart` markers
/// (file order), already classified by kind.
#[derive(Debug, Default)]
struct Window {
    /// 0 for the initial attempt, `n` after the n-th coarse restart.
    attempt: usize,
    execs: Vec<Exec>,
    /// `(stage, ts, file_idx)` of `stage_skipped` instants.
    skips: Vec<(u64, u64, usize)>,
    /// `(consumer stage, producer stage, ts)` of `input_rewind` instants.
    rewinds: Vec<(u64, u64, u64)>,
    /// `(op, ts, file_idx)` of `segment_corrupt` instants.
    corrupts: Vec<(u64, u64, usize)>,
    /// `(stage, replicated, ts, file_idx)` of `materialize` instants.
    puts: Vec<(u64, bool, u64, usize)>,
    /// `(stage, tid, ts, end)` of worker `attempt` spans (ok only).
    attempts: Vec<(u64, u32, u64, u64)>,
    /// `(stage, node, lost_us)` of `node_failure` instants.
    failures: Vec<(u64, u64, u64)>,
    /// File order of every event in the window, for the FT107 replay.
    ordered: Vec<WindowEvent>,
}

/// The store-lifecycle-relevant view of one event, in file order.
#[derive(Debug, Clone, Copy)]
enum WindowEvent {
    Put(u64),
    Skip(u64),
    Corrupt(u64),
    Rewind { producer: u64 },
    Exec { stage: u64 },
}

/// Verifies an observability trace against an optional plan-side ground
/// truth, returning one [`Report`] with FT101–FT108 findings.
///
/// Without a [`StagePlan`] the plan-dependent checks (identity,
/// completeness, ordering against the DAG, skip/materialize legitimacy,
/// Eq. 1) are skipped and only the self-consistency of the trace is
/// verified. The checker never panics on malformed input: damage is
/// reported, not thrown.
pub fn check_trace(
    subject: &str,
    events: &[Event],
    plan: Option<&StagePlan>,
    opts: &CheckOptions,
) -> Report {
    let mut report = Report::new(subject);

    // The trace's producing layer: engine wall-clock vs simulated time
    // decide which protocol checks are meaningful.
    let is_engine = events.iter().any(|e| e.cat == "engine");
    let cat = if is_engine { "engine" } else { "sim" };
    let trace: Vec<(usize, &Event)> =
        events.iter().enumerate().filter(|(_, e)| e.cat == cat).collect();
    if trace.is_empty() {
        report.push(Diagnostic::new(
            Code::FT101,
            Severity::Warn,
            "trace contains no engine or sim events; nothing to verify",
        ));
        return report;
    }

    check_well_formed(&mut report, &trace);
    let windows = split_windows(&mut report, &trace);
    if is_engine {
        check_tracks(&mut report, &trace, &windows, opts);
    }
    if let Some(plan) = plan {
        check_identity(&mut report, &trace, plan);
        check_completeness(&mut report, &trace, &windows, plan);
        for w in &windows {
            check_ordering(&mut report, w, plan);
        }
    }
    for w in &windows {
        check_reexecution(&mut report, w, is_engine, plan);
        if is_engine {
            check_skips(&mut report, w, plan);
            check_store_lifecycle(&mut report, w, plan);
        }
        if let Some(plan) = plan {
            check_cost_conservation(&mut report, w, is_engine, plan, opts);
        }
    }
    report
}

/// Parses a JSONL trace and verifies it — the shared entry point of
/// `ftpde check --trace` and the simulation harness's replay oracle.
///
/// A parse failure is itself a conformance finding (FT101, error), not
/// an `Err`: a torn or truncated trace is exactly the kind of damage
/// the checker exists to report.
pub fn check_trace_jsonl(
    subject: &str,
    jsonl: &str,
    plan: Option<&StagePlan>,
    opts: &CheckOptions,
) -> Report {
    match ftpde_obs::export::from_jsonl(jsonl) {
        Ok(events) => check_trace(subject, &events, plan, opts),
        Err(err) => {
            let mut report = Report::new(subject);
            report.push(Diagnostic::new(
                Code::FT101,
                Severity::Error,
                format!("trace does not parse as JSONL events: {err}"),
            ));
            report
        }
    }
}

fn arg_u64(e: &Event, key: &str) -> Option<u64> {
    match e.get_arg(key) {
        Some(ArgValue::U64(v)) => Some(*v),
        Some(ArgValue::I64(v)) => u64::try_from(*v).ok(),
        _ => None,
    }
}

fn arg_f64(e: &Event, key: &str) -> Option<f64> {
    match e.get_arg(key) {
        Some(ArgValue::F64(v)) => Some(*v),
        Some(ArgValue::U64(v)) => Some(*v as f64),
        Some(ArgValue::I64(v)) => Some(*v as f64),
        _ => None,
    }
}

fn arg_bool(e: &Event, key: &str) -> Option<bool> {
    match e.get_arg(key) {
        Some(ArgValue::Bool(v)) => Some(*v),
        _ => None,
    }
}

/// Whether this event is a stage-execution span (`stage <id>`).
fn is_stage_span(e: &Event) -> bool {
    e.phase == Phase::Span && e.name.starts_with("stage ")
}

fn is_terminal(e: &Event) -> bool {
    e.name == "query_completed" || e.name == "query_aborted"
}

/// FT101: argument presence, float sanity, single terminal, nothing
/// recorded after it.
fn check_well_formed(report: &mut Report, trace: &[(usize, &Event)]) {
    // Events that must carry a `stage` argument to mean anything.
    const STAGE_BEARING: &[&str] =
        &["stage_skipped", "input_rewind", "node_failure", "materialize", "worker_cancelled"];

    for &(idx, e) in trace {
        if (is_stage_span(e) || STAGE_BEARING.contains(&e.name.as_str()))
            && arg_u64(e, "stage").is_none()
        {
            report.push(Diagnostic::new(
                Code::FT101,
                Severity::Error,
                format!("event #{idx} `{}` lacks a usable `stage` argument", e.name),
            ));
        }
        if e.name == "input_rewind" && arg_u64(e, "producer").is_none() {
            report.push(Diagnostic::new(
                Code::FT101,
                Severity::Error,
                format!("event #{idx} `input_rewind` lacks a `producer` argument"),
            ));
        }
        if e.name == "segment_corrupt" && arg_u64(e, "op").is_none() {
            report.push(Diagnostic::new(
                Code::FT101,
                Severity::Error,
                format!("event #{idx} `segment_corrupt` lacks an `op` argument"),
            ));
        }
        for (k, v) in &e.args {
            if let ArgValue::F64(f) = v {
                if !f.is_finite() {
                    report.push(Diagnostic::new(
                        Code::FT101,
                        Severity::Error,
                        format!("event #{idx} `{}` has non-finite argument {k} = {f}", e.name),
                    ));
                }
            }
        }
    }

    let terminals: Vec<usize> =
        trace.iter().filter(|(_, e)| is_terminal(e)).map(|&(i, _)| i).collect();
    match terminals.len() {
        0 => report.push(Diagnostic::new(
            Code::FT101,
            Severity::Warn,
            "trace has no terminal (query_completed/query_aborted); it may be truncated",
        )),
        1 => {
            let term = terminals[0];
            for &(idx, e) in trace {
                if idx > term {
                    report.push(Diagnostic::new(
                        Code::FT101,
                        Severity::Error,
                        format!("event #{idx} `{}` recorded after the terminal event", e.name),
                    ));
                }
            }
        }
        n => report.push(Diagnostic::new(
            Code::FT101,
            Severity::Error,
            format!("trace has {n} terminal events; a query terminates exactly once"),
        )),
    }
}

/// Splits the trace into attempt windows at `query_restart` markers
/// (file order — the coordinator emits them single-threadedly between
/// stage executions) and classifies each window's events.
fn split_windows(report: &mut Report, trace: &[(usize, &Event)]) -> Vec<Window> {
    let mut windows = vec![Window::default()];
    for &(idx, e) in trace {
        if e.name == "query_restart" {
            let attempt = windows.len();
            windows.push(Window { attempt, ..Window::default() });
            continue;
        }
        let w = windows.last_mut().expect("windows starts non-empty");
        if is_stage_span(e) {
            if let Some(stage) = arg_u64(e, "stage") {
                let failed = arg_bool(e, "failed").unwrap_or(false);
                w.execs.push(Exec {
                    stage,
                    ts: e.ts_us,
                    end: e.ts_us.saturating_add(e.dur_us),
                    failed,
                });
                w.ordered.push(WindowEvent::Exec { stage });
            }
            continue;
        }
        match e.name.as_str() {
            "stage_skipped" => {
                if let Some(stage) = arg_u64(e, "stage") {
                    w.skips.push((stage, e.ts_us, idx));
                    w.ordered.push(WindowEvent::Skip(stage));
                }
            }
            "input_rewind" => {
                if let (Some(stage), Some(producer)) = (arg_u64(e, "stage"), arg_u64(e, "producer"))
                {
                    w.rewinds.push((stage, producer, e.ts_us));
                    w.ordered.push(WindowEvent::Rewind { producer });
                }
            }
            "segment_corrupt" => {
                if let Some(op) = arg_u64(e, "op") {
                    w.corrupts.push((op, e.ts_us, idx));
                    w.ordered.push(WindowEvent::Corrupt(op));
                }
            }
            "materialize" => {
                if let Some(stage) = arg_u64(e, "stage") {
                    let replicated = arg_bool(e, "replicated").unwrap_or(false);
                    w.puts.push((stage, replicated, e.ts_us, idx));
                    w.ordered.push(WindowEvent::Put(stage));
                }
            }
            "attempt" => {
                if let (Some(stage), Some(true)) = (arg_u64(e, "stage"), arg_bool(e, "ok")) {
                    w.attempts.push((stage, e.tid, e.ts_us, e.ts_us.saturating_add(e.dur_us)));
                }
            }
            "node_failure" => {
                if let Some(stage) = arg_u64(e, "stage") {
                    let node = arg_u64(e, "node").unwrap_or(u64::from(e.tid));
                    let lost_us =
                        (arg_f64(e, "lost_s").unwrap_or(0.0).max(0.0) * 1e6).round() as u64;
                    w.failures.push((stage, node, lost_us));
                }
            }
            _ => {}
        }
    }
    // A restart with nothing after it is itself suspicious: the
    // coordinator restarts in order to run again (or abort, which is a
    // terminal, not a restart).
    if let Some(last) = windows.last() {
        if windows.len() > 1
            && last.execs.is_empty()
            && last.skips.is_empty()
            && trace.iter().all(|(_, e)| e.name != "query_aborted")
        {
            report.push(Diagnostic::new(
                Code::FT101,
                Severity::Warn,
                "trailing query_restart with no subsequent execution".to_string(),
            ));
        }
    }
    windows
}

/// FT102 (engine only): the coordinator's stage track is sequential,
/// per-node attempt tracks are sequential, and attempts nest inside a
/// stage span of the same stage.
fn check_tracks(
    report: &mut Report,
    trace: &[(usize, &Event)],
    windows: &[Window],
    opts: &CheckOptions,
) {
    // Per-(pid, tid) span intervals must not overlap: the coordinator is
    // one thread (tid 0) and each worker track serves one node at a time.
    type TrackSpans = Vec<(u64, u64, usize)>;
    let mut by_track: HashMap<(u32, u32), TrackSpans> = HashMap::new();
    for &(idx, e) in trace {
        if e.phase == Phase::Span {
            by_track.entry((e.pid, e.tid)).or_default().push((
                e.ts_us,
                e.ts_us.saturating_add(e.dur_us),
                idx,
            ));
        }
    }
    for ((pid, tid), mut spans) in by_track {
        spans.sort_unstable();
        for pair in spans.windows(2) {
            let (_, prev_end, prev_idx) = pair[0];
            let (ts, _, idx) = pair[1];
            if ts.saturating_add(opts.slack_us) < prev_end {
                report.push(Diagnostic::new(
                    Code::FT102,
                    Severity::Error,
                    format!(
                        "spans #{prev_idx} and #{idx} overlap on track (pid {pid}, tid {tid}): \
                         {ts} < {prev_end}"
                    ),
                ));
            }
        }
    }

    // Every successful worker attempt must sit inside an execution span
    // of its stage within the same attempt window.
    for w in windows {
        for &(stage, tid, ts, end) in &w.attempts {
            let contained = w.execs.iter().any(|x| {
                x.stage == stage
                    && ts.saturating_add(opts.slack_us) >= x.ts
                    && end <= x.end.saturating_add(opts.slack_us)
            });
            if !contained {
                report.push(
                    Diagnostic::new(
                        Code::FT102,
                        Severity::Error,
                        format!(
                            "worker attempt on tid {tid} ([{ts}, {end}] us) is not contained \
                                 in any execution span of stage {stage} (attempt {})",
                            w.attempt
                        ),
                    )
                    .at_stage(stage as u32),
                );
            }
        }
    }
}

/// FT103 (identity half): every stage id mentioned anywhere in the trace
/// names a collapsed-plan stage.
fn check_identity(report: &mut Report, trace: &[(usize, &Event)], plan: &StagePlan) {
    let mut flagged: HashSet<u64> = HashSet::new();
    let mut check = |report: &mut Report, id: u64, role: &str, idx: usize| {
        if plan.get(id).is_none() && flagged.insert(id) {
            report.push(
                Diagnostic::new(
                    Code::FT103,
                    Severity::Error,
                    format!("event #{idx} names {role} {id}, which is not a collapsed stage"),
                )
                .at_stage(id as u32),
            );
        }
    };
    for &(idx, e) in trace {
        if is_stage_span(e)
            || matches!(
                e.name.as_str(),
                "stage_skipped" | "input_rewind" | "node_failure" | "materialize"
            )
        {
            if let Some(id) = arg_u64(e, "stage") {
                check(report, id, "stage", idx);
            }
        }
        if e.name == "input_rewind" {
            if let Some(id) = arg_u64(e, "producer") {
                check(report, id, "producer", idx);
            }
        }
        if e.name == "segment_corrupt" {
            // `u32::MAX` marks a destroyed manifest (whole-directory
            // reset), which is deliberately not a stage.
            if let Some(id) = arg_u64(e, "op") {
                if id != u64::from(u32::MAX) {
                    check(report, id, "corrupt op", idx);
                }
            }
        }
    }
}

/// FT103 (completeness half): a completed query executed or skipped every
/// collapsed stage in its final attempt. Coarse-simulator traces carry no
/// stage spans at all; with no execution evidence anywhere the check is
/// vacuous and skipped.
fn check_completeness(
    report: &mut Report,
    trace: &[(usize, &Event)],
    windows: &[Window],
    plan: &StagePlan,
) {
    let completed = trace.iter().any(|(_, e)| e.name == "query_completed");
    let any_exec = windows.iter().any(|w| !w.execs.is_empty());
    if !completed || !any_exec {
        return;
    }
    let last = windows.last().expect("split_windows returns at least one window");
    for s in plan.stages() {
        let executed = last.execs.iter().any(|x| x.stage == s.id && !x.failed);
        let skipped = last.skips.iter().any(|&(id, _, _)| id == s.id);
        if !executed && !skipped {
            report.push(
                Diagnostic::new(
                    Code::FT103,
                    Severity::Error,
                    format!(
                        "query completed but stage {} was neither executed nor skipped in the \
                         final attempt",
                        s.id
                    ),
                )
                .at_stage(s.id as u32),
            );
        }
    }
}

/// FT104: within an attempt, a stage's execution starts only after every
/// collapsed producer completed (or was skipped) — by timestamp, since
/// file order is not chronological across tracks.
fn check_ordering(report: &mut Report, w: &Window, plan: &StagePlan) {
    for x in &w.execs {
        let Some(info) = plan.get(x.stage) else { continue };
        for &p in &info.inputs {
            let produced = w.execs.iter().any(|px| px.stage == p && !px.failed && px.end <= x.ts)
                || w.skips.iter().any(|&(id, ts, _)| id == p && ts <= x.ts);
            let present =
                w.execs.iter().any(|px| px.stage == p) || w.skips.iter().any(|&(id, _, _)| id == p);
            if !produced && present {
                report.push(
                    Diagnostic::new(
                        Code::FT104,
                        Severity::Error,
                        format!(
                            "stage {} started at {} us before producer {p} completed \
                             (attempt {})",
                            x.stage, x.ts, w.attempt
                        ),
                    )
                    .at_stage(x.stage as u32),
                );
            }
            // A producer absent from the window entirely is a store /
            // completeness matter (FT107 / FT103), not an ordering one.
        }
    }
}

/// FT105 — the §2.2 recovery contract: within one attempt a stage is
/// re-executed only because storage lost something. Engine traces must
/// show an `input_rewind`/`segment_corrupt` naming the stage or one of
/// its ancestors between the two executions; simulator traces never
/// repeat a stage within an attempt at all (failures retry *inside* the
/// span).
fn check_reexecution(report: &mut Report, w: &Window, is_engine: bool, plan: Option<&StagePlan>) {
    // Chronological occurrences (exec end / skip ts) per stage.
    let mut history: HashMap<u64, Vec<(u64, bool)>> = HashMap::new();
    for x in &w.execs {
        history.entry(x.stage).or_default().push((x.end, true));
    }
    for &(id, ts, _) in &w.skips {
        history.entry(id).or_default().push((ts, false));
    }
    for (stage, mut occ) in history {
        occ.sort_unstable();
        for pair in occ.windows(2) {
            let (prev_at, _) = pair[0];
            let (cur_at, cur_is_exec) = pair[1];
            if !cur_is_exec {
                // Re-skips are FT106's concern (backing), not FT105's.
                continue;
            }
            if !is_engine {
                report.push(
                    Diagnostic::new(
                        Code::FT105,
                        Severity::Error,
                        format!(
                            "simulated stage {stage} executed twice within attempt {}; the \
                             simulator retries inside a span, never re-executes",
                            w.attempt
                        ),
                    )
                    .at_stage(stage as u32),
                );
                continue;
            }
            // Any storage-loss evidence strictly between the executions?
            let justification = w
                .rewinds
                .iter()
                .filter(|&&(_, _, ts)| ts >= prev_at && ts <= cur_at)
                .map(|&(_, producer, _)| producer)
                .chain(
                    w.corrupts
                        .iter()
                        .filter(|&&(_, ts, _)| ts >= prev_at && ts <= cur_at)
                        .map(|&(op, _, _)| op),
                )
                .collect::<Vec<_>>();
            if justification.is_empty() {
                report.push(
                    Diagnostic::new(
                        Code::FT105,
                        Severity::Error,
                        format!(
                            "stage {stage} re-executed within attempt {} with no input_rewind or \
                             segment_corrupt between the executions (recovery contract §2.2)",
                            w.attempt
                        ),
                    )
                    .at_stage(stage as u32),
                );
            } else if let Some(plan) = plan {
                let related =
                    justification.iter().any(|&cause| plan.is_ancestor_or_self(cause, stage));
                if !related {
                    report.push(
                        Diagnostic::new(
                            Code::FT105,
                            Severity::Warn,
                            format!(
                                "stage {stage} re-executed within attempt {} but the recorded \
                                 rewind/corruption concerns unrelated stages {justification:?}",
                                w.attempt
                            ),
                        )
                        .at_stage(stage as u32),
                    );
                }
            }
        }
    }
}

/// FT106 (engine): skips only for non-sink stages, and any skip after a
/// coarse restart backed by a materialization in the same attempt (the
/// restart cleared the store; only a fresh put can make a skip sound).
fn check_skips(report: &mut Report, w: &Window, plan: Option<&StagePlan>) {
    for &(stage, ts, idx) in &w.skips {
        if let Some(info) = plan.and_then(|p| p.get(stage)) {
            if info.is_sink {
                report.push(
                    Diagnostic::new(
                        Code::FT106,
                        Severity::Error,
                        format!(
                            "event #{idx}: sink stage {stage} was skipped; sinks produce the \
                             query result and are never materialized"
                        ),
                    )
                    .at_stage(stage as u32),
                );
            }
        }
        if w.attempt > 0 {
            let backed = w.puts.iter().any(|&(id, _, put_ts, _)| id == stage && put_ts <= ts);
            if !backed {
                report.push(
                    Diagnostic::new(
                        Code::FT106,
                        Severity::Error,
                        format!(
                            "stage {stage} skipped in attempt {} without a preceding \
                             materialization; the restart cleared the store",
                            w.attempt
                        ),
                    )
                    .at_stage(stage as u32),
                );
            }
        }
    }
}

/// FT107 (engine): materializations match the configuration, consumers
/// only run over inputs a put or skip vouches for, and a corruption of
/// live data is followed by a rewind to its producer.
fn check_store_lifecycle(report: &mut Report, w: &Window, plan: Option<&StagePlan>) {
    // Materialize legitimacy against the configuration.
    if let Some(plan) = plan {
        for &(stage, replicated, _, idx) in &w.puts {
            let Some(info) = plan.get(stage) else { continue };
            if info.is_sink {
                report.push(
                    Diagnostic::new(
                        Code::FT107,
                        Severity::Error,
                        format!("event #{idx}: sink stage {stage} must not be materialized"),
                    )
                    .at_stage(stage as u32),
                );
            } else if !replicated && !info.materializes {
                report.push(
                    Diagnostic::new(
                        Code::FT107,
                        Severity::Error,
                        format!(
                            "event #{idx}: stage {stage} materialized but the configuration \
                             does not materialize it (replicated gather outputs excepted)"
                        ),
                    )
                    .at_stage(stage as u32),
                );
            }
        }
    }

    // Availability replay in file order (authoritative for the
    // single-threaded coordinator): a put or skip makes a stage's output
    // available, a corruption demotes it, an execution requires every
    // producer to be available. First-attempt availability may also come
    // from a pre-seeded store (resume) — vouched for by the skip event
    // the coordinator emits in that case.
    let mut avail: HashSet<u64> = HashSet::new();
    for (pos, ev) in w.ordered.iter().enumerate() {
        match *ev {
            WindowEvent::Put(id) | WindowEvent::Skip(id) => {
                avail.insert(id);
            }
            WindowEvent::Corrupt(op) => {
                // Only a corruption of *live* data (materialized or
                // vouched-for earlier this attempt) obliges a rewind;
                // crash debris drained before the producer ever ran
                // resolves itself when the producer executes normally.
                if !avail.remove(&op) {
                    continue;
                }
                let rewound = w.ordered[pos..]
                    .iter()
                    .any(|e| matches!(e, WindowEvent::Rewind { producer } if *producer == op));
                let consumed_later = plan.is_some_and(|p| {
                    w.ordered[pos..].iter().any(|e| {
                        matches!(e, WindowEvent::Exec { stage }
                            if p.get(*stage).is_some_and(|i| i.inputs.contains(&op)))
                    })
                });
                if consumed_later && !rewound {
                    report.push(
                        Diagnostic::new(
                            Code::FT107,
                            Severity::Error,
                            format!(
                                "corruption of stage {op}'s live output is never followed by an \
                                 input_rewind to it, yet a consumer executes afterwards \
                                 (attempt {})",
                                w.attempt
                            ),
                        )
                        .at_stage(op as u32),
                    );
                }
            }
            WindowEvent::Exec { stage } => {
                let Some(info) = plan.and_then(|p| p.get(stage)) else { continue };
                for &p in &info.inputs {
                    if !avail.contains(&p) {
                        report.push(
                            Diagnostic::new(
                                Code::FT107,
                                Severity::Error,
                                format!(
                                    "stage {stage} executed without producer {p}'s output \
                                     covered by a materialize or skip (attempt {})",
                                    w.attempt
                                ),
                            )
                            .at_stage(stage as u32),
                        );
                    }
                }
            }
            WindowEvent::Rewind { .. } => {}
        }
    }
}

/// FT108 — Eq. 1 over observed time. Simulated stage spans last exactly
/// the collapsed `tr + tm` when the stage saw no failures (the simulator
/// *is* the cost model run forward), and at least that long otherwise.
/// Engine wall-clock is noisy, so only containment-style conservation is
/// asserted: per node, successful attempt time plus lost work fits in
/// the stage span that contains it.
fn check_cost_conservation(
    report: &mut Report,
    w: &Window,
    is_engine: bool,
    plan: &StagePlan,
    opts: &CheckOptions,
) {
    if !is_engine {
        for x in &w.execs {
            let Some(info) = plan.get(x.stage) else { continue };
            let expected = info.run_cost + info.mat_cost;
            let observed = (x.end - x.ts) as f64 / 1e6;
            let tol = opts.rel_tol * expected.max(1e-3) + 2e-6;
            let failed_here = w.failures.iter().any(|&(s, _, _)| s == x.stage);
            if failed_here {
                if observed + tol < expected {
                    report.push(
                        Diagnostic::new(
                            Code::FT108,
                            Severity::Error,
                            format!(
                                "simulated stage {} lasted {observed:.6}s, less than its \
                                 failure-free cost {expected:.6}s despite failures (Eq. 1)",
                                x.stage
                            ),
                        )
                        .at_stage(x.stage as u32),
                    );
                }
            } else if (observed - expected).abs() > tol {
                report.push(
                    Diagnostic::new(
                        Code::FT108,
                        Severity::Error,
                        format!(
                            "simulated stage {} lasted {observed:.6}s but the collapsed cost \
                             model predicts tr+tm = {expected:.6}s (Eq. 1)",
                            x.stage
                        ),
                    )
                    .at_stage(x.stage as u32),
                );
            }
        }
        return;
    }

    // Engine: per stage execution and node track, Σ successful-attempt
    // time + Σ lost work ≤ the stage's wall-clock span.
    for x in &w.execs {
        let wall = x.end - x.ts;
        let mut per_node: HashMap<u64, u64> = HashMap::new();
        for &(stage, tid, ts, end) in &w.attempts {
            if stage == x.stage && ts >= x.ts && end <= x.end.saturating_add(opts.slack_us) {
                *per_node.entry(u64::from(tid.saturating_sub(1))).or_default() += end - ts;
            }
        }
        for &(stage, node, lost_us) in &w.failures {
            if stage == x.stage {
                *per_node.entry(node).or_default() += lost_us;
            }
        }
        for (node, spent) in per_node {
            if spent > wall.saturating_add(opts.slack_us) {
                report.push(
                    Diagnostic::new(
                        Code::FT108,
                        Severity::Error,
                        format!(
                            "node {node} accounts {spent} us of attempts + lost work inside \
                             stage {}'s {wall} us span (attempt {}): time is not conserved",
                            x.stage, w.attempt
                        ),
                    )
                    .at_stage(x.stage as u32),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftpde_core::dag::figure2_plan;

    fn plan_and_config() -> (PlanDag, MatConfig) {
        let plan = figure2_plan();
        let config = MatConfig::all(&plan);
        (plan, config)
    }

    /// A minimal clean engine-style trace over a 2-stage chain:
    /// stage 0 materializes, stage 1 (sink) consumes it.
    fn chain_plan() -> StagePlan {
        StagePlan {
            stages: vec![
                StageInfo {
                    id: 0,
                    inputs: vec![],
                    materializes: true,
                    is_sink: false,
                    run_cost: 1.0,
                    mat_cost: 0.5,
                },
                StageInfo {
                    id: 1,
                    inputs: vec![0],
                    materializes: false,
                    is_sink: true,
                    run_cost: 2.0,
                    mat_cost: 0.0,
                },
            ],
            index: [(0u64, 0usize), (1u64, 1usize)].into_iter().collect(),
        }
    }

    fn stage_span(stage: u64, ts: u64, dur: u64) -> Event {
        Event::span(format!("stage {stage}"), "engine", ts, dur)
            .arg("stage", stage)
            .arg("nodes", 1u64)
            .arg("failed", false)
    }

    fn clean_chain_trace() -> Vec<Event> {
        vec![
            stage_span(0, 0, 100),
            Event::instant("materialize", "engine", 110).arg("stage", 0u64).arg("rows", 3u64),
            stage_span(1, 120, 200),
            Event::instant("query_completed", "engine", 330),
        ]
    }

    #[test]
    fn clean_trace_passes() {
        let plan = chain_plan();
        let report =
            check_trace("chain", &clean_chain_trace(), Some(&plan), &CheckOptions::default());
        assert!(report.is_clean(), "unexpected findings:\n{}", report.render());
    }

    #[test]
    fn consumer_before_producer_is_ft104() {
        let plan = chain_plan();
        let trace = vec![
            stage_span(1, 0, 50),
            Event::instant("materialize", "engine", 60).arg("stage", 0u64),
            stage_span(0, 60, 100),
            Event::instant("query_completed", "engine", 200),
        ];
        let report = check_trace("bad-order", &trace, Some(&plan), &CheckOptions::default());
        assert!(report.diagnostics.iter().any(|d| d.code == Code::FT104));
    }

    #[test]
    fn unknown_stage_is_ft103() {
        let plan = chain_plan();
        let mut trace = clean_chain_trace();
        trace.insert(2, stage_span(7, 105, 5));
        let report = check_trace("ghost", &trace, Some(&plan), &CheckOptions::default());
        assert!(report.diagnostics.iter().any(|d| d.code == Code::FT103));
    }

    #[test]
    fn missing_stage_is_incomplete_ft103() {
        let plan = chain_plan();
        let trace = vec![stage_span(1, 0, 50), Event::instant("query_completed", "engine", 60)];
        let report = check_trace("partial", &trace, Some(&plan), &CheckOptions::default());
        assert!(report.diagnostics.iter().any(|d| d.code == Code::FT103));
    }

    #[test]
    fn unjustified_reexecution_is_ft105() {
        let plan = chain_plan();
        let trace = vec![
            stage_span(0, 0, 100),
            Event::instant("materialize", "engine", 110).arg("stage", 0u64),
            stage_span(0, 120, 100),
            Event::instant("materialize", "engine", 230).arg("stage", 0u64),
            stage_span(1, 240, 50),
            Event::instant("query_completed", "engine", 300),
        ];
        let report = check_trace("repeat", &trace, Some(&plan), &CheckOptions::default());
        assert!(report.diagnostics.iter().any(|d| d.code == Code::FT105));
    }

    #[test]
    fn rewound_reexecution_is_clean() {
        let plan = chain_plan();
        let trace = vec![
            stage_span(0, 0, 100),
            Event::instant("materialize", "engine", 110).arg("stage", 0u64),
            Event::instant("segment_corrupt", "engine", 115)
                .arg("op", 0u64)
                .arg("reason", "checksum mismatch"),
            Event::instant("input_rewind", "engine", 116).arg("stage", 1u64).arg("producer", 0u64),
            stage_span(0, 120, 100),
            Event::instant("materialize", "engine", 230).arg("stage", 0u64),
            stage_span(1, 240, 50),
            Event::instant("query_completed", "engine", 300),
        ];
        let report = check_trace("rewound", &trace, Some(&plan), &CheckOptions::default());
        assert!(report.is_clean(), "unexpected findings:\n{}", report.render());
    }

    #[test]
    fn corruption_without_rewind_is_ft107() {
        let plan = chain_plan();
        let trace = vec![
            stage_span(0, 0, 100),
            Event::instant("materialize", "engine", 110).arg("stage", 0u64),
            Event::instant("segment_corrupt", "engine", 115)
                .arg("op", 0u64)
                .arg("reason", "checksum mismatch"),
            stage_span(1, 120, 50),
            Event::instant("query_completed", "engine", 200),
        ];
        let report = check_trace("no-rewind", &trace, Some(&plan), &CheckOptions::default());
        assert!(report.diagnostics.iter().any(|d| d.code == Code::FT107));
    }

    #[test]
    fn sink_skip_is_ft106() {
        let plan = chain_plan();
        let trace = vec![
            stage_span(0, 0, 100),
            Event::instant("materialize", "engine", 110).arg("stage", 0u64),
            Event::instant("stage_skipped", "engine", 120).arg("stage", 1u64),
            Event::instant("query_completed", "engine", 130),
        ];
        let report = check_trace("sink-skip", &trace, Some(&plan), &CheckOptions::default());
        assert!(report.diagnostics.iter().any(|d| d.code == Code::FT106));
    }

    #[test]
    fn skip_after_restart_without_put_is_ft106() {
        let plan = chain_plan();
        let trace = vec![
            stage_span(0, 0, 100).arg("x", 1u64),
            Event::instant("materialize", "engine", 110).arg("stage", 0u64),
            Event::instant("query_restart", "engine", 150).arg("attempt", 1u64),
            Event::instant("stage_skipped", "engine", 160).arg("stage", 0u64),
            stage_span(1, 170, 50),
            Event::instant("query_completed", "engine", 230),
        ];
        let report = check_trace("stale-skip", &trace, Some(&plan), &CheckOptions::default());
        assert!(report.diagnostics.iter().any(|d| d.code == Code::FT106));
    }

    #[test]
    fn two_terminals_is_ft101() {
        let plan = chain_plan();
        let mut trace = clean_chain_trace();
        trace.push(Event::instant("query_completed", "engine", 400));
        let report = check_trace("double-end", &trace, Some(&plan), &CheckOptions::default());
        assert!(report.diagnostics.iter().any(|d| d.code == Code::FT101));
    }

    #[test]
    fn attempt_outside_stage_span_is_ft102() {
        let plan = chain_plan();
        let mut trace = clean_chain_trace();
        trace.insert(
            1,
            Event::span("attempt", "engine", 500, 50)
                .tid(1)
                .arg("stage", 0u64)
                .arg("node", 0u64)
                .arg("attempt", 0u64)
                .arg("ok", true),
        );
        let report = check_trace("orphan-attempt", &trace, Some(&plan), &CheckOptions::default());
        assert!(report.diagnostics.iter().any(|d| d.code == Code::FT102));
    }

    #[test]
    fn sim_duration_mismatch_is_ft108() {
        let plan = chain_plan();
        let trace = vec![
            Event::span("stage 0", "sim", 0, 3_000_000).arg("stage", 0u64),
            Event::span("stage 1", "sim", 3_000_000, 2_000_000).arg("stage", 1u64),
            Event::instant("query_completed", "sim", 5_000_000),
        ];
        // Stage 0 should last 1.5s (tr 1.0 + tm 0.5) but claims 3s.
        let report = check_trace("sim-drift", &trace, Some(&plan), &CheckOptions::default());
        assert!(report.diagnostics.iter().any(|d| d.code == Code::FT108));
    }

    #[test]
    fn sim_exact_durations_are_clean() {
        let plan = chain_plan();
        let trace = vec![
            Event::span("stage 0", "sim", 0, 1_500_000).arg("stage", 0u64),
            Event::span("stage 1", "sim", 1_500_000, 2_000_000).arg("stage", 1u64),
            Event::instant("query_completed", "sim", 3_500_000),
        ];
        let report = check_trace("sim-clean", &trace, Some(&plan), &CheckOptions::default());
        assert!(report.is_clean(), "unexpected findings:\n{}", report.render());
    }

    #[test]
    fn stage_plan_projects_both_id_spaces() {
        let (plan, config) = plan_and_config();
        let eng = StagePlan::engine_ids(&plan, &config, 1.0);
        let sim = StagePlan::sim_ids(&plan, &config, 1.0);
        assert_eq!(eng.stages().len(), sim.stages().len());
        // Sim ids are dense 0..n.
        for (i, s) in sim.stages().iter().enumerate() {
            assert_eq!(s.id, i as u64);
        }
        // Engine ids are root operator ids; each must resolve.
        for s in eng.stages() {
            assert!(eng.get(s.id).is_some());
        }
        // Figure 2 fans out into the two reduce UDF sinks.
        assert_eq!(eng.stages().iter().filter(|s| s.is_sink).count(), 2);
    }

    #[test]
    fn checker_survives_garbage() {
        // No args, weird names, zero-duration spans, no terminal: the
        // checker must report, never panic.
        let trace = vec![
            Event::span("stage ", "engine", 5, 0),
            Event::instant("input_rewind", "engine", 1),
            Event::instant("segment_corrupt", "engine", 2),
            Event::instant("node_failure", "engine", 3),
            Event::span("attempt", "engine", 0, u64::MAX),
        ];
        let plan = chain_plan();
        let report = check_trace("garbage", &trace, Some(&plan), &CheckOptions::default());
        assert!(!report.is_clean());
    }

    #[test]
    fn jsonl_entry_point_checks_and_reports_parse_damage() {
        let trace = vec![
            Event::span("stage", "sim", 0, 1_000_000).arg("stage", 0u64),
            Event::instant("query_completed", "sim", 1_000_000),
        ];
        let jsonl = ftpde_obs::export::to_jsonl(&trace);
        let report = check_trace_jsonl("rt", &jsonl, None, &CheckOptions::default());
        assert!(report.is_clean(), "{}", report.render());
        // Torn input is an FT101 error, not an Err.
        let report = check_trace_jsonl("torn", "{not json", None, &CheckOptions::default());
        assert!(!report.is_clean());
        assert_eq!(report.diagnostics[0].code, Code::FT101);
    }
}
