//! FT205 golden fixture: a rename on the store commit path with no
//! fsync anywhere in the same function. Linted under
//! `crates/store/src/fixture.rs`, where the pass is armed.

use std::fs;
use std::fs::File;

fn torn_commit(tmp: &str, dst: &str) -> std::io::Result<()> {
    fs::rename(tmp, dst) // FT205: no sync_all/sync_data in this fn
}

fn durable_commit(tmp: &str, dst: &str) -> std::io::Result<()> {
    let f = File::open(tmp)?;
    f.sync_all()?;
    fs::rename(tmp, dst)?;
    File::open(".")?.sync_data()?;
    Ok(())
}
