//! FT213 golden fixture: re-entrant acquisition of a non-reentrant
//! mutex — directly in one body, and transitively through a method
//! that locks the same field. The walker skips `fixtures/`, so the
//! violations are deliberate.

use crate::sync::Mutex;

pub struct Registry {
    items: Mutex<Vec<u32>>,
}

impl Registry {
    pub fn add_twice(&self, x: u32) {
        let g = self.items.lock();
        let h = self.items.lock(); // line 15: FT213 (direct re-lock)
        drop(h);
        drop(g);
    }

    pub fn add(&self, x: u32) {
        let mut g = self.items.lock();
        g.push(x);
        self.flush(); // line 23: FT213 (flush re-locks `items`)
        drop(g);
    }

    pub fn add_then_flush(&self, x: u32) {
        {
            let mut g = self.items.lock();
            g.push(x);
        }
        self.flush(); // clean: guard scope closed above
    }

    fn flush(&self) {
        let g = self.items.lock();
        drop(g);
    }
}
