//! FT211 golden fixture: blocking file-system I/O performed while a
//! lock guard is live — both directly and transitively through a call.
//! The walker skips `fixtures/`, so the violations are deliberate.

use crate::sync::Mutex;

pub struct Spiller {
    state: Mutex<Vec<u8>>,
}

impl Spiller {
    pub fn spill(&self, path: &std::path::Path) {
        let g = self.state.lock();
        let _ = std::fs::write(path, &*g); // line 14: FT211 (direct)
        drop(g);
    }

    pub fn rotate(&self, path: &std::path::Path) {
        let g = self.state.lock();
        flush_to(path); // line 20: FT211 (transitive, via flush_to)
        drop(g);
    }

    pub fn spill_unlocked(&self, path: &std::path::Path) {
        let bytes = { self.state.lock().clone() };
        let _ = std::fs::write(path, bytes); // clean: guard already dead
    }
}

fn flush_to(path: &std::path::Path) {
    let _ = std::fs::write(path, b"rotated");
}
