//! FT203 golden fixture: randomized-iteration containers in a plan/cost
//! path. Linted under the path `crates/core/src/fixture.rs`, where the
//! pass is armed; the same text under `crates/engine/` is silent.

use std::collections::{BTreeMap, HashMap, HashSet}; // line 5: FT203 (HashMap + HashSet, one line)

fn plan_shape(n: usize) -> usize {
    let m: HashMap<u32, u32> = HashMap::new(); // line 8: FT203
    let s: HashSet<u32> = HashSet::new(); // line 9: FT203
    // BTreeMap iterates in key order and is never flagged.
    let b: BTreeMap<u32, u32> = BTreeMap::new();
    m.len() + s.len() + b.len() + n
}
