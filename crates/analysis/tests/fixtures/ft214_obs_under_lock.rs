//! FT214 golden fixture: reaching the global metrics registry
//! (`obs::global()`) while a lock guard is live — directly and
//! transitively through a recording helper. The walker skips
//! `fixtures/`, so the violations are deliberate.

use crate::sync::Mutex;

pub struct Tracker {
    hits: Mutex<u64>,
}

impl Tracker {
    pub fn bump(&self) {
        let mut g = self.hits.lock();
        *g += 1;
        ftpde_obs::global().counter_add("hits", 1); // line 16: FT214 (direct)
        drop(g);
    }

    pub fn bump_via_helper(&self) {
        let mut g = self.hits.lock();
        *g += 1;
        record_hit(); // line 23: FT214 (record_hit reaches global())
        drop(g);
    }

    pub fn bump_then_record(&self) {
        {
            let mut g = self.hits.lock();
            *g += 1;
        }
        record_hit(); // clean: guard released first
    }
}

fn record_hit() {
    ftpde_obs::global().counter_add("hits", 1);
}
