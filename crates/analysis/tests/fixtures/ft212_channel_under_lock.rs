//! FT212 golden fixture: channel operations and thread joins while a
//! lock guard is live. `Path::join` (an argumented `.join(…)`) must
//! stay silent. The walker skips `fixtures/`, so the violations are
//! deliberate.

use crate::sync::plain::thread::JoinHandle;
use crate::sync::Mutex;

pub struct Inbox {
    seen: Mutex<u64>,
    rx: Receiver<u64>,
}

impl Inbox {
    pub fn drain_one(&self) {
        let mut n = self.seen.lock();
        if self.rx.recv().is_ok() {
            // line 17: FT212 (recv under `seen`)
            *n += 1;
        }
        drop(n);
    }

    pub fn wait(&self, worker: JoinHandle<()>) {
        let g = self.seen.lock();
        let _ = worker.join(); // line 26: FT212 (join under `seen`)
        drop(g);
    }

    pub fn segment_path(&self, dir: &std::path::Path) -> std::path::PathBuf {
        let g = self.seen.lock();
        let p = dir.join("segment.bin"); // clean: Path::join takes args
        drop(g);
        p
    }
}

pub struct Receiver<T>(std::marker::PhantomData<T>);
