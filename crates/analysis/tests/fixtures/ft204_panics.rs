//! FT204 golden fixture: panicking shortcuts in library code. Lint
//! severity — the hygiene ratchet never gates.

fn shortcuts(x: Option<u32>, y: Result<u32, String>) -> u32 {
    let a = x.unwrap(); // line 5: FT204
    let b = y.expect("fixture"); // line 6: FT204
    if a + b == 0 {
        panic!("fixture"); // line 8: FT204
    }
    a + b
}

// `unwrap_or`, `expect_err`-style idents and test code are exempt.
fn tolerated(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
