//! FT201 golden fixture: every way of smuggling a raw synchronization
//! primitive into library code, plus the shim-routed forms that must
//! stay silent. This directory is excluded from the workspace self-scan
//! (the walker skips `fixtures/`), so these violations are deliberate.

use std::sync::atomic::{AtomicU64, Ordering}; // line 6: FT201
use std::sync::Arc; // line 7: FT201

use parking_lot::Mutex; // line 9: FT201

fn smuggle() {
    let _guard = std::sync::Mutex::new(0u32); // line 12: FT201
    std::thread::spawn(|| {}); // line 13: FT201
    let _model = loom::model(|| {}); // line 14: FT201
}

// The sanctioned routes are invisible to the pass: no `std::sync`,
// `std::thread`, `parking_lot` or `loom` path appears.
use crate::sync::plain::{thread, RwLock};
use crate::sync::{InterruptFlag, MutexGuard};

fn routed() {
    thread::scope(|_s| {});
}

// Comments and strings never count: std::sync::Mutex, parking_lot::Mutex.
const PROSE: &str = "std::thread::spawn(parking_lot::Mutex)";
