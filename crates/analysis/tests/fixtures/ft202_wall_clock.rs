//! FT202 golden fixture: wall-clock reads outside the clock seam. The
//! `Instant` *type* is fine — only `Instant::now()` and `SystemTime`
//! are nondeterminism.

use std::time::{Duration, Instant};

struct Timed {
    started: Instant,
}

fn leak_time() -> Instant {
    let t0 = Instant::now(); // line 12: FT202
    let _ = std::time::Instant::now(); // line 13: FT202
    let _epoch = std::time::SystemTime::now(); // line 14: FT202 (SystemTime)
    t0
}

// The seam is silent: `clock::now()` has no flagged path.
fn routed() {
    let t0 = crate::sync::clock::now();
    let _d: Duration = crate::sync::clock::elapsed(t0);
}
