//! FT207 golden fixture: the suppression audit. A used, well-formed
//! allow silences its finding; an unused one is rot; a malformed one is
//! an error that silences nothing.

fn excused() {
    // ftpde-allow(FT202: fixture demonstrates a used suppression)
    let _t = std::time::Instant::now(); // suppressed by line 6
}

fn stale() {
    // ftpde-allow(FT202: nothing below reads a clock)
    let x = 1 + 1; // the allow on line 11 is unused -> FT207
    let _ = x;
}

fn broken() {
    // ftpde-allow(FT999: no such code)
    // ftpde-allow(FT201)
    let _t = std::time::Instant::now(); // line 19: FT202 (nothing suppressed it)
}
