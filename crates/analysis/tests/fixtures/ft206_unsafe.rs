//! FT206 golden fixture: `unsafe` outside the (empty) workspace
//! allowlist. Fires in every file class — even tests.

fn raw(p: *const u32) -> u32 {
    unsafe { *p } // line 5: FT206
}

// The word in a comment or string is not a keyword use: unsafe.
const PROSE: &str = "unsafe { }";
