//! FT210 golden fixture: two functions acquire the same pair of locks
//! in opposite orders — a deadlock-capable cycle in the lock-order
//! graph. The walker skips `fixtures/`, so the violation is deliberate.

use crate::sync::Mutex;

pub struct Ledger {
    src: Mutex<u64>,
    dst: Mutex<u64>,
}

impl Ledger {
    pub fn transfer(&self) {
        let a = self.src.lock(); // order: src -> dst
        let b = self.dst.lock();
        drop(b);
        drop(a);
    }

    pub fn refund(&self) {
        let b = self.dst.lock(); // order: dst -> src — closes the cycle
        let a = self.src.lock();
        drop(a);
        drop(b);
    }
}
