//! Mutation proptests for the trace-conformance checker.
//!
//! Strategy: build a random chain plan and materialization configuration,
//! obtain a *valid* trace two ways — a real `simulate_traced` run and a
//! synthetic engine-style trace derived from the collapsed stages — then
//! apply one random mutation (drop an execution span, reorder producer
//! and consumer, delete a rewind, delete a materialized-stage skip, …)
//! and assert the checker flags it with the expected `FT1xx` code. A
//! final property feeds the checker arbitrary event soup and asserts it
//! never panics.

use ftpde_analysis::diag::Code;
use ftpde_analysis::prelude::*;
use ftpde_cluster::prelude::*;
use ftpde_core::prelude::*;
use ftpde_obs::{Event, MemoryRecorder};
use ftpde_sim::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A linear plan `op0 -> op1 -> … -> op(n-1)` with the given costs.
fn chain_plan(costs: &[(f64, f64)]) -> PlanDag {
    let mut b = PlanDag::builder();
    let mut prev: Vec<OpId> = Vec::new();
    for (i, &(run, mat)) in costs.iter().enumerate() {
        let id = b.free(format!("op{i}"), run, mat, &prev).expect("chain is acyclic");
        prev = vec![id];
    }
    b.build().expect("chain plan is well-formed")
}

/// Materializes the masked non-sink operators (`mask.len() == n - 1`).
fn mat_config(plan: &PlanDag, mask: &[bool]) -> MatConfig {
    let ids: Vec<OpId> = mask
        .iter()
        .enumerate()
        .filter(|&(_, &m)| m)
        .map(|(i, _)| OpId(u32::try_from(i).expect("tiny plans")))
        .collect();
    MatConfig::from_materialized_free_ops(plan, &ids).expect("masked ops are free")
}

/// One generated scenario: a chain, which of its non-sink ops
/// materialize (the first always does, so there are at least two
/// collapsed stages to damage), and a failure seed.
struct Scenario {
    costs: Vec<(f64, f64)>,
    mask: Vec<bool>,
    seed: u64,
}

/// Derives a scenario from plain integers — the vendored proptest has
/// no flat-map/oneof combinators, so structure comes from a seeded RNG.
fn scenario_from(n: usize, mask_bits: u64, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let costs = (0..n).map(|_| (rng.gen_range(0.5..4.0), rng.gen_range(0.1..1.0))).collect();
    let mask = (0..n - 1).map(|i| i == 0 || (mask_bits >> i) & 1 == 1).collect();
    Scenario { costs, mask, seed }
}

/// Runs the simulator over the scenario and returns the recorded trace
/// plus the checker's view of the collapsed plan (sim id space).
fn sim_trace(sc: &Scenario, mtbf: f64) -> (Vec<Event>, StagePlan) {
    let plan = chain_plan(&sc.costs);
    let config = mat_config(&plan, &sc.mask);
    let opts = SimOptions::default();
    let cluster = ClusterConfig::new(4, mtbf, 1.0);
    let horizon = suggested_horizon(&plan, &cluster, &opts);
    let trace = FailureTrace::generate(&cluster, horizon, sc.seed);
    let rec = MemoryRecorder::new();
    simulate_traced(&plan, &config, Recovery::FineGrained, &cluster, &trace, &opts, None, &rec);
    let sp = StagePlan::sim_ids(&plan, &config, opts.pipe_const);
    (rec.events(), sp)
}

/// Positions of stage-execution spans in the event list.
fn exec_positions(events: &[Event]) -> Vec<usize> {
    events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.name.starts_with("stage ") && e.get_arg("stage").is_some())
        .map(|(i, _)| i)
        .collect()
}

fn stage_of(e: &Event) -> u64 {
    match e.get_arg("stage") {
        Some(ftpde_obs::ArgValue::U64(v)) => *v,
        other => panic!("stage spans carry a u64 stage argument, got {other:?}"),
    }
}

/// Applies one of the simulator-trace mutations; returns the damaged
/// trace and the code the checker must report.
fn mutate_sim(mut events: Vec<Event>, kind: usize, pick: usize) -> (Vec<Event>, Code) {
    let execs = exec_positions(&events);
    assert!(execs.len() >= 2, "scenario guarantees at least two collapsed stages");
    let last_ts = events.iter().map(|e| e.ts_us + e.dur_us).max().unwrap_or(0);
    match kind {
        // Drop an execution span: the completed query no longer covers
        // every collapsed stage.
        0 => {
            events.remove(execs[pick % execs.len()]);
            (events, Code::FT103)
        }
        // Rewind a consumer's clock to 0: it now starts before its
        // producer finished.
        1 => {
            let consumers: Vec<usize> =
                execs.iter().copied().filter(|&i| stage_of(&events[i]) > 0).collect();
            let i = consumers[pick % consumers.len()];
            events[i].ts_us = 0;
            (events, Code::FT104)
        }
        // Duplicate an execution: the simulator never re-executes a
        // stage within an attempt.
        2 => {
            let dup = events[execs[pick % execs.len()]].clone();
            let at = events.len() - 1; // keep the terminal last
            events.insert(at, dup);
            (events, Code::FT105)
        }
        // Halve a span: Eq. 1 says a failure-free simulated stage lasts
        // exactly its collapsed tr + tm.
        3 => {
            let i = execs[pick % execs.len()];
            events[i].dur_us /= 2;
            (events, Code::FT108)
        }
        // A second terminal: queries terminate exactly once.
        _ => {
            events.push(Event::instant("query_completed", "sim", last_ts + 1));
            (events, Code::FT101)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn valid_sim_traces_check_clean(
        n in 2usize..6,
        mask_bits in any::<u64>(),
        seed in any::<u64>(),
        failures in any::<bool>(),
    ) {
        let sc = scenario_from(n, mask_bits, seed);
        let mtbf = if failures { 20.0 + (seed % 180) as f64 } else { 1e12 };
        let (events, sp) = sim_trace(&sc, mtbf);
        let report = check_trace("sim", &events, Some(&sp), &CheckOptions::default());
        prop_assert!(report.is_clean(), "clean run flagged:\n{}", report.render());
    }

    #[test]
    fn mutated_sim_traces_are_flagged(
        n in 2usize..6,
        mask_bits in any::<u64>(),
        seed in any::<u64>(),
        kind in 0usize..5,
        pick in any::<usize>(),
    ) {
        // Failure-free, so every mutation's expected code is exact.
        let sc = scenario_from(n, mask_bits, seed);
        let (events, sp) = sim_trace(&sc, 1e12);
        let (damaged, expected) = mutate_sim(events, kind, pick);
        let report = check_trace("damaged-sim", &damaged, Some(&sp), &CheckOptions::default());
        prop_assert!(
            report.diagnostics.iter().any(|d| d.code == expected),
            "mutation {kind} expected {expected:?}, got:\n{}",
            report.render()
        );
    }
}

// ---------------------------------------------------------------------
// Engine-style traces: synthesized from the collapsed stages so the
// recovery episodes (rewinds, skips) the engine mutations target are
// present and clean by construction.
// ---------------------------------------------------------------------

const STAGE_DUR: u64 = 100_000;

fn engine_exec(stage: u64, ts: u64, nodes: u64, out: &mut Vec<Event>) -> u64 {
    out.push(
        Event::span(format!("stage {stage}"), "engine", ts, STAGE_DUR)
            .arg("stage", stage)
            .arg("nodes", nodes)
            .arg("failed", false),
    );
    for node in 0..nodes {
        out.push(
            Event::span("attempt", "engine", ts, STAGE_DUR)
                .tid(u32::try_from(node + 1).expect("tiny clusters"))
                .arg("stage", stage)
                .arg("node", node)
                .arg("attempt", 0u64)
                .arg("ok", true)
                .arg("rows", 10u64),
        );
    }
    ts + STAGE_DUR
}

fn engine_put(stage: u64, ts: u64, out: &mut Vec<Event>) -> u64 {
    out.push(
        Event::instant("materialize", "engine", ts)
            .arg("stage", stage)
            .arg("rows", 10u64)
            .arg("bytes", 80u64),
    );
    ts + 10
}

/// A clean single-attempt engine trace over the collapsed stages. When
/// `rewind_at` names a materialized stage, a corruption + rewind +
/// re-execution episode is inserted right after that stage materializes
/// — exactly the fine-grained recovery the coordinator records. When
/// `skip_first` > 0, that many leading stages are skipped instead of
/// executed (a resume against a pre-seeded store).
fn engine_trace(sp: &StagePlan, rewind_at: Option<u64>, skip_first: usize) -> Vec<Event> {
    let nodes = 2u64;
    let mut out = Vec::new();
    let mut ts = 0u64;
    for (k, s) in sp.stages().iter().enumerate() {
        if k < skip_first {
            out.push(Event::instant("stage_skipped", "engine", ts).arg("stage", s.id));
            ts += 10;
            continue;
        }
        ts = engine_exec(s.id, ts, nodes, &mut out);
        if s.materializes {
            ts = engine_put(s.id, ts, &mut out);
        }
        if rewind_at == Some(s.id) {
            // The consumer found the segment corrupt: rewind the
            // producer, re-run it, re-materialize.
            let consumer = sp
                .stages()
                .iter()
                .find(|c| c.inputs.contains(&s.id))
                .expect("rewound stage has a consumer");
            out.push(
                Event::instant("segment_corrupt", "engine", ts)
                    .arg("op", s.id)
                    .arg("reason", "checksum mismatch"),
            );
            out.push(
                Event::instant("input_rewind", "engine", ts + 1)
                    .arg("stage", consumer.id)
                    .arg("producer", s.id),
            );
            ts += 10;
            ts = engine_exec(s.id, ts, nodes, &mut out);
            ts = engine_put(s.id, ts, &mut out);
        }
        ts += 10;
    }
    out.push(Event::instant("query_completed", "engine", ts));
    out
}

/// The engine-side view of a scenario's collapsed plan (root-op ids).
fn engine_stage_plan(sc: &Scenario) -> StagePlan {
    let plan = chain_plan(&sc.costs);
    let config = mat_config(&plan, &sc.mask);
    StagePlan::engine_ids(&plan, &config, 1.0)
}

/// Applies one engine-trace mutation; returns the damaged trace and the
/// expected code.
fn mutate_engine(sp: &StagePlan, kind: usize, pick: usize) -> (Vec<Event>, Code) {
    // In a chain collapsed at materialization boundaries every non-sink
    // stage materializes, so any non-sink stage can host the episodes.
    let non_sinks: Vec<u64> = sp.stages().iter().filter(|s| !s.is_sink).map(|s| s.id).collect();
    let target = non_sinks[pick % non_sinks.len()];
    let sink = sp.stages().iter().find(|s| s.is_sink).expect("chains end in a sink").id;
    match kind {
        // Delete the rewind from a recovery episode: the corruption of
        // live data is then never rewound before a consumer runs.
        0 => {
            let mut t = engine_trace(sp, Some(target), 0);
            let at = t.iter().position(|e| e.name == "input_rewind").expect("episode present");
            t.remove(at);
            (t, Code::FT107)
        }
        // Delete a materialized-stage skip from a resume: the completed
        // query no longer accounts for that stage.
        1 => {
            let mut t = engine_trace(sp, None, 1);
            let at = t.iter().position(|e| e.name == "stage_skipped").expect("resume skips");
            t.remove(at);
            (t, Code::FT103)
        }
        // Skip the sink: sinks produce the result, never checkpoints.
        2 => {
            let mut t = engine_trace(sp, None, 0);
            let at = t.len() - 1;
            t.insert(at, Event::instant("stage_skipped", "engine", 5).arg("stage", sink));
            (t, Code::FT106)
        }
        // Re-execute a stage with no rewind or corruption between the
        // runs: the §2.2 recovery contract forbids it.
        3 => {
            let mut t = engine_trace(sp, None, 0);
            let dup = t
                .iter()
                .find(|e| e.name == format!("stage {target}"))
                .expect("target executes")
                .clone();
            let at = t.len() - 1;
            t.insert(at, dup);
            (t, Code::FT105)
        }
        // Overlap two coordinator spans: the stage track is sequential.
        _ => {
            let mut t = engine_trace(sp, None, 0);
            let execs: Vec<usize> = t
                .iter()
                .enumerate()
                .filter(|(_, e)| e.name.starts_with("stage ") && e.tid == 0)
                .map(|(i, _)| i)
                .collect();
            let i = execs[1];
            t[i].ts_us = t[execs[0]].ts_us + 1;
            (t, Code::FT102)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn synthetic_engine_traces_check_clean(
        n in 2usize..6,
        mask_bits in any::<u64>(),
        seed in any::<u64>(),
        rewind in any::<bool>(),
        skip in any::<bool>(),
    ) {
        let sc = scenario_from(n, mask_bits, seed);
        let sp = engine_stage_plan(&sc);
        let rewind_at = if rewind {
            sp.stages().iter().find(|s| s.materializes).map(|s| s.id)
        } else {
            None
        };
        let skip_first = usize::from(skip && rewind_at.is_none());
        let events = engine_trace(&sp, rewind_at, skip_first);
        let report = check_trace("engine", &events, Some(&sp), &CheckOptions::default());
        prop_assert!(report.is_clean(), "clean trace flagged:\n{}", report.render());
    }

    #[test]
    fn mutated_engine_traces_are_flagged(
        n in 2usize..6,
        mask_bits in any::<u64>(),
        seed in any::<u64>(),
        kind in 0usize..5,
        pick in any::<usize>(),
    ) {
        let sc = scenario_from(n, mask_bits, seed);
        let sp = engine_stage_plan(&sc);
        let (damaged, expected) = mutate_engine(&sp, kind, pick);
        let report = check_trace("damaged-engine", &damaged, Some(&sp), &CheckOptions::default());
        prop_assert!(
            report.diagnostics.iter().any(|d| d.code == expected),
            "mutation {kind} expected {expected:?}, got:\n{}",
            report.render()
        );
    }
}

// ---------------------------------------------------------------------
// Robustness: arbitrary event soup must never panic the checker.
// ---------------------------------------------------------------------

/// A pseudo-random event stream mixing real vocabulary, wrong
/// categories, absent arguments and non-finite floats.
fn soup(seed: u64, len: usize) -> Vec<Event> {
    const NAMES: &[&str] = &[
        "stage 0",
        "stage 1",
        "stage 7",
        "attempt",
        "materialize",
        "stage_skipped",
        "input_rewind",
        "segment_corrupt",
        "node_failure",
        "worker_cancelled",
        "query_restart",
        "query_completed",
        "query_aborted",
        "store_stats",
        "plan_estimate",
        "junk",
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let name = NAMES[rng.gen_range(0..NAMES.len())];
            let cat = if rng.gen::<bool>() { "engine" } else { "sim" };
            let ts = rng.gen_range(0..2_000_000u64);
            let mut e = if rng.gen::<bool>() {
                Event::span(name, cat, ts, rng.gen_range(0..1_000_000u64))
            } else {
                Event::instant(name, cat, ts)
            }
            .tid(rng.gen_range(0..4u32));
            if rng.gen::<bool>() {
                e = e.arg("stage", rng.gen_range(0..5u64));
            }
            if rng.gen::<bool>() {
                let o = rng.gen_range(0..5u64);
                e = e.arg("producer", o).arg("op", o).arg("node", o);
            }
            if rng.gen::<bool>() {
                let f = rng.gen::<bool>();
                e = e.arg("ok", f).arg("failed", f).arg("replicated", f);
            }
            if rng.gen::<bool>() {
                let f = match rng.gen_range(0..3u8) {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    _ => rng.gen_range(-10.0..10.0),
                };
                e = e.arg("lost_s", f).arg("pred_cost_s", f);
            }
            e
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn checker_never_panics_on_event_soup(
        n in 2usize..6,
        mask_bits in any::<u64>(),
        seed in any::<u64>(),
        len in 0usize..40,
        with_plan in any::<bool>(),
    ) {
        let sc = scenario_from(n, mask_bits, seed);
        let sp = engine_stage_plan(&sc);
        let plan = with_plan.then_some(&sp);
        let report = check_trace("soup", &soup(seed, len), plan, &CheckOptions::default());
        // Whatever it found, rendering and serialization hold up too.
        let _ = report.render();
        let _ = serde_json::to_string(&report).expect("reports serialize");
    }
}
