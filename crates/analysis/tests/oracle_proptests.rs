//! Property-based pruning-soundness oracle (the tentpole acceptance test):
//! over hundreds of random small DAGs, every pruning variant of
//! `find_best_ft_plan` must honour its contract against the exhaustive
//! `2^n` enumeration — exact equality for the rule-3 family, one-sided
//! never-better soundness for the heuristic rules 1/2 — and the Eq. 9 path
//! memo must never under-report dominance.

use proptest::prelude::*;

use ftpde_analysis::prelude::*;
use ftpde_core::prelude::*;

/// Strategy: a random DAG-structured plan with `1..=max_ops` operators,
/// mirroring the generator of the core crate's proptests: each operator
/// picks up to two distinct earlier operators as inputs, random costs and
/// a random binding (free bindings dominate so the config space is rich).
fn arb_plan(max_ops: usize) -> impl Strategy<Value = PlanDag> {
    let op = (0.01f64..50.0, 0.0f64..20.0, 0u8..6, any::<u64>());
    collection::vec(op, 1..=max_ops).prop_map(|specs| {
        let mut b = PlanDag::builder();
        let mut ids: Vec<OpId> = Vec::new();
        for (i, (tr, tm, bind, seed)) in specs.into_iter().enumerate() {
            let mut inputs = Vec::new();
            if !ids.is_empty() {
                let a = (seed as usize) % (ids.len() + 1);
                if a < ids.len() {
                    inputs.push(ids[a]);
                }
                let c = ((seed >> 32) as usize) % (ids.len() + 1);
                if c < ids.len() && !inputs.contains(&ids[c]) {
                    inputs.push(ids[c]);
                }
            }
            let op = match bind {
                0..=3 => Operator::free(format!("op{i}"), tr, tm),
                4 => Operator::always_materialized(format!("op{i}"), tr, tm),
                _ => Operator::non_materializable(format!("op{i}"), tr, tm),
            };
            ids.push(b.add(op, &inputs).unwrap());
        }
        b.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The headline acceptance property: for every random plan and MTBF,
    /// every pruning variant honours its contract. In particular the
    /// rule-3 family (rule 3 alone, rule 3 + memo, memo alone) selects a
    /// configuration with *exactly* the exhaustive optimum's dominant-path
    /// cost, and rules 1/2 never beat the optimum and stay within the
    /// documented slack.
    #[test]
    fn pruning_never_changes_the_selected_cost(
        plan in arb_plan(7),
        mtbf in 1.0f64..1e5,
        mttr in 0.0f64..10.0,
    ) {
        let params = CostParams::new(mtbf, mttr);
        let report = check_pruning_soundness(&plan, &params);
        prop_assert_eq!(report.reference.configs, 1u64 << plan.free_count());
        prop_assert!(
            report.all_sound(),
            "plan with {} ops, mtbf={mtbf}: {:?}",
            plan.len(),
            report.first_violation()
        );
        // Spell the exact-equality contract out once more, directly.
        for o in report.outcomes.iter().filter(|o| o.exact) {
            prop_assert!(
                (o.pruned_cost - o.exhaustive_cost).abs() <= 1e-9,
                "{}: selected {} vs exhaustive {}",
                o.label.as_str(), o.pruned_cost, o.exhaustive_cost
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `PathMemo::dominates` never under-reports: replaying every recorded
    /// dominant path through a brute-force mirror, each claim of dominance
    /// is backed by a recorded entry that pairwise-dominates the probe.
    #[test]
    fn memo_never_under_reports(
        recorded in collection::vec(
            collection::vec(0.1f64..50.0, 1..6), 1..8),
        probes in collection::vec(
            collection::vec(0.1f64..50.0, 1..6), 1..8),
        mtbf in 1.0f64..1e4,
    ) {
        let params = CostParams::new(mtbf, 1.0);
        let total = |cs: &[f64]| cs.iter().map(|&t| params.op_cost(t)).sum::<f64>();
        let mut mirror = MemoMirror::new();
        for costs in &recorded {
            mirror.record(costs, total(costs));
        }
        prop_assert_eq!(mirror.recorded(), recorded.len());
        for probe in &probes {
            let mut sorted = probe.clone();
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            prop_assert!(
                mirror.claim_is_sound(&sorted),
                "memo claimed dominance over {sorted:?} with no dominating entry"
            );
            // And dominance claims are cost-sound, not just structural:
            // a dominated probe can never be cheaper than the reference
            // optimum implied by the recorded entries.
            if mirror.memo().dominates(&sorted) {
                let cheapest_dominating = recorded
                    .iter()
                    .map(|cs| total(cs))
                    .fold(f64::INFINITY, f64::min);
                prop_assert!(total(probe) >= cheapest_dominating - 1e-9);
            }
        }
    }

    /// The exhaustive reference itself is consistent: its chosen config's
    /// re-estimated cost reproduces the recorded optimum, and no
    /// enumerated config beats it.
    #[test]
    fn exhaustive_reference_is_a_true_minimum(plan in arb_plan(6), mtbf in 1.0f64..1e5) {
        let params = CostParams::new(mtbf, 1.0);
        let reference = exhaustive_best(&plan, &params);
        let re = estimate_ft_plan(&plan, &reference.config, &params);
        prop_assert!((re.dominant_cost - reference.dominant_cost).abs() < 1e-9);
        for config in MatConfig::enumerate(&plan) {
            let est = estimate_ft_plan(&plan, &config, &params);
            prop_assert!(est.dominant_cost >= reference.dominant_cost - 1e-9);
        }
    }

    /// The linter finds nothing to complain about on any generated
    /// fault-tolerant plan: generators produce only valid plans, and the
    /// production collapse/cost pipeline upholds every invariant the
    /// passes check (severity Warn is allowed — disconnected DAGs and
    /// diverging attempts are legal generator outputs).
    #[test]
    fn linter_is_clean_on_generated_ft_plans(plan in arb_plan(7), mask in any::<u64>()) {
        let n = plan.free_count();
        let config = MatConfig::from_free_bits(&plan, mask & ((1u64 << n) - 1));
        let validator = PlanValidator::new(CostParams::new(60.0, 1.0));
        let report = validator.validate_ft_plan("generated", &plan, &config);
        prop_assert!(report.is_clean(), "{}", report.render());
    }
}
