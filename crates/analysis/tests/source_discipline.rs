//! Integration tests of the source-discipline analyzer: golden fixtures
//! per FT2xx code, the workspace self-scan (the dogfooding gate), and
//! the DESIGN.md code-table drift check.
//!
//! The fixtures live in `tests/fixtures/`, which the workspace walker
//! skips — their violations are deliberate. Each fixture is linted under
//! an explicit path/class so the path-scoped passes (FT203 store/core,
//! FT205 store) are armed exactly as they would be in tree.

use std::path::{Path, PathBuf};

use ftpde_analysis::diag::{Code, Report, Severity};
use ftpde_analysis::source::{
    classify, lint_sources, lint_str, lint_workspace, FileClass, SourceFile,
};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Lints a fixture under an explicit workspace-relative identity.
fn lint_fixture(name: &str, as_path: &str, class: FileClass) -> Report {
    lint_str(as_path, class, &fixture(name))
}

/// `(code, line)` pairs of a report, in emission order.
fn at(report: &Report) -> Vec<(Code, u32)> {
    report.diagnostics.iter().map(|d| (d.code, d.line.unwrap_or(0))).collect()
}

#[test]
fn ft201_fixture_catches_every_smuggling_route() {
    let r =
        lint_fixture("ft201_sync_primitives.rs", "crates/engine/src/fixture.rs", FileClass::Lib);
    let want = [
        (Code::FT201, 6),
        (Code::FT201, 7),
        (Code::FT201, 9),
        (Code::FT201, 12),
        (Code::FT201, 13),
        (Code::FT201, 14),
    ];
    assert_eq!(at(&r), want, "{}", r.render());
    assert!(!r.is_clean(), "FT201 is an Error and must gate");
    // The same text inside a shim is the sanctioned home.
    let shim =
        lint_fixture("ft201_sync_primitives.rs", "crates/engine/src/sync.rs", FileClass::Shim);
    assert!(shim.diagnostics.is_empty(), "{}", shim.render());
}

#[test]
fn ft202_fixture_catches_clock_reads_but_not_the_type() {
    let r = lint_fixture("ft202_wall_clock.rs", "crates/obs/src/fixture.rs", FileClass::Lib);
    let want = [(Code::FT202, 12), (Code::FT202, 13), (Code::FT202, 14)];
    assert_eq!(at(&r), want, "{}", r.render());
    // Bench code measures wall time by design.
    let bench =
        lint_fixture("ft202_wall_clock.rs", "crates/bench/src/fixture.rs", FileClass::Bench);
    assert!(bench.diagnostics.is_empty(), "{}", bench.render());
}

#[test]
fn ft203_fixture_fires_only_in_plan_paths() {
    let r = lint_fixture("ft203_hash_iteration.rs", "crates/core/src/fixture.rs", FileClass::Lib);
    let want = [(Code::FT203, 5), (Code::FT203, 8), (Code::FT203, 9)];
    assert_eq!(at(&r), want, "{}", r.render());
    assert!(r.diagnostics.iter().all(|d| d.severity == Severity::Warn));
    // Outside core/optimizer the pass is silent.
    let engine =
        lint_fixture("ft203_hash_iteration.rs", "crates/engine/src/fixture.rs", FileClass::Lib);
    assert!(engine.diagnostics.is_empty(), "{}", engine.render());
}

#[test]
fn ft204_fixture_is_lint_severity_and_spares_tests() {
    let r = lint_fixture("ft204_panics.rs", "crates/engine/src/fixture.rs", FileClass::Lib);
    let want = [(Code::FT204, 5), (Code::FT204, 6), (Code::FT204, 8)];
    assert_eq!(at(&r), want, "{}", r.render());
    assert!(r.is_clean(), "the hygiene ratchet must never gate");
}

#[test]
fn ft205_fixture_requires_fsync_in_the_renaming_fn() {
    let r = lint_fixture("ft205_unsynced_rename.rs", "crates/store/src/fixture.rs", FileClass::Lib);
    assert_eq!(at(&r), [(Code::FT205, 8)], "{}", r.render());
    assert!(r.diagnostics[0].message.contains("torn_commit"), "{}", r.render());
}

#[test]
fn ft206_fixture_fires_in_every_file_class() {
    for class in [FileClass::Lib, FileClass::Test, FileClass::Bin, FileClass::Bench] {
        let r = lint_fixture("ft206_unsafe.rs", "crates/engine/src/fixture.rs", class);
        assert_eq!(at(&r), [(Code::FT206, 5)], "{class:?}: {}", r.render());
    }
}

#[test]
fn ft207_fixture_audits_suppressions_both_ways() {
    let r = lint_fixture("ft207_suppressions.rs", "crates/obs/src/fixture.rs", FileClass::Lib);
    // Malformed allows (lines 17, 18) come first, then the unsuppressed
    // FT202 (line 19), then the unused-but-well-formed allow (line 11).
    // The used allow on line 6 produces nothing at all.
    let want = [(Code::FT207, 17), (Code::FT207, 18), (Code::FT202, 19), (Code::FT207, 11)];
    assert_eq!(at(&r), want, "{}", r.render());
}

/// Lints one fixture through the cross-file pipeline: the FT21x
/// concurrency passes need the call-graph analysis, which runs in
/// [`lint_sources`], not in the single-file [`lint_str`].
fn lint_concurrency_fixture(name: &str) -> Report {
    let rel = "crates/engine/src/fixture.rs";
    let files = [SourceFile { rel: rel.to_string(), class: FileClass::Lib, text: fixture(name) }];
    let scan = lint_sources(&files);
    scan.set.reports.into_iter().next().unwrap_or_else(|| Report::new(rel))
}

#[test]
fn ft210_fixture_catches_the_lock_order_cycle() {
    let r = lint_concurrency_fixture("ft210_lock_order.rs");
    assert_eq!(at(&r), [(Code::FT210, 22)], "{}", r.render());
    assert!(!r.is_clean(), "FT210 is an Error and must gate");
}

#[test]
fn ft211_fixture_catches_direct_and_transitive_blocking() {
    let r = lint_concurrency_fixture("ft211_blocking_under_lock.rs");
    assert_eq!(at(&r), [(Code::FT211, 14), (Code::FT211, 20)], "{}", r.render());
    // FT21x findings are column-located (the offending token).
    assert!(r.diagnostics.iter().all(|d| d.column.is_some()), "{}", r.render());
}

#[test]
fn ft212_fixture_catches_recv_and_join_but_not_path_join() {
    let r = lint_concurrency_fixture("ft212_channel_under_lock.rs");
    assert_eq!(at(&r), [(Code::FT212, 17), (Code::FT212, 26)], "{}", r.render());
}

#[test]
fn ft213_fixture_catches_reentrant_acquisition() {
    let r = lint_concurrency_fixture("ft213_reentrant_lock.rs");
    assert_eq!(at(&r), [(Code::FT213, 15), (Code::FT213, 23)], "{}", r.render());
}

#[test]
fn ft214_fixture_catches_metrics_under_lock() {
    let r = lint_concurrency_fixture("ft214_obs_under_lock.rs");
    assert_eq!(at(&r), [(Code::FT214, 16), (Code::FT214, 23)], "{}", r.render());
}

/// The FT204 hygiene ratchet: a committed baseline gates increases and
/// only increases — matching or shrinking counts stay clean.
#[test]
fn ft204_ratchet_gates_on_increase_only() {
    let dir = std::env::temp_dir().join("ftpde_ft204_ratchet_it");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("crates/x/src")).unwrap();
    std::fs::create_dir_all(dir.join("tests")).unwrap();
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
    std::fs::write(dir.join("crates/x/src/lib.rs"), "pub fn f() -> u32 { None::<u32>.unwrap() }\n")
        .unwrap();

    std::fs::write(dir.join("tests/ft204_baseline.txt"), "0\n").unwrap();
    let scan = lint_workspace(&dir).expect("scan");
    assert!(!scan.is_clean(), "count 1 > baseline 0 must gate:\n{}", scan.render());
    assert!(
        scan.set.reports.iter().any(|r| r.subject == "tests/ft204_baseline.txt"),
        "{}",
        scan.render()
    );

    std::fs::write(dir.join("tests/ft204_baseline.txt"), "1\n").unwrap();
    let scan = lint_workspace(&dir).expect("scan");
    assert!(scan.is_clean(), "count == baseline must pass:\n{}", scan.render());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The dogfooding gate: the workspace that ships this analyzer passes
/// it. Any reintroduced raw primitive, clock read, unsynced rename or
/// stale suppression — e.g. deleting a `sync` shim route — fails this
/// test before CI even runs the CLI.
#[test]
fn workspace_self_scan_is_clean() {
    let root = workspace_root();
    let scan = lint_workspace(&root).expect("workspace scan");
    assert!(
        scan.files_scanned > 100,
        "suspiciously few files ({}) — walker broken?",
        scan.files_scanned
    );
    assert!(scan.is_clean(), "workspace has source-discipline errors:\n{}", scan.render());
    assert_eq!(0, scan.set.count(Severity::Warn), "unresolved warnings:\n{}", scan.render());
    // The concurrency passes specifically: zero FT21x findings survive
    // (fixed or carrying an audited `ftpde-allow`), and the lock-order
    // graph the scan built is non-trivial — the store and the flight
    // recorder both lock.
    let ft21x: Vec<String> = scan
        .set
        .reports
        .iter()
        .flat_map(|r| &r.diagnostics)
        .filter(|d| {
            matches!(d.code, Code::FT210 | Code::FT211 | Code::FT212 | Code::FT213 | Code::FT214)
        })
        .map(ToString::to_string)
        .collect();
    assert!(ft21x.is_empty(), "unfixed concurrency findings:\n{}", ft21x.join("\n"));
}

/// A seeded violation in a scratch workspace is detected end to end via
/// the directory walker (not just `lint_str`) — the fixture-level proof
/// that the CI gate turns red when discipline regresses.
#[test]
fn seeded_violation_fails_a_workspace_scan() {
    let dir = std::env::temp_dir().join("ftpde_source_seeded_it");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("crates/x/src")).unwrap();
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").unwrap();
    std::fs::write(
        dir.join("crates/x/src/lib.rs"),
        "use std::sync::Mutex;\npub fn t() -> std::time::Instant { std::time::Instant::now() }\n",
    )
    .unwrap();
    let scan = lint_workspace(&dir).expect("scan");
    assert_eq!(1, scan.files_scanned);
    assert!(!scan.is_clean());
    let codes: Vec<Code> =
        scan.set.reports.iter().flat_map(|r| r.diagnostics.iter().map(|d| d.code)).collect();
    assert_eq!(codes, [Code::FT201, Code::FT202], "{}", scan.render());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The FT2xx table in DESIGN.md §14 is generated from the registry; this
/// test re-generates it and diffs, so the book cannot drift from the
/// code.
#[test]
fn design_doc_ft2xx_table_matches_registry() {
    let design = std::fs::read_to_string(workspace_root().join("DESIGN.md")).expect("DESIGN.md");
    let begin =
        "<!-- FT2XX-TABLE BEGIN (generated: ftpde_analysis::codes::ft2xx_markdown_table) -->";
    let end = "<!-- FT2XX-TABLE END -->";
    let start = design.find(begin).expect("DESIGN.md must carry the FT2XX-TABLE BEGIN marker");
    let stop = design.find(end).expect("DESIGN.md must carry the FT2XX-TABLE END marker");
    let embedded = design[start + begin.len()..stop].trim();
    let generated = ftpde_analysis::codes::ft2xx_markdown_table();
    assert_eq!(
        embedded,
        generated.trim(),
        "DESIGN.md §14 table drifted from the registry — regenerate it"
    );
}

/// DESIGN.md §16 embeds the generated FT21x table between markers; it
/// must match the registry verbatim, same as the §14.3 table.
#[test]
fn design_doc_ft21x_table_matches_registry() {
    let design = std::fs::read_to_string(workspace_root().join("DESIGN.md")).expect("DESIGN.md");
    let begin =
        "<!-- FT21X-TABLE BEGIN (generated: ftpde_analysis::codes::ft21x_markdown_table) -->";
    let end = "<!-- FT21X-TABLE END -->";
    let start = design.find(begin).expect("DESIGN.md must carry the FT21X-TABLE BEGIN marker");
    let stop = design.find(end).expect("DESIGN.md must carry the FT21X-TABLE END marker");
    let embedded = design[start + begin.len()..stop].trim();
    let generated = ftpde_analysis::codes::ft21x_markdown_table();
    assert_eq!(
        embedded,
        generated.trim(),
        "DESIGN.md §16 table drifted from the registry — regenerate it"
    );
}

/// Every classification the self-scan depends on, pinned against the
/// real tree: shims are shims, fixtures are skipped, bench is bench.
#[test]
fn classification_matches_the_real_tree() {
    assert_eq!(classify("crates/obs/src/sync.rs"), Some(FileClass::Shim));
    assert_eq!(classify("crates/analysis/tests/fixtures/ft201_sync_primitives.rs"), None);
    assert_eq!(classify("crates/bench/src/suite.rs"), Some(FileClass::Bench));
    assert_eq!(classify("src/bin/ftpde.rs"), Some(FileClass::Bin));
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).ancestors().nth(2).expect("workspace root").to_path_buf()
}
