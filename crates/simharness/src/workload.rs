//! Seed-derived workloads: what the harness runs, before anything fails.
//!
//! One `u64` seed deterministically fixes every knob of a run — the query
//! shape (a built-in TPC-H plan or a randomized operator DAG), the scale
//! factor, the node count, the cluster's MTBF (which parameterizes the
//! FT0xx cost-model lint), the materialization configuration, the
//! recovery scheme and the simulated repair time. The derivation draws
//! from a single [`StdRng`] stream in a documented order, so adding a
//! knob at the end never perturbs the ones before it.
//!
//! Everything here is re-derivable: a [`Workload`] serializes as plain
//! knobs (externally tagged enums — the wire format the workspace's
//! offline serde derive supports) and [`Workload::plan`] rebuilds the
//! same [`EnginePlan`] from them on any machine.

use ftpde_cluster::prelude::ClusterConfig;
use ftpde_core::prelude::{find_best_ft_plan, CostParams, MatConfig, PlanDag, PruneOptions};
use ftpde_engine::prelude::{
    q1_engine_plan, q3_engine_plan, q5_engine_plan, Agg, AggFunc, EngineOp, EnginePlan,
    EngineRecovery, Expr, OpKind, RunOptions,
};
use ftpde_sim::prelude::Scheme;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The scale factors the harness samples. Small enough that a full run
/// is milliseconds; large enough that every built-in query's selective
/// predicates usually keep some rows.
pub const SCALE_FACTORS: [f64; 3] = [0.0002, 0.0005, 0.001];

/// The per-node MTBF values (seconds) the harness samples: a pathological
/// cluster, the paper's default, and a reliable one.
pub const MTBFS: [u64; 3] = [600, 3600, 86_400];

/// Which query plan a workload runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryKind {
    /// The built-in TPC-H Q1 engine plan.
    Q1,
    /// The built-in TPC-H Q3 engine plan.
    Q3,
    /// The built-in TPC-H Q5 engine plan.
    Q5,
    /// A randomized operator DAG over the TPC-H tables, rebuilt
    /// deterministically from its own seed (see [`random_plan`]).
    Random {
        /// Seed of the DAG generator.
        dag_seed: u64,
        /// Upper bound on the number of middle (filter/project) operators.
        budget: u32,
    },
}

/// How the materialization configuration is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfigKind {
    /// Materialize nothing.
    None,
    /// Materialize every free operator.
    All,
    /// The cost-based search's winner under the workload's cluster.
    Best,
    /// Random subset of the free operators, from a bit mask.
    Bits {
        /// Mask over the plan's free operators (bit i = i-th free op).
        bits: u64,
    },
}

/// Which engine recovery scheme the run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryKind {
    /// Fine-grained: re-execute only the killed node's sub-plan.
    Fine,
    /// Coarse: restart the whole query, clearing the store.
    Coarse,
}

/// Everything a run needs besides the fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The query plan shape.
    pub query: QueryKind,
    /// TPC-H scale factor of the generated database.
    pub sf: f64,
    /// Worker node count.
    pub nodes: u32,
    /// Per-node MTBF in seconds (parameterizes the FT0xx lint).
    pub mtbf_s: u64,
    /// Materialization configuration selector.
    pub config: ConfigKind,
    /// Engine recovery scheme.
    pub recovery: RecoveryKind,
    /// Simulated repair time per recovery, in virtual milliseconds.
    pub repair_ms: u64,
}

impl Workload {
    /// Derives a workload from `rng`, consuming a fixed number of draws.
    /// The draw order is part of the harness's determinism contract:
    /// query, scale factor, nodes, MTBF, recovery, config, repair time.
    pub fn derive(rng: &mut StdRng) -> Workload {
        let query = match rng.gen_range(0u32..4) {
            0 => QueryKind::Q1,
            1 => QueryKind::Q3,
            2 => QueryKind::Q5,
            _ => QueryKind::Random { dag_seed: rng.gen::<u64>(), budget: rng.gen_range(1..=4) },
        };
        let sf = SCALE_FACTORS[rng.gen_range(0..SCALE_FACTORS.len())];
        let nodes = rng.gen_range(2u32..=4);
        let mtbf_s = MTBFS[rng.gen_range(0..MTBFS.len())];
        let recovery = if rng.gen_bool(0.75) { RecoveryKind::Fine } else { RecoveryKind::Coarse };
        let config = match rng.gen_range(0u32..4) {
            0 => ConfigKind::None,
            1 => ConfigKind::All,
            2 => ConfigKind::Best,
            _ => ConfigKind::Bits { bits: rng.gen::<u64>() },
        };
        let repair_ms = rng.gen_range(0u64..=5);
        Workload { query, sf, nodes, mtbf_s, config, recovery, repair_ms }
    }

    /// Rebuilds the workload's engine plan.
    pub fn plan(&self) -> EnginePlan {
        match self.query {
            QueryKind::Q1 => q1_engine_plan(),
            QueryKind::Q3 => q3_engine_plan(),
            QueryKind::Q5 => q5_engine_plan(),
            QueryKind::Random { dag_seed, budget } => random_plan(dag_seed, budget),
        }
    }

    /// The cluster the workload pretends to run on (MTTR fixed at the
    /// paper's 1 s — the harness varies repair time through
    /// [`Workload::repair_ms`] instead, in virtual milliseconds).
    pub fn cluster(&self) -> ClusterConfig {
        ClusterConfig::new(self.nodes as usize, self.mtbf_s as f64, 1.0)
    }

    /// Cost-model parameters for the FT0xx lint and the `Best` config.
    pub fn cost_params(&self) -> CostParams {
        Scheme::cost_params(&self.cluster())
    }

    /// Resolves the materialization configuration over `dag`.
    ///
    /// # Errors
    /// Propagates cost-model validation errors from the `Best` search.
    pub fn mat_config(&self, dag: &PlanDag) -> Result<MatConfig, String> {
        match self.config {
            ConfigKind::None => Ok(MatConfig::none(dag)),
            ConfigKind::All => Ok(MatConfig::all(dag)),
            ConfigKind::Best => {
                let (best, _) = find_best_ft_plan(
                    std::slice::from_ref(dag),
                    &self.cost_params(),
                    &PruneOptions::default(),
                )
                .map_err(|e| e.to_string())?;
                Ok(best.config)
            }
            ConfigKind::Bits { bits } => Ok(MatConfig::from_free_bits(dag, bits)),
        }
    }

    /// The engine run options this workload implies.
    pub fn run_options(&self) -> RunOptions {
        RunOptions {
            recovery: match self.recovery {
                RecoveryKind::Fine => EngineRecovery::FineGrained,
                RecoveryKind::Coarse => EngineRecovery::CoarseRestart,
            },
            repair_ms: self.repair_ms,
            ..RunOptions::default()
        }
    }

    /// One-line human rendering for reports.
    pub fn describe(&self) -> String {
        let query = match self.query {
            QueryKind::Q1 => "Q1".to_string(),
            QueryKind::Q3 => "Q3".to_string(),
            QueryKind::Q5 => "Q5".to_string(),
            QueryKind::Random { dag_seed, budget } => {
                format!("random dag (seed {dag_seed}, budget {budget})")
            }
        };
        let config = match self.config {
            ConfigKind::None => "none".to_string(),
            ConfigKind::All => "all".to_string(),
            ConfigKind::Best => "best".to_string(),
            ConfigKind::Bits { bits } => format!("bits {bits:#x}"),
        };
        let recovery = match self.recovery {
            RecoveryKind::Fine => "fine",
            RecoveryKind::Coarse => "coarse",
        };
        format!(
            "{query}, sf {}, {} nodes, mtbf {}s, config {config}, {recovery}, repair {}ms",
            self.sf, self.nodes, self.mtbf_s, self.repair_ms
        )
    }
}

/// Generates a randomized — but always structurally valid — engine plan
/// over the TPC-H tables, deterministically from `dag_seed`.
///
/// The shape is a chain rooted at a filtered `lineitem` scan, optionally
/// hash-joined with an `orders` scan (the tables are co-partitioned on
/// `orderkey`, so the join is node-local), followed by up to `budget`
/// random filter/project operators and a gathering sink (aggregation or
/// top-k). Column 0 always survives projections so group/sort keys exist
/// at the sink. Semantics don't need to be *interesting* — runs are
/// compared against a failure-free reference of the same plan — but the
/// plan must collapse into stages the same way on every rebuild.
pub fn random_plan(dag_seed: u64, budget: u32) -> EnginePlan {
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(dag_seed);
    let mut p = EnginePlan::new();
    let cut = rng.gen_range(1200i64..=2400);
    let scan = p.add(
        "scan σ(lineitem)",
        OpKind::Scan {
            table: "lineitem".into(),
            filter: Some(Expr::col(7).le(Expr::lit(cut))), // shipdate
            project: Some(vec![0, 3, 5]),                  // [orderkey, price, quantity]
        },
        &[],
    );
    let mut cur = scan;
    let mut width = 3usize;
    if rng.gen_bool(0.5) {
        let orders = p.add(
            "scan orders",
            OpKind::Scan {
                table: "orders".into(),
                filter: None,
                project: Some(vec![0, 2]), // [orderkey, orderdate]
            },
            &[],
        );
        // Output row = build row ++ probe row, so col 0 stays orderkey.
        cur = p.add(
            "⋈ orderkey",
            OpKind::HashJoin { build_key: 0, probe_key: 0, residual: None },
            &[orders, cur],
        );
        width += 2;
    }
    let mids = rng.gen_range(1..=budget.max(1));
    for i in 0..mids {
        if rng.gen_bool(0.5) {
            let col = rng.gen_range(0..width);
            let cut = rng.gen_range(0i64..5000);
            cur = p.add(
                format!("σ #{i}"),
                OpKind::Filter { predicate: Expr::col(col).le(Expr::lit(cut)) },
                &[cur],
            );
        } else {
            let keep: Vec<usize> = (0..width).filter(|&c| c == 0 || rng.gen_bool(0.6)).collect();
            cur = p.add(
                format!("π #{i}"),
                OpKind::Project { exprs: keep.iter().map(|&c| Expr::col(c)).collect() },
                &[cur],
            );
            width = keep.len();
        }
    }
    if rng.gen_bool(0.5) {
        let agg_col = rng.gen_range(0..width);
        p.add(
            "Γ",
            OpKind::HashAgg {
                group_cols: vec![0],
                aggs: vec![
                    Agg { func: AggFunc::Sum, expr: Expr::col(agg_col) },
                    Agg { func: AggFunc::Count, expr: Expr::lit(1) },
                ],
            },
            &[cur],
        );
    } else {
        p.add(
            "topk",
            OpKind::TopK {
                sort_col: rng.gen_range(0..width),
                ascending: rng.gen_bool(0.5),
                k: rng.gen_range(1..=10),
            },
            &[cur],
        );
    }
    p.finish()
}

/// A compact structural fingerprint of a plan, used by tests to assert
/// rebuild determinism without comparing expression trees.
pub fn plan_shape(plan: &EnginePlan) -> Vec<(String, usize)> {
    plan.op_ids()
        .map(|id| {
            let op: &EngineOp = plan.op(id);
            (op.name.clone(), op.inputs.len())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn derivation_is_deterministic_per_seed() {
        for seed in 0..32u64 {
            let a = Workload::derive(&mut StdRng::seed_from_u64(seed));
            let b = Workload::derive(&mut StdRng::seed_from_u64(seed));
            assert_eq!(a, b);
            assert_eq!(plan_shape(&a.plan()), plan_shape(&b.plan()));
        }
    }

    #[test]
    fn derivation_covers_the_knob_space() {
        let mut kinds = [false; 4];
        let mut recoveries = [false; 2];
        let mut configs = [false; 4];
        for seed in 0..256u64 {
            let w = Workload::derive(&mut StdRng::seed_from_u64(seed));
            kinds[match w.query {
                QueryKind::Q1 => 0,
                QueryKind::Q3 => 1,
                QueryKind::Q5 => 2,
                QueryKind::Random { .. } => 3,
            }] = true;
            recoveries[matches!(w.recovery, RecoveryKind::Coarse) as usize] = true;
            configs[match w.config {
                ConfigKind::None => 0,
                ConfigKind::All => 1,
                ConfigKind::Best => 2,
                ConfigKind::Bits { .. } => 3,
            }] = true;
            assert!((2..=4).contains(&w.nodes));
            assert!(w.repair_ms <= 5);
            assert!(SCALE_FACTORS.contains(&w.sf));
            assert!(MTBFS.contains(&w.mtbf_s));
        }
        assert!(kinds.iter().all(|&k| k), "{kinds:?}");
        assert!(recoveries.iter().all(|&r| r), "{recoveries:?}");
        assert!(configs.iter().all(|&c| c), "{configs:?}");
    }

    #[test]
    fn random_plans_are_valid_and_varied() {
        let mut lens = std::collections::HashSet::new();
        for dag_seed in 0..64u64 {
            let plan = random_plan(dag_seed, 4);
            assert!(!plan.is_empty());
            assert_eq!(plan.sinks().len(), 1);
            // The mirror DAG builds (structural validity) and the sink
            // gathers (single coordinator-merged result).
            let dag = plan.to_plan_dag();
            assert_eq!(dag.len(), plan.len());
            assert!(plan.op(plan.sinks()[0]).kind.is_gather());
            lens.insert(plan.len());
        }
        assert!(lens.len() >= 3, "dag sizes too uniform: {lens:?}");
    }

    #[test]
    fn workload_round_trips_through_json() {
        for seed in [0u64, 7, 19] {
            let w = Workload::derive(&mut StdRng::seed_from_u64(seed));
            let text = serde_json::to_string(&w).unwrap();
            let back: Workload = serde_json::from_str(&text).unwrap();
            assert_eq!(w, back);
        }
    }

    #[test]
    fn mat_config_resolves_for_every_kind() {
        let plan = q3_engine_plan();
        let dag = plan.to_plan_dag();
        for config in
            [ConfigKind::None, ConfigKind::All, ConfigKind::Best, ConfigKind::Bits { bits: 0b1011 }]
        {
            let w = Workload {
                query: QueryKind::Q3,
                sf: 0.001,
                nodes: 3,
                mtbf_s: 3600,
                config,
                recovery: RecoveryKind::Fine,
                repair_ms: 0,
            };
            let mc = w.mat_config(&dag).expect("config resolves");
            assert!(mc.validate(&dag).is_ok());
        }
    }
}
