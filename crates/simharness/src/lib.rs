//! # ftpde-simharness — deterministic whole-system simulation
//!
//! One `u64` seed drives an entire adversarial run of the real system:
//!
//! 1. **Workload** ([`workload`]) — the seed derives a query plan (a
//!    built-in TPC-H plan or a randomized operator DAG), scale factor,
//!    node count, cluster MTBF, materialization configuration, recovery
//!    scheme and repair time. The workload must pass the FT0xx plan
//!    linter before it runs.
//! 2. **Fault schedule** ([`case`]) — the same stream then derives node
//!    kills and storage faults (torn writes, lost puts, corrupt reads,
//!    virtual-time stragglers) at *logical* coordinates matching the
//!    workload's actual collapsed stage structure.
//! 3. **Execution & oracles** ([`runner`]) — the real engine runs the
//!    schedule (kills via its failure injector, storage faults via the
//!    [`FaultStore`](ftpde_store::FaultStore) decorator, repair time on
//!    the process virtual clock) and every run is judged: trace
//!    conformance (FT1xx), replay determinism (FT301), result
//!    divergence against a failure-free reference (FT302), panics
//!    (FT303), and unfired schedules (FT304).
//! 4. **Shrinking** ([`shrink`]) — a failing case is minimized to a
//!    1-minimal schedule plus the smallest workload knobs that still
//!    reproduce the same diagnostic code.
//! 5. **Bug base** ([`bugbase`]) — shrunk reproductions are committed to
//!    `tests/bug_base.jsonl`, which CI replays forever: `fixed` entries
//!    must stay fixed, `quarantined` entries must keep failing the same
//!    way.
//!
//! The `ftpde sim` CLI subcommand is the harness's command-line face;
//! `ftpde explain FT301` (and friends) documents the oracle codes.
//!
//! Determinism is the load-bearing property: same seed, same workload,
//! same schedule, same verdict, byte-identical report — across
//! invocations and machines. Everything random flows from
//! `StdRng::seed_from_u64`; nothing reads the wall clock.

pub mod bugbase;
pub mod case;
pub mod runner;
pub mod shrink;
pub mod workload;

/// Convenient glob-import of the harness's main types.
pub mod prelude {
    pub use crate::bugbase::{replay_entry, BugBase, BugEntry, EntryStatus, ReplayResult};
    pub use crate::case::{derive_schedule, stage_roots, store_slots, BugMode, SimCase};
    pub use crate::runner::{run_case, run_seed, CaseOutcome, RunSummary};
    pub use crate::shrink::{primary_code, shrink_case, shrink_schedule, Shrunk};
    pub use crate::workload::{
        random_plan, ConfigKind, QueryKind, RecoveryKind, Workload, MTBFS, SCALE_FACTORS,
    };
}
