//! A simulation case: one workload plus one fault schedule, derived from
//! one seed — the unit the runner executes, the shrinker minimizes and
//! the bug base commits.
//!
//! The schedule is derived *after* the workload from the same RNG
//! stream, against the workload's actual collapsed stage structure:
//! kills target real `(stage, node, attempt)` coordinates, storage
//! faults target `(op, node)` slots that the run will actually write
//! (materializing roots of non-sink stages). A coarse-restart workload
//! gets kills only — worker cancellation under coarse recovery is
//! intentionally racy, and storage faults would make the canonical-trace
//! determinism oracle (FT301) flag the engine's healthy races instead of
//! real bugs.

use ftpde_core::prelude::{CollapsedPlan, MatConfig, PlanDag};
use ftpde_sim::prelude::{FaultEvent, FaultSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::workload::{RecoveryKind, Workload};

/// A deliberately wrong behavior the case may switch on, for harness
/// self-tests and the seeded bug-base entry. Mirrors
/// [`ftpde_store::StoreBug`] as a serializable knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BugMode {
    /// Correct behavior everywhere.
    #[default]
    None,
    /// The store serves damaged rows instead of demoting them (checksum
    /// verification "disabled") — caught by the FT302 result oracle.
    ServeCorruptData,
}

impl BugMode {
    /// The store-layer bug this mode injects.
    pub fn store_bug(self) -> ftpde_store::StoreBug {
        match self {
            BugMode::None => ftpde_store::StoreBug::None,
            BugMode::ServeCorruptData => ftpde_store::StoreBug::ServeCorruptData,
        }
    }
}

/// One fully specified simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimCase {
    /// The seed this case was derived from (kept for provenance; a
    /// shrunk case no longer re-derives from it).
    pub seed: u64,
    /// The workload to run.
    pub workload: Workload,
    /// The faults to inject.
    pub schedule: FaultSchedule,
    /// Deliberate misbehavior, for self-tests ([`BugMode::None`] in
    /// normal sweeps).
    pub bug: BugMode,
}

impl SimCase {
    /// Derives the full case for `seed`: workload first, then a schedule
    /// against that workload's stage structure, from one RNG stream.
    pub fn derive(seed: u64) -> SimCase {
        let mut rng = StdRng::seed_from_u64(seed);
        let workload = Workload::derive(&mut rng);
        let plan = workload.plan();
        let dag = plan.to_plan_dag();
        // Config resolution can only fail for `Best` under invalid cost
        // params; the derived MTBFs are all valid, so fall back to none
        // rather than poison derivation determinism with an error path.
        let config = workload.mat_config(&dag).unwrap_or_else(|_| MatConfig::none(&dag));
        let schedule = derive_schedule(&mut rng, &workload, &dag, &config);
        SimCase { seed, workload, schedule, bug: BugMode::None }
    }

    /// The same case with a deliberate bug switched on.
    pub fn with_bug(mut self, bug: BugMode) -> SimCase {
        self.bug = bug;
        self
    }
}

/// Stage roots (collapsed-plan execution units) of `dag` under `config`.
pub fn stage_roots(dag: &PlanDag, config: &MatConfig) -> Vec<u32> {
    let collapsed = CollapsedPlan::collapse(dag, config, 1.0);
    collapsed.iter().map(|(_, c)| c.root.0).collect()
}

/// `(op, node)`-addressable store slots the run will write: materializing
/// roots of non-sink stages, crossed with every node.
pub fn store_slots(dag: &PlanDag, config: &MatConfig, nodes: u32) -> Vec<(u32, u32)> {
    let collapsed = CollapsedPlan::collapse(dag, config, 1.0);
    let mut slots = Vec::new();
    for (id, c) in collapsed.iter() {
        if !collapsed.consumers(id).is_empty() && config.materializes(c.root) {
            for node in 0..nodes {
                slots.push((c.root.0, node));
            }
        }
    }
    slots
}

/// Derives a fault schedule for `workload` from `rng`. Coarse recovery
/// gets 1–2 kills; fine-grained gets 1–4 events mixing kills with
/// storage faults when the configuration materializes anything.
pub fn derive_schedule(
    rng: &mut StdRng,
    workload: &Workload,
    dag: &PlanDag,
    config: &MatConfig,
) -> FaultSchedule {
    let roots = stage_roots(dag, config);
    let slots = store_slots(dag, config, workload.nodes);
    let coarse = workload.recovery == RecoveryKind::Coarse;
    let count = if coarse { rng.gen_range(1..=2) } else { rng.gen_range(1..=4) };
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        if coarse || slots.is_empty() || rng.gen_bool(0.5) {
            let stage = roots[rng.gen_range(0..roots.len())];
            let node = rng.gen_range(0..workload.nodes);
            // Under coarse recovery the attempt coordinate is the query
            // restart count, so attempt 0 always terminates; under fine
            // recovery an attempt-1 kill only fires after another fault
            // already killed attempt 0 (often unfired — FT304's beat).
            let attempt = if !coarse && rng.gen_bool(0.2) { 1 } else { 0 };
            events.push(FaultEvent::KillNode { stage, node, attempt });
        } else {
            let (op, node) = slots[rng.gen_range(0..slots.len())];
            events.push(match rng.gen_range(0u32..4) {
                0 => FaultEvent::TornWrite { op, node },
                1 => FaultEvent::LostPut { op, node },
                2 => FaultEvent::CorruptRead { op, node, nth_get: rng.gen_range(0..=2) },
                _ => FaultEvent::DelayIo {
                    op,
                    node,
                    virtual_ms: rng.gen_range(1..=5),
                    uses: rng.gen_range(1..=3),
                },
            });
        }
    }
    FaultSchedule { events }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::QueryKind;

    #[test]
    fn case_derivation_is_deterministic_and_round_trips() {
        for seed in 0..32u64 {
            let a = SimCase::derive(seed);
            let b = SimCase::derive(seed);
            assert_eq!(a, b, "seed {seed}");
            assert!(!a.schedule.is_empty());
            let text = serde_json::to_string(&a).unwrap();
            let back: SimCase = serde_json::from_str(&text).unwrap();
            assert_eq!(a, back, "seed {seed}");
        }
    }

    #[test]
    fn coarse_cases_schedule_kills_only() {
        let mut saw_coarse = 0;
        for seed in 0..256u64 {
            let c = SimCase::derive(seed);
            if c.workload.recovery == RecoveryKind::Coarse {
                saw_coarse += 1;
                assert!(
                    c.schedule.events.iter().all(|e| !e.is_store_fault()),
                    "seed {seed}: {:?}",
                    c.schedule
                );
            }
        }
        assert!(saw_coarse > 10, "only {saw_coarse} coarse cases in 256 seeds");
    }

    #[test]
    fn schedules_target_real_coordinates() {
        for seed in 0..64u64 {
            let c = SimCase::derive(seed);
            let plan = c.workload.plan();
            let dag = plan.to_plan_dag();
            let config = c.workload.mat_config(&dag).unwrap_or_else(|_| MatConfig::none(&dag));
            let roots = stage_roots(&dag, &config);
            let slots = store_slots(&dag, &config, c.workload.nodes);
            for e in &c.schedule.events {
                match *e {
                    FaultEvent::KillNode { stage, node, .. } => {
                        assert!(roots.contains(&stage), "seed {seed}: stage {stage}");
                        assert!(node < c.workload.nodes);
                    }
                    _ => {
                        let slot = e.slot().unwrap();
                        assert!(slots.contains(&slot), "seed {seed}: slot {slot:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn store_slots_empty_when_nothing_materializes() {
        let plan = crate::workload::random_plan(3, 2);
        let dag = plan.to_plan_dag();
        assert!(store_slots(&dag, &MatConfig::none(&dag), 3).is_empty());
    }

    #[test]
    fn bug_mode_maps_to_the_store_knob() {
        assert_eq!(BugMode::None.store_bug(), ftpde_store::StoreBug::None);
        assert_eq!(BugMode::ServeCorruptData.store_bug(), ftpde_store::StoreBug::ServeCorruptData);
        let c = SimCase::derive(1).with_bug(BugMode::ServeCorruptData);
        assert_eq!(c.bug, BugMode::ServeCorruptData);
        // Bug mode survives the wire.
        let back: SimCase = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(back.bug, BugMode::ServeCorruptData);
        assert!(matches!(
            back.workload.query,
            QueryKind::Q1 | QueryKind::Q3 | QueryKind::Q5 | QueryKind::Random { .. }
        ));
    }
}
