//! The committed bug base: shrunk failing cases CI replays forever.
//!
//! `tests/bug_base.jsonl` is an append-only JSONL file. Line 1 is a
//! schema header; every further line is one [`BugEntry`] — a seed, its
//! minimized [`SimCase`], the diagnostic code it reproduced, and a
//! status:
//!
//! * **`fixed`** — the bug was real and is gone. Replay asserts the case
//!   now passes cleanly; a regression flips the tier-1 gate red.
//! * **`quarantined`** — the failure is known and still expected (e.g.
//!   the deliberately seeded [`BugMode::ServeCorruptData`] self-test
//!   entry). Replay asserts the *same* code still fires; if it stops
//!   firing, the entry is stale and replay says so — promote it to
//!   `fixed` rather than deleting history.
//!
//! The format is schema-versioned so a future layout change can keep
//! reading old bases; an unknown version is a parse error, never a
//! silent skip.
//!
//! [`BugMode::ServeCorruptData`]: crate::case::BugMode::ServeCorruptData

use ftpde_analysis::prelude::Severity;
use serde::{Deserialize, Serialize};

use crate::case::SimCase;
use crate::runner::run_case;
use crate::shrink::primary_code;

/// The schema identifier in the header line.
pub const SCHEMA: &str = "ftpde-bug-base";
/// The current schema version.
pub const VERSION: u64 = 1;

/// The header line of a bug base file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Header {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Always [`VERSION`] for files this code writes.
    pub version: u64,
}

/// Replay expectation for an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryStatus {
    /// The bug is fixed: replay must come back clean.
    Fixed,
    /// The failure is known and expected: replay must reproduce the
    /// recorded code.
    Quarantined,
}

/// One committed reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BugEntry {
    /// Seed the failure was found under.
    pub seed: u64,
    /// Diagnostic code the case reproduced when committed (e.g.
    /// `"FT302"`).
    pub code: String,
    /// What replay should expect.
    pub status: EntryStatus,
    /// Human context: what the bug was, where it was fixed.
    pub note: String,
    /// The minimized case to re-run.
    pub case: SimCase,
}

/// A parsed bug base.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BugBase {
    /// The entries, in file order.
    pub entries: Vec<BugEntry>,
}

/// Outcome of replaying one entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayResult {
    /// The entry's seed.
    pub seed: u64,
    /// The entry's recorded code.
    pub code: String,
    /// The entry's status.
    pub status: EntryStatus,
    /// Primary error code the replay produced, if any.
    pub observed: Option<String>,
    /// Whether the entry met its expectation.
    pub ok: bool,
    /// One-line explanation.
    pub detail: String,
}

impl BugBase {
    /// Parses a bug base file.
    ///
    /// # Errors
    /// On a missing/malformed header, unknown schema version, or any
    /// entry line that does not deserialize.
    pub fn parse(text: &str) -> Result<BugBase, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header_line = lines.next().ok_or("bug base is empty (missing header)")?;
        let header: Header = serde_json::from_str(header_line)
            .map_err(|e| format!("bug base header does not parse: {e:?}"))?;
        if header.schema != SCHEMA {
            return Err(format!("unknown bug base schema {:?}", header.schema));
        }
        if header.version != VERSION {
            return Err(format!(
                "bug base version {} unsupported (this build reads {VERSION})",
                header.version
            ));
        }
        let mut entries = Vec::new();
        for (i, line) in lines.enumerate() {
            let entry: BugEntry = serde_json::from_str(line)
                .map_err(|e| format!("bug base entry {} does not parse: {e:?}", i + 1))?;
            entries.push(entry);
        }
        Ok(BugBase { entries })
    }

    /// Serializes header plus entries as JSONL.
    pub fn to_jsonl(&self) -> String {
        let mut out =
            serde_json::to_string(&Header { schema: SCHEMA.to_string(), version: VERSION })
                .expect("header serializes");
        out.push('\n');
        for entry in &self.entries {
            out.push_str(&serde_json::to_string(entry).expect("entry serializes"));
            out.push('\n');
        }
        out
    }

    /// Replays every entry against the current engine.
    pub fn replay(&self) -> Vec<ReplayResult> {
        self.entries.iter().map(replay_entry).collect()
    }
}

/// Replays one entry and judges it against its status.
pub fn replay_entry(entry: &BugEntry) -> ReplayResult {
    let outcome = run_case(&entry.case);
    let observed = primary_code(&outcome.report).map(|c| c.as_str().to_string());
    let (ok, detail) = match (entry.status, &observed) {
        (EntryStatus::Fixed, None) => {
            let warns = outcome.report.count(Severity::Warn);
            (true, format!("stays fixed ({warns} warning(s))"))
        }
        (EntryStatus::Fixed, Some(code)) => {
            (false, format!("REGRESSION: fixed entry fails again with {code}"))
        }
        (EntryStatus::Quarantined, Some(code)) if *code == entry.code => {
            (true, format!("still reproduces {code}, as quarantined"))
        }
        (EntryStatus::Quarantined, Some(code)) => {
            (false, format!("quarantined as {} but now fails with {code}", entry.code))
        }
        (EntryStatus::Quarantined, None) => {
            (false, format!("quarantined {} no longer reproduces — promote to fixed", entry.code))
        }
    };
    ReplayResult {
        seed: entry.seed,
        code: entry.code.clone(),
        status: entry.status,
        observed,
        ok,
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::BugMode;

    fn entry(status: EntryStatus) -> BugEntry {
        BugEntry {
            seed: 7,
            code: "FT302".to_string(),
            status,
            note: "test entry".to_string(),
            case: SimCase::derive(7),
        }
    }

    #[test]
    fn round_trips_through_jsonl() {
        let base =
            BugBase { entries: vec![entry(EntryStatus::Fixed), entry(EntryStatus::Quarantined)] };
        let text = base.to_jsonl();
        assert!(text.starts_with(r#"{"schema":"ftpde-bug-base","version":1}"#), "{text}");
        let back = BugBase::parse(&text).unwrap();
        assert_eq!(base, back);
    }

    #[test]
    fn parse_rejects_damage() {
        assert!(BugBase::parse("").is_err());
        assert!(BugBase::parse("{\"schema\":\"other\",\"version\":1}\n").is_err());
        assert!(BugBase::parse("{\"schema\":\"ftpde-bug-base\",\"version\":99}\n").is_err());
        let with_bad_entry = "{\"schema\":\"ftpde-bug-base\",\"version\":1}\nnot json\n";
        assert!(BugBase::parse(with_bad_entry).is_err());
        // An empty base (header only) is valid.
        let empty = BugBase::parse("{\"schema\":\"ftpde-bug-base\",\"version\":1}\n").unwrap();
        assert!(empty.entries.is_empty());
    }

    #[test]
    fn replay_judges_fixed_and_quarantined_entries() {
        // Seed 7's derived case runs clean on a correct engine, so as a
        // `fixed` entry it passes and as `quarantined` it is stale.
        let fixed = replay_entry(&entry(EntryStatus::Fixed));
        assert!(fixed.ok, "{}", fixed.detail);
        let stale = replay_entry(&entry(EntryStatus::Quarantined));
        assert!(!stale.ok, "{}", stale.detail);
        assert!(stale.detail.contains("promote to fixed"), "{}", stale.detail);

        // With the seeded store bug the same quarantined shape holds
        // only if the schedule actually damages a read-back slot, so
        // just assert the judgement logic distinguishes observed codes.
        let mut e = entry(EntryStatus::Quarantined);
        e.case = e.case.with_bug(BugMode::ServeCorruptData);
        let replayed = replay_entry(&e);
        assert_eq!(replayed.ok, replayed.observed.as_deref() == Some("FT302"));
    }
}
